#!/usr/bin/env python3
"""Quickstart: LORM resource discovery in a small grid.

Builds a dimension-5 Cycloid (160 nodes), registers the resources of a few
dozen grid machines, and resolves the paper's motivating example — "find a
machine with >= 1.8 GHz CPU and >= 2 GB free memory" — as a multi-attribute
range query, printing the answer and its routing cost.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import LormService
from repro.core.resource import AttributeConstraint, MultiAttributeQuery, ResourceInfo
from repro.workloads.attributes import AttributeSchema, AttributeSpec

DIMENSION = 5  # 5 * 2**5 = 160 directory nodes

#: The globally-known attribute types of this little grid.  Domains chosen
#: so a present-day-ish machine park makes the example query selective but
#: satisfiable (Bounded-Pareto values skew toward the low end).
SCHEMA = AttributeSchema(
    (
        AttributeSpec("cpu-mhz", 800.0, 4200.0, pareto_shape=1.1),
        AttributeSpec("free-memory-mb", 512.0, 65536.0, pareto_shape=1.0),
        AttributeSpec("disk-gb", 20.0, 4000.0),
        AttributeSpec("network-mbps", 10.0, 10000.0),
    )
)


def main() -> None:
    schema = SCHEMA
    service = LormService.build_full(DIMENSION, schema, seed=42)
    print(f"LORM on Cycloid d={DIMENSION}: {service.num_nodes()} nodes, "
          f"max {max(service.outlink_counts())} outlinks per node")

    # Fifty grid machines report their available resources, ⟨a, δπ_a, ip⟩.
    rng = np.random.default_rng(7)
    total_hops = 0
    for i in range(50):
        machine = f"10.0.{i // 256}.{i % 256}"
        for spec in schema:
            value = float(spec.distribution.sample(rng))
            total_hops += service.register(
                ResourceInfo(spec.name, value, machine)
            )
    print(f"registered {50 * len(schema)} resource infos "
          f"({total_hops} routing hops, "
          f"{total_hops / (50 * len(schema)):.1f} per insert)")

    # "1.8GHz CPU and 2GB memory" — the paper's Section III example.
    request = MultiAttributeQuery(
        (
            AttributeConstraint.at_least("cpu-mhz", 1800.0),
            AttributeConstraint.at_least("free-memory-mb", 2048.0),
        ),
        requester="10.9.9.9",
    )
    result = service.multi_query(request)

    print(f"\nquery: CPU >= 1.8 GHz AND free memory >= 2 GB")
    print(f"  -> {result.num_matches} machines satisfy both attributes")
    for provider in sorted(result.providers)[:5]:
        print(f"     {provider}")
    if result.num_matches > 5:
        print(f"     ... and {result.num_matches - 5} more")
    print(f"  cost: {result.total_hops} total hops, "
          f"{result.total_visited} directory nodes visited, "
          f"{result.latency_hops} hops on the critical path")


if __name__ == "__main__":
    main()
