#!/usr/bin/env python3
"""Head-to-head comparison of LORM, Mercury, SWORD and MAAN.

Runs the identical workload through all four discovery approaches and
prints a side-by-side table of the paper's metrics: per-node outlinks
(structure maintenance), directory-size distribution (information
maintenance) and query cost (hops for non-range, visited nodes for range
queries) — a miniature of the paper's whole evaluation in one screen.

Run:  python examples/compare_approaches.py [--scale paper]
      (paper scale takes a few minutes; default is a 1/8-scale grid)
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.experiments.common import build_services
from repro.experiments.config import PAPER_CONFIG
from repro.sim.metrics import summarize
from repro.utils.formatting import render_table
from repro.workloads.generator import QueryKind


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["small", "paper"], default="small")
    args = parser.parse_args()

    if args.scale == "paper":
        config = PAPER_CONFIG
    else:
        config = PAPER_CONFIG.scaled(
            dimension=5, chord_bits=8, num_attributes=24, infos_per_attribute=64,
        )

    print(f"building 4 approaches: n={config.population} nodes, "
          f"m={config.num_attributes} attributes, "
          f"k={config.infos_per_attribute} providers ...")
    bundle = build_services(config)
    workload = bundle.workload

    # --- structure + information maintenance -------------------------------
    rows = []
    for service in bundle.all():
        outlinks = summarize(service.outlink_counts())
        directory = summarize(service.directory_sizes())
        rows.append(
            [
                service.name,
                outlinks.mean,
                directory.mean,
                directory.p99,
                service.total_info_pieces(),
            ]
        )
    print()
    print(
        render_table(
            ["approach", "outlinks/node", "dir mean", "dir p99", "total pieces"],
            rows,
            title="Maintenance overhead (paper Figure 3)",
        )
    )

    # --- query efficiency ----------------------------------------------------
    point_queries = list(workload.query_stream(200, 3, QueryKind.POINT, label="cmp-p"))
    range_queries = list(workload.query_stream(200, 3, QueryKind.RANGE, label="cmp-r"))
    rows = []
    for service in bundle.all():
        hops = [service.multi_query(q).total_hops for q in point_queries]
        service.collect_matches = False
        visits = [service.multi_query(q).total_visited for q in range_queries]
        service.collect_matches = True
        rows.append(
            [service.name, float(np.mean(hops)), float(np.mean(visits))]
        )
    print()
    print(
        render_table(
            ["approach", "hops / 3-attr point query", "visited / 3-attr range query"],
            rows,
            title="Discovery efficiency (paper Figures 4 and 5)",
        )
    )

    # --- correctness spot-check ----------------------------------------------
    agree = 0
    for query in workload.query_stream(25, 2, QueryKind.RANGE, label="cmp-check"):
        truth = workload.matching_providers_bruteforce(query)
        if all(s.multi_query(query).providers == truth for s in bundle.all()):
            agree += 1
    print(f"\ncorrectness: {agree}/25 spot-check queries identical across all "
          f"approaches and equal to brute force")


if __name__ == "__main__":
    main()
