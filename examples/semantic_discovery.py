#!/usr/bin/env python3
"""Semantic resource discovery — the paper's future work, running.

The paper closes with: "We plan to further explore and elaborate upon the
LORM design to discover resources based on semantic information."  This
example exercises that elaboration (``repro.core.semantic``): requesters
phrase queries in their own vocabulary — synonyms ("clock-speed"),
different units ("free-memory-gb"), broader concepts ("storage") — and the
resolver rewrites them onto the canonical schema before discovery through
an unmodified LORM service.

Run:  python examples/semantic_discovery.py
"""

from __future__ import annotations

import numpy as np

from repro import LormService
from repro.core.resource import AttributeConstraint, MultiAttributeQuery, ResourceInfo
from repro.core.semantic import Ontology, SemanticResolver
from repro.workloads.attributes import AttributeSchema, AttributeSpec

SCHEMA = AttributeSchema(
    (
        AttributeSpec("cpu-mhz", 800.0, 4200.0, pareto_shape=1.1),
        AttributeSpec("free-memory-mb", 512.0, 65536.0, pareto_shape=1.0),
        AttributeSpec("disk-gb", 20.0, 4000.0, pareto_shape=1.0),
        AttributeSpec("tape-gb", 100.0, 50000.0, pareto_shape=1.0),
        AttributeSpec("network-mbps", 10.0, 10000.0),
    )
)


def build_ontology() -> Ontology:
    """The deployment's semantic vocabulary."""
    return (
        Ontology()
        # Renames users actually type.
        .add_synonym("clock-speed", "cpu-mhz")
        .add_synonym("bandwidth", "network-mbps")
        # Unit bridges.
        .add_conversion("cpu-ghz", "cpu-mhz", scale=1000.0)
        .add_conversion("free-memory-gb", "free-memory-mb", scale=1024.0)
        # A broader concept covering several concrete attributes.
        .add_broader("storage-gb", ("disk-gb", "tape-gb"))
    )


def main() -> None:
    service = LormService.build_full(5, SCHEMA, seed=21)
    resolver = SemanticResolver(service, build_ontology())

    rng = np.random.default_rng(12)
    for i in range(80):
        machine = f"grid-{i:03d}"
        for spec in SCHEMA:
            service.register(
                ResourceInfo(spec.name, float(spec.distribution.sample(rng)), machine)
            )
    print(f"{service.total_info_pieces()} infos registered on "
          f"{service.num_nodes()} LORM nodes\n")

    requests = [
        (
            "a 2 GHz machine (asked in GHz)",
            MultiAttributeQuery((AttributeConstraint.at_least("cpu-ghz", 2.0),)),
        ),
        (
            "4 GB of memory (asked in GB, synonym-free)",
            MultiAttributeQuery((AttributeConstraint.at_least("free-memory-gb", 4.0),)),
        ),
        (
            "any storage >= 500 GB (broader term: disk OR tape)",
            MultiAttributeQuery((AttributeConstraint.at_least("storage-gb", 500.0),)),
        ),
        (
            "fast CPU AND big storage (join across semantic terms)",
            MultiAttributeQuery(
                (
                    AttributeConstraint.at_least("clock-speed", 2000.0),
                    AttributeConstraint.at_least("storage-gb", 500.0),
                )
            ),
        ),
    ]

    for description, request in requests:
        result = resolver.multi_query(request)
        print(f"query: {description}")
        print(f"  -> {result.num_matches} machines "
              f"({result.total_hops} hops, {result.total_visited} visits)")
        for provider in sorted(result.providers)[:3]:
            print(f"     {provider}")
        print()

    # Demonstrate that the canonical service itself knows nothing about
    # the semantic vocabulary:
    try:
        service.multi_query(
            MultiAttributeQuery((AttributeConstraint.at_least("cpu-ghz", 2.0),))
        )
    except KeyError as err:
        print(f"without the resolver, the raw service rejects it: {err}")


if __name__ == "__main__":
    main()
