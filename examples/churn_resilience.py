#!/usr/bin/env python3
"""Churn resilience demo (the paper's Section V-C, live).

Drives a LORM grid through an event-driven Poisson churn storm — nodes
joining and departing while queries keep arriving — and shows that:

* every query keeps resolving (the paper: "no failures in all test cases");
* answers remain exactly correct, because departing directory nodes hand
  their resource information to the new responsible node;
* hop counts barely move compared to the static network.

Run:  python examples/churn_resilience.py
"""

from __future__ import annotations

import numpy as np

from repro import LormService
from repro.sim.churn import ChurnProcess
from repro.sim.engine import Simulator
from repro.workloads.attributes import AttributeSchema
from repro.workloads.generator import GridWorkload, QueryKind

CHURN_RATE = 0.5  # joins/s and departures/s (paper's most aggressive R)
QUERY_RATE = 10.0  # requests per second
DURATION = 120.0  # simulated seconds


def main() -> None:
    schema = AttributeSchema.synthetic(12)
    service = LormService.build_full(5, schema, seed=3)
    workload = GridWorkload(schema, infos_per_attribute=80, seed=4)
    for info in workload.resource_infos():
        service.register(info, routed=False)
    print(f"LORM grid: {service.num_nodes()} nodes, "
          f"{service.total_info_pieces()} resource infos, "
          f"churn R={CHURN_RATE}/s, queries {QUERY_RATE}/s, "
          f"{DURATION:.0f}s simulated")

    # Static baseline for comparison.
    static_queries = list(workload.query_stream(200, 2, QueryKind.RANGE, label="static"))
    static_hops = float(np.mean(
        [service.multi_query(q).total_hops for q in static_queries]
    ))

    sim = Simulator()
    churn = ChurnProcess(rate=CHURN_RATE, rng=np.random.default_rng(5))
    events = churn.install(
        sim, DURATION, on_join=service.churn_join, on_leave=service.churn_leave
    )
    for t in np.arange(30.0, DURATION, 30.0):
        sim.schedule_at(float(t), service.stabilize, name="stabilize")

    hops: list[int] = []
    wrong = 0
    checked = 0
    queries = iter(workload.query_stream(
        int(DURATION * QUERY_RATE), 2, QueryKind.RANGE, label="churn"
    ))

    def fire_query() -> None:
        nonlocal wrong, checked
        query = next(queries)
        outcome = service.multi_query(query)
        hops.append(outcome.total_hops)
        checked += 1
        if outcome.providers != workload.matching_providers_bruteforce(query):
            wrong += 1

    t = 1.0 / QUERY_RATE
    while t < DURATION:
        sim.schedule_at(t, fire_query, name="query")
        t += 1.0 / QUERY_RATE

    sim.run()

    population_now = service.num_nodes()
    print(f"\nchurn events fired: {events} "
          f"(population now {population_now})")
    print(f"queries resolved: {checked}, wrong answers: {wrong}")
    print(f"avg hops under churn: {float(np.mean(hops)):.2f} "
          f"(static baseline: {static_hops:.2f})")
    drift = abs(float(np.mean(hops)) - static_hops) / static_hops
    print(f"=> dynamism changed lookup cost by {100 * drift:.1f}% — "
          f"consistent with the paper's Figure 6 observation")
    assert wrong == 0, "churn must never produce a wrong answer"


if __name__ == "__main__":
    main()
