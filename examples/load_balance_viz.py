#!/usr/bin/env python3
"""Visualising directory load: why SWORD hotspots and LORM doesn't.

Loads the identical Bounded-Pareto workload into all four approaches and
renders each overlay's directory load as ASCII topology maps — the
intuition behind the paper's Figure 3(b)/(c)/(d) in one screen:

* SWORD piles every attribute's ~k pieces on single ring nodes (spikes);
* MAAN adds a second value-spread copy on top of the same spikes;
* Mercury spreads by value: a flat ring;
* LORM stripes one attribute per Cycloid cluster, balanced inside it.

Run:  python examples/load_balance_viz.py
"""

from __future__ import annotations

from repro.experiments.common import build_services
from repro.experiments.config import PAPER_CONFIG
from repro.plotting.topology import render_cluster_grid, render_ring_load
from repro.sim.metrics import summarize


def main() -> None:
    config = PAPER_CONFIG.scaled(
        dimension=5, chord_bits=8, num_attributes=24, infos_per_attribute=64,
    )
    print(f"loading m={config.num_attributes} attributes x "
          f"k={config.infos_per_attribute} providers into all approaches ...\n")
    bundle = build_services(config)

    for service in (bundle.sword, bundle.maan, bundle.mercury):
        stats = summarize(service.directory_sizes())
        print(f"== {service.name}:  mean {stats.mean:.1f}  p99 {stats.p99:.0f} "
              f" max {stats.maximum:.0f}")
        print(render_ring_load(service.ring, width=64))
        print()

    stats = summarize(bundle.lorm.directory_sizes())
    print(f"== LORM:  mean {stats.mean:.1f}  p99 {stats.p99:.0f} "
          f" max {stats.maximum:.0f}")
    print(render_cluster_grid(bundle.lorm.overlay))


if __name__ == "__main__":
    main()
