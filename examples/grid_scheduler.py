#!/usr/bin/env python3
"""A mini grid job scheduler on top of LORM resource discovery.

The paper's introduction motivates resource discovery with grid schedulers
that must place jobs on machines satisfying multi-attribute requirements.
This example builds that application end-to-end:

1. a grid of heterogeneous machines registers CPU / memory / disk / cores
   with a LORM directory service;
2. a stream of jobs arrives, each with minimum-resource requirements;
3. the scheduler discovers candidate machines via multi-attribute range
   queries, picks the least-loaded candidate, and tracks its remaining
   capacity (re-registering updated availability, as the paper's nodes
   "report available resources periodically");
4. at the end it prints placement statistics and the discovery cost.

Run:  python examples/grid_scheduler.py
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import LormService
from repro.core.resource import AttributeConstraint, MultiAttributeQuery, ResourceInfo
from repro.workloads.attributes import AttributeSchema, AttributeSpec

SCHEMA = AttributeSchema(
    (
        AttributeSpec("cpu-mhz", 500.0, 4000.0),
        AttributeSpec("free-memory-mb", 256.0, 32768.0),
        AttributeSpec("disk-gb", 10.0, 2000.0),
        AttributeSpec("num-cores", 1.0, 64.0),
    )
)


#: Attributes a job consumes; the rest (CPU speed, core count, bandwidth)
#: are capability requirements that placement does not use up.
CONSUMABLE = frozenset({"free-memory-mb", "disk-gb"})


@dataclass
class Machine:
    """One grid machine and its (mutable) available resources."""

    address: str
    resources: dict[str, float]
    jobs: list[str] = field(default_factory=list)

    def can_host(self, demands: dict[str, float]) -> bool:
        return all(self.resources[a] >= v for a, v in demands.items())

    def allocate(self, demands: dict[str, float]) -> None:
        for attribute, amount in demands.items():
            if attribute in CONSUMABLE:
                self.resources[attribute] -= amount


@dataclass(frozen=True)
class Job:
    """A job with minimum resource demands."""

    name: str
    demands: dict[str, float]


class GridScheduler:
    """Discovers candidates through LORM and places jobs greedily."""

    def __init__(self, service: LormService, machines: dict[str, Machine]) -> None:
        self.service = service
        self.machines = machines
        self.placed: list[tuple[Job, str]] = []
        self.rejected: list[Job] = []
        self.discovery_hops = 0
        self.visited_nodes = 0

    def register_machine(self, machine: Machine) -> None:
        for attribute, value in machine.resources.items():
            self.service.register(ResourceInfo(attribute, value, machine.address))

    def refresh_machine(self, machine: Machine) -> None:
        """Periodic re-report of (reduced) availability after a placement."""
        for attribute, value in machine.resources.items():
            self.service.register(ResourceInfo(attribute, value, machine.address))

    def schedule(self, job: Job) -> str | None:
        """Discover candidates and place the job; returns the machine."""
        query = MultiAttributeQuery(
            tuple(
                AttributeConstraint.at_least(attribute, demand)
                for attribute, demand in sorted(job.demands.items())
            ),
            requester="scheduler",
        )
        result = self.service.multi_query(query)
        self.discovery_hops += result.total_hops
        self.visited_nodes += result.total_visited

        # The directory may hold slightly stale availability; re-validate
        # against the machine's live state, preferring the least loaded.
        candidates = [
            self.machines[address]
            for address in result.providers
            if self.machines[address].can_host(job.demands)
        ]
        if not candidates:
            self.rejected.append(job)
            return None
        winner = min(candidates, key=lambda m: len(m.jobs))
        winner.allocate(job.demands)
        winner.jobs.append(job.name)
        self.refresh_machine(winner)
        self.placed.append((job, winner.address))
        return winner.address


def main() -> None:
    rng = np.random.default_rng(11)
    service = LormService.build_full(5, SCHEMA, seed=11)

    machines = {}
    for i in range(60):
        address = f"grid-{i:03d}.cluster.edu"
        resources = {
            spec.name: float(spec.distribution.sample(rng)) for spec in SCHEMA
        }
        machines[address] = Machine(address, resources)

    scheduler = GridScheduler(service, machines)
    for machine in machines.values():
        scheduler.register_machine(machine)
    print(f"registered {len(machines)} machines x {len(SCHEMA)} attributes "
          f"on a {service.num_nodes()}-node LORM directory")

    # Job demands are drawn from the low quantiles of each attribute's
    # availability distribution, so most jobs have several candidate hosts
    # while big jobs (high quantiles) are genuinely hard to place.
    def demand(attribute: str, max_quantile: float) -> float:
        dist = SCHEMA.spec(attribute).distribution
        return float(dist.ppf(rng.uniform(0.0, max_quantile)))

    jobs = []
    for j in range(120):
        demands = {
            "cpu-mhz": demand("cpu-mhz", 0.35),
            "free-memory-mb": demand("free-memory-mb", 0.35),
        }
        if rng.random() < 0.5:
            demands["disk-gb"] = demand("disk-gb", 0.4)
        if rng.random() < 0.3:
            demands["num-cores"] = demand("num-cores", 0.4)
        jobs.append(Job(f"job-{j:03d}", demands))

    for job in jobs:
        scheduler.schedule(job)

    print(f"\nplaced {len(scheduler.placed)}/{len(jobs)} jobs "
          f"({len(scheduler.rejected)} unsatisfiable)")
    loads = [len(m.jobs) for m in machines.values()]
    print(f"machine load: max {max(loads)}, mean {np.mean(loads):.2f}")
    print(f"discovery cost: {scheduler.discovery_hops} hops, "
          f"{scheduler.visited_nodes} directory visits "
          f"({scheduler.visited_nodes / len(jobs):.1f} per job)")

    busiest = max(machines.values(), key=lambda m: len(m.jobs))
    print(f"busiest machine {busiest.address}: {len(busiest.jobs)} jobs, "
          f"{busiest.resources['free-memory-mb']:.0f} MB memory left")


if __name__ == "__main__":
    main()
