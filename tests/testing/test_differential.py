"""Tests for the differential replay harness and ``repro check``.

The monkeypatch tests are the harness's own acceptance criterion: a
deliberately reintroduced bug (the pre-fix ``repair_replication`` that
collapsed duplicate pieces, a service that lies about its result set, a
broken hop bound) must surface as a divergence, not pass silently.
"""

from __future__ import annotations

import dataclasses
from collections import Counter

from repro.baselines.sword import SwordService
from repro.overlay.chord import ChordRing
from repro.testing.differential import (
    ALL_SYSTEMS,
    Divergence,
    run_check,
    run_differential,
)


class TestRunDifferential:
    def test_fault_free_replay_is_oracle_exact(self):
        report = run_differential(num_queries=10)
        assert report.ok, report.render()
        assert set(report.stats) == set(ALL_SYSTEMS)
        assert all(st.queries == 10 for st in report.stats.values())

    def test_graceful_churn_stays_exact(self):
        ops = ("leave", "join", "stabilize", "leave", "stabilize")
        report = run_differential(num_queries=8, churn_ops=ops, expect="exact")
        assert report.ok, report.render()

    def test_crash_churn_is_subset_honest(self):
        report = run_differential(
            num_queries=8,
            churn_ops=("fail", "stabilize", "fail", "stabilize"),
            replication=2,
            expect="subset",
        )
        assert report.ok, report.render()

    def test_render_mentions_every_system(self):
        report = run_differential(num_queries=6)
        text = report.render()
        for name in ALL_SYSTEMS:
            assert name in text


class TestDivergenceDetection:
    def test_lying_result_set_is_flagged(self, monkeypatch):
        orig = SwordService.multi_query

        def lying(self, query, *args, **kwargs):
            result = orig(self, query, *args, **kwargs)
            if result.providers:
                return dataclasses.replace(
                    result,
                    providers=frozenset(sorted(result.providers)[1:]),
                )
            return result

        monkeypatch.setattr(SwordService, "multi_query", lying)
        report = run_differential(systems=("SWORD",), num_queries=12)
        assert not report.ok
        assert any(d.kind == "result-set" for d in report.divergences)

    def test_broken_hop_bound_is_flagged(self, monkeypatch):
        monkeypatch.setattr(
            SwordService, "structural_hop_bound", lambda self: 0
        )
        monkeypatch.setattr(
            SwordService, "max_visited_per_subquery", lambda self: 0
        )
        report = run_differential(systems=("SWORD",), num_queries=10)
        kinds = {d.kind for d in report.divergences}
        assert "hop-bound" in kinds
        assert "visited-bound" in kinds

    def test_reintroduced_repair_multiplicity_bug_is_caught(self, monkeypatch):
        # The pre-fix ChordRing.repair_replication: collapses duplicate
        # identical pieces to a single copy while re-placing replicas.
        def buggy_repair(self):
            surviving: dict[tuple[str, int], Counter] = {}
            for node in list(self.nodes()):
                for namespace, key_id, item in node.stored_entries():
                    bucket = surviving.setdefault((namespace, key_id), Counter())
                    bucket[item] = max(bucket[item], 1)
                node.clear_storage()
            moved = 0
            for (namespace, key_id), bucket in surviving.items():
                for holder in self.replica_set(key_id):
                    for item, count in bucket.items():
                        for _ in range(count):
                            holder.store(namespace, key_id, item)
                        moved += count
            if moved:
                self.network.count_maintenance(moved)
            return moved

        monkeypatch.setattr(ChordRing, "repair_replication", buggy_repair)
        report = run_check(seed=0, num_queries=9, churn_events=20)
        assert not report.ok
        assert any(
            d.kind == "invariant" and "conserve" in d.detail
            for d in report.divergences
        ), report.render()


class TestRunCheck:
    def test_seed_zero_check_passes(self, check_report):
        assert check_report.ok, check_report.render()
        assert check_report.storm_events > 0
        assert "result: OK" in check_report.render()

    def test_single_system_check(self):
        report = run_check(systems=("LORM",), seed=3, num_queries=9, churn_events=10)
        assert report.ok, report.render()

    def test_divergence_render(self):
        d = Divergence(
            system="MAAN", kind="hop-bound", detail="too many hops", query_index=4
        )
        text = d.render()
        assert "MAAN" in text and "hop-bound" in text and "query #4" in text
