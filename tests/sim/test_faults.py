"""Tests for the fault-injection layer (plans, injector, delivery policy)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.faults import (
    DEFAULT_POLICY,
    NO_RETRY_POLICY,
    ArcPartition,
    CrashStorm,
    FaultInjector,
    FaultPlan,
    LookupPolicy,
    deliver_first,
)
from repro.sim.network import SimulatedNetwork


class TestArcPartition:
    def test_contains_plain_arc(self):
        p = ArcPartition(10, 20, space=64)
        assert p.contains(10) and p.contains(15) and p.contains(20)
        assert not p.contains(9) and not p.contains(21)

    def test_contains_wrapping_arc(self):
        p = ArcPartition(60, 4, space=64)
        assert p.contains(62) and p.contains(0) and p.contains(4)
        assert not p.contains(5) and not p.contains(59)

    def test_ids_wrap_into_space(self):
        p = ArcPartition(10, 20, space=64)
        assert p.contains(64 + 15)

    def test_severs_only_across_the_cut(self):
        p = ArcPartition(10, 20, space=64)
        assert p.severs(15, 40) and p.severs(40, 15)
        assert not p.severs(12, 18)  # both inside
        assert not p.severs(30, 50)  # both outside

    def test_unknown_endpoints_never_sever(self):
        p = ArcPartition(10, 20, space=64)
        assert not p.severs(None, 40)
        assert not p.severs(15, None)

    def test_invalid_space_rejected(self):
        with pytest.raises(ValueError):
            ArcPartition(0, 1, space=0)


class TestFaultPlan:
    def test_null_plan_is_identity(self):
        assert FaultPlan().is_null

    def test_any_fault_source_breaks_nullness(self):
        assert not FaultPlan(loss_rate=0.1).is_null
        assert not FaultPlan(partitions=(ArcPartition(0, 1, 8),)).is_null
        assert not FaultPlan(crash_storms=(CrashStorm(1.0, 2),)).is_null

    def test_loss_rate_bounds(self):
        with pytest.raises(ValueError):
            FaultPlan(loss_rate=1.0)
        with pytest.raises(ValueError):
            FaultPlan(loss_rate=-0.1)

    def test_storm_validation(self):
        with pytest.raises(ValueError):
            CrashStorm(at=1.0, count=0)
        with pytest.raises(ValueError):
            CrashStorm(at=-1.0, count=1)


class TestFaultInjector:
    def test_null_plan_inactive(self):
        injector = FaultInjector(FaultPlan())
        assert not injector.active
        assert injector.delivered(1, 2)

    def test_disabled_injector_delivers_everything(self):
        injector = FaultInjector(FaultPlan(loss_rate=0.9))
        injector.enabled = False
        assert not injector.active
        assert all(injector.delivered(1, 2) for _ in range(100))

    def test_loss_stream_reproducible(self):
        """Fresh injectors from one plan replay the identical drop pattern."""
        plan = FaultPlan(loss_rate=0.3, seed=42)
        a, b = FaultInjector(plan), FaultInjector(plan)
        assert [a.delivered(0, 1) for _ in range(200)] == [
            b.delivered(0, 1) for _ in range(200)
        ]

    def test_loss_rate_statistics(self):
        injector = FaultInjector(FaultPlan(loss_rate=0.25, seed=7))
        n = 4000
        delivered = sum(injector.delivered(0, 1) for _ in range(n))
        assert delivered / n == pytest.approx(0.75, abs=0.03)

    def test_partition_deterministic_and_healable(self):
        injector = FaultInjector(FaultPlan())
        assert not injector.active
        injector.arm_partition(ArcPartition(0, 31, space=256))
        assert injector.active
        assert not injector.delivered(10, 100)
        assert injector.delivered(10, 20)
        assert injector.delivered(100, 200)
        injector.heal_partitions()
        assert not injector.active
        assert injector.delivered(10, 100)

    def test_disarm_partition_heals_one_while_others_stay(self):
        first = ArcPartition(0, 31, space=256)
        second = ArcPartition(128, 159, space=256)
        injector = FaultInjector(FaultPlan())
        injector.arm_partition(first)
        injector.arm_partition(second)
        assert not injector.delivered(10, 100)
        assert not injector.delivered(140, 100)
        assert injector.disarm_partition(first)
        assert injector.delivered(10, 100)  # first split healed...
        assert not injector.delivered(140, 100)  # ...second still armed
        assert injector.partitions == (second,)
        assert injector.active

    def test_disarm_unknown_partition_returns_false(self):
        injector = FaultInjector(FaultPlan())
        assert not injector.disarm_partition(ArcPartition(0, 1, space=8))

    def test_set_loss_rate_overrides_and_resets(self):
        injector = FaultInjector(FaultPlan(loss_rate=0.0, seed=3))
        assert not injector.active
        injector.set_loss_rate(0.9)
        assert injector.active
        assert injector.loss_rate == 0.9
        delivered = sum(injector.delivered(0, 1) for _ in range(200))
        assert delivered < 60  # heavy loss actually applies
        injector.reset_loss_rate()
        assert injector.loss_rate == 0.0
        assert not injector.active
        assert all(injector.delivered(0, 1) for _ in range(50))

    def test_set_loss_rate_validated(self):
        injector = FaultInjector(FaultPlan())
        with pytest.raises(ValueError):
            injector.set_loss_rate(1.0)
        with pytest.raises(ValueError):
            injector.set_loss_rate(-0.1)

    def test_external_rng_accepted(self):
        injector = FaultInjector(
            FaultPlan(loss_rate=0.5), rng=np.random.default_rng(5)
        )
        reference = np.random.default_rng(5)
        got = [injector.delivered(0, 1) for _ in range(50)]
        want = [float(reference.random()) >= 0.5 for _ in range(50)]
        assert got == want

    def test_install_storms(self):
        injector = FaultInjector(
            FaultPlan(crash_storms=(CrashStorm(1.0, 3), CrashStorm(2.5, 2)))
        )
        sim = Simulator()
        crashed = []
        scheduled = injector.install_storms(sim, lambda: crashed.append(sim.now))
        assert scheduled == 5
        sim.run()
        assert crashed == [1.0, 1.0, 1.0, 2.5, 2.5]


class TestLookupPolicy:
    def test_defaults(self):
        assert DEFAULT_POLICY.max_retries == 2
        assert DEFAULT_POLICY.successor_failover
        assert DEFAULT_POLICY.finger_fallback

    def test_no_retry_policy_is_brittle(self):
        assert NO_RETRY_POLICY.max_retries == 0
        assert not NO_RETRY_POLICY.successor_failover
        assert not NO_RETRY_POLICY.finger_fallback

    def test_backoff_schedule(self):
        policy = LookupPolicy(backoff_base=0.1, backoff_factor=2.0)
        assert policy.backoff_for(1) == pytest.approx(0.1)
        assert policy.backoff_for(2) == pytest.approx(0.2)
        assert policy.backoff_for(3) == pytest.approx(0.4)

    def test_validation(self):
        with pytest.raises(ValueError):
            LookupPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            LookupPolicy(timeout=0.0)
        with pytest.raises(ValueError):
            LookupPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            LookupPolicy(hop_budget=0)


class TestDeliverFirst:
    def _network(self, injector=None) -> SimulatedNetwork:
        return SimulatedNetwork(faults=injector)

    def test_no_faults_is_exact_identity(self):
        network = self._network()
        node, retries, skipped = deliver_first(
            network, 0, [(1, "a"), (2, "b")], DEFAULT_POLICY
        )
        assert (node, retries, skipped) == ("a", 0, 0)
        assert network.stats == SimulatedNetwork().stats  # nothing counted

    def test_empty_candidates(self):
        assert deliver_first(self._network(), 0, [], DEFAULT_POLICY) == (None, 0, 0)

    def test_partition_forces_failover(self):
        injector = FaultInjector(
            FaultPlan(partitions=(ArcPartition(100, 120, space=256),))
        )
        network = self._network(injector)
        # First candidate is across the cut, second is on our side.
        node, retries, skipped = deliver_first(
            network, 10, [(110, "cut"), (50, "near")], DEFAULT_POLICY
        )
        assert node == "near"
        assert skipped == 1
        assert retries == DEFAULT_POLICY.max_retries  # burnt on the cut one
        assert network.stats.dropped == DEFAULT_POLICY.max_retries + 1
        assert network.stats.timeouts == DEFAULT_POLICY.max_retries + 1
        assert network.stats.routing_hops == 0  # hops belong to movement

    def test_all_candidates_unreachable(self):
        injector = FaultInjector(
            FaultPlan(partitions=(ArcPartition(100, 120, space=256),))
        )
        network = self._network(injector)
        node, retries, skipped = deliver_first(
            network, 10, [(110, "a"), (115, "b")], NO_RETRY_POLICY
        )
        assert node is None
        assert retries == 0
        assert skipped == 2
        assert network.stats.timeouts == 2

    def test_retry_absorbs_transient_loss(self):
        # Seed 8 is pinned so the first draw drops and the second delivers.
        plan = FaultPlan(loss_rate=0.5, seed=8)
        probe = FaultInjector(plan)
        assert [probe.delivered(0, 1) for _ in range(2)] == [False, True]
        network = self._network(FaultInjector(plan))
        node, retries, skipped = deliver_first(
            network, 0, [(1, "a")], DEFAULT_POLICY
        )
        assert node == "a"
        assert retries == 1
        assert skipped == 0
        assert network.stats.backoff_seconds == pytest.approx(
            DEFAULT_POLICY.backoff_for(1)
        )
