"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for tag in "abc":
            sim.schedule(1.0, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        times = []
        sim.schedule(2.5, lambda: times.append(sim.now))
        sim.run()
        assert times == [2.5]
        assert sim.now == 2.5

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)

    def test_schedule_at_past_error_names_both_times(self):
        sim = Simulator()
        sim.run_until(4.0)
        with pytest.raises(ValueError, match=r"t=1.5.*now=4.0"):
            sim.schedule_at(1.5, lambda: None)

    def test_schedule_at_nan_rejected(self):
        # A NaN timestamp would silently corrupt the heap ordering.
        with pytest.raises(ValueError):
            Simulator().schedule_at(float("nan"), lambda: None)

    def test_schedule_at_current_instant_fires_after_earlier_peers(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(0.0, lambda: fired.append("first"))
        sim.schedule_at(0.0, lambda: fired.append("second"))
        sim.run()
        assert fired == ["first", "second"]

    def test_actions_can_schedule_more_events(self):
        sim = Simulator()
        fired = []

        def chain(n: int) -> None:
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, lambda: chain(n + 1))

        sim.schedule(0.0, lambda: chain(0))
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 3.0


class TestRunModes:
    def test_run_returns_fired_count(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        assert sim.run() == 5

    def test_run_max_events(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        assert sim.run(max_events=2) == 2
        assert sim.pending == 3

    def test_run_until_stops_at_boundary(self):
        sim = Simulator()
        fired = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda t=t: fired.append(t))
        assert sim.run_until(2.0) == 2
        assert fired == [1.0, 2.0]
        assert sim.now == 2.0

    def test_run_until_advances_clock_without_events(self):
        sim = Simulator()
        sim.run_until(7.0)
        assert sim.now == 7.0

    def test_step_on_empty_returns_none(self):
        assert Simulator().step() is None


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule(1.0, lambda: fired.append("x"))
        sim.cancel(event)
        sim.run()
        assert fired == []

    def test_cancel_counts_not_processed(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.cancel(event)
        assert sim.run() == 1
        assert sim.events_processed == 1

    def test_run_until_skips_cancelled_head(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.cancel(event)
        assert sim.run_until(5.0) == 0

    def test_cancel_after_fire_is_noop(self):
        # A stale cancel must not tombstone anything still pending.
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 1
        sim.cancel(event)  # already fired — no-op
        sim.schedule(1.0, lambda: None)
        assert sim.run() == 1
        assert sim.events_processed == 2

    def test_double_cancel_is_noop(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        sim.cancel(event)
        sim.cancel(event)
        sim.schedule(2.0, lambda: None)
        assert sim.run() == 1
        assert sim.events_processed == 1

    def test_cancel_preserves_same_timestamp_ordering(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        middle = sim.schedule(1.0, lambda: fired.append("b"))
        sim.schedule(1.0, lambda: fired.append("c"))
        sim.cancel(middle)
        sim.run()
        assert fired == ["a", "c"]

    def test_no_tombstone_accumulation_across_long_runs(self):
        sim = Simulator()
        for i in range(50):
            event = sim.schedule(float(i), lambda: None)
            if i % 2:
                sim.cancel(event)
        sim.run()
        assert sim.events_processed == 25
        assert sim._cancelled == set()
        assert sim._pending == set()
