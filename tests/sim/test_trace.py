"""Tests for the trace recorder."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.trace import TraceEvent, TraceEventKind, TraceRecorder


class TestRecording:
    def test_record_and_retrieve(self):
        tracer = TraceRecorder()
        tracer.record("lookup", "node-1", hops=5)
        [event] = tracer.events("lookup")
        assert event.subject == "node-1"
        assert event.detail == {"hops": 5}

    def test_kind_accepts_enum_and_string(self):
        tracer = TraceRecorder()
        tracer.record(TraceEventKind.JOIN, "a")
        tracer.record("join", "b")
        assert len(tracer.events("join")) == 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder().record("teleport", "x")

    def test_mutate_after_record_leaves_history_frozen(self):
        """Regression: detail values used to be stored by reference, so a
        caller mutating a list/dict it passed in silently rewrote the
        recorded history."""
        tracer = TraceRecorder()
        path = [0, 3]
        meta = {"stage": "walk"}
        tracer.record("lookup", "n0", path=path, meta=meta)
        path.append(7)
        meta["stage"] = "done"
        [event] = tracer.events("lookup")
        assert event.detail["path"] == [0, 3]
        assert event.detail["meta"] == {"stage": "walk"}

    def test_clock_integration(self):
        sim = Simulator()
        tracer = TraceRecorder(clock=lambda: sim.now)
        sim.schedule(2.5, lambda: tracer.record("query", "q1"))
        sim.run()
        assert tracer.last("query").time == 2.5

    def test_len_and_iter(self):
        tracer = TraceRecorder()
        for i in range(4):
            tracer.record("store", f"k{i}")
        assert len(tracer) == 4
        assert [e.subject for e in tracer] == ["k0", "k1", "k2", "k3"]


class TestBounding:
    def test_ring_buffer_drops_oldest(self):
        tracer = TraceRecorder(capacity=3)
        for i in range(5):
            tracer.record("store", f"k{i}")
        assert [e.subject for e in tracer] == ["k2", "k3", "k4"]
        assert tracer.dropped == 2

    def test_counts_include_dropped(self):
        tracer = TraceRecorder(capacity=2)
        for _ in range(5):
            tracer.record("leave", "x")
        assert tracer.count("leave") == 5

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TraceRecorder(capacity=0)


class TestFiltering:
    def test_filter_by_subject(self):
        tracer = TraceRecorder()
        tracer.record("lookup", "a")
        tracer.record("lookup", "b")
        assert len(tracer.events(subject="a")) == 1

    def test_last_none_when_empty(self):
        assert TraceRecorder().last() is None

    def test_clear_keeps_counts(self):
        tracer = TraceRecorder()
        tracer.record("fail", "n")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.count("fail") == 1


class TestFormatting:
    def test_format_line(self):
        event = TraceEvent(TraceEventKind.LOOKUP, 1.5, "n3", {"hops": 7})
        line = event.format()
        assert "lookup" in line and "n3" in line and "hops=7" in line

    def test_dump_multiline(self):
        tracer = TraceRecorder()
        tracer.record("join", "a")
        tracer.record("leave", "b")
        assert len(tracer.dump().splitlines()) == 2
