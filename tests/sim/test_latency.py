"""Tests for latency models, RTT estimation and critical-path latency."""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np
import pytest

from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.latency import (
    BoundedParetoLatency,
    ConstantLatency,
    LognormalLatency,
    RttBook,
    RttEstimator,
    critical_path_latency,
)
from repro.sim.network import SimulatedNetwork


class TestConstantLatency:
    def test_sample_is_the_constant(self):
        model = ConstantLatency(0.05)
        assert all(model.sample() == 0.05 for _ in range(10))

    def test_route_reproduces_seed_expression(self):
        # Byte-identical to the seed's ``hops * hop_latency``.
        assert ConstantLatency(0.05).route(7) == 7 * 0.05

    def test_mean(self):
        assert ConstantLatency(0.08).mean() == 0.08

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantLatency(0.0)


class TestLognormalLatency:
    def test_seeded_stream_reproducible(self):
        a = LognormalLatency(median=0.05, seed=11)
        b = LognormalLatency(median=0.05, seed=11)
        assert [a.sample() for _ in range(50)] == [b.sample() for _ in range(50)]

    def test_sigma_zero_degenerates_to_the_median(self):
        model = LognormalLatency(median=0.05, sigma=0.0, seed=1)
        assert all(model.sample() == pytest.approx(0.05) for _ in range(10))

    def test_analytic_mean_matches_empirical(self):
        model = LognormalLatency(median=0.05, sigma=0.5, seed=3)
        draws = [model.sample() for _ in range(20000)]
        assert np.mean(draws) == pytest.approx(model.mean(), rel=0.05)

    def test_route_sums_hops(self):
        model = LognormalLatency(median=0.05, sigma=0.35, seed=5)
        assert model.route(0) == 0.0
        total = model.route(2000)
        assert total == pytest.approx(2000 * model.mean(), rel=0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            LognormalLatency(median=0.0)
        with pytest.raises(ValueError):
            LognormalLatency(median=0.05, sigma=-0.1)


class TestBoundedParetoLatency:
    def test_samples_respect_the_bounds(self):
        model = BoundedParetoLatency(alpha=2.0, low=0.01, high=1.0, seed=7)
        draws = [model.sample() for _ in range(500)]
        assert all(0.01 <= d <= 1.0 for d in draws)

    def test_seeded_stream_reproducible(self):
        a = BoundedParetoLatency(alpha=2.0, low=0.01, high=1.0, seed=9)
        b = BoundedParetoLatency(alpha=2.0, low=0.01, high=1.0, seed=9)
        assert [a.sample() for _ in range(20)] == [b.sample() for _ in range(20)]

    def test_route_zero_hops(self):
        model = BoundedParetoLatency(alpha=2.0, low=0.01, high=1.0, seed=1)
        assert model.route(0) == 0.0


class TestRttEstimator:
    def test_first_observation_initialises_jacobson_state(self):
        est = RttEstimator()
        est.observe(0.1)
        assert est.srtt == pytest.approx(0.1)
        assert est.rttvar == pytest.approx(0.05)

    def test_timeout_falls_back_before_any_sample(self):
        assert RttEstimator().timeout(0.5) == 0.5

    def test_quantiles_need_min_samples(self):
        est = RttEstimator(min_samples=4)
        for _ in range(3):
            est.observe(0.1)
        assert not est.ready
        assert est.quantile_estimate(0.95) is None
        est.observe(0.1)
        assert est.ready
        assert est.quantile_estimate(0.95) == pytest.approx(0.1)

    def test_timeout_tightens_on_a_stable_stream(self):
        est = RttEstimator()
        for _ in range(20):
            est.observe(0.1)
        # Stable 100ms RTTs must pull the timeout well under a fixed 1s.
        assert est.timeout(1.0) < 0.2

    def test_timeout_never_exceeds_the_fallback(self):
        est = RttEstimator()
        for _ in range(20):
            est.observe(5.0)
        assert est.timeout(0.5) == 0.5

    def test_timeout_floor(self):
        est = RttEstimator(floor=0.01)
        for _ in range(20):
            est.observe(1e-9)
        assert est.timeout(0.5) == 0.01

    def test_reset_forgets_everything(self):
        est = RttEstimator()
        for _ in range(20):
            est.observe(0.1)
        est.reset()
        assert est.srtt is None
        assert est.samples_seen == 0
        assert est.timeout(0.5) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            RttEstimator(alpha=0.0)
        with pytest.raises(ValueError):
            RttEstimator(window=1)


class TestRttBook:
    def test_observations_feed_requester_and_aggregate(self):
        book = RttBook()
        view = book.for_requester(1)
        view.observe(0.1)
        assert book.estimator(1).samples_seen == 1
        assert book.aggregate.samples_seen == 1

    def test_cold_requester_defends_from_the_aggregate(self):
        book = RttBook(min_samples=4)
        for _ in range(10):
            book.for_requester(1).observe(0.1)
        # Requester 2 has no samples of its own but inherits the
        # population-wide picture instead of flying blind.
        assert book.for_requester(2).timeout(1.0) < 0.2
        assert book.for_requester(2).hedge_delay(0.95) == pytest.approx(0.1)

    def test_warm_requester_prefers_its_own_estimator(self):
        book = RttBook(min_samples=2)
        for _ in range(10):
            book.for_requester(1).observe(1.0)
        for _ in range(10):
            book.for_requester(2).observe(0.01)
        assert book.for_requester(2).hedge_delay(0.95) == pytest.approx(0.01)

    def test_requesters_and_reset(self):
        book = RttBook()
        book.for_requester(3).observe(0.1)
        assert book.requesters == (3,)
        book.reset()
        assert book.requesters == ()
        assert book.aggregate.samples_seen == 0


class TestNetworkLatencySampling:
    def test_no_model_keeps_latency_counters_zero(self):
        injector = FaultInjector(FaultPlan(loss_rate=0.3, seed=1))
        net = SimulatedNetwork(faults=injector)
        for _ in range(50):
            net.try_deliver(0, 1)
        assert net.stats.latency_seconds == 0.0
        assert net.last_latency == 0.0

    def test_no_active_faults_is_the_fast_path(self):
        # A model alone (no injector) must not draw any randomness.
        net = SimulatedNetwork(latency_model=LognormalLatency(0.05, seed=2))
        state = net.latency_model.rng.bit_generator.state
        assert net.try_deliver(0, 1)
        assert net.stats.latency_seconds == 0.0
        assert net.latency_model.rng.bit_generator.state == state

    def test_delivered_messages_sample_the_model(self):
        injector = FaultInjector(FaultPlan(seed=1))
        injector.mark_slow(99, 2.0)  # activates the injector; dst 1 healthy
        net = SimulatedNetwork(
            faults=injector, latency_model=ConstantLatency(0.05)
        )
        assert net.try_deliver(0, 1)
        assert net.last_latency == pytest.approx(0.05)
        assert net.stats.latency_seconds == pytest.approx(0.05)

    def test_slow_destination_multiplies_the_sample(self):
        injector = FaultInjector(FaultPlan(seed=1))
        injector.mark_slow(1, 10.0)  # persistent (intermittency 1.0)
        net = SimulatedNetwork(
            faults=injector, latency_model=ConstantLatency(0.05)
        )
        assert net.try_deliver(0, 1)
        assert net.last_latency == pytest.approx(0.5)

    def test_count_hedge_accounting(self):
        net = SimulatedNetwork()
        net.count_hedge(won=True)
        net.count_hedge(won=False)
        net.count_hedge(won=False, delivered=False)
        assert net.stats.hedges == 3
        assert net.stats.hedges_won == 1
        assert net.stats.hedges_cancelled == 2
        assert net.stats.messages == 2  # dropped backup already counted

    def test_reset_keeps_rtt_state(self):
        net = SimulatedNetwork()
        net.rtt_for(5).observe(0.1)
        net.route_clock = 3.0
        net.reset()
        assert net.route_clock == 0.0
        assert net.rtt.estimator(5).samples_seen == 1
        net.reset_rtt()
        assert net.rtt.requesters == ()


class TestCriticalPathLatency:
    @staticmethod
    def _result(*subs):
        return SimpleNamespace(sub_results=subs)

    def test_constant_model_reproduces_seed_expression(self):
        result = self._result(
            SimpleNamespace(latency=0.0, hops=3),
            SimpleNamespace(latency=0.0, hops=7),
        )
        assert critical_path_latency(result, ConstantLatency(0.05)) == 7 * 0.05

    def test_measured_latencies_take_precedence(self):
        result = self._result(
            SimpleNamespace(latency=1.25, hops=3),
            SimpleNamespace(latency=0.0, hops=2),
        )
        assert critical_path_latency(result, ConstantLatency(0.05)) == 1.25

    def test_empty_result(self):
        assert critical_path_latency(self._result(), ConstantLatency(0.05)) == 0.0
