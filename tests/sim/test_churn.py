"""Tests for the Poisson churn process (Section V-C)."""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.sim.churn import ChurnEvent, ChurnEventKind, ChurnProcess
from repro.sim.engine import Simulator


def make_process(rate: float = 0.4, seed: int = 0) -> ChurnProcess:
    return ChurnProcess(rate=rate, rng=np.random.default_rng(seed))


class TestEventGeneration:
    def test_events_time_ordered(self):
        events = make_process().events_until(200.0)
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_events_within_horizon(self):
        events = make_process().events_until(50.0)
        assert all(0 < e.time < 50.0 for e in events)

    def test_rate_matches_poisson_expectation(self):
        """At R=0.4 over 2000s, each stream fires ~800 times (±5 sigma)."""
        events = make_process(rate=0.4, seed=1).events_until(2000.0)
        joins = sum(1 for e in events if e.kind is ChurnEventKind.JOIN)
        leaves = len(events) - joins
        for count in (joins, leaves):
            assert abs(count - 800) < 5 * np.sqrt(800)

    def test_paper_example_rate(self):
        """R=0.4 means ~one join AND one leave every 2.5 s, the paper's
        example."""
        events = make_process(rate=0.4, seed=2).events_until(1000.0)
        joins = [e for e in events if e.kind is ChurnEventKind.JOIN]
        mean_gap = np.mean(np.diff([0.0] + [e.time for e in joins]))
        assert 2.0 < mean_gap < 3.1

    def test_reproducible(self):
        a = make_process(seed=7).events_until(100.0)
        b = make_process(seed=7).events_until(100.0)
        assert a == b

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            make_process(rate=0.0)


class TestStream:
    def test_stream_matches_kind_mix(self):
        stream = make_process(seed=3).stream()
        first = list(itertools.islice(stream, 200))
        kinds = {e.kind for e in first}
        assert kinds == {ChurnEventKind.JOIN, ChurnEventKind.LEAVE}

    def test_stream_time_ordered(self):
        stream = make_process(seed=4).stream()
        times = [e.time for e in itertools.islice(stream, 300)]
        assert times == sorted(times)


class TestInstall:
    def test_installs_all_events_on_simulator(self):
        sim = Simulator()
        joins, leaves = [], []
        process = make_process(rate=1.0, seed=5)
        count = process.install(
            sim, 100.0, on_join=lambda: joins.append(sim.now),
            on_leave=lambda: leaves.append(sim.now),
        )
        fired = sim.run()
        assert fired == count
        assert len(joins) + len(leaves) == count
        assert joins and leaves

    def test_event_dataclass_fields(self):
        e = ChurnEvent(1.5, ChurnEventKind.LEAVE)
        assert e.time == 1.5
        assert e.kind.value == "leave"


class TestDeterminism:
    """One seeded process is one reality, whichever way it is consumed."""

    def test_stream_and_events_until_agree(self):
        """events_until must be exactly a bounded prefix of stream() —
        both entry points consume the RNG identically."""
        horizon = 150.0
        batched = make_process(seed=11).events_until(horizon)
        streamed = []
        for event in make_process(seed=11).stream():
            if event.time >= horizon:
                break
            streamed.append(event)
        assert batched == streamed

    def test_events_until_is_prefix_of_longer_horizon(self):
        short = make_process(seed=12).events_until(50.0)
        long = make_process(seed=12).events_until(200.0)
        assert long[: len(short)] == short

    def test_install_schedules_in_event_order(self):
        sim = Simulator()
        fired: list[tuple[float, ChurnEventKind]] = []
        process = make_process(rate=1.0, seed=13)
        expected = make_process(rate=1.0, seed=13).events_until(80.0)
        process.install(
            sim, 80.0,
            on_join=lambda: fired.append((sim.now, ChurnEventKind.JOIN)),
            on_leave=lambda: fired.append((sim.now, ChurnEventKind.LEAVE)),
        )
        sim.run()
        assert fired == [(e.time, e.kind) for e in expected]
