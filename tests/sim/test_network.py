"""Tests for message/hop accounting."""

from __future__ import annotations

import pytest

from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.network import MessageStats, SimulatedNetwork


class TestCounting:
    def test_hops_count_as_messages(self):
        net = SimulatedNetwork()
        net.count_hop(3)
        assert net.stats.routing_hops == 3
        assert net.stats.messages == 3

    def test_directory_checks_are_not_messages(self):
        net = SimulatedNetwork()
        net.count_directory_check(5)
        assert net.stats.directory_checks == 5
        assert net.stats.messages == 0

    def test_maintenance_counts_as_messages(self):
        net = SimulatedNetwork()
        net.count_maintenance(4)
        assert net.stats.maintenance_messages == 4
        assert net.stats.messages == 4

    def test_reset(self):
        net = SimulatedNetwork()
        net.count_hop()
        net.reset()
        assert net.stats.messages == 0

    def test_dropped_messages_count_as_messages(self):
        net = SimulatedNetwork(faults=FaultInjector(FaultPlan(loss_rate=0.5, seed=3)))
        for _ in range(200):
            net.try_deliver(0, 1)
        # A dropped message was sent and cost bandwidth: it counts toward
        # ``messages`` (and ``dropped``) but never toward ``routing_hops``.
        assert net.stats.dropped > 0
        assert net.stats.messages == net.stats.dropped
        assert net.stats.routing_hops == 0

    def test_delivered_messages_not_counted_by_try_deliver(self):
        # Successful deliveries are counted by the caller (count_hop /
        # count_maintenance), so try_deliver itself must not double-count.
        net = SimulatedNetwork()
        assert net.try_deliver(0, 1)
        assert net.stats.messages == 0
        assert net.stats.dropped == 0


class TestSnapshots:
    def test_snapshot_is_independent(self):
        net = SimulatedNetwork()
        net.count_hop()
        snap = net.stats.snapshot()
        net.count_hop()
        assert snap.routing_hops == 1
        assert net.stats.routing_hops == 2

    def test_delta_since(self):
        net = SimulatedNetwork()
        net.count_hop(2)
        before = net.stats.snapshot()
        net.count_hop(3)
        net.count_maintenance(1)
        delta = net.stats.delta_since(before)
        assert delta.routing_hops == 3
        assert delta.maintenance_messages == 1

    def test_default_stats_zero(self):
        assert MessageStats().messages == 0


class TestLatency:
    def test_latency_linear_in_hops(self):
        net = SimulatedNetwork(hop_latency=0.1)
        assert net.latency_of(5) == pytest.approx(0.5)

    def test_invalid_latency_rejected(self):
        with pytest.raises(ValueError):
            SimulatedNetwork(hop_latency=0.0)


class TestPublishStats:
    """Regression: zero-valued fields are published, not skipped."""

    def _registry(self):
        from repro.sim.metrics import MetricsRegistry

        return MetricsRegistry()

    def test_all_fields_published_including_zeros(self):
        registry = self._registry()
        net = SimulatedNetwork()
        net.count_hop(3)  # leaves retries/timeouts/... at zero
        net.publish_stats(registry)
        expected = {f"network.{name}" for name in MessageStats().as_dict()}
        assert set(registry.counter_names) == expected
        assert registry.counter("network.retries") == 0
        assert registry.counter("network.routing_hops") == 3

    def test_fresh_window_publishes_full_counter_set(self):
        # A window with no traffic at all still yields every counter, so
        # report tables can tell "measured zero" from "never measured".
        registry = self._registry()
        net = SimulatedNetwork()
        delta = net.stats.delta_since(MessageStats())
        from repro.sim.network import publish_stats

        publish_stats(delta, registry, prefix="window")
        assert len(registry.counter_names) == len(MessageStats().as_dict())
        assert registry.counter("window.messages") == 0

    def test_values_accumulate_across_windows(self):
        registry = self._registry()
        net = SimulatedNetwork()
        net.count_retry(0.5)
        net.publish_stats(registry)
        net.publish_stats(registry)
        assert registry.counter("network.retries") == 2
        assert registry.counter("network.backoff_seconds") == 1.0
