"""Tests for message/hop accounting."""

from __future__ import annotations

import pytest

from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.network import MessageStats, SimulatedNetwork


class TestCounting:
    def test_hops_count_as_messages(self):
        net = SimulatedNetwork()
        net.count_hop(3)
        assert net.stats.routing_hops == 3
        assert net.stats.messages == 3

    def test_directory_checks_are_not_messages(self):
        net = SimulatedNetwork()
        net.count_directory_check(5)
        assert net.stats.directory_checks == 5
        assert net.stats.messages == 0

    def test_maintenance_counts_as_messages(self):
        net = SimulatedNetwork()
        net.count_maintenance(4)
        assert net.stats.maintenance_messages == 4
        assert net.stats.messages == 4

    def test_reset(self):
        net = SimulatedNetwork()
        net.count_hop()
        net.reset()
        assert net.stats.messages == 0

    def test_dropped_messages_count_as_messages(self):
        net = SimulatedNetwork(faults=FaultInjector(FaultPlan(loss_rate=0.5, seed=3)))
        for _ in range(200):
            net.try_deliver(0, 1)
        # A dropped message was sent and cost bandwidth: it counts toward
        # ``messages`` (and ``dropped``) but never toward ``routing_hops``.
        assert net.stats.dropped > 0
        assert net.stats.messages == net.stats.dropped
        assert net.stats.routing_hops == 0

    def test_delivered_messages_not_counted_by_try_deliver(self):
        # Successful deliveries are counted by the caller (count_hop /
        # count_maintenance), so try_deliver itself must not double-count.
        net = SimulatedNetwork()
        assert net.try_deliver(0, 1)
        assert net.stats.messages == 0
        assert net.stats.dropped == 0


class TestSnapshots:
    def test_snapshot_is_independent(self):
        net = SimulatedNetwork()
        net.count_hop()
        snap = net.stats.snapshot()
        net.count_hop()
        assert snap.routing_hops == 1
        assert net.stats.routing_hops == 2

    def test_delta_since(self):
        net = SimulatedNetwork()
        net.count_hop(2)
        before = net.stats.snapshot()
        net.count_hop(3)
        net.count_maintenance(1)
        delta = net.stats.delta_since(before)
        assert delta.routing_hops == 3
        assert delta.maintenance_messages == 1

    def test_default_stats_zero(self):
        assert MessageStats().messages == 0


class TestLatency:
    def test_latency_linear_in_hops(self):
        net = SimulatedNetwork(hop_latency=0.1)
        assert net.latency_of(5) == pytest.approx(0.5)

    def test_invalid_latency_rejected(self):
        with pytest.raises(ValueError):
            SimulatedNetwork(hop_latency=0.0)
