"""Tests for the fail-slow fault model: gray nodes, degraded links and
the latency-aware delivery loop (adaptive timeouts, hedging, Karn's rule).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.sim.faults import (
    ADAPTIVE_POLICY,
    DEFAULT_POLICY,
    HEDGED_POLICY,
    DegradedLink,
    FaultInjector,
    FaultPlan,
    LookupPolicy,
    SlowNode,
    deliver_first,
)
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.network import SimulatedNetwork


class ScriptedLatency(LatencyModel):
    """Plays back a scripted list of per-message samples."""

    def __init__(self, samples):
        self._samples = list(samples)
        self.rng = np.random.default_rng(0)

    def sample(self) -> float:
        return self._samples.pop(0)

    def route(self, hops: int) -> float:
        return 0.05 * hops

    def mean(self) -> float:
        return 0.05


class TestFailSlowSpecs:
    def test_slow_node_validation(self):
        with pytest.raises(ValueError):
            SlowNode(1, multiplier=0.5)
        with pytest.raises(ValueError):
            SlowNode(1, multiplier=2.0, intermittency=0.0)
        with pytest.raises(ValueError):
            SlowNode(1, multiplier=2.0, intermittency=1.5)

    def test_degraded_link_validation(self):
        with pytest.raises(ValueError):
            DegradedLink(0, 1, multiplier=0.9)

    def test_fail_slow_plan_is_not_null(self):
        assert not FaultPlan(slow_nodes=(SlowNode(1, 2.0),)).is_null
        assert not FaultPlan(degraded_links=(DegradedLink(0, 1, 2.0),)).is_null

    def test_plan_slow_nodes_seed_the_injector(self):
        injector = FaultInjector(
            FaultPlan(slow_nodes=(SlowNode(7, 3.0, 0.5),))
        )
        assert injector.active
        assert injector.slow_nodes == {7: (3.0, 0.5)}

    def test_mark_and_clear_slow(self):
        injector = FaultInjector(FaultPlan())
        assert not injector.active
        injector.mark_slow(3, 10.0, 0.6)
        assert injector.active
        injector.clear_slow(3)
        assert not injector.active

    def test_clear_slow_all(self):
        injector = FaultInjector(FaultPlan())
        injector.mark_slow(1, 2.0)
        injector.mark_slow(2, 2.0)
        injector.clear_slow()
        assert injector.slow_nodes == {}


class TestLatencyFactor:
    def _rng(self):
        return np.random.default_rng(0)

    def test_slow_node_applies_to_destination_only(self):
        # The slow-server model: a gray node is slow to *serve* — its own
        # outbound requests are answered by healthy peers at full speed.
        injector = FaultInjector(FaultPlan())
        injector.mark_slow(5, 10.0)
        assert injector.latency_factor(0, 5, self._rng()) == 10.0
        assert injector.latency_factor(5, 0, self._rng()) == 1.0

    def test_intermittency_gates_the_multiplier(self):
        injector = FaultInjector(FaultPlan())
        injector.mark_slow(5, 10.0, intermittency=0.5)
        rng = self._rng()
        factors = [injector.latency_factor(0, 5, rng) for _ in range(400)]
        degraded = sum(1 for f in factors if f == 10.0)
        assert set(factors) == {1.0, 10.0}
        assert degraded / len(factors) == pytest.approx(0.5, abs=0.1)

    def test_degraded_link_is_directed(self):
        injector = FaultInjector(FaultPlan())
        injector.degrade_link(0, 1, 4.0)
        assert injector.latency_factor(0, 1, self._rng()) == 4.0
        assert injector.latency_factor(1, 0, self._rng()) == 1.0
        injector.restore_link(0, 1)
        assert injector.latency_factor(0, 1, self._rng()) == 1.0

    def test_worst_degradation_wins(self):
        injector = FaultInjector(FaultPlan())
        injector.mark_slow(1, 10.0)
        injector.degrade_link(0, 1, 3.0)
        assert injector.latency_factor(0, 1, self._rng()) == 10.0

    def test_disabled_injector_is_identity(self):
        injector = FaultInjector(FaultPlan())
        injector.mark_slow(1, 10.0)
        injector.enabled = False
        assert injector.latency_factor(0, 1, self._rng()) == 1.0


class TestBackoffOverflowRegression:
    def test_huge_round_index_stays_finite(self):
        # Uncapped ``base * factor**(k-1)`` overflows to inf around
        # round 1100 and one inf poisons every backoff_seconds total.
        policy = LookupPolicy(backoff_base=0.05, backoff_factor=2.0)
        assert math.isfinite(policy.backoff_for(1024))
        assert math.isfinite(policy.backoff_for(10**6))

    def test_cap_freezes_the_schedule(self):
        policy = LookupPolicy(backoff_base=0.05, backoff_factor=2.0)
        capped = policy.backoff_for(policy._BACKOFF_EXPONENT_CAP + 1)
        assert policy.backoff_for(10**9) == capped


class TestDefendedPresets:
    def test_adaptive_policy(self):
        assert ADAPTIVE_POLICY.adaptive_timeout
        assert not ADAPTIVE_POLICY.hedge
        assert ADAPTIVE_POLICY.max_retries == 4
        assert ADAPTIVE_POLICY.backoff_base == 0.0

    def test_hedged_policy(self):
        assert HEDGED_POLICY.adaptive_timeout
        assert HEDGED_POLICY.hedge
        assert HEDGED_POLICY.max_retries == 4
        assert HEDGED_POLICY.backoff_base == 0.0

    def test_effective_timeout_without_estimator_is_fixed(self):
        assert ADAPTIVE_POLICY.effective_timeout(None) == ADAPTIVE_POLICY.timeout

    def test_hedge_delay_cold_is_none(self):
        net = SimulatedNetwork()
        assert HEDGED_POLICY.hedge_delay(net.rtt_for(0)) is None


def _gray_network(model, victim=1, multiplier=100.0):
    """A network with one persistently gray node and a latency model."""
    injector = FaultInjector(FaultPlan())
    injector.mark_slow(victim, multiplier)
    return SimulatedNetwork(faults=injector, latency_model=model)


def _warm(network, src, rtt=0.05, n=10):
    for _ in range(n):
        network.rtt_for(src).observe(rtt)


class TestTimedDeliverFirst:
    def test_model_without_faults_is_exact_identity(self):
        net = SimulatedNetwork(latency_model=ConstantLatency(0.05))
        node, retries, skipped = deliver_first(
            net, 0, [(1, "a"), (2, "b")], HEDGED_POLICY
        )
        assert (node, retries, skipped) == ("a", 0, 0)
        assert net.stats == SimulatedNetwork().stats
        assert net.route_clock == 0.0

    def test_accept_within_timeout_trains_the_estimator(self):
        net = _gray_network(ConstantLatency(0.05), victim=99)
        node, retries, skipped = deliver_first(
            net, 0, [(1, "a")], ADAPTIVE_POLICY
        )
        assert (node, retries, skipped) == ("a", 0, 0)
        assert net.route_clock == pytest.approx(0.05)
        assert net.rtt.estimator(0).srtt == pytest.approx(0.05)

    def test_adaptive_timeout_cuts_the_wait_short(self):
        net = _gray_network(ConstantLatency(0.05), victim=1)
        _warm(net, src=0)
        node, retries, skipped = deliver_first(
            net, 0, [(1, "slow")], ADAPTIVE_POLICY
        )
        # Every round times out fast (adaptive window << 0.5s), then the
        # requester waits the straggler out instead of failing over.
        assert node == "slow"
        assert retries == ADAPTIVE_POLICY.max_retries
        assert net.stats.timeouts == ADAPTIVE_POLICY.max_retries
        # Each adaptive window is well under the fixed timeout, so the
        # whole episode costs less than fixed-timeout rounds would have.
        assert net.route_clock < 5.0 + 4 * 0.1

    def test_forced_accept_does_not_feed_the_estimator(self):
        # Karn's rule: accepted stragglers would inflate the adaptive
        # timeout until stragglers pass unchallenged.
        net = _gray_network(ConstantLatency(0.05), victim=1)
        _warm(net, src=0)
        before = net.rtt.estimator(0).samples_seen
        deliver_first(net, 0, [(1, "slow")], ADAPTIVE_POLICY)
        assert net.rtt.estimator(0).samples_seen == before
        assert net.rtt.estimator(0).srtt == pytest.approx(0.05)

    def test_fixed_policy_burns_full_windows(self):
        net = _gray_network(ConstantLatency(0.05), victim=1)
        node, retries, skipped = deliver_first(
            net, 0, [(1, "slow")], DEFAULT_POLICY
        )
        assert node == "slow"
        assert retries == 2
        assert net.stats.timeouts == 2
        # 0.5 + (0.05 + 0.5) + (0.1 + 5.0): two fixed windows with
        # exponential backoff, then the forced straggler accept.
        assert net.route_clock == pytest.approx(6.15)

    def test_hedge_fires_and_backup_wins(self):
        net = _gray_network(ScriptedLatency([1.0, 0.03]), victim=99)
        _warm(net, src=0)
        node, retries, skipped = deliver_first(
            net, 0, [(1, "a")], HEDGED_POLICY
        )
        assert (node, retries, skipped) == ("a", 0, 0)
        assert net.stats.hedges == 1
        assert net.stats.hedges_won == 1
        # Response = hedge delay (p95 = 0.05) + the backup's own 0.03.
        assert net.route_clock == pytest.approx(0.08)
        # Only the winner's own-transmission RTT trains the estimator.
        assert net.rtt.estimator(0).samples_seen == 11

    def test_hedge_loses_to_the_primary(self):
        net = _gray_network(ScriptedLatency([0.056, 0.2]), victim=99)
        _warm(net, src=0)
        node, _, _ = deliver_first(net, 0, [(1, "a")], HEDGED_POLICY)
        assert node == "a"
        assert net.stats.hedges == 1
        assert net.stats.hedges_won == 0
        assert net.stats.hedges_cancelled == 1
        assert net.route_clock == pytest.approx(0.056)

    def test_dropped_backup_leaves_primary_racing_alone(self):
        # Pin a loss seed whose first two draws are (deliver, drop): the
        # primary gets through, the hedge backup is lost.
        def draws(s):
            probe = FaultInjector(FaultPlan(loss_rate=0.5, seed=s))
            return [probe.delivered(0, 1) for _ in range(2)]

        seed = next(s for s in range(100) if draws(s) == [True, False])
        injector = FaultInjector(FaultPlan(loss_rate=0.5, seed=seed))
        injector.mark_slow(99, 2.0)
        net = SimulatedNetwork(
            faults=injector, latency_model=ScriptedLatency([1.0])
        )
        _warm(net, src=0)
        policy = LookupPolicy(
            adaptive_timeout=True, hedge=True, max_retries=0, backoff_base=0.0
        )
        node, _, _ = deliver_first(net, 0, [(1, "a")], policy)
        assert node == "a"  # forced accept of the straggling primary
        assert net.stats.hedges == 1
        assert net.stats.hedges_won == 0
        assert net.stats.dropped == 1
        assert net.route_clock == pytest.approx(1.0)

    def test_on_hedge_callback_observes_the_race(self):
        net = _gray_network(ScriptedLatency([1.0, 0.03]), victim=99)
        _warm(net, src=0)
        seen = []
        deliver_first(
            net, 0, [(1, "a")], HEDGED_POLICY,
            on_hedge=lambda dst, won: seen.append((dst, won)),
        )
        assert seen == [(1, True)]
