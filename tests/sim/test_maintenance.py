"""Tests for budgeted maintenance: budgets, rounds, repair cursor, scheduler."""

from __future__ import annotations

import random

import pytest

from repro.baselines.mercury import MercuryService
from repro.overlay.chord import ChordRing
from repro.sim.engine import Simulator
from repro.sim.invariants import (
    check_overlay,
    check_replica_placement,
    directory_census,
    install_churn_guards,
)
from repro.sim.maintenance import (
    DEFAULT_BUDGET,
    UNLIMITED_BUDGET,
    ZERO_BUDGET,
    MaintenanceBudget,
    MaintenanceReport,
    MaintenanceRound,
    MaintenanceScheduler,
    repair_buckets,
)
from repro.sim.recovery import replica_deficit


def _loaded_ring(replication: int = 2) -> ChordRing:
    ring = ChordRing(6, replication=replication)
    ring.build_full()
    for key in range(0, 64, 4):
        ring.store("ns", key, f"v{key}")
    return ring


class TestMaintenanceBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            MaintenanceBudget(stabilize_nodes=-1)
        with pytest.raises(ValueError):
            MaintenanceBudget(repair_keys=-5)

    def test_unbounded_and_zero_predicates(self):
        assert UNLIMITED_BUDGET.unbounded and not UNLIMITED_BUDGET.is_zero
        assert ZERO_BUDGET.is_zero and not ZERO_BUDGET.unbounded
        assert not DEFAULT_BUDGET.unbounded and not DEFAULT_BUDGET.is_zero
        # A partially capped budget is neither.
        mixed = MaintenanceBudget(stabilize_nodes=None, refresh_nodes=0, repair_keys=4)
        assert not mixed.unbounded and not mixed.is_zero


class TestRepairBuckets:
    def test_budget_zero_is_noop_and_keeps_cursor(self):
        ring = _loaded_ring()
        ring.fail(20)
        cursor = ("ns", 8)
        progress = repair_buckets(ring, ring.replica_set, budget=0, after=cursor)
        assert progress.keys_repaired == 0
        assert progress.copies_moved == 0
        assert progress.next_after == cursor
        assert not progress.done

    def test_negative_budget_rejected(self):
        ring = _loaded_ring()
        with pytest.raises(ValueError):
            repair_buckets(ring, ring.replica_set, budget=-1)

    def test_unbounded_sweep_matches_global_repair(self):
        ring = _loaded_ring()
        before = directory_census(ring)
        ring.fail(20)
        progress = repair_buckets(ring, ring.replica_set, budget=None)
        assert progress.done
        assert progress.keys_repaired == 16  # every stored bucket visited
        check_replica_placement(ring)
        assert directory_census(ring) == before

    def test_bounded_passes_resume_via_cursor_until_done(self):
        ring = _loaded_ring()
        before = directory_census(ring)
        r = random.Random(1)
        for _ in range(4):
            ring.fail(r.choice(ring.node_ids))
        cursor = None
        passes = 0
        visited = 0
        while True:
            progress = repair_buckets(ring, ring.replica_set, budget=5, after=cursor)
            # Census is conserved even mid-sweep (strays drop only after
            # their copies are merged onto the replica set).
            assert directory_census(ring) == before
            passes += 1
            visited += progress.keys_repaired
            if progress.done:
                break
            cursor = progress.next_after
        assert passes == 4  # ceil(16 buckets / 5 per pass)
        assert visited == 16
        check_replica_placement(ring)

    def test_clean_bucket_costs_no_messages(self):
        ring = _loaded_ring()
        baseline = ring.network.stats.maintenance_messages
        progress = repair_buckets(ring, ring.replica_set, budget=None)
        assert progress.copies_moved == 0
        assert ring.network.stats.maintenance_messages == baseline

    def test_repair_traffic_is_counted(self):
        ring = _loaded_ring()
        ring.fail(20)  # crash-time neighbourhood repair counts separately
        baseline = ring.network.stats.maintenance_messages
        progress = repair_buckets(ring, ring.replica_set, budget=None)
        assert progress.copies_moved > 0
        assert (
            ring.network.stats.maintenance_messages
            == baseline + progress.copies_moved
        )


class TestMaintenanceRound:
    def test_unlimited_round_is_the_seed_sweep(self):
        ring = _loaded_ring()
        before = directory_census(ring)
        r = random.Random(2)
        for _ in range(5):
            ring.fail(r.choice(ring.node_ids))
        round_ = MaintenanceRound(ring)
        report = round_.run(UNLIMITED_BUDGET)
        assert report.full_sweep
        assert report.stabilized == report.refreshed == ring.num_nodes
        check_overlay(ring)
        check_replica_placement(ring)
        assert directory_census(ring) == before
        assert replica_deficit(ring) == 0

    def test_zero_round_does_nothing(self):
        ring = _loaded_ring()
        ring.fail(20)
        deficit = replica_deficit(ring)
        assert deficit > 0
        round_ = MaintenanceRound(ring)
        stats_before = ring.network.stats.snapshot()
        report = round_.run(ZERO_BUDGET)
        assert report == MaintenanceReport()
        assert ring.network.stats.snapshot() == stats_before
        assert replica_deficit(ring) == deficit  # the fault never heals

    def test_bounded_rounds_eventually_repair(self):
        ring = _loaded_ring()
        r = random.Random(3)
        for _ in range(5):
            ring.fail(r.choice(ring.node_ids))
        assert replica_deficit(ring) > 0
        round_ = MaintenanceRound(ring)
        budget = MaintenanceBudget(stabilize_nodes=8, refresh_nodes=8, repair_keys=5)
        for _ in range(8):
            round_.run(budget)
        assert replica_deficit(ring) == 0
        check_replica_placement(ring)

    def test_round_robin_refresh_covers_every_node(self):
        ring = _loaded_ring()
        round_ = MaintenanceRound(ring)
        budget = MaintenanceBudget(stabilize_nodes=0, refresh_nodes=7, repair_keys=0)
        rounds = -(-ring.num_nodes // 7)  # ceil
        for _ in range(rounds):
            round_.run(budget)
        refreshed = set(round_._last_refresh)
        assert refreshed == {node.uid for node in ring.nodes()}

    def test_max_staleness_tracks_refresh_clock(self):
        ring = _loaded_ring()
        round_ = MaintenanceRound(ring)
        round_.clock = 10.0
        assert round_.max_staleness() == 10.0  # nothing refreshed yet
        round_.run(UNLIMITED_BUDGET)
        assert round_.max_staleness() == 0.0
        round_.clock = 14.0
        assert round_.max_staleness() == 4.0

    def test_stabilize_step_counts_maintenance_traffic(self):
        ring = _loaded_ring()
        baseline = ring.network.stats.maintenance_messages
        round_ = MaintenanceRound(ring)
        budget = MaintenanceBudget(stabilize_nodes=4, refresh_nodes=0, repair_keys=0)
        report = round_.run(budget)
        assert report.stabilized == 4
        assert ring.network.stats.maintenance_messages == baseline + 4


class TestMaintenanceScheduler:
    def _service(self, schema, workload) -> MercuryService:
        service = MercuryService.build(6, 24, schema, seed=11, replication=2)
        for info in workload.resource_infos():
            service.register(info, routed=False)
        return service

    def test_interval_validation(self, schema, workload):
        service = self._service(schema, workload)
        with pytest.raises(ValueError):
            MaintenanceScheduler(service, interval=0.0)

    def test_install_tick_cadence(self, schema, workload):
        service = self._service(schema, workload)
        scheduler = MaintenanceScheduler(service, interval=5.0)
        sim = Simulator()
        assert scheduler.install(sim, horizon=20.0) == 4
        sim.run()
        assert [at for at, _ in scheduler.reports] == [5.0, 10.0, 15.0, 20.0]
        assert all(isinstance(r, MaintenanceReport) for _, r in scheduler.reports)
        assert service.maintenance_round().rounds_run == 4

    def test_first_round_is_one_full_interval_out(self, schema, workload):
        # Faults at t=0 must not be healed for free at t=0.
        service = self._service(schema, workload)
        scheduler = MaintenanceScheduler(service, interval=5.0)
        sim = Simulator()
        sim.run_until(2.0)
        scheduler.install(sim, horizon=8.0)
        sim.run()
        assert [at for at, _ in scheduler.reports] == [7.0]

    def test_uninstall_cancels_pending_rounds(self, schema, workload):
        service = self._service(schema, workload)
        scheduler = MaintenanceScheduler(service, interval=5.0)
        sim = Simulator()
        scheduler.install(sim, horizon=20.0)
        sim.run_until(10.0)
        scheduler.uninstall(sim)
        sim.run()
        assert len(scheduler.reports) == 2

    def test_budgeted_round_passes_churn_guard(self, schema, workload):
        service = self._service(schema, workload)
        guard = install_churn_guards(service)
        assert service.churn_fail()
        events_after_fail = guard.events
        scheduler = MaintenanceScheduler(service, interval=1.0)
        sim = Simulator()
        scheduler.install(sim, horizon=6.0)
        sim.run()  # a guard violation would raise here
        assert guard.events > events_after_fail
        assert replica_deficit(service.ring) == 0
