"""Tests for durability policies: placement, erasure semantics, deficit."""

from __future__ import annotations

import pytest

from repro.overlay.chord import ChordRing
from repro.overlay.cycloid import CycloidOverlay
from repro.sim.durability import (
    DEFAULT_POLICY_SPECS,
    DurabilityPolicy,
    SuccessorPlacement,
    SymmetricPlacement,
    decodable_level,
    erasure_code,
    parse_policy,
    successor_replication,
    symmetric_replication,
)
from repro.sim.invariants import (
    check_replica_placement,
    directory_census,
    install_churn_guards,
)
from repro.sim.recovery import replica_deficit


def _loaded_ring(policy=None, replication: int = 2) -> ChordRing:
    if policy is None:
        ring = ChordRing(6, replication=replication)
    else:
        ring = ChordRing(6, durability=policy)
    ring.build_full()
    for key in range(0, 64, 4):
        ring.store("ns", key, f"v{key}")
    return ring


class TestDecodableLevel:
    def test_threshold_one_is_max(self):
        assert decodable_level([3, 1, 2], 1) == 3
        assert decodable_level([], 1) == 0

    def test_threshold_is_kth_largest(self):
        assert decodable_level([3, 1, 2], 2) == 2
        assert decodable_level([3, 1, 2], 3) == 1

    def test_fewer_holders_than_threshold_is_lost(self):
        assert decodable_level([5], 2) == 0
        assert decodable_level([], 2) == 0


class TestPolicyConstruction:
    def test_replication_factors(self):
        policy = successor_replication(3)
        assert policy.fragments == 3
        assert policy.threshold == 1
        assert policy.fragment_weight == 1.0
        assert policy.storage_overhead == 3.0
        assert not policy.is_erasure

    def test_erasure_factors(self):
        policy = erasure_code(2, 1)
        assert policy.fragments == 3
        assert policy.threshold == 2
        assert policy.fragment_weight == 0.5
        assert policy.storage_overhead == 1.5
        assert policy.is_erasure

    def test_zero_fragments_rejected(self):
        with pytest.raises(ValueError):
            DurabilityPolicy(name="bad", fragments=0)

    def test_threshold_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            DurabilityPolicy(name="bad", fragments=2, threshold=3)

    def test_erasure_needs_parity(self):
        with pytest.raises(ValueError):
            erasure_code(2, 0)

    def test_successor_placement_bounded_by_successor_list(self):
        with pytest.raises(ValueError):
            ChordRing(6, durability=successor_replication(100))

    def test_symmetric_placement_not_bounded_at_ctor_time(self):
        ring = ChordRing(6, durability=symmetric_replication(100))
        ring.build_full()  # degraded placements report via deficit, not ctor


class TestParsePolicy:
    @pytest.mark.parametrize("spec", DEFAULT_POLICY_SPECS)
    def test_default_specs_round_trip(self, spec):
        assert parse_policy(spec).name == spec

    def test_placement_override(self):
        policy = parse_policy("erasure:2+1@successor")
        assert isinstance(policy.placement, SuccessorPlacement)
        assert policy.threshold == 2
        policy = parse_policy("replication:2@symmetric")
        assert isinstance(policy.placement, SymmetricPlacement)

    @pytest.mark.parametrize(
        "spec", ["replication", "bogus:2", "erasure:x+y", "symmetric:2@mars"]
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ValueError):
            parse_policy(spec)


class TestDefaultPolicyByteIdentity:
    def test_chord_replica_sets_unchanged(self):
        legacy = ChordRing(6, replication=2)
        legacy.build_full()
        explicit = ChordRing(6, durability=successor_replication(2))
        explicit.build_full()
        for key in range(64):
            assert [n.node_id for n in legacy.replica_set(key)] == [
                n.node_id for n in explicit.replica_set(key)
            ]

    def test_cycloid_replica_sets_unchanged(self):
        legacy = CycloidOverlay(3, replication=2)
        legacy.build_full()
        explicit = CycloidOverlay(3, durability=successor_replication(2))
        explicit.build_full()
        for key_id in range(legacy.capacity):
            key = legacy.delinearize(key_id)
            assert [n.cid for n in legacy.replica_set(key)] == [
                n.cid for n in explicit.replica_set(key)
            ]


class TestSymmetricPlacement:
    def test_owner_first_and_spread(self):
        ring = _loaded_ring(symmetric_replication(2))
        for key in range(0, 64, 4):
            holders = ring.replica_set(key)
            assert holders[0].node_id == key
            assert holders[1].node_id == (key + 32) % 64

    def test_sparse_ring_pads_with_distinct_successors(self):
        ring = ChordRing(6, durability=symmetric_replication(3))
        ring.build([0, 1, 2])  # every offset resolves near the same arc
        holders = ring.replica_set(5)
        ids = [n.node_id for n in holders]
        assert len(ids) == len(set(ids)) == 3

    def test_placement_survives_repair_and_validates(self):
        ring = _loaded_ring(symmetric_replication(2))
        ring.repair_replication()
        check_replica_placement(ring)
        assert replica_deficit(ring) == 0


class TestErasureEdgeCases:
    """Satellite: k=1 degenerates, m losses decode, m+1 losses are lost."""

    def test_k1_degenerates_to_replication(self):
        degen = _loaded_ring(erasure_code(1, 1, placement="successor"))
        plain = _loaded_ring(successor_replication(2))
        crash = [9, 27, 42]
        for ring in (degen, plain):
            ring.repair_replication()
            for victim in crash:
                ring.fail(victim)
        assert directory_census(degen, degen.durability) == directory_census(
            plain, plain.durability
        )
        assert replica_deficit(degen) == replica_deficit(plain)
        degen.repair_replication()
        plain.repair_replication()
        assert replica_deficit(degen) == replica_deficit(plain) == 0

    def test_losing_exactly_m_fragments_still_decodes(self):
        ring = _loaded_ring(erasure_code(2, 1))  # 3 fragments, any 2 decode
        ring.repair_replication()
        before = directory_census(ring, ring.durability)
        holders = ring.replica_set(8)
        ring.fail(holders[-1].node_id)  # m = 1 holder lost
        assert directory_census(ring, ring.durability)[("ns", 8, "v8")] == 1
        assert replica_deficit(ring) > 0
        ring.repair_replication()
        assert replica_deficit(ring) == 0
        assert directory_census(ring, ring.durability) == before

    def test_losing_m_plus_one_fragments_loses_the_piece(self):
        ring = _loaded_ring(erasure_code(2, 1))
        ring.repair_replication()
        holders = ring.replica_set(8)
        for node in holders[-2:]:  # m + 1 = 2 holders lost: k - 1 remain
            ring.fail(node.node_id)
        census = directory_census(ring, ring.durability)
        assert ("ns", 8, "v8") not in census  # reported lost, no silent success
        ring.repair_replication()
        # Repair purges the undecodable fragment instead of resurrecting it.
        assert ("ns", 8, "v8") not in directory_census(ring, ring.durability)
        assert not any(
            item == "v8"
            for node in ring.nodes()
            for _, _, item in node.stored_entries()
        )
        assert replica_deficit(ring) == 0


class TestCrashRejoinDeficit:
    """Satellite regression: a crashed-then-rejoined node is not counted
    as still-missing evidence, so the deficit timeline ends at zero."""

    def test_deficit_timeline_crash_repair_rejoin(self):
        ring = _loaded_ring(successor_replication(2))
        ring.repair_replication()
        timeline = [replica_deficit(ring)]
        ring.fail(8)
        timeline.append(replica_deficit(ring))
        ring.repair_replication()
        timeline.append(replica_deficit(ring))
        ring.join(8)
        timeline.append(replica_deficit(ring))
        assert timeline[0] == 0
        assert timeline[1] > 0  # the crash removed a holder
        assert timeline[2] == 0  # repair restored redundancy
        assert timeline[3] == 0  # the rejoin must not re-open the deficit

    def test_rejoin_before_repair_keeps_the_deficit(self):
        ring = _loaded_ring(successor_replication(2))
        ring.repair_replication()
        ring.fail(8)
        wounded = replica_deficit(ring)
        assert wounded > 0
        ring.join(8)  # rejoins empty: redundancy is still missing
        assert replica_deficit(ring) == wounded
        ring.repair_replication()
        assert replica_deficit(ring) == 0

    def test_guarded_erasure_churn_cycle(self):
        """Fragment fate-sharing on join/leave is guarded as lose-only."""

        class _Service:
            def __init__(self, overlay):
                self.overlay = overlay

            def churn_join(self):
                return self.overlay.join(8)

            def churn_leave(self):
                return self.overlay.leave(9)

            def churn_fail(self):
                return self.overlay.fail(10)

            def stabilize(self):
                return self.overlay.stabilize_all()

        ring = _loaded_ring(erasure_code(2, 1))
        ring.repair_replication()
        service = _Service(ring)
        install_churn_guards(service)
        service.churn_leave()
        service.churn_fail()
        service.stabilize()
        ring.repair_replication()
        assert replica_deficit(ring) == 0
