"""Tests for the declarative chaos-scenario timeline."""

from __future__ import annotations

import pytest

from repro.baselines.mercury import MercuryService
from repro.overlay.chord import ChordRing
from repro.overlay.cycloid import CycloidOverlay
from repro.sim.chaos import (
    DEMO_SCENARIO,
    GRAY_FAILURE_SCENARIO,
    ChaosScenario,
    CrashBurst,
    GrayFailureWindow,
    LossRamp,
    NodeFlap,
    PartitionWindow,
    SlowBurst,
    id_space_of,
    network_ids_of,
    slow_victims,
)
from repro.sim.engine import Simulator
from repro.sim.faults import FaultInjector, FaultPlan


class TestIdSpaceOf:
    def test_chord_space(self):
        assert id_space_of(ChordRing(6)) == 64

    def test_cycloid_linearized_capacity(self):
        assert id_space_of(CycloidOverlay(3)) == 3 * 2**3


class TestPartitionWindow:
    def test_validation(self):
        with pytest.raises(ValueError):
            PartitionWindow(lo_frac=-0.1, hi_frac=0.5, starts_at=0, heals_at=1)
        with pytest.raises(ValueError):
            PartitionWindow(lo_frac=0.0, hi_frac=1.5, starts_at=0, heals_at=1)
        with pytest.raises(ValueError):
            PartitionWindow(lo_frac=0.0, hi_frac=0.5, starts_at=2.0, heals_at=2.0)

    def test_arc_scales_to_the_identifier_space(self):
        window = PartitionWindow(lo_frac=0.0, hi_frac=0.25, starts_at=0, heals_at=1)
        small = window.arc_for(64)
        big = window.arc_for(256)
        assert (small.lo, small.hi, small.space) == (0, 15, 64)
        assert (big.lo, big.hi, big.space) == (0, 63, 256)


class TestNodeFlap:
    def test_down_and_up_cadence(self):
        flap = NodeFlap(first_down=10.0, period=4.0, cycles=2)
        assert flap.down_times() == [10.0, 14.0]
        assert flap.up_times() == [12.0, 16.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            NodeFlap(first_down=1.0, period=0.0)
        with pytest.raises(ValueError):
            NodeFlap(first_down=1.0, period=2.0, cycles=0)


class TestLossRamp:
    def test_set_points_climb_to_peak(self):
        ramp = LossRamp(starts_at=4.0, ends_at=8.0, peak=0.4, steps=4)
        assert ramp.set_points() == [
            (4.0, 0.1),
            (5.0, 0.2),
            (6.0, pytest.approx(0.3)),
            (7.0, 0.4),
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            LossRamp(starts_at=4.0, ends_at=4.0, peak=0.5)
        with pytest.raises(ValueError):
            LossRamp(starts_at=0.0, ends_at=1.0, peak=1.0)


class TestChaosScenario:
    def test_fault_and_heal_times(self):
        scenario = ChaosScenario(
            partitions=(PartitionWindow(0.0, 0.25, starts_at=2.0, heals_at=6.0),),
            bursts=(CrashBurst(at=8.0, count=3),),
            flaps=(NodeFlap(first_down=10.0, period=4.0, cycles=1),),
            ramps=(LossRamp(starts_at=1.0, ends_at=5.0, peak=0.3),),
        )
        assert scenario.fault_times() == [1.0, 2.0, 8.0, 10.0]
        assert scenario.heal_times() == [5.0, 6.0, 12.0]
        assert scenario.horizon() == 12.0

    def test_empty_scenario_is_inert(self):
        scenario = ChaosScenario()
        assert scenario.fault_times() == []
        assert scenario.heal_times() == []
        assert scenario.horizon() == 0.0

    def _service(self, schema) -> MercuryService:
        return MercuryService.build(6, 24, schema, seed=11, replication=2)

    def test_install_schedules_every_declared_event(self, schema):
        service = self._service(schema)
        injector = FaultInjector(FaultPlan())
        sim = Simulator()
        scenario = ChaosScenario(
            partitions=(PartitionWindow(0.0, 0.25, starts_at=2.0, heals_at=6.0),),
            bursts=(CrashBurst(at=8.0, count=3),),
            flaps=(NodeFlap(first_down=10.0, period=4.0, cycles=2),),
            ramps=(LossRamp(starts_at=1.0, ends_at=5.0, peak=0.3, steps=4),),
        )
        # 2 partition switches + 3 crashes + 2*(down+up) + 4 set-points + reset.
        assert scenario.install(sim, injector, service) == 2 + 3 + 4 + 5
        assert sim.pending == 14

    def test_partition_arms_then_heals_at_declared_times(self, schema):
        service = self._service(schema)
        injector = FaultInjector(FaultPlan())
        sim = Simulator()
        scenario = ChaosScenario(
            partitions=(PartitionWindow(0.0, 0.25, starts_at=2.0, heals_at=6.0),)
        )
        scenario.install(sim, injector, service)
        sim.run_until(2.0)
        assert injector.active
        assert len(injector.partitions) == 1
        assert injector.partitions[0].space == 64
        sim.run_until(6.0)
        assert not injector.active
        assert injector.partitions == ()

    def test_loss_ramp_drives_and_resets_the_injector(self, schema):
        service = self._service(schema)
        injector = FaultInjector(FaultPlan(loss_rate=0.05))
        sim = Simulator()
        scenario = ChaosScenario(
            ramps=(LossRamp(starts_at=1.0, ends_at=5.0, peak=0.4, steps=4),)
        )
        scenario.install(sim, injector, service)
        sim.run_until(4.5)
        assert injector.loss_rate == 0.4
        sim.run_until(5.0)
        assert injector.loss_rate == 0.05  # plan rate restored

    def test_burst_and_flap_drive_seeded_churn(self, schema):
        service = self._service(schema)
        injector = FaultInjector(FaultPlan())
        sim = Simulator()
        population = service.ring.num_nodes
        scenario = ChaosScenario(
            bursts=(CrashBurst(at=1.0, count=3),),
            flaps=(NodeFlap(first_down=2.0, period=2.0, cycles=1),),
        )
        scenario.install(sim, injector, service)
        sim.run_until(2.0)  # burst + flap-down fired
        assert service.ring.num_nodes == population - 4
        sim.run_until(3.0)  # flap-up rejoined one node
        assert service.ring.num_nodes == population - 3

    def test_demo_scenario_shape(self):
        assert DEMO_SCENARIO.fault_times() == [2.0, 8.0, 10.0]
        assert DEMO_SCENARIO.horizon() == 12.0


class TestSlowEvents:
    def test_slow_burst_validation_and_heal_time(self):
        burst = SlowBurst(at=2.0, duration=4.0, fraction=0.2)
        assert burst.heals_at == 6.0
        with pytest.raises(ValueError):
            SlowBurst(at=2.0, duration=0.0, fraction=0.2)
        with pytest.raises(ValueError):
            SlowBurst(at=2.0, duration=4.0, fraction=0.0)
        with pytest.raises(ValueError):
            SlowBurst(at=2.0, duration=4.0, fraction=0.2, multiplier=0.5)

    def test_gray_window_validation(self):
        with pytest.raises(ValueError):
            GrayFailureWindow(starts_at=5.0, heals_at=5.0, fraction=0.1)
        with pytest.raises(ValueError):
            GrayFailureWindow(
                starts_at=0.0, heals_at=1.0, fraction=0.1, intermittency=0.0
            )

    def test_network_ids_linearize_cycloid(self):
        overlay = CycloidOverlay(3)
        overlay.build_full()
        ids = network_ids_of(overlay)
        assert len(ids) == overlay.num_nodes
        assert ids == sorted(ids)
        assert all(0 <= i < 3 * 2**3 for i in ids)

    def test_slow_victims_are_a_deterministic_stride(self, full_ring):
        victims = slow_victims(full_ring, 0.1)
        assert victims == slow_victims(full_ring, 0.1)
        assert len(victims) == round(0.1 * full_ring.num_nodes)
        assert set(victims) <= set(network_ids_of(full_ring))
        assert len(set(victims)) == len(victims)

    def test_zero_fraction_marks_nobody(self, full_ring):
        assert slow_victims(full_ring, 0.0) == []

    def test_slow_timeline_marks_and_heals(self, schema):
        service = MercuryService.build(6, 24, schema, seed=11, replication=2)
        injector = FaultInjector(FaultPlan())
        sim = Simulator()
        scenario = ChaosScenario(
            slow_bursts=(SlowBurst(at=1.0, duration=2.0, fraction=0.25, multiplier=8.0),),
            gray_windows=(
                GrayFailureWindow(
                    starts_at=4.0, heals_at=6.0, fraction=0.125,
                    multiplier=20.0, intermittency=0.6,
                ),
            ),
        )
        assert scenario.fault_times() == [1.0, 4.0]
        assert scenario.heal_times() == [3.0, 6.0]
        assert scenario.install(sim, injector, service) == 4
        sim.run_until(1.0)
        assert injector.active
        marked = injector.slow_nodes
        assert len(marked) == round(0.25 * service.ring.num_nodes)
        assert all(spec == (8.0, 1.0) for spec in marked.values())
        sim.run_until(3.0)
        assert not injector.slow_nodes  # burst healed
        sim.run_until(4.0)
        gray = injector.slow_nodes
        assert len(gray) == round(0.125 * service.ring.num_nodes)
        assert all(spec == (20.0, 0.6) for spec in gray.values())
        sim.run_until(6.0)
        assert not injector.active

    def test_gray_failure_scenario_shape(self):
        assert GRAY_FAILURE_SCENARIO.fault_times() == [2.0, 8.0]
        assert GRAY_FAILURE_SCENARIO.horizon() == 20.0
