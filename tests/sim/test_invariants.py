"""Unit tests for the invariant checkers and the churn guard."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.baselines.mercury import MercuryService
from repro.overlay.chord import ChordRing
from repro.overlay.cycloid import CycloidId, CycloidOverlay
from repro.sim.invariants import (
    InvariantViolation,
    check_overlay,
    check_replica_placement,
    directory_census,
    install_churn_guards,
    overlay_of,
)


def _small_ring(replication: int = 1) -> ChordRing:
    ring = ChordRing(5, replication=replication)
    ring.build([1, 9, 17, 25])
    return ring


class TestDirectoryCensus:
    def test_replicas_count_once(self):
        ring = _small_ring(replication=2)
        ring.store("ns", 5, "x")
        # Owner and replica each hold one copy; logically it is one piece.
        assert directory_census(ring) == Counter({("ns", 5, "x"): 1})

    def test_distinct_identical_pieces_keep_multiplicity(self):
        ring = _small_ring(replication=2)
        ring.store("ns", 5, "x")
        ring.store("ns", 5, "x")
        assert directory_census(ring) == Counter({("ns", 5, "x"): 2})

    def test_empty_overlay_has_empty_census(self):
        assert directory_census(_small_ring()) == Counter()


class TestStructuralChecks:
    def test_healthy_ring_passes(self, sparse_ring):
        check_overlay(sparse_ring)

    def test_healthy_overlay_passes(self, sparse_overlay):
        check_overlay(sparse_overlay)

    def test_dead_but_indexed_chord_node_detected(self, full_ring):
        full_ring.node(8).alive = False
        with pytest.raises(InvariantViolation, match="dead node"):
            check_overlay(full_ring)

    def test_dead_but_indexed_cycloid_node_detected(self, full_overlay):
        full_overlay.node(CycloidId(1, 3)).alive = False
        with pytest.raises(InvariantViolation, match="dead node"):
            check_overlay(full_overlay)

    def test_corrupted_successor_link_detected(self, full_ring):
        node = full_ring.node(0)
        node.successor_list[0] = full_ring.node(5)
        with pytest.raises(InvariantViolation):
            check_overlay(full_ring)

    def test_overlay_of(self, loaded_bundle):
        assert overlay_of(loaded_bundle.lorm) is loaded_bundle.lorm.overlay
        assert overlay_of(loaded_bundle.sword) is loaded_bundle.sword.ring
        with pytest.raises(TypeError):
            overlay_of(object())


class TestReplicaPlacement:
    def test_clean_placement_passes(self):
        ring = _small_ring(replication=2)
        ring.store("ns", 5, "x")
        check_replica_placement(ring)

    def test_stray_copy_off_the_replica_set_detected(self):
        ring = _small_ring(replication=2)
        ring.store("ns", 5, "x")
        stray = ring.node(1)
        assert stray not in ring.replica_set(5)
        stray.store("ns", 5, "x")
        with pytest.raises(InvariantViolation, match="replica drift"):
            check_replica_placement(ring)

    def test_diverged_replica_contents_detected(self):
        ring = _small_ring(replication=2)
        ring.store("ns", 5, "x")
        # One holder gains an extra copy: same holder set, different contents.
        ring.replica_set(5)[1].store("ns", 5, "x")
        with pytest.raises(InvariantViolation, match="replica divergence"):
            check_replica_placement(ring)


class TestChurnGuard:
    def _service(self, schema, workload, *, replication: int = 2):
        service = MercuryService.build(
            6, 24, schema, seed=11, replication=replication
        )
        for info in workload.resource_infos():
            service.register(info, routed=False)
        return service

    def test_guard_passes_healthy_churn(self, schema, workload):
        service = self._service(schema, workload)
        guard = install_churn_guards(service)
        assert service.churn_leave()
        assert service.churn_join()
        service.stabilize()
        assert service.churn_fail()
        service.ring.repair_replication()
        assert guard.events == 5

    def test_guard_catches_data_loss_on_leave(self, schema, workload, monkeypatch):
        service = self._service(schema, workload, replication=1)
        install_churn_guards(service)
        orig_leave = ChordRing.leave

        def lossy_leave(self, node_id):
            self.node(node_id).clear_storage()
            orig_leave(self, node_id)

        monkeypatch.setattr(ChordRing, "leave", lossy_leave)
        with pytest.raises(InvariantViolation, match="did not conserve"):
            for _ in range(20):
                service.churn_leave()

    def test_guard_catches_invented_entries_on_fail(
        self, schema, workload, monkeypatch
    ):
        service = self._service(schema, workload)
        install_churn_guards(service)
        orig_fail = ChordRing.fail

        def noisy_fail(self, node_id):
            orig_fail(self, node_id)
            self.store("bogus", 1, "phantom")

        monkeypatch.setattr(ChordRing, "fail", noisy_fail)
        with pytest.raises(InvariantViolation, match="invented"):
            service.churn_fail()

    def test_guard_allows_honest_loss_on_fail(self, schema, workload):
        # replication=1: crashing a data holder genuinely loses pieces,
        # which the loss-only census check must tolerate.
        service = self._service(schema, workload, replication=1)
        install_churn_guards(service)
        for _ in range(10):
            service.churn_fail()


class TestCycloidConservation:
    def test_leave_and_rejoin_conserve_census(self):
        overlay = CycloidOverlay(3, replication=2)
        overlay.build_full()
        key = CycloidId(1, 2)
        owner = overlay.closest_node(key)
        overlay.store("ns", key, "piece")
        overlay.store("ns", key, "piece")
        before = directory_census(overlay)
        assert before[("ns", overlay.linearize(key), "piece")] == 2

        owner_cid = owner.cid
        overlay.leave(owner_cid)
        assert directory_census(overlay) == before
        overlay.repair_replication()
        assert directory_census(overlay) == before

        # Re-join: several donors hold replica copies of the moved pieces;
        # the join transfer must merge them (max), not sum them.
        overlay.join(owner_cid)
        assert directory_census(overlay) == before
