"""Tests for per-node load accounting and imbalance reducers."""

from __future__ import annotations

import math

import pytest

from repro.sim.loadstats import (
    LoadStats,
    LoadWindow,
    gini,
    load_histogram,
    max_mean_ratio,
    top_share,
)


class TestMaxMeanRatio:
    def test_simple_ratio(self):
        # mean over the population of 4 is 1.0; the max is 3.
        assert max_mean_ratio({"a": 3, "b": 1}, population=4) == pytest.approx(3.0)

    def test_perfect_balance_is_one(self):
        counts = {i: 2.0 for i in range(5)}
        assert max_mean_ratio(counts, population=5) == pytest.approx(1.0)

    def test_zero_load_members_raise_the_ratio(self):
        counts = {i: 1.0 for i in range(4)}
        assert max_mean_ratio(counts, population=8) == pytest.approx(2.0)

    def test_no_load_is_nan(self):
        assert math.isnan(max_mean_ratio({}, population=4))
        assert math.isnan(max_mean_ratio({"a": 0.0}, population=4))

    def test_population_validation(self):
        with pytest.raises(ValueError):
            max_mean_ratio({"a": 1, "b": 1}, population=1)


class TestGini:
    def test_equal_load_is_zero(self):
        counts = {i: 3.0 for i in range(6)}
        assert gini(counts, population=6) == pytest.approx(0.0)

    def test_single_loaded_member(self):
        # One member carries everything: G = (n - 1) / n.
        assert gini({"a": 10.0}, population=4) == pytest.approx(0.75)

    def test_no_load_is_nan(self):
        assert math.isnan(gini({}, population=4))

    def test_more_skew_more_gini(self):
        even = gini({i: 1.0 for i in range(8)}, population=8)
        skew = gini({0: 9.0, 1: 1.0}, population=8)
        assert skew > even


class TestTopShare:
    def test_top_one(self):
        assert top_share({"a": 3.0, "b": 1.0}, 1) == pytest.approx(0.75)

    def test_k_covers_everything(self):
        assert top_share({"a": 3.0, "b": 1.0}, 10) == pytest.approx(1.0)

    def test_empty_is_nan(self):
        assert math.isnan(top_share({}, 1))

    def test_k_validation(self):
        with pytest.raises(ValueError):
            top_share({"a": 1.0}, 0)


class TestLoadHistogram:
    def test_members_sum_to_population(self):
        buckets = load_histogram({"a": 5.0, "b": 1.0}, population=10, bins=5)
        assert sum(members for _, _, members in buckets) == 10

    def test_zero_load_members_in_first_bucket(self):
        buckets = load_histogram({"a": 10.0}, population=4, bins=2)
        assert buckets[0][2] == 3
        assert buckets[-1][2] == 1


class TestLoadWindow:
    def test_total_serves(self):
        window = LoadWindow(serves={"a": 2, "b": 3})
        assert window.total_serves == 5.0

    def test_reducer_wrappers(self):
        window = LoadWindow(serves={"a": 3, "b": 1})
        assert window.max_mean_ratio(4) == pytest.approx(3.0)
        assert window.top_share(1) == pytest.approx(0.75)
        assert window.gini(4) == pytest.approx(gini({"a": 3, "b": 1}, 4))

    def test_merged_sums_elementwise(self):
        a = LoadWindow(serves={"x": 1}, routes={"r": 2}, by_attribute={"cpu": 1})
        b = LoadWindow(serves={"x": 2, "y": 1}, routes={}, by_attribute={"cpu": 3})
        merged = a.merged(b)
        assert merged.serves == {"x": 3, "y": 1}
        assert merged.routes == {"r": 2}
        assert merged.by_attribute == {"cpu": 4}


class TestLoadStats:
    def test_record_serve_counts_node_and_attribute(self):
        stats = LoadStats()
        stats.record_serve("n1", "cpu")
        stats.record_serve("n1", "cpu", count=2)
        window = stats.take_window()
        assert window.serves == {"n1": 3}
        assert window.by_attribute == {"cpu": 3}

    def test_record_serves_counts_every_visited_node(self):
        stats = LoadStats()
        stats.record_serves(["n1", "n2", "n3"], "mem")
        window = stats.take_window()
        assert window.serves == {"n1": 1, "n2": 1, "n3": 1}
        assert window.by_attribute == {"mem": 3}

    def test_route_path_counts_intermediates_only(self):
        stats = LoadStats()
        stats.record_route_path(["req", "mid1", "mid2", "owner"])
        stats.record_route_path(["req", "owner"])
        window = stats.take_window()
        assert window.routes == {"mid1": 1, "mid2": 1}

    def test_take_window_resets_but_total_accumulates(self):
        stats = LoadStats()
        stats.record_serve("n1", "cpu")
        first = stats.take_window()
        assert first.serves == {"n1": 1}
        stats.record_serve("n2", "cpu")
        second = stats.take_window()
        assert second.serves == {"n2": 1}
        assert stats.take_window().serves == {}
        assert stats.total.serves == {"n1": 1, "n2": 1}

    def test_total_includes_open_window(self):
        stats = LoadStats()
        stats.record_serve("n1", "cpu")
        stats.take_window()
        stats.record_serve("n1", "cpu")
        assert stats.total.serves == {"n1": 2}
