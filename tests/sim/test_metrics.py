"""Tests for metric collection and percentile summaries."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.metrics import MetricsRegistry, summarize


class TestSummarize:
    def test_basic_stats(self):
        s = summarize([1, 2, 3, 4])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.minimum == 1
        assert s.maximum == 4
        assert s.total == 10

    def test_percentiles_match_numpy(self):
        data = list(range(100))
        s = summarize(data)
        assert s.p01 == pytest.approx(np.percentile(data, 1))
        assert s.p99 == pytest.approx(np.percentile(data, 99))
        assert s.median == pytest.approx(49.5)

    def test_empty_sample(self):
        s = summarize([])
        assert s.count == 0
        assert math.isnan(s.mean)
        assert s.total == 0.0

    def test_single_sample(self):
        s = summarize([7.0])
        assert s.mean == s.p01 == s.p99 == 7.0

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=60))
    def test_ordering_invariants(self, data):
        s = summarize(data)
        assert s.minimum <= s.p01 <= s.median <= s.p99 <= s.maximum
        # The mean can exceed min/max by a rounding ulp when all samples
        # are equal; allow that float slack.
        slack = 1e-9 * max(1.0, abs(s.maximum))
        assert s.minimum - slack <= s.mean <= s.maximum + slack

    def test_as_dict_keys(self):
        d = summarize([1, 2]).as_dict()
        assert set(d) == {
            "count", "mean", "std", "min", "p01", "median", "p99", "max", "total"
        }


class TestRegistry:
    def test_counters_accumulate(self):
        m = MetricsRegistry()
        m.incr("msgs")
        m.incr("msgs", 2.5)
        assert m.counter("msgs") == 3.5

    def test_unknown_counter_is_zero(self):
        assert MetricsRegistry().counter("nope") == 0.0

    def test_samples_recorded_and_summarized(self):
        m = MetricsRegistry()
        for v in (1, 2, 3):
            m.record("hops", v)
        assert m.samples("hops") == [1.0, 2.0, 3.0]
        assert m.summary("hops").mean == 2.0

    def test_record_pair_matches_two_records(self):
        batched, plain = MetricsRegistry(), MetricsRegistry()
        batched.record_pair("hops", 3, "visited", 5)
        plain.record("hops", 3)
        plain.record("visited", 5)
        for name in ("hops", "visited"):
            assert batched.samples(name) == plain.samples(name)

    def test_reset_single_series(self):
        m = MetricsRegistry()
        m.record("a", 1)
        m.incr("c")
        m.reset("a")
        assert m.samples("a") == []
        assert m.counter("c") == 1.0

    def test_reset_all(self):
        m = MetricsRegistry()
        m.record("a", 1)
        m.incr("c")
        m.reset()
        assert m.series_names == ()
        assert m.counter_names == ()

    def test_samples_returns_copy(self):
        m = MetricsRegistry()
        m.record("x", 1)
        m.samples("x").append(99.0)
        assert m.samples("x") == [1.0]


class TestNaNSafeEmission:
    """Regression: empty-series summaries must not leak NaN into reports."""

    def test_empty_summary_as_dict_emits_none(self):
        d = summarize([]).as_dict()
        assert d["count"] == 0
        for key in ("mean", "std", "min", "p01", "median", "p99", "max"):
            assert d[key] is None, key
        assert d["total"] == 0.0

    def test_empty_summary_as_dict_is_strict_json(self):
        import json

        # allow_nan=False raises on NaN/Infinity; None serialises as null.
        payload = json.loads(json.dumps(summarize([]).as_dict(), allow_nan=False))
        assert payload["mean"] is None

    def test_populated_summary_unchanged(self):
        d = summarize([1.0, 3.0]).as_dict()
        assert d["mean"] == 2.0
        assert all(v is not None for v in d.values())
