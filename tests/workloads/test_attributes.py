"""Tests for the attribute schema."""

from __future__ import annotations

import pytest

from repro.hashing.locality import CdfLocalityHash, LinearLocalityHash
from repro.workloads.attributes import (
    REALISTIC_GRID_ATTRIBUTES,
    AttributeSchema,
    AttributeSpec,
)


class TestAttributeSpec:
    def test_distribution_bounds(self):
        spec = AttributeSpec("cpu", 100.0, 5000.0)
        dist = spec.distribution
        assert dist.low == 100.0 and dist.high == 5000.0

    def test_invalid_domain_rejected(self):
        with pytest.raises(ValueError):
            AttributeSpec("x", 5.0, 5.0)
        with pytest.raises(ValueError):
            AttributeSpec("x", 0.0, 5.0)  # Pareto needs lo > 0

    def test_value_hash_kinds(self):
        spec = AttributeSpec("cpu", 1.0, 10.0)
        assert isinstance(spec.value_hash(8, "linear"), LinearLocalityHash)
        assert isinstance(spec.value_hash(8, "cdf"), CdfLocalityHash)
        with pytest.raises(ValueError):
            spec.value_hash(8, "bogus")

    def test_value_hash_respects_size(self):
        spec = AttributeSpec("cpu", 1.0, 10.0)
        h = spec.value_hash(5, "cdf")  # non-power-of-two (LORM cyclic space)
        assert h(10.0) == 4

    def test_categorical_encoding(self):
        spec = next(s for s in REALISTIC_GRID_ATTRIBUTES if s.is_categorical)
        codes = [spec.encode_category(c) for c in spec.categories]
        assert codes == sorted(codes)
        assert all(spec.lo <= c <= spec.hi for c in codes)

    def test_encode_category_on_numeric_rejected(self):
        with pytest.raises(ValueError):
            AttributeSpec("cpu", 1.0, 2.0).encode_category("linux")


class TestAttributeSchema:
    def test_synthetic_count(self):
        assert len(AttributeSchema.synthetic(200)) == 200

    def test_synthetic_starts_with_realistic_names(self):
        schema = AttributeSchema.synthetic(10)
        assert schema.names[0] == "cpu-mhz"
        assert "os" in schema.names

    def test_synthetic_pads_with_generated(self):
        schema = AttributeSchema.synthetic(30)
        assert "attr-020" in schema.names

    def test_generated_domains_vary(self):
        schema = AttributeSchema.synthetic(50)
        domains = {(s.lo, s.hi) for s in schema.specs[10:]}
        assert len(domains) > 5

    def test_unique_names_enforced(self):
        spec = AttributeSpec("dup", 1.0, 2.0)
        with pytest.raises(ValueError):
            AttributeSchema((spec, spec))

    def test_lookup_and_membership(self):
        schema = AttributeSchema.synthetic(5)
        assert "cpu-mhz" in schema
        assert schema.spec("cpu-mhz").name == "cpu-mhz"
        assert "nonexistent" not in schema

    def test_iteration_order_stable(self):
        schema = AttributeSchema.synthetic(12)
        assert [s.name for s in schema] == list(schema.names)

    def test_pareto_shape_propagates(self):
        schema = AttributeSchema.synthetic(25, pareto_shape=1.5)
        assert schema.specs[-1].pareto_shape == 1.5
