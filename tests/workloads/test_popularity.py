"""Tests for skewed-popularity models and query-stream determinism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.attributes import AttributeSchema
from repro.workloads.generator import GridWorkload, QueryKind
from repro.workloads.popularity import (
    VALUE_CELLS,
    FlashCrowdPopularity,
    UniformPopularity,
    ZipfPopularity,
    stable_seed,
    zipf_weights,
)


def _workload(popularity=None, seed=7, num_attributes=12):
    return GridWorkload(
        schema=AttributeSchema.synthetic(num_attributes),
        infos_per_attribute=20,
        seed=seed,
        popularity=popularity,
    )


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", 1, 2.5) == stable_seed("a", 1, 2.5)

    def test_sensitive_to_every_part(self):
        base = stable_seed("a", 1)
        assert stable_seed("b", 1) != base
        assert stable_seed("a", 2) != base
        assert stable_seed("a", 1, 0) != base

    def test_in_numpy_seed_range(self):
        for parts in (("x",), ("y", 10**9), (1.5, "z", -3)):
            assert 0 <= stable_seed(*parts) < (1 << 63)


class TestZipfWeights:
    def test_normalized(self):
        assert zipf_weights(50, 1.1).sum() == pytest.approx(1.0)

    def test_monotone_decreasing(self):
        w = zipf_weights(20, 0.9)
        assert all(w[i] > w[i + 1] for i in range(19))

    def test_s_zero_is_uniform(self):
        w = zipf_weights(8, 0.0)
        assert np.allclose(w, 1.0 / 8.0)

    def test_requires_positive_count(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)


class TestZipfPopularity:
    def test_s_zero_degenerates_to_uniform(self):
        assert ZipfPopularity(s=0.0).attribute_weights(10, 0) is None

    def test_hottest_rank_gets_max_weight(self):
        model = ZipfPopularity(s=1.1, seed=3)
        weights = model.attribute_weights(10, 0)
        assert int(np.argmax(weights)) == model.hot_attributes(10)[0]

    def test_rank_order_is_seeded(self):
        a = ZipfPopularity(s=1.1, seed=3).rank_order(20)
        b = ZipfPopularity(s=1.1, seed=3).rank_order(20)
        c = ZipfPopularity(s=1.1, seed=4).rank_order(20)
        assert list(a) == list(b)
        assert list(a) != list(c)

    def test_value_quantile_disabled_by_default(self):
        rng = np.random.default_rng(0)
        assert ZipfPopularity(s=1.1).value_quantile(rng, 0) is None

    def test_value_quantile_in_unit_interval(self):
        model = ZipfPopularity(s=1.1, value_s=1.0, seed=5)
        rng = np.random.default_rng(0)
        for i in range(50):
            q = model.value_quantile(rng, i)
            assert 0.0 <= q < 1.0

    def test_value_quantiles_concentrate_when_skewed(self):
        model = ZipfPopularity(s=0.0, value_s=2.0, seed=5)
        rng = np.random.default_rng(0)
        cells = [int(model.value_quantile(rng, i) * VALUE_CELLS) for i in range(400)]
        top = max(cells.count(c) for c in set(cells))
        assert top > 400 / VALUE_CELLS * 2

    def test_rejects_negative_exponents(self):
        with pytest.raises(ValueError):
            ZipfPopularity(s=-0.5)
        with pytest.raises(ValueError):
            ZipfPopularity(value_s=-0.5)


class TestStreamDeterminism:
    def test_same_seed_same_stream(self):
        a = list(_workload(ZipfPopularity(s=1.1, seed=7)).query_stream(25, 2))
        b = list(_workload(ZipfPopularity(s=1.1, seed=7)).query_stream(25, 2))
        assert a == b

    def test_different_zipf_s_different_stream(self):
        a = list(_workload(ZipfPopularity(s=0.5, seed=7)).query_stream(25, 2))
        b = list(_workload(ZipfPopularity(s=1.5, seed=7)).query_stream(25, 2))
        assert a != b

    def test_sharded_stream_matches_serial(self):
        wl = _workload(ZipfPopularity(s=1.1, seed=7))
        serial = list(wl.query_stream(30, 2, QueryKind.RANGE, label="shard"))
        first = list(wl.query_stream(12, 2, QueryKind.RANGE, label="shard"))
        rest = list(wl.query_stream(18, 2, QueryKind.RANGE, label="shard", start=12))
        assert serial == first + rest

    def test_uniform_path_rejects_sharding(self):
        with pytest.raises(ValueError):
            list(_workload(None).query_stream(5, 2, start=3))

    def test_skew_concentrates_attributes(self):
        uniform = list(_workload(None, num_attributes=16).query_stream(150, 1))
        skewed = list(
            _workload(ZipfPopularity(s=1.5, seed=7), num_attributes=16).query_stream(150, 1)
        )

        def top_count(queries):
            names = [q.constraints[0].attribute for q in queries]
            return max(names.count(n) for n in set(names))

        assert top_count(skewed) > top_count(uniform)


class TestFlashCrowd:
    def test_crowd_window_targets_one_attribute(self):
        model = FlashCrowdPopularity(onset=10, duration=15, crowd_share=1.0, seed=3)
        wl = _workload(model)
        queries = list(wl.query_stream(40, 1, QueryKind.RANGE, label="crowd"))
        inside = {q.constraints[0].attribute for q in queries[10:25]}
        outside = {q.constraints[0].attribute for q in queries[:10] + queries[25:]}
        assert len(inside) == 1
        assert len(outside) > 1

    def test_onset_survives_sharding(self):
        model = FlashCrowdPopularity(onset=8, duration=10, crowd_share=1.0, seed=3)
        wl = _workload(model)
        serial = list(wl.query_stream(30, 1, QueryKind.RANGE, label="crowd"))
        sharded = list(wl.query_stream(7, 1, QueryKind.RANGE, label="crowd")) + list(
            wl.query_stream(23, 1, QueryKind.RANGE, label="crowd", start=7)
        )
        assert serial == sharded

    def test_in_window(self):
        model = FlashCrowdPopularity(onset=5, duration=3)
        assert not model.in_window(4)
        assert model.in_window(5)
        assert model.in_window(7)
        assert not model.in_window(8)

    def test_zipf_base_applies_outside_window(self):
        base = ZipfPopularity(s=1.1, seed=3)
        model = FlashCrowdPopularity(base=base, onset=0, duration=0, seed=3)
        rng_a = np.random.default_rng(11)
        rng_b = np.random.default_rng(11)
        chosen = model.choose_attributes(rng_a, 12, 2, index=4)
        expected = base.choose_attributes(rng_b, 12, 2, index=4)
        assert list(chosen) == list(expected)

    def test_hot_set_prefers_zipf_ranks(self):
        base = ZipfPopularity(s=1.1, seed=3)
        model = FlashCrowdPopularity(
            base=base, onset=0, duration=10, crowd_share=1.0, hot_attributes=2, seed=3
        )
        rng = np.random.default_rng(0)
        chosen = set(int(i) for i in model.choose_attributes(rng, 12, 2, index=0))
        assert chosen == set(base.hot_attributes(12, 2))

    def test_validation(self):
        with pytest.raises(ValueError):
            FlashCrowdPopularity(onset=-1)
        with pytest.raises(ValueError):
            FlashCrowdPopularity(crowd_share=1.5)
        with pytest.raises(ValueError):
            FlashCrowdPopularity(hot_attributes=0)


class TestDescriptions:
    def test_describe_strings(self):
        assert UniformPopularity().describe() == "uniform"
        assert "zipf" in ZipfPopularity(s=1.1).describe()
        assert "value-zipf" in ZipfPopularity(s=1.1, value_s=0.8).describe()
        described = FlashCrowdPopularity(onset=5, duration=9).describe()
        assert "flash-crowd" in described and "uniform" in described
