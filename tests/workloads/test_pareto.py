"""Tests for the Bounded Pareto distribution."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.pareto import BoundedPareto

DIST = BoundedPareto(alpha=2.0, low=1.0, high=100.0)


class TestCdf:
    def test_boundaries(self):
        assert DIST.cdf(1.0) == 0.0
        assert DIST.cdf(100.0) == 1.0

    def test_outside_clamped(self):
        assert DIST.cdf(0.5) == 0.0
        assert DIST.cdf(1e9) == 1.0

    @given(st.floats(1.0, 100.0), st.floats(1.0, 100.0))
    def test_monotone(self, a, b):
        if a <= b:
            assert DIST.cdf(a) <= DIST.cdf(b)

    def test_skew_toward_low_values(self):
        """Half the mass sits well below the arithmetic midpoint."""
        assert DIST.cdf(10.0) > 0.9


class TestPpf:
    @given(st.floats(0.0, 1.0))
    def test_inverse_of_cdf(self, q):
        x = DIST.ppf(q)
        assert DIST.cdf(x) == pytest.approx(q, abs=1e-9)

    def test_boundaries(self):
        assert DIST.ppf(0.0) == 1.0
        assert DIST.ppf(1.0) == 100.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            DIST.ppf(1.5)


class TestPdf:
    def test_zero_outside_domain(self):
        assert DIST.pdf(0.5) == 0.0
        assert DIST.pdf(101.0) == 0.0

    def test_integrates_to_one(self):
        xs = np.linspace(1.0, 100.0, 200_001)
        ys = [DIST.pdf(float(x)) for x in xs]
        integral = np.trapezoid(ys, xs)
        assert integral == pytest.approx(1.0, rel=1e-3)

    def test_decreasing_density(self):
        assert DIST.pdf(1.5) > DIST.pdf(10.0) > DIST.pdf(90.0)


class TestMoments:
    def test_mean_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        samples = DIST.sample(rng, 200_000)
        assert DIST.mean() == pytest.approx(float(np.mean(samples)), rel=0.02)

    def test_mean_alpha_one_special_case(self):
        d = BoundedPareto(alpha=1.0, low=1.0, high=10.0)
        rng = np.random.default_rng(1)
        samples = d.sample(rng, 200_000)
        assert d.mean() == pytest.approx(float(np.mean(samples)), rel=0.02)

    def test_mean_within_bounds(self):
        assert 1.0 < DIST.mean() < 100.0


class TestSampling:
    def test_samples_within_bounds(self):
        rng = np.random.default_rng(2)
        samples = DIST.sample(rng, 10_000)
        assert samples.min() >= 1.0
        assert samples.max() <= 100.0

    def test_scalar_sample(self):
        rng = np.random.default_rng(3)
        value = DIST.sample(rng)
        assert isinstance(value, float)
        assert 1.0 <= value <= 100.0

    def test_empirical_cdf_matches_analytic(self):
        """Kolmogorov–Smirnov style check against the analytic CDF."""
        rng = np.random.default_rng(4)
        samples = np.sort(DIST.sample(rng, 50_000))
        empirical = np.arange(1, len(samples) + 1) / len(samples)
        analytic = np.array([DIST.cdf(float(x)) for x in samples[::500]])
        assert np.max(np.abs(analytic - empirical[::500])) < 0.02

    def test_reproducible(self):
        a = DIST.sample(np.random.default_rng(5), 10)
        b = DIST.sample(np.random.default_rng(5), 10)
        assert np.array_equal(a, b)


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BoundedPareto(alpha=0.0, low=1.0, high=2.0)
        with pytest.raises(ValueError):
            BoundedPareto(alpha=1.0, low=0.0, high=2.0)
        with pytest.raises(ValueError):
            BoundedPareto(alpha=1.0, low=2.0, high=2.0)
