"""Tests for the Bounded Pareto distribution."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.workloads.pareto import BoundedPareto

DIST = BoundedPareto(alpha=2.0, low=1.0, high=100.0)


class TestCdf:
    def test_boundaries(self):
        assert DIST.cdf(1.0) == 0.0
        assert DIST.cdf(100.0) == 1.0

    def test_outside_clamped(self):
        assert DIST.cdf(0.5) == 0.0
        assert DIST.cdf(1e9) == 1.0

    @given(st.floats(1.0, 100.0), st.floats(1.0, 100.0))
    def test_monotone(self, a, b):
        if a <= b:
            assert DIST.cdf(a) <= DIST.cdf(b)

    def test_skew_toward_low_values(self):
        """Half the mass sits well below the arithmetic midpoint."""
        assert DIST.cdf(10.0) > 0.9


class TestPpf:
    @given(st.floats(0.0, 1.0))
    def test_inverse_of_cdf(self, q):
        x = DIST.ppf(q)
        assert DIST.cdf(x) == pytest.approx(q, abs=1e-9)

    def test_boundaries(self):
        assert DIST.ppf(0.0) == 1.0
        assert DIST.ppf(1.0) == 100.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            DIST.ppf(1.5)


class TestPdf:
    def test_zero_outside_domain(self):
        assert DIST.pdf(0.5) == 0.0
        assert DIST.pdf(101.0) == 0.0

    def test_integrates_to_one(self):
        xs = np.linspace(1.0, 100.0, 200_001)
        ys = [DIST.pdf(float(x)) for x in xs]
        integral = np.trapezoid(ys, xs)
        assert integral == pytest.approx(1.0, rel=1e-3)

    def test_decreasing_density(self):
        assert DIST.pdf(1.5) > DIST.pdf(10.0) > DIST.pdf(90.0)


class TestMoments:
    def test_mean_matches_monte_carlo(self):
        rng = np.random.default_rng(0)
        samples = DIST.sample(rng, 200_000)
        assert DIST.mean() == pytest.approx(float(np.mean(samples)), rel=0.02)

    def test_mean_alpha_one_special_case(self):
        d = BoundedPareto(alpha=1.0, low=1.0, high=10.0)
        rng = np.random.default_rng(1)
        samples = d.sample(rng, 200_000)
        assert d.mean() == pytest.approx(float(np.mean(samples)), rel=0.02)

    def test_mean_within_bounds(self):
        assert 1.0 < DIST.mean() < 100.0


class TestSampling:
    def test_samples_within_bounds(self):
        rng = np.random.default_rng(2)
        samples = DIST.sample(rng, 10_000)
        assert samples.min() >= 1.0
        assert samples.max() <= 100.0

    def test_scalar_sample(self):
        rng = np.random.default_rng(3)
        value = DIST.sample(rng)
        assert isinstance(value, float)
        assert 1.0 <= value <= 100.0

    def test_empirical_cdf_matches_analytic(self):
        """Kolmogorov–Smirnov style check against the analytic CDF."""
        rng = np.random.default_rng(4)
        samples = np.sort(DIST.sample(rng, 50_000))
        empirical = np.arange(1, len(samples) + 1) / len(samples)
        analytic = np.array([DIST.cdf(float(x)) for x in samples[::500]])
        assert np.max(np.abs(analytic - empirical[::500])) < 0.02

    def test_reproducible(self):
        a = DIST.sample(np.random.default_rng(5), 10)
        b = DIST.sample(np.random.default_rng(5), 10)
        assert np.array_equal(a, b)


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            BoundedPareto(alpha=0.0, low=1.0, high=2.0)
        with pytest.raises(ValueError):
            BoundedPareto(alpha=1.0, low=0.0, high=2.0)
        with pytest.raises(ValueError):
            BoundedPareto(alpha=1.0, low=2.0, high=2.0)


class TestMeanNearAlphaOne:
    """Regression: the textbook mean formula cancels catastrophically as
    alpha -> 1 (and divides by zero at exactly 1)."""

    LOW, HIGH = 1.0, 100.0

    def _mean(self, alpha: float) -> float:
        return BoundedPareto(alpha=alpha, low=self.LOW, high=self.HIGH).mean()

    def test_finite_and_positive_at_one(self):
        value = self._mean(1.0)
        assert np.isfinite(value)
        # Exact alpha == 1 value: L*log(H/L) / (1 - L/H).
        assert value == pytest.approx(
            self.LOW * np.log(self.HIGH / self.LOW) / (1 - self.LOW / self.HIGH)
        )

    def test_continuous_across_one(self):
        at_one = self._mean(1.0)
        for eps in (1e-12, 1e-9):
            assert self._mean(1.0 - eps) == pytest.approx(at_one, rel=1e-6)
            assert self._mean(1.0 + eps) == pytest.approx(at_one, rel=1e-6)

    def test_monotone_decreasing_in_alpha_near_one(self):
        # More shape mass at low values => smaller mean; the unstable
        # formula violates this on both sides of 1.
        assert self._mean(1.0 - 1e-9) > self._mean(1.0) > self._mean(1.0 + 1e-9)

    @pytest.mark.parametrize("alpha", [1.0, 1.0 - 1e-9, 1.0 + 1e-9])
    def test_analytic_mean_matches_monte_carlo(self, alpha):
        dist = BoundedPareto(alpha=alpha, low=self.LOW, high=self.HIGH)
        rng = np.random.default_rng(42)
        samples = dist.sample(rng, 200_000)
        assert dist.mean() == pytest.approx(float(samples.mean()), rel=0.02)

    def test_far_from_one_unchanged(self):
        # The stable form agrees with the textbook formula where the
        # latter is well-conditioned.
        a, lo, hi = 2.5, 1.0, 100.0
        textbook = (
            a * lo * (1 - (lo / hi) ** (a - 1)) / ((a - 1) * (1 - (lo / hi) ** a))
        )
        assert BoundedPareto(alpha=a, low=lo, high=hi).mean() == pytest.approx(
            textbook, rel=1e-12
        )


class TestSampleUnified:
    """Regression: scalar and vector draws share one inverse transform."""

    def test_vector_matches_scalar_transform(self):
        rng_vec = np.random.default_rng(9)
        rng_scalar = np.random.default_rng(9)
        vector = DIST.sample(rng_vec, 64)
        scalars = np.array([DIST.sample(rng_scalar) for _ in range(64)])
        np.testing.assert_allclose(vector, scalars, rtol=1e-12)

    def test_vector_ppf_clamped_to_bounds(self):
        q = np.array([0.0, 1.0 - 1e-17, 1.0])
        x = DIST.ppf(q)
        assert x[0] == DIST.low
        assert (x <= DIST.high).all()
        assert x[-1] == DIST.high

    def test_vector_ppf_matches_scalar_ppf(self):
        q = np.linspace(0.0, 1.0, 33)
        np.testing.assert_allclose(
            DIST.ppf(q), [DIST.ppf(float(v)) for v in q], rtol=1e-12
        )

    def test_vector_ppf_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            DIST.ppf(np.array([0.5, 1.5]))
