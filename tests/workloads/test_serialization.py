"""Tests for workload save/load round-trips."""

from __future__ import annotations

import json

import pytest

from repro.workloads.attributes import AttributeSchema
from repro.workloads.generator import GridWorkload
from repro.workloads.serialization import dump_workload, load_workload, save_workload


@pytest.fixture()
def workload() -> GridWorkload:
    return GridWorkload(
        schema=AttributeSchema.synthetic(7),
        infos_per_attribute=20,
        seed=321,
        mean_span_fraction=0.2,
    )


class TestRoundTrip:
    def test_parameters_preserved(self, workload, tmp_path):
        path = save_workload(workload, tmp_path / "wl.json")
        loaded = load_workload(path)
        assert loaded.seed == workload.seed
        assert loaded.infos_per_attribute == workload.infos_per_attribute
        assert loaded.mean_span_fraction == workload.mean_span_fraction
        assert loaded.schema.names == workload.schema.names

    def test_values_regenerate_identically(self, workload, tmp_path):
        loaded = load_workload(save_workload(workload, tmp_path / "wl.json"))
        assert list(loaded.resource_infos()) == list(workload.resource_infos())

    def test_queries_regenerate_identically(self, workload, tmp_path):
        from repro.workloads.generator import QueryKind

        loaded = load_workload(save_workload(workload, tmp_path / "wl.json"))
        a = list(workload.query_stream(10, 2, QueryKind.RANGE, label="s"))
        b = list(loaded.query_stream(10, 2, QueryKind.RANGE, label="s"))
        assert a == b

    def test_categorical_attributes_preserved(self, tmp_path):
        wl = GridWorkload(AttributeSchema.synthetic(6), infos_per_attribute=5, seed=1)
        loaded = load_workload(save_workload(wl, tmp_path / "c.json"))
        os_spec = loaded.schema.spec("os")
        assert os_spec.is_categorical
        assert os_spec.categories == wl.schema.spec("os").categories


class TestEmbeddedValues:
    def test_embedded_values_verified_ok(self, workload, tmp_path):
        path = save_workload(workload, tmp_path / "v.json", include_values=True)
        loaded = load_workload(path)
        assert loaded.seed == workload.seed

    def test_tampered_values_rejected(self, workload, tmp_path):
        doc = dump_workload(workload, include_values=True)
        doc["values"]["cpu-mhz"][0] += 1.0
        with pytest.raises(ValueError, match="drift"):
            load_workload(doc)

    def test_values_present_in_document(self, workload):
        doc = dump_workload(workload, include_values=True)
        assert len(doc["values"]) == len(workload.schema)
        assert len(doc["values"]["cpu-mhz"]) == workload.num_providers


class TestValidation:
    def test_unsupported_version_rejected(self, workload):
        doc = dump_workload(workload)
        doc["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            load_workload(doc)

    def test_file_is_valid_json(self, workload, tmp_path):
        path = save_workload(workload, tmp_path / "j.json")
        parsed = json.loads(path.read_text())
        assert parsed["seed"] == 321
