"""Tests for the workload generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.resource import effective_span_fraction
from repro.workloads.attributes import AttributeSchema
from repro.workloads.generator import GridWorkload, QueryKind


@pytest.fixture(scope="module")
def wl() -> GridWorkload:
    return GridWorkload(
        schema=AttributeSchema.synthetic(10), infos_per_attribute=40, seed=5
    )


class TestResourceInfos:
    def test_total_count_is_m_times_k(self, wl):
        infos = list(wl.resource_infos())
        assert len(infos) == 10 * 40 == wl.total_info_pieces()

    def test_every_provider_reports_every_attribute(self, wl):
        infos = list(wl.resource_infos())
        providers = {i.provider for i in infos}
        assert len(providers) == 40
        for provider in providers:
            attrs = {i.attribute for i in infos if i.provider == provider}
            assert len(attrs) == 10

    def test_values_within_domains(self, wl):
        for info in wl.resource_infos():
            spec = wl.schema.spec(info.attribute)
            assert spec.lo <= info.value <= spec.hi

    def test_deterministic_across_instances(self):
        schema = AttributeSchema.synthetic(4)
        a = list(GridWorkload(schema, infos_per_attribute=10, seed=9).resource_infos())
        b = list(GridWorkload(schema, infos_per_attribute=10, seed=9).resource_infos())
        assert a == b

    def test_different_seeds_differ(self):
        schema = AttributeSchema.synthetic(4)
        a = list(GridWorkload(schema, infos_per_attribute=10, seed=1).resource_infos())
        b = list(GridWorkload(schema, infos_per_attribute=10, seed=2).resource_infos())
        assert a != b

    def test_infos_for_attribute(self, wl):
        infos = wl.infos_for_attribute("cpu-mhz")
        assert len(infos) == 40
        assert all(i.attribute == "cpu-mhz" for i in infos)

    def test_provider_value_consistent(self, wl):
        infos = wl.infos_for_attribute("cpu-mhz")
        assert infos[3].value == wl.provider_value("cpu-mhz", 3)


class TestConstraintSampling:
    def test_point_constraints_hit_existing_values(self, wl):
        rng = np.random.default_rng(0)
        values = {i.value for i in wl.infos_for_attribute("cpu-mhz")}
        for _ in range(20):
            c = wl.sample_constraint("cpu-mhz", QueryKind.POINT, rng)
            assert c.low == c.high
            assert c.low in values

    def test_range_constraints_are_ranges(self, wl):
        rng = np.random.default_rng(1)
        c = wl.sample_constraint("cpu-mhz", QueryKind.RANGE, rng)
        assert c.is_range
        assert c.low is not None and c.high is not None and c.low <= c.high

    def test_at_least_one_sided(self, wl):
        rng = np.random.default_rng(2)
        c = wl.sample_constraint("cpu-mhz", QueryKind.AT_LEAST, rng)
        assert c.low is not None and c.high is None

    def test_range_mean_span_quarter_in_quantile_space(self, wl):
        """The paper's average-case regime: expected covered CDF mass 1/4."""
        rng = np.random.default_rng(3)
        spec = wl.schema.spec("cpu-mhz")
        fractions = [
            effective_span_fraction(
                wl.sample_constraint("cpu-mhz", QueryKind.RANGE, rng),
                spec.lo, spec.hi, cdf=spec.distribution.cdf,
            )
            for _ in range(3000)
        ]
        assert np.mean(fractions) == pytest.approx(0.25, abs=0.02)

    def test_at_least_mean_span_quarter(self, wl):
        rng = np.random.default_rng(4)
        spec = wl.schema.spec("cpu-mhz")
        fractions = [
            effective_span_fraction(
                wl.sample_constraint("cpu-mhz", QueryKind.AT_LEAST, rng),
                spec.lo, spec.hi, cdf=spec.distribution.cdf,
            )
            for _ in range(3000)
        ]
        assert np.mean(fractions) == pytest.approx(0.25, abs=0.02)

    def test_custom_mean_span(self):
        wl = GridWorkload(
            schema=AttributeSchema.synthetic(3),
            infos_per_attribute=10,
            seed=0,
            mean_span_fraction=0.1,
        )
        rng = np.random.default_rng(5)
        spec = wl.schema.spec("cpu-mhz")
        fractions = [
            effective_span_fraction(
                wl.sample_constraint("cpu-mhz", QueryKind.RANGE, rng),
                spec.lo, spec.hi, cdf=spec.distribution.cdf,
            )
            for _ in range(3000)
        ]
        assert np.mean(fractions) == pytest.approx(0.1, abs=0.01)


class TestMultiQueries:
    def test_attribute_count_respected(self, wl):
        rng = np.random.default_rng(6)
        for n in (1, 3, 7):
            mq = wl.sample_multi_query(n, QueryKind.RANGE, rng)
            assert mq.num_attributes == n

    def test_attributes_distinct(self, wl):
        rng = np.random.default_rng(7)
        for _ in range(30):
            mq = wl.sample_multi_query(5, QueryKind.RANGE, rng)
            attrs = [c.attribute for c in mq.constraints]
            assert len(set(attrs)) == 5

    def test_too_many_attributes_rejected(self, wl):
        with pytest.raises(ValueError):
            wl.sample_multi_query(11)

    def test_query_stream_deterministic(self, wl):
        a = list(wl.query_stream(5, 2, QueryKind.RANGE, label="t"))
        b = list(wl.query_stream(5, 2, QueryKind.RANGE, label="t"))
        assert a == b

    def test_query_stream_labels_independent(self, wl):
        a = list(wl.query_stream(5, 2, QueryKind.RANGE, label="l1"))
        b = list(wl.query_stream(5, 2, QueryKind.RANGE, label="l2"))
        assert a != b

    def test_requesters_numbered(self, wl):
        queries = list(wl.query_stream(3, 1, QueryKind.POINT, label="n"))
        assert [q.requester for q in queries] == [
            "requester-00000", "requester-00001", "requester-00002"
        ]


class TestBruteForce:
    def test_bruteforce_honours_all_constraints(self, wl):
        rng = np.random.default_rng(8)
        mq = wl.sample_multi_query(3, QueryKind.RANGE, rng)
        providers = wl.matching_providers_bruteforce(mq)
        for p in providers:
            idx = int(p.rsplit("-", 1)[1])
            for c in mq.constraints:
                assert c.matches(wl.provider_value(c.attribute, idx))

    def test_bruteforce_point_query_finds_owner(self, wl):
        value = wl.provider_value("cpu-mhz", 7)
        from repro.core.resource import AttributeConstraint, MultiAttributeQuery

        mq = MultiAttributeQuery((AttributeConstraint.point("cpu-mhz", value),))
        assert wl.provider_name(7) in wl.matching_providers_bruteforce(mq)
