"""Tests for the theorem-constants table experiment."""

from __future__ import annotations

import pytest

from repro.experiments.theorem_table import TheoremRow, TheoremTable, run_theorem_table


class TestTheoremRow:
    def test_relative_error(self):
        row = TheoremRow("4.2", "x", predicted=2.0, measured=2.1)
        assert row.relative_error == pytest.approx(0.05)

    def test_zero_predicted(self):
        assert TheoremRow("x", "q", 0.0, 0.0).relative_error == 0.0
        assert TheoremRow("x", "q", 0.0, 1.0).relative_error == float("inf")


class TestTheoremTable:
    @pytest.fixture(scope="class")
    def table(self, tiny_config):
        return run_theorem_table(tiny_config)

    def test_all_theorems_covered(self, table):
        theorems_present = {r.theorem for r in table.rows}
        assert theorems_present == {"4.1", "4.2", "4.3", "4.4", "4.5",
                                    "4.7", "4.8", "4.9", "4.10"}

    def test_exact_rows(self, table):
        assert table.row("4.2").measured == 2.0
        sword = next(r for r in table.rows if "SWORD visited" in r.quantity)
        assert sword.measured == 1.0

    def test_every_row_within_tolerance(self, table):
        """At tiny scale all constants should land within 50%; most are
        far tighter (the benches assert tight bounds at paper scale).
        Theorem 4.1 is a lower bound, so only under-shooting is an error."""
        for row in table.rows:
            if row.theorem == "4.1":
                assert row.measured >= row.predicted * 0.95, row.quantity
            else:
                assert row.relative_error < 0.5, (row.theorem, row.quantity)

    def test_rendering(self, table, tmp_path):
        text = table.render()
        assert "4.7" in text and "predicted" in text
        path = table.save(tmp_path)
        assert path.exists()
        assert (tmp_path / "theorems.txt").exists()

    def test_row_lookup_missing(self, table):
        with pytest.raises(KeyError):
            table.row("9.9")

    def test_csv_columns(self, table):
        header = table.to_csv().splitlines()[0]
        assert header == "theorem,quantity,predicted,measured,rel_error"
