"""Tests for the tail-latency experiment (gray failures × policies)."""

from __future__ import annotations

import csv

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.tail import (
    HEADLINE_SYSTEMS,
    MAX_HEDGE_OVERHEAD,
    POLICIES,
    TailCell,
    TailResult,
    run_tail,
)


def _cell(system, fraction, policy, p99, hedges=0, messages=1000):
    return TailCell(
        system=system, slow_fraction=fraction, policy=policy,
        p50=p99 / 4, p99=p99, p999=p99 * 1.2, mean=p99 / 3,
        queries=100, messages=messages, timeouts=5, retries=5,
        hedges=hedges, hedges_won=hedges // 2,
    )


def _result(fixed_p99=4.0, hedged_p99=1.0, hedges=100, slo=1.5):
    config = ExperimentConfig(tail_slo_p99=slo)
    result = TailResult(config=config)
    for system in ("LORM", "Mercury", "SWORD", "MAAN"):
        for fraction in (0.0, 0.1):
            result.cells.append(_cell(system, fraction, "fixed", fixed_p99))
            result.cells.append(_cell(system, fraction, "adaptive", fixed_p99 / 2))
            result.cells.append(
                _cell(system, fraction, "hedged", hedged_p99, hedges=hedges)
            )
    return result


class TestTailVerdict:
    def test_headline_met(self):
        assert _result().ok

    def test_speedup_computation(self):
        assert _result(fixed_p99=4.0, hedged_p99=1.0).speedup("LORM") == 4.0

    def test_insufficient_speedup_fails(self):
        assert not _result(fixed_p99=2.0, hedged_p99=1.2).ok

    def test_slo_miss_fails(self):
        assert not _result(fixed_p99=8.0, hedged_p99=2.0, slo=1.5).ok

    def test_hedge_overhead_bound(self):
        result = _result(hedges=400)  # 40% of 1000 messages
        assert any(
            c.hedge_overhead > MAX_HEDGE_OVERHEAD
            for c in result.cells if c.policy == "hedged"
        )
        assert not result.ok

    def test_missing_cells_fail(self):
        assert not TailResult(config=ExperimentConfig()).ok

    def test_headline_fraction_is_the_worst_swept(self):
        result = TailResult(
            config=ExperimentConfig(tail_slow_fractions=(0.0, 0.05, 0.2))
        )
        assert result.headline_fraction == 0.2

    def test_render_names_the_headline_systems(self):
        text = _result().render()
        for system in HEADLINE_SYSTEMS:
            assert f"{system} @ 10% slow" in text
        assert "verdict: ok" in text


@pytest.fixture(scope="module")
def tail_result(tiny_config):
    config = tiny_config.scaled(
        tail_queries=40, tail_warmup=12, tail_slow_fractions=(0.0, 0.1)
    )
    return run_tail(config)


class TestRunTail:
    def test_sweep_shape(self, tail_result):
        assert len(tail_result.cells) == 4 * 2 * 3
        names = {c.system for c in tail_result.cells}
        assert names == {"LORM", "Mercury", "SWORD", "MAAN"}

    def test_healthy_baseline_is_policy_invariant(self, tail_result):
        # At 0% slow nodes the defenses never engage: all three policies
        # replay identical work under identical latency draws.
        for system in ("LORM", "Mercury", "SWORD", "MAAN"):
            cells = {
                name: tail_result.cell(system, 0.0, name)
                for name, _ in POLICIES
            }
            assert cells["fixed"].p99 == cells["adaptive"].p99 == cells["hedged"].p99
            assert cells["fixed"].messages == cells["hedged"].messages
            assert cells["hedged"].hedges == 0

    def test_defenses_engage_under_gray_failure(self, tail_result):
        for system in HEADLINE_SYSTEMS:
            hedged = tail_result.cell(system, 0.1, "hedged")
            fixed = tail_result.cell(system, 0.1, "fixed")
            assert hedged.hedges > 0
            assert fixed.hedges == 0
            assert hedged.hedge_overhead <= MAX_HEDGE_OVERHEAD
            # Tiny-scale cells are too noisy to pin the full 2x headline
            # (the CLI smoke gate asserts that); directionally the hedged
            # tail must not be worse than fixed.
            assert hedged.p99 <= fixed.p99

    def test_gray_failure_inflates_the_fixed_tail(self, tail_result):
        for system in HEADLINE_SYSTEMS:
            assert (
                tail_result.cell(system, 0.1, "fixed").p99
                > tail_result.cell(system, 0.0, "fixed").p99
            )

    def test_save_writes_csv_and_text(self, tail_result, tmp_path):
        csv_path = tail_result.save(tmp_path)
        assert csv_path.exists()
        assert (tmp_path / "tail.txt").exists()
        with csv_path.open() as handle:
            rows = list(csv.reader(handle))
        assert len(rows) == 1 + len(tail_result.cells)

    def test_unknown_cell_raises(self, tail_result):
        with pytest.raises(KeyError):
            tail_result.cell("LORM", 0.42, "fixed")
