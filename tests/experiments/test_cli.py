"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_figures(self):
        args = build_parser().parse_args(["run", "fig4a", "fig4b"])
        assert args.figures == ["fig4a", "fig4b"]
        assert args.scale == "smoke"

    def test_run_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_scale_and_seed_flags(self):
        args = build_parser().parse_args(["run", "fig3a", "--scale", "paper", "--seed", "7"])
        assert args.scale == "paper"
        assert args.seed == 7

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_availability_command_flags(self):
        args = build_parser().parse_args(
            ["availability", "--loss", "0", "0.05", "--replication", "1", "2",
             "--queries", "30"]
        )
        assert args.command == "availability"
        assert args.loss == [0.0, 0.05]
        assert args.replication == [1, 2]
        assert args.queries == 30

    def test_invariants_flag(self):
        args = build_parser().parse_args(["run", "fig6a", "--invariants"])
        assert args.invariants
        assert not build_parser().parse_args(["run", "fig6a"]).invariants

    def test_check_command_defaults(self):
        args = build_parser().parse_args(["check"])
        assert args.command == "check"
        assert args.systems == ["all"]
        assert args.seed == 0

    def test_check_command_flags(self):
        args = build_parser().parse_args(
            ["check", "--systems", "LORM", "MAAN", "--seed", "5",
             "--queries", "12", "--churn-events", "8"]
        )
        assert args.systems == ["LORM", "MAAN"]
        assert args.seed == 5
        assert args.queries == 12
        assert args.churn_events == 8

    def test_check_rejects_unknown_system(self, capsys):
        # Validation happens against the system registry in main() so the
        # error can name the valid choices (argparse choices= could not).
        with pytest.raises(SystemExit) as exc:
            main(["check", "--systems", "Pastry"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "Pastry" in err
        assert "LORM, Mercury, SWORD, MAAN" in err

    def test_chaos_command_defaults(self):
        args = build_parser().parse_args(["chaos"])
        assert args.command == "chaos"
        assert not args.smoke
        assert args.scale == "smoke"

    def test_chaos_smoke_flag(self):
        args = build_parser().parse_args(["chaos", "--smoke", "--seed", "3"])
        assert args.smoke
        assert args.seed == 3

    def test_trace_command_defaults(self):
        args = build_parser().parse_args(["trace", "--system", "lorm"])
        assert args.system == "lorm"
        assert args.seed == 0
        assert args.queries == 1
        assert args.attributes == 2
        assert args.kind == "range"
        assert args.loss == 0.0
        assert args.format == "tree"
        assert args.out is None

    def test_trace_requires_system(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace"])

    def test_trace_rejects_unknown_system(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--system", "kademlia"])


class TestMain:
    def test_list_prints_all_figures(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for fig in ("fig3a", "fig4a", "fig5b", "fig6b"):
            assert fig in out

    def test_run_single_figure(self, capsys, tmp_path):
        code = main(["run", "fig3a", "--scale", "smoke", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Outlinks per node" in out
        assert (tmp_path / "fig3a.csv").exists()

    def test_seed_override_changes_config(self, capsys):
        assert main(["run", "fig3a", "--seed", "123"]) == 0

    def test_lph_override(self, capsys):
        assert main(["run", "fig3a", "--lph", "linear"]) == 0

    def test_run_multiple_figures(self, capsys):
        assert main(["run", "fig3a", "theorems", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Outlinks per node" in out
        assert "Theorems 4.1-4.10" in out

    def test_availability_command(self, capsys, tmp_path, monkeypatch):
        import repro.cli as cli

        small = cli._SCALES["smoke"].scaled(
            num_attributes=6, infos_per_attribute=20,
        )
        monkeypatch.setitem(cli._SCALES, "smoke", small)
        code = main(
            ["availability", "--scale", "smoke", "--loss", "0", "0.05",
             "--replication", "1", "--queries", "10", "--out", str(tmp_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Query completeness" in out
        assert (tmp_path / "availability.csv").exists()

    def test_check_exits_zero_on_clean_run(self, capsys):
        code = main(
            ["check", "--systems", "all", "--seed", "0",
             "--queries", "12", "--churn-events", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "result: OK" in out

    def test_check_single_system(self, capsys):
        code = main(
            ["check", "--systems", "SWORD", "--seed", "1",
             "--queries", "6", "--churn-events", "6"]
        )
        assert code == 0

    def test_check_exits_nonzero_on_divergence(self, capsys, monkeypatch):
        from repro.baselines.maan import MaanService

        # A broken hop bound must turn into a non-zero exit code.
        monkeypatch.setattr(MaanService, "structural_hop_bound", lambda self: 0)
        monkeypatch.setattr(
            MaanService, "max_visited_per_subquery", lambda self: 0
        )
        code = main(
            ["check", "--systems", "MAAN", "--seed", "0",
             "--queries", "12", "--churn-events", "6"]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "DIVERGED" in out or "hop-bound" in out

    def test_chaos_command_exits_zero_and_saves(self, capsys, tmp_path, monkeypatch):
        import repro.cli as cli

        small = cli._SCALES["smoke"].scaled(
            infos_per_attribute=25,
            num_recovery_queries=6,
            recovery_sample_interval=4.0,
            maintenance_intervals=(2.0,),
        )
        monkeypatch.setitem(cli._SCALES, "smoke", small)
        code = main(["chaos", "--smoke", "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "recovery SLOs" in out
        assert (tmp_path / "chaos_slo.txt").exists()

    def test_run_with_invariants_flag(self, capsys, tiny_config, monkeypatch):
        import repro.cli as cli

        monkeypatch.setitem(cli._SCALES, "smoke", tiny_config)
        assert main(["run", "fig6a", "--invariants"]) == 0
        assert "fig6a" in capsys.readouterr().out

    def test_all_command(self, capsys, tmp_path, tiny_config, monkeypatch):
        import repro.cli as cli

        monkeypatch.setitem(
            cli._SCALES, "smoke", tiny_config.scaled(fig3a_dimensions=(3, 4))
        )
        assert main(["all", "--scale", "smoke", "--out", str(tmp_path)]) == 0
        produced = {p.name for p in tmp_path.glob("*.csv")}
        assert "fig6b.csv" in produced and "theorems.csv" in produced

    def test_trace_tree_output(self, capsys):
        assert main(["trace", "--system", "lorm", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("query LORM.multi_query")
        assert "hop hop" in out and "choice=" in out

    def test_trace_jsonl_deterministic(self, capsys):
        assert main(["trace", "--system", "sword", "--format", "jsonl"]) == 0
        first = capsys.readouterr().out
        assert main(["trace", "--system", "sword", "--format", "jsonl"]) == 0
        assert capsys.readouterr().out == first

    def test_trace_chrome_to_file(self, capsys, tmp_path):
        import json

        out_file = tmp_path / "trace.json"
        code = main([
            "trace", "--system", "maan", "--format", "chrome",
            "--out", str(out_file),
        ])
        assert code == 0
        doc = json.loads(out_file.read_text())
        assert doc["traceEvents"]
        assert capsys.readouterr().out == ""  # everything went to the file

    def test_trace_with_loss_annotates_faults(self, capsys):
        code = main([
            "trace", "--system", "mercury", "--seed", "3",
            "--queries", "2", "--loss", "0.3",
        ])
        assert code == 0
        assert "! " in capsys.readouterr().out  # at least one fault event


class TestOverlayFlags:
    def test_trace_overlay_defaults_to_native(self):
        args = build_parser().parse_args(["trace", "--system", "lorm"])
        assert args.overlay is None
        assert args.fanout == 2

    def test_tradeoff_command_defaults(self):
        args = build_parser().parse_args(["tradeoff"])
        assert args.command == "tradeoff"
        assert not args.smoke
        assert args.systems is None  # resolved to all systems in main()
        assert args.overlays is None

    def test_trace_rejects_unknown_overlay(self, capsys):
        # Overlay validation happens in main() against the overlay registry
        # so the message can name the valid substrates.
        with pytest.raises(SystemExit) as exc:
            main(["trace", "--system", "lorm", "--overlay", "pastry"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "pastry" in err
        for name in ("chord", "cycloid", "singlehop", "record"):
            assert name in err

    def test_tradeoff_rejects_unknown_overlay_point(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["tradeoff", "--smoke", "--overlays", "kademlia"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "kademlia" in err
        assert "singlehop" in err

    def test_trace_on_singlehop_substrate(self, capsys):
        code = main([
            "trace", "--system", "maan", "--overlay", "singlehop",
            "--kind", "point",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert 'choice="membership"' in out
