"""Tests for the ASCII topology/load renderers."""

from __future__ import annotations

import pytest

from repro.overlay.chord import ChordRing
from repro.overlay.cycloid import CycloidId, CycloidOverlay
from repro.plotting.topology import render_cluster_grid, render_ring_load


@pytest.fixture()
def loaded_ring() -> ChordRing:
    ring = ChordRing(6)
    ring.build_full()
    for _ in range(20):
        ring.store("hot", 10, "x")  # hotspot at node 10
    ring.store("hot", 40, "y")
    return ring


@pytest.fixture()
def loaded_overlay() -> CycloidOverlay:
    overlay = CycloidOverlay(3)
    overlay.build_full()
    for k in range(3):
        overlay.store("lorm", CycloidId(k, 5), "v")
    return overlay


class TestRingLoad:
    def test_mentions_population_and_max(self, loaded_ring):
        out = render_ring_load(loaded_ring, "hot", ascii_only=True)
        assert "64 nodes" in out
        assert "heaviest node: 10 (20 pieces)" in out

    def test_hotspot_glyph_strongest(self, loaded_ring):
        out = render_ring_load(loaded_ring, "hot", width=64, ascii_only=True)
        row = out.splitlines()[2]
        assert row[10] == "8"  # hotspot bin at full scale
        assert row.count("8") == 1

    def test_empty_ring_all_dots(self):
        ring = ChordRing(5)
        ring.build_full()
        row = render_ring_load(ring, ascii_only=True).splitlines()[2]
        assert set(row) == {"."}

    def test_namespace_filtering(self, loaded_ring):
        out = render_ring_load(loaded_ring, "other", ascii_only=True)
        assert "heaviest node" in out
        assert set(out.splitlines()[2]) == {"."}

    def test_width_validation(self, loaded_ring):
        with pytest.raises(ValueError):
            render_ring_load(loaded_ring, width=4)

    def test_unicode_glyphs_default(self, loaded_ring):
        out = render_ring_load(loaded_ring, "hot")
        assert "█" in out


class TestClusterGrid:
    def test_grid_dimensions(self, loaded_overlay):
        out = render_cluster_grid(loaded_overlay, ascii_only=True)
        k_rows = [l for l in out.splitlines() if l.strip().startswith("k=")]
        assert len(k_rows) == 3  # one band of 8 clusters, d=3 rows

    def test_loaded_cluster_visible(self, loaded_overlay):
        out = render_cluster_grid(loaded_overlay, "lorm", ascii_only=True)
        k_rows = [l for l in out.splitlines() if l.strip().startswith("k=")]
        # Column 5 carries the load in every row.
        for row in k_rows:
            cells = row.split("|")[1]
            assert cells[5] != "."

    def test_vacant_positions_blank(self):
        overlay = CycloidOverlay(3)
        overlay.build([CycloidId(0, 0)])
        out = render_cluster_grid(overlay, ascii_only=True)
        row_k2 = next(l for l in out.splitlines() if l.strip().startswith("k=2"))
        assert row_k2.split("|")[1].strip() == ""

    def test_banding_for_many_clusters(self):
        overlay = CycloidOverlay(5)
        overlay.build_full()
        out = render_cluster_grid(overlay, clusters_per_row=8)
        assert out.count("clusters ") == 4  # 32 clusters / 8 per band

    def test_validation(self, loaded_overlay):
        with pytest.raises(ValueError):
            render_cluster_grid(loaded_overlay, clusters_per_row=2)
