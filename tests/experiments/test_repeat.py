"""Tests for multi-seed figure repetition."""

from __future__ import annotations

import pytest

from repro.experiments import figure4
from repro.experiments.repeat import run_repeated


@pytest.fixture(scope="module")
def repeated(tiny_config):
    cfg = tiny_config.scaled(max_query_attributes=2, num_requesters=4)
    return run_repeated(figure4.run_fig4a, cfg, repeats=3)


class TestRunRepeated:
    def test_seeds_distinct(self, repeated, tiny_config):
        assert len(set(repeated.seeds)) == 3
        assert repeated.seeds[0] == tiny_config.seed

    def test_all_series_aggregated(self, repeated):
        assert "LORM" in repeated.envelopes
        assert "MAAN" in repeated.envelopes

    def test_envelope_ordering(self, repeated):
        for name in repeated.envelopes:
            x, mean, lo, hi = repeated.envelopes[name]
            for m, a, b in zip(mean, lo, hi):
                assert a <= m <= b

    def test_mean_curve_matches_envelope(self, repeated):
        curve = repeated.mean_curve("LORM")
        assert curve.y == repeated.envelopes["LORM"][1]

    def test_spread_is_modest_for_hop_means(self, repeated):
        """Across seeds the average-hops curves should agree within ~35%."""
        assert repeated.spread("LORM") < 0.35
        assert repeated.spread("MAAN") < 0.35

    def test_to_figure_renders(self, repeated, tmp_path):
        figure = repeated.to_figure()
        assert figure.figure_id == "fig4a-mean"
        figure.save(tmp_path)
        assert (tmp_path / "fig4a-mean.csv").exists()

    def test_single_repeat_identity(self, tiny_config):
        cfg = tiny_config.scaled(max_query_attributes=1, num_requesters=3)
        single = run_repeated(figure4.run_fig4a, cfg, repeats=1)
        direct = figure4.run_fig4a(cfg)
        assert single.mean_curve("LORM").y == direct.curve("LORM").y

    def test_invalid_repeats(self, tiny_config):
        with pytest.raises(ValueError):
            run_repeated(figure4.run_fig4a, tiny_config, repeats=0)
