"""Tests for figure rendering (CSV, tables, charts, persistence)."""

from __future__ import annotations

from repro.analysis.models import AnalysisCurve
from repro.experiments.report import DistributionResult, FigureResult


def make_figure() -> FigureResult:
    fig = FigureResult(
        figure_id="figX",
        title="Demo",
        x_label="x",
        y_label="y",
    )
    fig.add(AnalysisCurve("a", (1.0, 2.0), (10.0, 20.0)))
    fig.add(AnalysisCurve("b", (1.0, 2.0), (1.0, 2.0)))
    return fig


class TestFigureResult:
    def test_curve_lookup(self):
        fig = make_figure()
        assert fig.curve("a").y == (10.0, 20.0)

    def test_unknown_curve_raises(self):
        fig = make_figure()
        try:
            fig.curve("zzz")
            raise AssertionError("expected KeyError")
        except KeyError as err:
            assert "figX" in str(err)

    def test_csv_shape(self):
        lines = make_figure().to_csv().strip().splitlines()
        assert lines[0] == "x,a,b"
        assert lines[1].startswith("1.0,")
        assert len(lines) == 3

    def test_csv_handles_disjoint_x(self):
        fig = make_figure()
        fig.add(AnalysisCurve("c", (3.0,), (5.0,)))
        lines = fig.to_csv().strip().splitlines()
        assert len(lines) == 4  # header + x in {1, 2, 3}
        assert lines[-1].startswith("3.0,,")

    def test_table_mentions_everything(self):
        table = make_figure().to_table()
        assert "figX" in table and "a" in table and "20" in table

    def test_render_includes_chart_and_notes(self):
        fig = make_figure()
        fig.notes.append("hello-note")
        out = fig.render()
        assert "hello-note" in out
        assert "[x]" in out  # chart axis label

    def test_save_writes_files(self, tmp_path):
        path = make_figure().save(tmp_path)
        assert path.read_text().startswith("x,a,b")
        assert (tmp_path / "figX.txt").exists()


class TestDistributionResult:
    def make(self) -> DistributionResult:
        dist = DistributionResult(
            figure_id="figD", title="Dist", value_label="pieces"
        )
        dist.add("MAAN", 100.0, 0.0, 900.0)
        dist.add("LORM", 50.0, 10.0, 120.0)
        return dist

    def test_row_lookup(self):
        assert self.make().row("LORM").p99 == 120.0

    def test_unknown_row_raises(self):
        try:
            self.make().row("zzz")
            raise AssertionError("expected KeyError")
        except KeyError:
            pass

    def test_csv(self):
        lines = self.make().to_csv().strip().splitlines()
        assert lines[0] == "series,mean,p01,p99"
        assert len(lines) == 3

    def test_save(self, tmp_path):
        path = self.make().save(tmp_path)
        assert path.name == "figD.csv"
        assert (tmp_path / "figD.txt").read_text().startswith("figD: Dist")

    def test_add_summary(self):
        from repro.sim.metrics import summarize

        dist = DistributionResult("f", "t", "v")
        dist.add_summary("x", summarize([1, 2, 3]))
        assert dist.row("x").mean == 2.0


class TestEmptySeriesEmission:
    """Regression: summarize([]) rows render as empty cells, never 'nan'."""

    def make(self) -> DistributionResult:
        from repro.sim.metrics import summarize

        dist = DistributionResult("figE", "Empty", "pieces")
        dist.add("measured", 4.0, 1.0, 9.0)
        dist.add_summary("empty series", summarize([]))
        return dist

    def test_csv_has_no_nan_tokens(self):
        csv_text = self.make().to_csv()
        assert "nan" not in csv_text.lower()
        lines = csv_text.strip().splitlines()
        assert lines[2] == "empty series,,,"

    def test_table_renders_dashes(self):
        table = self.make().to_table()
        assert "nan" not in table.lower()
        assert "-" in table

    def test_save_roundtrip_is_nan_free(self, tmp_path):
        path = self.make().save(tmp_path)
        assert "nan" not in path.read_text().lower()
        assert "nan" not in (tmp_path / "figE.txt").read_text().lower()
