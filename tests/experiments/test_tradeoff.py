"""Tests for the lookup-vs-maintenance tradeoff experiment."""

from __future__ import annotations

import csv

import pytest

from repro.experiments.config import SMOKE_CONFIG, ExperimentConfig
from repro.experiments.tradeoff import (
    SINGLEHOP_MEAN_HOPS_GATE,
    TradeoffCell,
    TradeoffResult,
    overlay_points,
    run_tradeoff,
)

TINY = SMOKE_CONFIG.scaled(
    num_attributes=6,
    infos_per_attribute=10,
    tradeoff_queries=12,
    tradeoff_churn_events=4,
    tradeoff_fanouts=(1, 2),
    tradeoff_budgets=("unlimited",),
)


def _cell(overlay, budget="unlimited", system="MAAN", mean_hops=1.0,
          maintenance=5.0, verified=True):
    return TradeoffCell(
        overlay=overlay,
        budget=budget,
        system=system,
        mean_hops=mean_hops,
        max_hops=int(mean_hops) + 1,
        mean_latency=mean_hops * 0.05,
        maintenance_per_event=maintenance,
        retries=0,
        queries=12,
        lookups=12,
        verified=verified,
    )


def _result(singlehop_hops=1.0, record_means=(4.0, 3.0), verified=True):
    config = ExperimentConfig(tradeoff_fanouts=(1, 2))
    result = TradeoffResult(config=config, systems=("MAAN",))
    result.cells.append(_cell("chord", mean_hops=4.5))
    for fanout, mean in zip((1, 2), record_means):
        result.cells.append(_cell(f"record:f{fanout}", mean_hops=mean))
    result.cells.append(
        _cell("singlehop", mean_hops=singlehop_hops, verified=verified)
    )
    return result


class TestVerdict:
    def test_curve_within_gate_passes(self):
        assert _result().ok

    def test_singlehop_over_gate_fails(self):
        assert not _result(singlehop_hops=SINGLEHOP_MEAN_HOPS_GATE + 0.1).ok

    def test_unverified_singlehop_traces_fail(self):
        assert not _result(verified=False).ok

    def test_non_monotone_record_curve_fails(self):
        assert not _result(record_means=(3.0, 4.0)).ok

    def test_missing_verdict_cells_fail(self):
        result = _result()
        result.cells = [c for c in result.cells if c.overlay != "singlehop"]
        assert not result.ok

    def test_empty_sweep_fails(self):
        assert not TradeoffResult(
            config=ExperimentConfig(), systems=("MAAN",)
        ).ok


class TestOverlayPoints:
    def test_points_ordered_cheap_to_costly(self):
        labels = [p[0] for p in overlay_points(TINY)]
        assert labels == ["chord", "record:f1", "record:f2", "singlehop"]

    def test_unknown_point_raises_with_valid_choices(self):
        with pytest.raises(ValueError, match="singlehop"):
            run_tradeoff(TINY, overlays=("warp-drive",))


class TestSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return run_tradeoff(TINY, systems=("MAAN",))

    def test_every_point_measured_for_every_budget(self, result):
        expected = {
            (label, budget, "MAAN")
            for label, _, _ in overlay_points(TINY)
            for budget in TINY.tradeoff_budgets
        }
        got = {(c.overlay, c.budget, c.system) for c in result.cells}
        assert got == expected

    def test_verdict_holds_at_tiny_scale(self, result):
        assert result.ok
        cell = result.cell("singlehop", "unlimited", "MAAN")
        assert cell.mean_hops <= SINGLEHOP_MEAN_HOPS_GATE
        assert cell.verified

    def test_cells_carry_complete_measurements(self, result):
        for cell in result.cells:
            assert cell.lookups > 0
            assert cell.maintenance_per_event >= 0.0
            assert cell.mean_latency == pytest.approx(cell.mean_hops * 0.05)

    def test_render_names_the_verdict(self, result):
        text = result.render()
        assert "verdict: ok" in text
        assert "singlehop" in text

    def test_save_writes_csv_and_text(self, result, tmp_path):
        csv_path = result.save(tmp_path)
        with csv_path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(result.cells)
        assert {row["overlay"] for row in rows} == {
            c.overlay for c in result.cells
        }
        assert "verdict" in (tmp_path / "tradeoff.txt").read_text()
