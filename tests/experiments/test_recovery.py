"""Tests for the recovery experiment (chaos timelines × budgeted maintenance)."""

from __future__ import annotations

import math

import pytest

from repro.experiments.config import SMOKE_CONFIG
from repro.experiments.recovery import run_chaos_demo, run_recovery
from repro.experiments.runner import FIGURES

SYSTEMS = ("LORM", "Mercury", "SWORD", "MAAN")

#: The demo at reduced load: same population and scenario shape as smoke
#: (so the crash burst still hits data holders), lighter probing.
TINY = SMOKE_CONFIG.scaled(
    infos_per_attribute=25,
    num_recovery_queries=6,
    recovery_sample_interval=4.0,
    maintenance_intervals=(2.0,),
    recovery_churn_rates=(0.0,),
)


@pytest.fixture(scope="module")
def demo():
    return run_chaos_demo(TINY)


class TestChaosDemo:
    def test_acceptance_contract_holds(self, demo):
        assert demo.ok

    def test_budgeted_runs_reconverge_with_finite_ttr(self, demo):
        assert set(demo.budgeted) == set(SYSTEMS)
        for name in SYSTEMS:
            tracker = demo.budgeted[name]
            assert tracker.reconverged, name
            assert math.isfinite(tracker.time_to_reconverge()), name

    def test_zero_budget_control_stays_broken(self, demo):
        assert set(demo.unbudgeted) == set(SYSTEMS)
        for name in SYSTEMS:
            tracker = demo.unbudgeted[name]
            assert not tracker.reconverged, name
            # The crash burst's replica deficit persists to the horizon.
            assert tracker.samples[-1].replica_deficit > 0, name

    def test_availability_dips_during_faults(self, demo):
        for name in SYSTEMS:
            timeline = demo.budgeted[name].availability_timeline()
            assert timeline[0][1] == 1.0, name  # healthy before the chaos
            assert min(a for _, a in timeline) < 1.0, name
            assert timeline[-1][1] == 1.0, name  # healed by the horizon

    def test_figure_carries_one_timeline_per_system(self, demo):
        assert demo.figure.figure_id == "chaos"
        assert demo.figure.curve_names == list(SYSTEMS)
        assert demo.figure.notes

    def test_fault_accounting_published(self, demo):
        for name in SYSTEMS:
            tracker = demo.budgeted[name]
            # The partition forced drops; the counters made it to metrics.
            assert tracker.service.metrics.counter("faults.dropped") > 0, name

    def test_slo_table_lists_both_regimes(self, demo):
        table = demo.slo_table()
        for name in SYSTEMS:
            assert name in table
        assert "never" in table  # the budget=0 column

    def test_save_writes_artifacts(self, demo, tmp_path):
        demo.save(tmp_path)
        assert (tmp_path / "chaos.csv").exists()
        assert (tmp_path / "chaos_slo.txt").exists()

    def test_render_is_deterministic(self):
        fast = TINY.scaled(num_recovery_queries=4, recovery_sample_interval=8.0)
        assert run_chaos_demo(fast).render() == run_chaos_demo(fast).render()


class TestRunRecovery:
    def test_figure_shape_and_registration(self):
        config = TINY.scaled(num_recovery_queries=4, recovery_sample_interval=8.0)
        figure = run_recovery(config)
        assert "recovery" in FIGURES
        assert figure.curve_names == [f"{name} R=0" for name in SYSTEMS]
        for curve in figure.curves:
            assert list(curve.x) == [2.0]
            assert all(t > 0 for t in curve.y)
        assert figure.notes
