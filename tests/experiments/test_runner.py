"""Tests for the figure registry and runner."""

from __future__ import annotations

import pytest

from repro.experiments.runner import FIGURES, run_all_figures, run_figure


class TestRegistry:
    def test_every_paper_figure_registered(self):
        assert set(FIGURES) == {
            "fig3a", "fig3b", "fig3c", "fig3d",
            "fig4a", "fig4b", "fig5a", "fig5b",
            "fig6a", "fig6b", "theorems", "latency", "staleness", "maintenance",
            "availability", "recovery", "scale",
        }

    def test_unknown_figure_rejected(self, tiny_config):
        with pytest.raises(KeyError, match="unknown figure"):
            run_figure("fig99", tiny_config)


class TestRunFigure:
    def test_runs_and_saves(self, tiny_config, tmp_path):
        cfg = tiny_config.scaled(fig3a_dimensions=(3, 4))
        result = run_figure("fig3a", cfg, save_dir=tmp_path)
        assert result.figure_id == "fig3a"
        assert (tmp_path / "fig3a.csv").exists()
        assert (tmp_path / "fig3a.txt").exists()

    def test_distribution_figure_saves_too(self, tiny_config, tmp_path):
        run_figure("fig3c", tiny_config, save_dir=tmp_path)
        assert (tmp_path / "fig3c.csv").exists()


class TestRunAll:
    def test_all_figures_produced_and_saved(self, tiny_config, tmp_path):
        cfg = tiny_config.scaled(fig3a_dimensions=(3, 4))
        results = run_all_figures(cfg, save_dir=tmp_path)
        assert set(results) == set(FIGURES)
        for figure_id in FIGURES:
            assert (tmp_path / f"{figure_id}.csv").exists(), figure_id
