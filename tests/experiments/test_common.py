"""Tests for the shared experiment plumbing (ServiceBundle, builders)."""

from __future__ import annotations

import pytest

from repro.experiments.common import build_services, build_workload


class TestBuildWorkload:
    def test_parameters_flow_from_config(self, tiny_config):
        wl = build_workload(tiny_config)
        assert len(wl.schema) == tiny_config.num_attributes
        assert wl.infos_per_attribute == tiny_config.infos_per_attribute
        assert wl.seed == tiny_config.seed
        assert wl.mean_span_fraction == tiny_config.mean_span_fraction

    def test_deterministic(self, tiny_config):
        a = list(build_workload(tiny_config).resource_infos())
        b = list(build_workload(tiny_config).resource_infos())
        assert a == b


class TestBuildServices:
    def test_populations_match_across_overlays(self, tiny_config):
        bundle = build_services(tiny_config, register=False)
        populations = {s.num_nodes() for s in bundle.all()}
        assert populations == {tiny_config.population}

    def test_register_false_leaves_directories_empty(self, tiny_config):
        bundle = build_services(tiny_config, register=False)
        assert all(s.total_info_pieces() == 0 for s in bundle.all())

    def test_registered_totals(self, loaded_bundle):
        base = loaded_bundle.workload.total_info_pieces()
        assert loaded_bundle.lorm.total_info_pieces() == base
        assert loaded_bundle.maan.total_info_pieces() == 2 * base

    def test_routed_registration_same_placement(self, tiny_config):
        fast = build_services(tiny_config)
        slow = build_services(tiny_config, routed_registration=True)
        assert fast.lorm.directory_sizes() == slow.lorm.directory_sizes()
        assert fast.sword.directory_sizes() == slow.sword.directory_sizes()

    def test_seed_offset_changes_service_seeds_not_workload(self, tiny_config):
        a = build_services(tiny_config, register=False, seed_offset=0)
        b = build_services(tiny_config, register=False, seed_offset=7)
        assert list(a.workload.resource_infos()) == list(b.workload.resource_infos())
        ids_a = [a.lorm.random_node().cid for _ in range(8)]
        ids_b = [b.lorm.random_node().cid for _ in range(8)]
        assert ids_a != ids_b

    def test_by_name(self, loaded_bundle):
        assert loaded_bundle.by_name("LORM") is loaded_bundle.lorm
        assert loaded_bundle.by_name("MAAN") is loaded_bundle.maan
        with pytest.raises(KeyError):
            loaded_bundle.by_name("Pastry")

    def test_set_collect_matches_toggles_everywhere(self, tiny_config):
        bundle = build_services(tiny_config, register=False)
        bundle.set_collect_matches(False)
        assert all(not s.collect_matches for s in bundle.all())
        bundle.set_collect_matches(True)
        assert all(s.collect_matches for s in bundle.all())

    def test_full_ring_used_when_population_is_power_of_two(self, tiny_config):
        # d=5 -> population 160; with chord_bits=8 the ring is sparse.
        bundle = build_services(tiny_config, register=False)
        assert bundle.sword.ring.num_nodes == 160
        assert bundle.sword.ring.space.size == 256
