"""Incremental saving and the opt-in parallel figure runner."""

from __future__ import annotations

import pytest

from repro.experiments import figure4
from repro.experiments.runner import (
    run_all_figures,
    run_figure,
    run_figures_parallel,
)


class TestIncrementalSave:
    def test_finished_figures_survive_a_crash(self, tiny_config, tmp_path, monkeypatch):
        """A failure mid-run must not discard already-computed figures."""

        def explode(*args, **kwargs):
            raise RuntimeError("simulated mid-run crash")

        monkeypatch.setattr(figure4, "run_fig4", explode)
        cfg = tiny_config.scaled(fig3a_dimensions=(3, 4))
        with pytest.raises(RuntimeError, match="simulated mid-run crash"):
            run_all_figures(cfg, save_dir=tmp_path)
        # Everything computed before the crash is already on disk.
        for figure_id in ("fig3a", "fig3b", "fig3c", "fig3d"):
            assert (tmp_path / f"{figure_id}.csv").exists(), figure_id
        assert not (tmp_path / "fig4a.csv").exists()


class TestParallelRunner:
    def test_results_identical_to_serial(self, tiny_config, tmp_path):
        serial = run_figure("fig4a", tiny_config)
        parallel = run_figures_parallel(
            ["fig4a"], tiny_config, save_dir=tmp_path, max_workers=1
        )
        assert set(parallel) == {"fig4a"}
        assert parallel["fig4a"].render() == serial.render()
        # Workers persist their own results as they finish.
        assert (tmp_path / "fig4a.csv").exists()

    def test_multiple_figures_fan_out(self, tiny_config):
        results = run_figures_parallel(
            ["fig4a", "fig5a"], tiny_config, max_workers=2
        )
        assert set(results) == {"fig4a", "fig5a"}
        assert results["fig5a"].render() == run_figure("fig5a", tiny_config).render()

    def test_unknown_figure_rejected_before_spawning(self, tiny_config):
        with pytest.raises(KeyError, match="unknown figures"):
            run_figures_parallel(["fig99"], tiny_config)
