"""Tests for the maintenance-traffic extension figure."""

from __future__ import annotations

import pytest

from repro.experiments.maintenance import maintenance_trial, run_maintenance


@pytest.fixture(scope="module")
def small_config(tiny_config):
    return tiny_config.scaled(churn_rates=(0.1, 0.5))


class TestMaintenanceTrial:
    @pytest.fixture(scope="class")
    def trial(self, small_config):
        return maintenance_trial(small_config, rate=0.5)

    def test_all_approaches_present(self, trial):
        assert set(trial) == {"LORM", "Mercury", "SWORD", "MAAN"}

    def test_mercury_pays_per_hub(self, trial, small_config):
        """Mercury's structural traffic is ~m x a single ring's."""
        m = small_config.num_attributes
        assert trial["Mercury"] > (m / 2) * trial["SWORD"]

    def test_single_dht_approaches_same_order(self, trial):
        assert trial["LORM"] < 5 * trial["SWORD"]
        assert trial["MAAN"] == pytest.approx(trial["SWORD"], rel=0.5)

    def test_rates_positive(self, trial):
        assert all(v > 0 for v in trial.values())


class TestMaintenanceFigure:
    @pytest.fixture(scope="class")
    def figure(self, small_config):
        return run_maintenance(small_config)

    def test_traffic_grows_with_churn_rate(self, figure):
        for name in ("Mercury", "LORM", "SWORD", "MAAN"):
            ys = figure.curve(name).y
            assert ys[-1] > ys[0]

    def test_mercury_dominates_at_every_rate(self, figure):
        mercury = figure.curve("Mercury").y
        for other in ("LORM", "SWORD", "MAAN"):
            for i, v in enumerate(figure.curve(other).y):
                assert mercury[i] > 5 * v

    def test_renders_and_saves(self, figure, tmp_path):
        figure.save(tmp_path)
        assert (tmp_path / "maintenance.csv").exists()
        assert "Theorem 4.1" in figure.render()
