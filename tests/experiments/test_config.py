"""Tests for the experiment configuration."""

from __future__ import annotations

import math

import pytest

from repro.experiments.config import PAPER_CONFIG, SMOKE_CONFIG, ExperimentConfig


class TestPaperConfig:
    def test_section_v_constants(self):
        """The defaults are exactly the paper's Section V setup."""
        assert PAPER_CONFIG.dimension == 8
        assert PAPER_CONFIG.chord_bits == 11
        assert PAPER_CONFIG.num_attributes == 200
        assert PAPER_CONFIG.infos_per_attribute == 500
        assert PAPER_CONFIG.num_range_queries == 1000
        assert PAPER_CONFIG.num_churn_requests == 10000
        assert PAPER_CONFIG.churn_rates == (0.1, 0.2, 0.3, 0.4, 0.5)

    def test_derived_populations(self):
        assert PAPER_CONFIG.cycloid_nodes == 2048
        assert PAPER_CONFIG.population == 2048
        assert PAPER_CONFIG.log_n == pytest.approx(11.0)

    def test_fig4_query_volume(self):
        assert PAPER_CONFIG.num_requesters * PAPER_CONFIG.queries_per_requester == 1000


class TestValidation:
    def test_bad_dimension(self):
        with pytest.raises(ValueError):
            ExperimentConfig(dimension=1)

    def test_query_attributes_bounded_by_schema(self):
        with pytest.raises(ValueError):
            ExperimentConfig(num_attributes=5, max_query_attributes=6)


class TestScaled:
    def test_scaled_overrides(self):
        cfg = PAPER_CONFIG.scaled(dimension=5, seed=1)
        assert cfg.dimension == 5
        assert cfg.seed == 1
        assert cfg.num_attributes == PAPER_CONFIG.num_attributes

    def test_scaled_does_not_mutate_original(self):
        PAPER_CONFIG.scaled(dimension=5)
        assert PAPER_CONFIG.dimension == 8


class TestSchema:
    def test_schema_size_matches(self):
        assert len(SMOKE_CONFIG.schema()) == SMOKE_CONFIG.num_attributes

    def test_smoke_is_smaller_but_same_shape(self):
        assert SMOKE_CONFIG.cycloid_nodes < PAPER_CONFIG.cycloid_nodes
        assert SMOKE_CONFIG.population <= (1 << SMOKE_CONFIG.chord_bits)
