"""Tests for the ASCII chart renderer."""

from __future__ import annotations

import pytest

from repro.plotting.ascii import ascii_chart


class TestAsciiChart:
    def test_title_and_legend(self):
        out = ascii_chart({"series-1": ([1, 2], [3, 4])}, title="T")
        assert out.splitlines()[0] == "T"
        assert "series-1" in out

    def test_markers_distinct_per_series(self):
        out = ascii_chart({"a": ([1, 2], [1, 2]), "b": ([1, 2], [2, 1])})
        legend = out.splitlines()[-1]
        assert "o = a" in legend and "x = b" in legend

    def test_log_scale_requires_positive(self):
        with pytest.raises(ValueError):
            ascii_chart({"a": ([1], [0.0])}, log_y=True)

    def test_log_scale_renders(self):
        out = ascii_chart({"a": ([1, 2, 3], [1, 100, 10000])}, log_y=True)
        assert "(log y)" in out

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart({})

    def test_flat_series_no_crash(self):
        out = ascii_chart({"flat": ([1, 2, 3], [5, 5, 5])})
        assert "flat" in out

    def test_single_point(self):
        out = ascii_chart({"p": ([1], [1])})
        assert "p" in out

    def test_dimensions_respected(self):
        out = ascii_chart({"a": ([1, 2], [1, 2])}, width=30, height=8)
        grid_lines = [l for l in out.splitlines() if "|" in l]
        assert len(grid_lines) == 8  # exactly `height` plot rows
        assert all(len(l.split("|", 1)[1]) <= 30 for l in grid_lines)

    def test_axis_labels_present(self):
        out = ascii_chart(
            {"a": ([1, 2], [1, 2])}, x_label="attrs", y_label="hops"
        )
        assert "[attrs]" in out and "hops" in out
