"""Tests for the staleness extension experiment."""

from __future__ import annotations

import pytest

from repro.experiments.staleness import run_staleness, staleness_trial


@pytest.fixture(scope="module")
def small_config(tiny_config):
    return tiny_config.scaled(num_attributes=6, infos_per_attribute=15, dimension=4)


class TestStalenessTrial:
    def test_no_expiry_accumulates_staleness(self, small_config):
        trial = staleness_trial(small_config, None)
        assert trial["departed_share"] > 0.3
        assert trial["stale_fraction"] > 0.1
        assert trial["expirations"] == 0

    def test_short_ttl_bounds_staleness(self, small_config):
        with_lease = staleness_trial(small_config, 7.5)
        baseline = staleness_trial(small_config, None)
        assert with_lease["stale_fraction"] < baseline["stale_fraction"] / 3
        assert with_lease["expirations"] > 0

    def test_renewals_counted(self, small_config):
        trial = staleness_trial(small_config, 15.0)
        assert trial["renewals"] > 0


class TestStalenessFigure:
    @pytest.fixture(scope="class")
    def figure(self, small_config):
        return run_staleness(small_config, ttls=(7.5, 30.0))

    def test_curves_present(self, figure):
        assert figure.curve_names == ["with expiry", "no expiry (baseline)"]

    def test_expiry_always_beats_baseline(self, figure):
        leased = figure.curve("with expiry").y
        baseline = figure.curve("no expiry (baseline)").y
        assert all(a < b for a, b in zip(leased, baseline))

    def test_baseline_flat(self, figure):
        assert len(set(figure.curve("no expiry (baseline)").y)) == 1

    def test_renders_and_saves(self, figure, tmp_path):
        figure.save(tmp_path)
        assert (tmp_path / "staleness.csv").exists()
