"""Tests for the n-scaling experiment on the compact array core."""

from __future__ import annotations

import json
import math

import pytest

from repro.experiments.config import SMOKE_CONFIG
from repro.experiments.scale import run_scale, scale_point


@pytest.fixture(scope="module")
def scale_config():
    """A sub-second scaling sweep (two tiny populations)."""
    return SMOKE_CONFIG.scaled(
        scale_sizes=(64, 256), scale_queries=40, scale_churn_events=9
    )


@pytest.fixture(scope="module")
def result(scale_config):
    return run_scale(scale_config)


class TestScalePoint:
    def test_deterministic(self, scale_config):
        a = scale_point(scale_config, 64)
        b = scale_point(scale_config, 64)
        # Wall-clock and memory fields vary run to run; the measured
        # figures must not.
        assert a.mean_hops == b.mean_hops
        assert a.p99_hops == b.p99_hops
        assert a.maintenance_per_event == b.maintenance_per_event
        assert a.bits == b.bits

    def test_hops_track_half_log2_n(self, scale_config):
        point = scale_point(scale_config, 256)
        assert point.half_log2_n == pytest.approx(4.0)
        # Stabilized Chord averages ~0.5*log2(n) hops; leave generous
        # slack, the tie to Figure 4 is pinned by the equivalence tests.
        assert 0.25 * point.half_log2_n < point.mean_hops < 2.5 * point.half_log2_n

    def test_resource_accounting_present(self, scale_config):
        point = scale_point(scale_config, 64)
        assert point.build_seconds > 0
        assert point.query_seconds > 0
        assert point.peak_tracemalloc_mb > 0
        assert point.state_mb > 0
        assert point.maintenance_per_event > 0


class TestRunScale:
    def test_curves_and_points(self, result, scale_config):
        assert [p.num_nodes for p in result.points] == [64, 256]
        assert set(result.curve_names) == {
            "Chord hops",
            "Chord hops p99",
            "Analysis 0.5*log2(n)",
            "maintenance msgs/event",
        }
        assert result.curve("Chord hops").x == (64.0, 256.0)

    def test_parallel_matches_serial(self, result, scale_config):
        parallel = run_scale(scale_config, parallel=True, max_workers=2)
        for serial_point, parallel_point in zip(result.points, parallel.points):
            assert serial_point.num_nodes == parallel_point.num_nodes
            assert serial_point.mean_hops == parallel_point.mean_hops
            assert serial_point.p99_hops == parallel_point.p99_hops
            assert (
                serial_point.maintenance_per_event
                == parallel_point.maintenance_per_event
            )

    def test_table_json_is_strict(self, result):
        payload = json.loads(result.table_json())
        assert len(payload["points"]) == 2
        for row in payload["points"]:
            assert row["num_nodes"] in (64, 256)
            for value in row.values():
                if isinstance(value, float):
                    assert math.isfinite(value)

    def test_save_writes_table_artifact(self, result, tmp_path):
        csv_path = result.save(tmp_path)
        assert csv_path.exists()
        assert (tmp_path / "scale.txt").exists()
        table = json.loads((tmp_path / "scale_table.json").read_text())
        assert [p["num_nodes"] for p in table["points"]] == [64, 256]

    def test_render_mentions_resources(self, result):
        text = result.render()
        assert "scale" in text
        assert "built in" in text
        assert "traced" in text
