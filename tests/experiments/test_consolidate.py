"""Tests for the consolidated-report generator."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.experiments.consolidate import build_report, write_report


@pytest.fixture()
def artifacts(tmp_path):
    (tmp_path / "fig3a.txt").write_text("fig3a body\n")
    (tmp_path / "fig5b.txt").write_text("fig5b body\n")
    (tmp_path / "theorems.txt").write_text("theorem rows\n")
    (tmp_path / "custom_extra.txt").write_text("extra stuff\n")
    (tmp_path / "fig3a.csv").write_text("ignored,by,report\n")
    return tmp_path


class TestBuildReport:
    def test_sections_in_presentation_order(self, artifacts):
        sections = build_report(artifacts)
        headers = [s.header for s in sections]
        assert headers.index("Figure 3 — maintenance overhead") < headers.index(
            "Theorem constants"
        )

    def test_missing_artifacts_skipped(self, artifacts):
        sections = build_report(artifacts)
        fig3 = next(s for s in sections if "Figure 3" in s.header)
        assert [a for a, _ in fig3.artifacts] == ["fig3a"]  # b/c/d absent

    def test_unknown_artifacts_collected(self, artifacts):
        sections = build_report(artifacts)
        other = next(s for s in sections if s.header == "Other artifacts")
        assert [a for a, _ in other.artifacts] == ["custom_extra"]

    def test_empty_directory(self, tmp_path):
        assert build_report(tmp_path) == []


class TestWriteReport:
    def test_report_contains_bodies(self, artifacts):
        path = write_report(artifacts)
        text = path.read_text()
        assert "fig5b body" in text
        assert "theorem rows" in text
        assert text.startswith("# Evaluation report")

    def test_report_not_self_referential(self, artifacts):
        write_report(artifacts)
        write_report(artifacts)  # second run must not ingest REPORT.md
        text = (artifacts / "REPORT.md").read_text()
        assert "### `REPORT`" not in text

    def test_cli_report_command(self, artifacts, capsys):
        assert main(["report", "--out", str(artifacts)]) == 0
        assert (artifacts / "REPORT.md").exists()
