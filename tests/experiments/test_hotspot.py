"""Tests for the hotspot experiment (skewed load × mitigation)."""

from __future__ import annotations

import csv

import pytest

from repro.cli import build_parser, main
from repro.experiments.config import ExperimentConfig, SMOKE_CONFIG
from repro.experiments.hotspot import (
    HEADLINE_SYSTEM,
    MITIGATIONS,
    REQUIRED_CUT,
    HotspotCell,
    HotspotResult,
    run_hotspot,
)

TINY = SMOKE_CONFIG.scaled(
    num_attributes=8,
    infos_per_attribute=16,
    hotspot_queries=180,
    hotspot_windows=3,
    hotspot_zipf_s=(1.3,),
    hotspot_salts=3,
)


def _cell(system, s, mitigation, imbalance, transparent=True, max_hops=5, bound=60):
    return HotspotCell(
        system=system,
        zipf_s=s,
        mitigation=mitigation,
        imbalance=imbalance,
        gini=0.5,
        top5_share=0.5,
        route_imbalance=2.0,
        mean_subquery_hops=3.0,
        max_subquery_hops=max_hops,
        hop_bound=bound,
        queries=100,
        transparent=transparent,
        replica_copies=0,
        replicas_created=0,
    )


def _result(base=40.0, salt=10.0, dynamic=12.0, **cell_kwargs):
    result = HotspotResult(config=ExperimentConfig(hotspot_zipf_s=(0.0, 1.1)))
    result.cells.append(_cell("SWORD", 1.1, "none", base))
    result.cells.append(_cell("SWORD", 1.1, "salt", salt, **cell_kwargs))
    result.cells.append(_cell("SWORD", 1.1, "dynamic", dynamic, **cell_kwargs))
    return result


class TestVerdict:
    def test_sufficient_cut_passes(self):
        result = _result(base=40.0, salt=10.0)
        assert result.cut("SWORD") == pytest.approx(4.0)
        assert result.ok

    def test_best_mitigation_wins(self):
        assert _result(base=40.0, salt=30.0, dynamic=10.0).cut("SWORD") == pytest.approx(4.0)

    def test_insufficient_cut_fails(self):
        assert not _result(base=40.0, salt=25.0, dynamic=25.0).ok

    def test_nontransparent_answers_fail(self):
        assert not _result(transparent=False).ok

    def test_hop_ceiling_violation_fails(self):
        assert not _result(max_hops=100, bound=60).ok

    def test_missing_headline_cells_fail(self):
        result = HotspotResult(config=ExperimentConfig(hotspot_zipf_s=(0.0, 1.1)))
        assert not result.ok

    def test_no_mitigated_cells_means_cut_of_one(self):
        result = HotspotResult(config=ExperimentConfig(hotspot_zipf_s=(1.1,)))
        result.cells.append(_cell("SWORD", 1.1, "none", 40.0))
        assert result.cut("SWORD") == 1.0
        assert not result.ok

    def test_headline_s_is_highest_swept(self):
        assert _result().headline_s == 1.1

    def test_render_mentions_verdict(self):
        assert "verdict: ok" in _result().render()
        assert "GATE MISS" in _result(salt=39.0, dynamic=39.0).render()


@pytest.fixture(scope="module")
def tiny_result():
    return run_hotspot(TINY, systems=["SWORD"])


class TestRunHotspot:
    def test_one_cell_per_mitigation(self, tiny_result):
        assert len(tiny_result.cells) == len(MITIGATIONS)
        assert {c.mitigation for c in tiny_result.cells} == set(MITIGATIONS)

    def test_all_cells_transparent(self, tiny_result):
        assert all(c.transparent for c in tiny_result.cells)

    def test_hops_within_ceilings(self, tiny_result):
        assert all(c.max_subquery_hops <= c.hop_bound for c in tiny_result.cells)

    def test_mitigations_cut_imbalance(self, tiny_result):
        assert tiny_result.cut(HEADLINE_SYSTEM) >= REQUIRED_CUT
        assert tiny_result.ok

    def test_dynamic_cell_paid_maintenance(self, tiny_result):
        dynamic = tiny_result.cell("SWORD", 1.3, "dynamic")
        assert dynamic.replica_copies > 0
        assert dynamic.replicas_created > 0

    def test_deterministic_across_runs(self, tiny_result):
        again = run_hotspot(TINY, systems=["SWORD"])
        assert again.cells == tiny_result.cells

    def test_save_writes_csv_and_text(self, tiny_result, tmp_path):
        tiny_result.save(tmp_path)
        text = (tmp_path / "hotspot.txt").read_text()
        assert "verdict" in text
        with (tmp_path / "hotspot.csv").open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(tiny_result.cells)
        assert rows[0]["system"] == "SWORD"
        assert {row["mitigation"] for row in rows} == set(MITIGATIONS)

    def test_unknown_system_raises(self):
        with pytest.raises(ValueError):
            run_hotspot(TINY, systems=["Pastry"])


class TestHotspotCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["hotspot"])
        assert args.command == "hotspot"
        assert not args.smoke
        assert args.systems is None
        assert args.zipf_s is None

    def test_parser_flags(self):
        args = build_parser().parse_args(
            ["hotspot", "--smoke", "--seed", "3", "--systems", "SWORD",
             "--zipf-s", "0", "1.1", "--queries", "200", "--salts", "2"]
        )
        assert args.smoke and args.seed == 3
        assert args.systems == ["SWORD"]
        assert args.zipf_s == [0.0, 1.1]
        assert args.queries == 200
        assert args.salts == 2

    def test_unknown_system_exits_2_listing_choices(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["hotspot", "--systems", "Pastry"])
        assert exc.value.code == 2
        err = capsys.readouterr().err
        assert "Pastry" in err
        assert "LORM, Mercury, SWORD, MAAN" in err

    def test_main_smoke_single_system(self, capsys, tmp_path):
        code = main(
            ["hotspot", "--smoke", "--seed", "0", "--systems", "SWORD",
             "--queries", "180", "--zipf-s", "1.3", "--out", str(tmp_path)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "max/mean" in out
        assert (tmp_path / "hotspot.csv").exists()
        assert (tmp_path / "hotspot.txt").exists()
