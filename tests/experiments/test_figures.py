"""End-to-end figure tests at tiny scale: every paper figure regenerates
with the paper's qualitative shape."""

from __future__ import annotations

import pytest

from repro.experiments import figure3, figure4, figure5, figure6
from repro.experiments.common import build_services


@pytest.fixture(scope="module")
def bundle(tiny_config):
    return build_services(tiny_config)


class TestFig3a:
    @pytest.fixture(scope="class")
    def result(self, tiny_config):
        return figure3.run_fig3a(tiny_config.scaled(fig3a_dimensions=(3, 4, 5)))

    def test_curves_present(self, result):
        assert result.curve_names == ["Mercury", "Analysis>LORM", "LORM"]

    def test_lorm_constant_degree(self, result):
        assert max(result.curve("LORM").y) <= 7.0

    def test_lorm_below_analysis_bound(self, result):
        """Theorem 4.1: LORM saves at least m times — i.e. LORM's curve
        sits at or below Mercury/m."""
        lorm = result.curve("LORM").y
        bound = result.curve("Analysis>LORM").y
        assert all(l <= b * 1.05 for l, b in zip(lorm, bound))

    def test_mercury_scales_with_m_and_log_n(self, result, tiny_config):
        mercury = result.curve("Mercury").y
        assert mercury[-1] > mercury[0]  # grows with network size
        assert min(mercury) > tiny_config.num_attributes  # ~m * log n


class TestFig3bcd:
    def test_fig3b_shape(self, tiny_config, bundle):
        result = figure3.run_fig3b(tiny_config, bundle)
        maan, lorm = result.row("MAAN"), result.row("LORM")
        analysis = result.row("Analysis-LORM")
        # Theorem 4.2: LORM's average is half MAAN's.
        assert lorm.mean == pytest.approx(maan.mean / 2, rel=0.01)
        assert analysis.mean == pytest.approx(maan.mean / 2, rel=0.01)
        # LORM's spread is far tighter than MAAN's.
        assert lorm.p99 < maan.p99

    def test_fig3c_shape(self, tiny_config, bundle):
        result = figure3.run_fig3c(tiny_config, bundle)
        sword, lorm = result.row("SWORD"), result.row("LORM")
        # Same total info => same average (Theorem 4.2).
        assert lorm.mean == pytest.approx(sword.mean, rel=0.01)
        assert lorm.p99 < sword.p99

    def test_fig3d_shape(self, tiny_config, bundle):
        result = figure3.run_fig3d(tiny_config, bundle)
        mercury, lorm = result.row("Mercury"), result.row("LORM")
        assert lorm.mean == pytest.approx(mercury.mean, rel=0.01)
        # Mercury at least as balanced as LORM (Theorem 4.5).
        assert mercury.p99 <= lorm.p99 * 1.1


class TestFig4:
    @pytest.fixture(scope="class")
    def panels(self, tiny_config, bundle):
        return figure4.run_fig4(tiny_config, bundle)

    def test_both_panels_produced(self, panels):
        assert panels[0].figure_id == "fig4a"
        assert panels[1].figure_id == "fig4b"

    def test_hops_increase_with_attributes(self, panels):
        for curve in panels[0].curves:
            assert curve.y[-1] > curve.y[0]

    def test_ordering_mercury_lorm_maan(self, panels):
        avg = panels[0]
        for i in range(len(avg.curve("MAAN").x)):
            assert avg.curve("Mercury").y[i] < avg.curve("LORM").y[i] < avg.curve("MAAN").y[i]

    def test_maan_twice_mercury(self, panels):
        avg = panels[0]
        ratio = avg.curve("MAAN").y[-1] / avg.curve("Mercury").y[-1]
        assert ratio == pytest.approx(2.0, rel=0.2)

    def test_analysis_curves_derived_from_maan(self, panels):
        avg = panels[0]
        assert avg.curve("Analysis-LORM").derived_from == "MAAN"
        assert avg.curve("Analysis-SWORD/Mercury").derived_from == "MAAN"

    def test_total_panel_is_query_count_times_average(self, panels, tiny_config):
        num_queries = tiny_config.num_requesters * tiny_config.queries_per_requester
        avg, total = panels
        for name in ("MAAN", "LORM"):
            assert total.curve(name).y[0] == pytest.approx(
                avg.curve(name).y[0] * num_queries, rel=1e-9
            )


class TestFig5:
    @pytest.fixture(scope="class")
    def panels(self, tiny_config, bundle):
        return figure5.run_fig5(tiny_config, bundle)

    def test_panel_a_systemwide_overlap(self, panels):
        a = panels[0]
        maan, mercury = a.curve("MAAN").y, a.curve("Mercury").y
        for m_val, merc_val in zip(maan, mercury):
            assert m_val == pytest.approx(merc_val, rel=0.15)

    def test_panel_a_matches_analysis(self, panels):
        a = panels[0]
        for measured, analysis in (("MAAN", "Analysis-MAAN"), ("Mercury", "Analysis-Mercury")):
            for got, want in zip(a.curve(measured).y, a.curve(analysis).y):
                assert got == pytest.approx(want, rel=0.25)

    def test_panel_b_sword_exact(self, panels, tiny_config):
        b = panels[1]
        nq = tiny_config.num_range_queries
        for i, m in enumerate(b.curve("SWORD").x):
            assert b.curve("SWORD").y[i] == nq * m  # exactly m visits/query

    def test_panel_b_lorm_close_to_analysis(self, panels):
        b = panels[1]
        for got, want in zip(b.curve("LORM").y, b.curve("Analysis-LORM").y):
            assert got == pytest.approx(want, rel=0.3)

    def test_lorm_orders_of_magnitude_below_systemwide(self, panels):
        a, b = panels
        assert b.curve("LORM").y[0] * 5 < a.curve("Mercury").y[0]


class TestFig6:
    @pytest.fixture(scope="class")
    def panels(self, tiny_config):
        return figure6.run_fig6(tiny_config)

    def test_no_failures(self, panels):
        assert any("no failures" in note for note in panels[0].notes)

    def test_hops_flat_in_churn_rate(self, panels):
        """The paper's observation: dynamism barely affects hop counts."""
        a = panels[0]
        for name in ("LORM", "Mercury", "SWORD", "MAAN"):
            ys = a.curve(name).y
            assert max(ys) - min(ys) < 0.35 * max(ys)

    def test_visited_flat_in_churn_rate(self, panels):
        b = panels[1]
        for name in ("LORM", "Mercury", "MAAN"):
            ys = b.curve(name).y
            assert max(ys) - min(ys) < 0.35 * max(ys)

    def test_analysis_lines_flat(self, panels):
        for panel in panels:
            for curve in panel.curves:
                if curve.name.startswith("Analysis"):
                    assert len(set(curve.y)) == 1

    def test_ordering_preserved_under_churn(self, panels):
        a, b = panels
        assert a.curve("Mercury").y[0] < a.curve("LORM").y[0] < a.curve("MAAN").y[0]
        assert b.curve("SWORD").y[0] <= b.curve("LORM").y[0] < b.curve("Mercury").y[0]
