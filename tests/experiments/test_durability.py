"""Tests for the durability experiment (policy × chaos-scenario sweep)."""

from __future__ import annotations

import csv
import math

import pytest

from repro.cli import build_parser, main
from repro.experiments.config import SMOKE_CONFIG
from repro.experiments.durability import (
    DEFAULT_SYSTEMS,
    DurabilityResult,
    run_durability,
)
from repro.sim.chaos import DEMO_SCENARIO
from repro.sim.durability import DEFAULT_POLICY_SPECS, parse_policy

#: Reduced load: same population and scenario shape as smoke, lighter
#: probing — mirrors the recovery experiment's TINY configuration.
TINY = SMOKE_CONFIG.scaled(
    infos_per_attribute=25,
    num_recovery_queries=6,
    recovery_sample_interval=4.0,
    maintenance_intervals=(2.0,),
    recovery_churn_rates=(0.0,),
)


@pytest.fixture(scope="module")
def sweep() -> DurabilityResult:
    return run_durability(TINY, scenarios=(DEMO_SCENARIO,))


class TestRunDurability:
    def test_every_cell_recovers(self, sweep):
        assert sweep.ok
        for cell in sweep.cells:
            assert cell.recovered, (cell.system, cell.policy)
            assert math.isfinite(cell.ttr), (cell.system, cell.policy)

    def test_one_cell_per_system_policy_scenario(self, sweep):
        expected = {
            (system, spec, DEMO_SCENARIO.name)
            for system in DEFAULT_SYSTEMS
            for spec in DEFAULT_POLICY_SPECS
        }
        assert {
            (c.system, c.policy, c.scenario) for c in sweep.cells
        } == expected

    def test_metrics_are_sane(self, sweep):
        for cell in sweep.cells:
            assert cell.pieces_before > 0
            assert 0 <= cell.pieces_lost <= cell.pieces_before
            assert 0.0 <= cell.min_availability <= cell.final_availability <= 1.0
            assert cell.repair_copies >= 0
            assert cell.repair_bandwidth <= cell.repair_copies
            assert cell.storage_overhead >= 1.0

    def test_erasure_bandwidth_is_fragment_weighted(self, sweep):
        erasure = [c for c in sweep.cells if c.policy.startswith("erasure")]
        assert erasure
        for cell in erasure:
            assert cell.repair_bandwidth == pytest.approx(cell.repair_copies / 2)
            assert cell.storage_overhead == pytest.approx(1.5)

    def test_table_lists_every_policy(self, sweep):
        table = sweep.table()
        for spec in DEFAULT_POLICY_SPECS:
            assert spec in table
        for column in ("TTR", "repair BW", "lost", "overhead"):
            assert column in table

    def test_save_writes_csv_and_text(self, sweep, tmp_path):
        path = sweep.save(tmp_path)
        assert path.exists()
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == len(sweep.cells)
        assert {"policy", "ttr", "repair_bandwidth"} <= set(rows[0])
        assert (tmp_path / "durability.txt").read_text().startswith("durability")


class TestDurabilityCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["durability"])
        assert args.command == "durability"
        assert not args.smoke
        assert args.policies is None
        assert args.systems is None
        assert args.scenarios is None

    def test_parser_flags(self):
        args = build_parser().parse_args([
            "durability", "--smoke", "--seed", "3",
            "--policies", "replication:2", "erasure:3+2",
            "--systems", "LORM", "--scenarios", "demo",
        ])
        assert args.smoke and args.seed == 3
        assert args.policies == ["replication:2", "erasure:3+2"]
        assert args.systems == ["LORM"]
        assert args.scenarios == ["demo"]

    def test_parser_rejects_unknown_system(self, capsys):
        # Unknown systems exit 2 via the registry in main(), with the
        # valid choices spelled out (not an argparse choices= list).
        with pytest.raises(SystemExit) as exc:
            main(["durability", "--systems", "Pastry"])
        assert exc.value.code == 2
        assert "LORM, Mercury, SWORD, MAAN" in capsys.readouterr().err

    def test_main_smoke_single_cell(self, capsys, tmp_path):
        code = main([
            "durability", "--smoke", "--seed", "0",
            "--policies", "replication:2", "--systems", "LORM",
            "--scenarios", "demo", "--out", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "replication:2" in out
        assert (tmp_path / "durability.csv").exists()

    def test_main_rejects_bad_policy_spec(self, capsys):
        # A bad spec used to escape as a ValueError traceback; it is now
        # a clean usage error (exit 2) naming the offending spec.
        with pytest.raises(SystemExit) as exc:
            main(["durability", "--policies", "bogus:9"])
        assert exc.value.code == 2
        assert "bogus" in capsys.readouterr().err


class TestPolicyParsingForCli:
    @pytest.mark.parametrize("spec", DEFAULT_POLICY_SPECS)
    def test_default_specs_parse(self, spec):
        assert parse_policy(spec).name == spec
