"""Tests for the latency extension figure."""

from __future__ import annotations

import pytest

from repro.experiments.latency import run_latency


@pytest.fixture(scope="module")
def figure(tiny_config, loaded_bundle):
    return run_latency(tiny_config, loaded_bundle)


class TestLatencyFigure:
    def test_all_approaches_present(self, figure):
        assert set(figure.curve_names) == {"LORM", "Mercury", "SWORD", "MAAN"}

    def test_ordering_sword_lorm_then_systemwide(self, figure):
        for i in range(len(figure.curve("LORM").x)):
            assert figure.curve("SWORD").y[i] <= figure.curve("LORM").y[i]
            assert figure.curve("LORM").y[i] < figure.curve("Mercury").y[i]
            assert figure.curve("Mercury").y[i] <= figure.curve("MAAN").y[i] * 1.1

    def test_parallelism_bounds_growth(self, figure):
        """Latency = max over parallel sub-queries, so going from 1 to 3
        attributes must grow latency far less than 3x."""
        lorm = figure.curve("LORM").y
        assert lorm[2] < 2.0 * lorm[0]

    def test_latencies_positive_and_finite(self, figure):
        for curve in figure.curves:
            assert all(0 < v < 1e6 for v in curve.y)

    def test_renders_log_scale(self, figure):
        assert figure.log_y
        assert "(log y)" in figure.to_ascii_chart()
