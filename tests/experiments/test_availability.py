"""Tests for the availability experiment (completeness vs loss × r)."""

from __future__ import annotations

import pytest

from repro.experiments.availability import measure_completeness, run_availability
from repro.experiments.common import build_services
from repro.experiments.config import SMOKE_CONFIG
from repro.experiments.runner import FIGURES, run_figure
from repro.sim.faults import NO_RETRY_POLICY, FaultInjector, FaultPlan

TINY = SMOKE_CONFIG.scaled(
    num_attributes=6,
    infos_per_attribute=20,
    loss_rates=(0.0, 0.05),
    availability_replications=(1, 2),
    num_availability_queries=15,
)


@pytest.fixture(scope="module")
def figure():
    return run_availability(TINY)


class TestRunAvailability:
    def test_curve_inventory(self, figure):
        assert figure.figure_id == "availability"
        assert figure.curve_names == [
            f"{name} r={r}"
            for r in (1, 2)
            for name in ("LORM", "Mercury", "SWORD", "MAAN")
        ]

    def test_completeness_is_a_fraction(self, figure):
        for curve in figure.curves:
            assert list(curve.x) == [0.0, 0.05]
            assert all(0.0 <= y <= 1.0 for y in curve.y)

    def test_replication_never_hurts(self, figure):
        for name in ("LORM", "Mercury", "SWORD", "MAAN"):
            y1 = figure.curve(f"{name} r=1").y
            y2 = figure.curve(f"{name} r=2").y
            assert all(a <= b for a, b in zip(y1, y2)), (name, y1, y2)

    def test_registered_in_runner(self):
        assert "availability" in FIGURES

    def test_run_figure_saves_artifacts(self, tmp_path):
        config = TINY.scaled(
            availability_replications=(1,), num_availability_queries=5
        )
        result = run_figure("availability", config, save_dir=tmp_path)
        assert (tmp_path / "availability.csv").exists()
        assert (tmp_path / "availability.txt").exists()
        assert result.notes

    def test_deterministic(self):
        config = TINY.scaled(
            availability_replications=(1,), num_availability_queries=8
        )
        a = run_availability(config)
        b = run_availability(config)
        assert [(c.name, c.x, c.y) for c in a.curves] == [
            (c.name, c.x, c.y) for c in b.curves
        ]


class TestMeasureCompleteness:
    def test_detaches_injector_afterwards(self):
        bundle = build_services(TINY, register=True)
        service = bundle.mercury
        cases = [
            (query, bundle.workload.matching_providers_bruteforce(query))
            for query in bundle.workload.query_stream(5, 2, label="mc-test")
        ]
        injector = FaultInjector(FaultPlan(loss_rate=0.05, seed=1))
        measure_completeness(service, cases, injector)
        assert service.ring.network.faults is None

    def test_brittle_policy_under_heavy_loss_degrades_honestly(self):
        bundle = build_services(TINY, register=True)
        service = bundle.mercury
        cases = [
            (query, bundle.workload.matching_providers_bruteforce(query))
            for query in bundle.workload.query_stream(12, 2, label="mc-heavy")
        ]
        baseline = measure_completeness(service, cases, None)
        assert baseline == 1.0  # no crashes, no loss: everything answered
        injector = FaultInjector(FaultPlan(loss_rate=0.5, seed=2))
        degraded = measure_completeness(service, cases, injector, NO_RETRY_POLICY)
        assert degraded < baseline  # 50% loss, one shot per hop: no chance
        # And the degradation was *flagged*, not silent: re-attach and
        # check the results announce incompleteness.
        service.configure_faults(
            FaultInjector(FaultPlan(loss_rate=0.5, seed=2)), NO_RETRY_POLICY
        )
        try:
            flagged = [
                service.multi_query(query)
                for query, _ in cases
            ]
        finally:
            service.configure_faults(None)
        wrong = [
            r for r, (q, truth) in zip(flagged, cases) if r.providers != truth
        ]
        assert wrong, "heavy loss should spoil some queries"
        assert all(not r.complete for r in wrong)

    def test_empty_cases(self):
        bundle = build_services(TINY, register=False)
        assert measure_completeness(bundle.lorm, [], None) == 1.0


class TestFaultAccounting:
    """The lookup policy's spend must surface in metrics, not stay trapped
    in the network's MessageStats (regression for the faults.* counters)."""

    def _cases(self, bundle, count: int = 12):
        return [
            (query, bundle.workload.matching_providers_bruteforce(query))
            for query in bundle.workload.query_stream(count, 2, label="fa-test")
        ]

    def test_retries_and_timeouts_nonzero_under_loss(self):
        bundle = build_services(TINY, register=True)
        service = bundle.mercury
        injector = FaultInjector(FaultPlan(loss_rate=0.3, seed=9))
        measure_completeness(service, self._cases(bundle), injector)
        assert service.metrics.counter("faults.retries") > 0
        assert service.metrics.counter("faults.timeouts") > 0
        assert service.metrics.counter("faults.dropped") > 0

    def test_fault_free_measurement_publishes_nothing(self):
        bundle = build_services(TINY, register=True)
        service = bundle.mercury
        measure_completeness(service, self._cases(bundle, count=5), None)
        assert service.metrics.counter("faults.retries") == 0
        assert service.metrics.counter("faults.dropped") == 0

    def test_figure_notes_report_the_spend(self, figure):
        spend_notes = [n for n in figure.notes if "faults.*" in n]
        assert spend_notes, figure.notes
        for name in ("LORM", "Mercury", "SWORD", "MAAN"):
            assert name in spend_notes[0]
