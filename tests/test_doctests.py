"""Every docstring example in the library must execute as written.

The public API's docstrings carry runnable examples (Chord/Cycloid lookup,
hashing, the LORM quickstart, …); this module runs them all as doctests so
documentation cannot drift from behaviour.
"""

from __future__ import annotations

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules() -> list[str]:
    names = ["repro"]
    for module in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        names.append(module.name)
    return names


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module_name}: {results.failed} doctest failures"
