"""Tests for analysis-curve derivation."""

from __future__ import annotations

import pytest

from repro.analysis.models import AnalysisCurve, curve_from_points, derive_curve


@pytest.fixture
def measured() -> AnalysisCurve:
    return AnalysisCurve("MAAN", (1.0, 2.0, 3.0), (10.0, 20.0, 30.0))


class TestAnalysisCurve:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            AnalysisCurve("bad", (1.0,), (1.0, 2.0))

    def test_as_rows(self, measured):
        assert measured.as_rows() == [(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)]

    def test_curve_from_points(self):
        c = curve_from_points("c", [(1.0, 5.0), (2.0, 6.0)])
        assert c.x == (1.0, 2.0)
        assert c.y == (5.0, 6.0)

    def test_curve_from_points_empty(self):
        c = curve_from_points("empty", [])
        assert c.x == () and c.y == ()


class TestDerive:
    def test_divide(self, measured):
        derived = derive_curve("Analysis-LORM", measured, divide_by=2.0)
        assert derived.y == (5.0, 10.0, 15.0)
        assert derived.x == measured.x
        assert derived.derived_from == "MAAN"
        assert derived.factor == pytest.approx(0.5)

    def test_multiply(self, measured):
        derived = derive_curve("up", measured, multiply_by=3.0)
        assert derived.y == (30.0, 60.0, 90.0)

    def test_exactly_one_factor_required(self, measured):
        with pytest.raises(ValueError):
            derive_curve("x", measured)
        with pytest.raises(ValueError):
            derive_curve("x", measured, divide_by=2.0, multiply_by=2.0)

    def test_zero_divide_rejected(self, measured):
        with pytest.raises(ValueError):
            derive_curve("x", measured, divide_by=0.0)

    def test_paper_fig3a_construction(self, measured):
        """'Analysis>LORM' is Mercury's measured curve divided by m."""
        mercury = AnalysisCurve("Mercury", (1.0, 2.0), (2200.0, 2400.0))
        analysis = derive_curve("Analysis>LORM", mercury, divide_by=200.0)
        assert analysis.y == (11.0, 12.0)
