"""Tests for the closed forms of Theorems 4.1–4.10."""

from __future__ import annotations

import math

import pytest

from repro.analysis import theorems

# The paper's evaluation constants.
N, M, K, D = 2048, 200, 500, 8


class TestHopPrimitives:
    def test_chord_half_log_n(self):
        assert theorems.chord_expected_lookup_hops(2048) == pytest.approx(5.5)

    def test_cycloid_d(self):
        assert theorems.cycloid_expected_lookup_hops(8) == 8.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            theorems.chord_expected_lookup_hops(0)


class TestMaintenanceTheorems:
    def test_thm41_at_paper_scale(self):
        """m * log2(n) / d = 200 * 11 / 8 = 275 >= m."""
        ratio = theorems.thm41_structure_overhead_ratio(N, M, D)
        assert ratio == pytest.approx(275.0)
        assert ratio >= M

    def test_thm41_lower_bound_when_d_equals_log_n(self):
        n = 2048
        assert theorems.thm41_structure_overhead_ratio(n, M, 11) == pytest.approx(M)

    def test_thm42(self):
        assert theorems.thm42_total_info_ratio_maan() == 2.0

    def test_thm43_matches_paper_constant(self):
        """The paper computes d(1 + m/n) = 8 * (1 + 200/2048) = 8.78."""
        assert theorems.thm43_directory_reduction_vs_maan(N, M, D) == pytest.approx(
            8.78, abs=0.005
        )

    def test_thm44(self):
        assert theorems.thm44_directory_reduction_vs_sword(D) == 8.0

    def test_thm45_matches_paper_constant(self):
        """n/(dm) = 2048 / 1600 = 1.28."""
        assert theorems.thm45_balance_ratio_mercury_vs_lorm(N, M, D) == pytest.approx(
            1.28
        )


class TestEfficiencyTheorems:
    def test_thm47_matches_paper_constant(self):
        """log2(n)/d = 11/8."""
        assert theorems.thm47_contacted_reduction_vs_maan(N, D) == pytest.approx(11 / 8)

    def test_thm48(self):
        assert theorems.thm48_contacted_reduction_mercury_sword_vs_maan() == 2.0

    def test_nonrange_hops_per_approach(self):
        assert theorems.nonrange_query_hops_avg("LORM", N, D, 1) == 8.0
        assert theorems.nonrange_query_hops_avg("Mercury", N, D, 1) == 5.5
        assert theorems.nonrange_query_hops_avg("SWORD", N, D, 1) == 5.5
        assert theorems.nonrange_query_hops_avg("MAAN", N, D, 1) == 11.0

    def test_nonrange_hops_scale_with_attributes(self):
        assert theorems.nonrange_query_hops_avg("LORM", N, D, 5) == 40.0

    def test_thm49_paper_constants(self):
        """Paper: 513m Mercury, 514m MAAN, 3m LORM, m SWORD."""
        assert theorems.thm49_visited_nodes_avg("Mercury", N, D, 1) == 513.0
        assert theorems.thm49_visited_nodes_avg("MAAN", N, D, 1) == 514.0
        assert theorems.thm49_visited_nodes_avg("LORM", N, D, 1) == 3.0
        assert theorems.thm49_visited_nodes_avg("SWORD", N, D, 1) == 1.0

    def test_thm49_m_attribute_scaling(self):
        assert theorems.thm49_visited_nodes_avg("Mercury", N, D, 10) == 5130.0

    def test_thm49_lorm_saving_over_systemwide(self):
        """Theorem 4.9's headline: LORM saves at least m(n-d)/4 visits."""
        for m in (1, 5, 10):
            saving = theorems.thm49_visited_nodes_avg(
                "Mercury", N, D, m
            ) - theorems.thm49_visited_nodes_avg("LORM", N, D, m)
            assert saving == pytest.approx(m * (N - D) / 4)

    def test_thm49_sword_saving_over_lorm(self):
        """SWORD saves m*d/4 visits relative to LORM."""
        for m in (1, 4):
            saving = theorems.thm49_visited_nodes_avg(
                "LORM", N, D, m
            ) - theorems.thm49_visited_nodes_avg("SWORD", N, D, m)
            assert saving == pytest.approx(m * D / 4)

    def test_thm410_worst_case_ordering(self):
        """MAAN > Mercury >> LORM in the worst case; LORM saving >= m*n."""
        maan = theorems.thm410_visited_nodes_worst("MAAN", N, D, 1)
        mercury = theorems.thm410_visited_nodes_worst("Mercury", N, D, 1)
        lorm = theorems.thm410_visited_nodes_worst("LORM", N, D, 1)
        assert maan > mercury > lorm
        assert mercury - lorm >= N  # Theorem 4.10 with m = 1

    def test_thm410_lorm_bounded_by_log_n(self):
        assert theorems.thm410_visited_nodes_worst("LORM", N, D, 1) <= math.log2(N)

    def test_unknown_approach_raises(self):
        with pytest.raises(KeyError):
            theorems.thm49_visited_nodes_avg("Pastry", N, D, 1)
