"""Analysis-vs-simulation consistency (the paper's central claim).

Section V's conclusion is that the measured curves track the Theorem 4.x
predictions.  These tests check the same consistency at miniature scale,
with tolerances wide enough for the small-n noise but tight enough to catch
a broken placement or accounting rule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import theorems
from repro.experiments.common import build_services
from repro.workloads.generator import QueryKind


@pytest.fixture(scope="module")
def bundle(tiny_config):
    return build_services(tiny_config)


class TestTheorem42:
    def test_maan_stores_twice_total_info(self, bundle):
        base = bundle.workload.total_info_pieces()
        assert bundle.maan.total_info_pieces() == 2 * base
        assert bundle.lorm.total_info_pieces() == base
        assert bundle.sword.total_info_pieces() == base
        assert bundle.mercury.total_info_pieces() == base


class TestTheorem44:
    def test_lorm_loaded_directories_smaller_than_sword_by_d(self, bundle, tiny_config):
        """SWORD pools k pieces per attribute on one node; LORM splits the
        same pieces over ~d cluster members."""
        d = tiny_config.dimension
        sword_sizes = [s for s in bundle.sword.directory_sizes() if s > 0]
        lorm_sizes = [s for s in bundle.lorm.directory_sizes() if s > 0]
        ratio = float(np.mean(sword_sizes)) / float(np.mean(lorm_sizes))
        assert ratio == pytest.approx(d, rel=0.45)


class TestTheorem45:
    def test_mercury_more_balanced_than_lorm(self, bundle):
        mercury = np.asarray(bundle.mercury.directory_sizes(), dtype=float)
        lorm = np.asarray(bundle.lorm.directory_sizes(), dtype=float)
        # Coefficient of variation as the balance metric.
        cv_mercury = mercury.std() / mercury.mean()
        cv_lorm = lorm.std() / lorm.mean()
        assert cv_mercury < cv_lorm * 1.05

    def test_thm46_ordering_lorm_and_mercury_beat_pooling(self, bundle):
        """Theorem 4.6: Mercury and LORM more balanced than SWORD/MAAN."""
        def cv(service):
            sizes = np.asarray(service.directory_sizes(), dtype=float)
            return sizes.std() / sizes.mean()

        assert cv(bundle.mercury) < cv(bundle.sword)
        assert cv(bundle.mercury) < cv(bundle.maan)
        assert cv(bundle.lorm) < cv(bundle.sword)
        assert cv(bundle.lorm) < cv(bundle.maan)


class TestTheorems47And48:
    @pytest.fixture(scope="class")
    def hop_means(self, bundle, tiny_config):
        queries = list(
            bundle.workload.query_stream(120, 1, QueryKind.POINT, label="cons47")
        )
        return {
            s.name: float(np.mean([s.multi_query(q).total_hops for q in queries]))
            for s in bundle.all()
        }

    def test_maan_doubles_mercury_and_sword(self, hop_means):
        assert hop_means["MAAN"] / hop_means["Mercury"] == pytest.approx(2.0, rel=0.2)
        assert hop_means["MAAN"] / hop_means["SWORD"] == pytest.approx(2.0, rel=0.2)

    def test_lorm_between_mercury_and_maan(self, hop_means):
        assert hop_means["Mercury"] < hop_means["LORM"] < hop_means["MAAN"]

    def test_lorm_reduction_tracks_log_n_over_d(self, hop_means, tiny_config):
        predicted = theorems.thm47_contacted_reduction_vs_maan(
            tiny_config.population, tiny_config.dimension
        )
        measured = hop_means["MAAN"] / hop_means["LORM"]
        assert measured == pytest.approx(predicted, rel=0.35)


class TestTheorem49:
    @pytest.fixture(scope="class")
    def visit_means(self, bundle):
        bundle.set_collect_matches(False)
        queries = list(
            bundle.workload.query_stream(150, 1, QueryKind.RANGE, label="cons49")
        )
        means = {
            s.name: float(np.mean([s.multi_query(q).total_visited for q in queries]))
            for s in bundle.all()
        }
        bundle.set_collect_matches(True)
        return means

    def test_sword_visits_exactly_one_per_attribute(self, visit_means):
        assert visit_means["SWORD"] == 1.0

    def test_lorm_close_to_one_plus_d_over_4(self, visit_means, tiny_config):
        predicted = theorems.thm49_visited_nodes_avg(
            "LORM", tiny_config.population, tiny_config.dimension, 1
        )
        assert visit_means["LORM"] == pytest.approx(predicted, rel=0.3)

    def test_mercury_close_to_one_plus_n_over_4(self, visit_means, tiny_config):
        predicted = theorems.thm49_visited_nodes_avg(
            "Mercury", tiny_config.population, tiny_config.dimension, 1
        )
        assert visit_means["Mercury"] == pytest.approx(predicted, rel=0.25)

    def test_maan_about_one_more_than_mercury(self, visit_means):
        assert visit_means["MAAN"] - visit_means["Mercury"] == pytest.approx(1.0, abs=1.5)

    def test_systemwide_orders_of_magnitude_above_lorm(self, visit_means):
        assert visit_means["Mercury"] > 10 * visit_means["LORM"]
