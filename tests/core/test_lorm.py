"""Tests for the LORM service: ID mapping, placement, queries, Prop 3.1."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.lorm import LormService
from repro.core.resource import AttributeConstraint, Query, ResourceInfo
from repro.overlay.cycloid import CycloidId
from repro.workloads.attributes import AttributeSchema
from repro.workloads.generator import GridWorkload, QueryKind


@pytest.fixture(scope="module")
def schema() -> AttributeSchema:
    return AttributeSchema.synthetic(6)


@pytest.fixture()
def service(schema) -> LormService:
    return LormService.build_full(dimension=4, schema=schema, seed=3)


class TestIdMapping:
    def test_resc_id_structure(self, service):
        rid = service.resc_id("cpu-mhz", 2500.0)
        assert 0 <= rid.k < 4
        assert 0 <= rid.a < 16

    def test_same_attribute_same_cluster(self, service):
        """All information of one attribute maps to one cluster (Section III)."""
        spec = service.schema.spec("cpu-mhz")
        clusters = {
            service.resc_id("cpu-mhz", v).a
            for v in np.linspace(spec.lo, spec.hi, 50)
        }
        assert len(clusters) == 1

    def test_value_hash_monotone_within_cluster(self, service):
        spec = service.schema.spec("cpu-mhz")
        ks = [
            service.resc_id("cpu-mhz", float(v)).k
            for v in np.linspace(spec.lo, spec.hi, 100)
        ]
        assert ks == sorted(ks)

    def test_different_attributes_usually_different_clusters(self, service):
        clusters = {service.attr_key(name) for name in service.schema.names}
        assert len(clusters) > 1


class TestRegistration:
    def test_register_places_at_root(self, service):
        info = ResourceInfo("cpu-mhz", 2500.0, "node-a")
        service.register(info)
        rid = service.resc_id("cpu-mhz", 2500.0)
        owner = service.overlay.closest_node(rid)
        assert info in owner.items_in("lorm")

    def test_unrouted_register_identical_placement(self, schema):
        routed = LormService.build_full(4, schema, seed=1)
        direct = LormService.build_full(4, schema, seed=1)
        infos = [
            ResourceInfo("cpu-mhz", v, f"p{i}")
            for i, v in enumerate((200.0, 900.0, 4500.0))
        ]
        for info in infos:
            routed.register(info, routed=True)
            direct.register(info, routed=False)
        assert routed.directory_sizes() == direct.directory_sizes()

    def test_register_hops_recorded(self, service):
        hops = service.register(ResourceInfo("cpu-mhz", 800.0, "p"))
        assert hops >= 0
        assert service.metrics.samples("register.hops") == [float(hops)]


class TestPointQueries:
    def test_finds_exact_value(self, service):
        service.register(ResourceInfo("cpu-mhz", 1234.0, "prov"))
        result = service.query(Query(AttributeConstraint.point("cpu-mhz", 1234.0)))
        assert result.providers == {"prov"}
        assert result.visited_nodes == 1

    def test_misses_absent_value(self, service):
        service.register(ResourceInfo("cpu-mhz", 1234.0, "prov"))
        result = service.query(Query(AttributeConstraint.point("cpu-mhz", 4321.0)))
        assert result.matches == ()

    def test_attribute_isolation(self, service):
        """Same value under a different attribute must not match."""
        service.register(ResourceInfo("cpu-mhz", 500.0, "p1"))
        result = service.query(Query(AttributeConstraint.point("num-cores", 500.0)))
        assert result.matches == ()


class TestRangeQueries:
    def test_range_query_complete(self, service):
        """Proposition 3.1: the walk between the two roots finds every
        value in range."""
        spec = service.schema.spec("cpu-mhz")
        values = np.linspace(spec.lo, spec.hi, 25)
        for i, v in enumerate(values):
            service.register(ResourceInfo("cpu-mhz", float(v), f"p{i}"))
        lo, hi = float(values[5]), float(values[18])
        result = service.query(Query(AttributeConstraint.between("cpu-mhz", lo, hi)))
        expected = {f"p{i}" for i in range(5, 19)}
        assert result.providers == expected

    def test_range_visits_bounded_by_cluster(self, service):
        result = service.query(
            Query(AttributeConstraint.at_least("cpu-mhz", 100.0))
        )
        assert result.visited_nodes <= service.overlay.dimension

    def test_half_open_range(self, service):
        service.register(ResourceInfo("free-memory-mb", 4096.0, "big"))
        service.register(ResourceInfo("free-memory-mb", 64.0, "small"))
        result = service.query(
            Query(AttributeConstraint.at_least("free-memory-mb", 1024.0))
        )
        assert result.providers == {"big"}

    def test_collect_matches_off_keeps_accounting(self, service):
        service.register(ResourceInfo("cpu-mhz", 900.0, "p"))
        service.collect_matches = False
        try:
            q = Query(AttributeConstraint.between("cpu-mhz", 100.0, 5000.0))
            result = service.query(q)
            assert result.matches == ()
            assert result.visited_nodes >= 1
        finally:
            service.collect_matches = True


class TestMultiQuery:
    def test_join_on_provider(self, service):
        service.register(ResourceInfo("cpu-mhz", 3000.0, "both"))
        service.register(ResourceInfo("disk-gb", 500.0, "both"))
        service.register(ResourceInfo("cpu-mhz", 3000.0, "cpu-only"))
        from repro.core.resource import MultiAttributeQuery

        mq = MultiAttributeQuery(
            (
                AttributeConstraint.at_least("cpu-mhz", 2000.0),
                AttributeConstraint.at_least("disk-gb", 100.0),
            )
        )
        result = service.multi_query(mq)
        assert result.providers == {"both"}
        assert result.total_hops == sum(r.hops for r in result.sub_results)

    def test_equivalence_with_bruteforce(self, schema):
        service = LormService.build_full(4, schema, seed=11)
        wl = GridWorkload(schema, infos_per_attribute=25, seed=13)
        for info in wl.resource_infos():
            service.register(info, routed=False)
        rng = np.random.default_rng(17)
        for _ in range(25):
            mq = wl.sample_multi_query(3, QueryKind.RANGE, rng)
            assert service.multi_query(mq).providers == (
                wl.matching_providers_bruteforce(mq)
            )


class TestStructureMetrics:
    def test_constant_outlinks(self, service):
        assert max(service.outlink_counts()) <= 7

    def test_directory_sizes_sum_to_pieces(self, service):
        service.register(ResourceInfo("cpu-mhz", 100.0, "a"))
        service.register(ResourceInfo("os", 5.0, "b"))
        assert service.total_info_pieces() == 2

    def test_num_nodes(self, service):
        assert service.num_nodes() == 64


class TestChurnHooks:
    def test_leave_then_rejoin_round_trip(self, schema):
        service = LormService.build_full(3, schema, seed=5)
        n0 = service.num_nodes()
        assert service.churn_leave()
        assert service.num_nodes() == n0 - 1
        assert service.churn_join()
        assert service.num_nodes() == n0

    def test_join_without_departures_is_noop(self, schema):
        service = LormService.build_full(3, schema, seed=5)
        assert not service.churn_join()

    def test_queries_survive_churn(self, schema):
        service = LormService.build_full(4, schema, seed=6)
        wl = GridWorkload(schema, infos_per_attribute=20, seed=7)
        for info in wl.resource_infos():
            service.register(info, routed=False)
        for _ in range(15):
            service.churn_leave()
        service.stabilize()
        rng = np.random.default_rng(23)
        for _ in range(10):
            mq = wl.sample_multi_query(2, QueryKind.RANGE, rng)
            assert service.multi_query(mq).providers == (
                wl.matching_providers_bruteforce(mq)
            )
