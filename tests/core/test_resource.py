"""Tests for the resource/query vocabulary."""

from __future__ import annotations

import pytest

from repro.core.resource import (
    AttributeConstraint,
    MultiAttributeQuery,
    MultiQueryResult,
    Query,
    QueryResult,
    ResourceInfo,
    effective_span_fraction,
)


class TestAttributeConstraint:
    def test_point_matches_exactly(self):
        c = AttributeConstraint.point("cpu", 100.0)
        assert c.matches(100.0)
        assert not c.matches(100.1)
        assert not c.is_range

    def test_between_inclusive(self):
        c = AttributeConstraint.between("cpu", 1.0, 2.0)
        assert c.matches(1.0) and c.matches(2.0) and c.matches(1.5)
        assert not c.matches(0.99) and not c.matches(2.01)
        assert c.is_range

    def test_at_least(self):
        c = AttributeConstraint.at_least("mem", 512.0)
        assert c.matches(512.0) and c.matches(1e9)
        assert not c.matches(511.0)

    def test_at_most(self):
        c = AttributeConstraint.at_most("mem", 512.0)
        assert c.matches(1.0) and not c.matches(513.0)

    def test_unbounded_matches_everything(self):
        c = AttributeConstraint("any")
        assert c.matches(-1e18) and c.matches(1e18)
        assert c.is_range

    def test_inverted_range_rejected(self):
        with pytest.raises(ValueError):
            AttributeConstraint.between("cpu", 2.0, 1.0)

    def test_bounds_within_substitutes_domain(self):
        c = AttributeConstraint.at_least("cpu", 5.0)
        assert c.bounds_within(0.0, 10.0) == (5.0, 10.0)
        c2 = AttributeConstraint.at_most("cpu", 5.0)
        assert c2.bounds_within(0.0, 10.0) == (0.0, 5.0)


class TestQueries:
    def test_query_delegates(self):
        q = Query(AttributeConstraint.point("cpu", 1.0), requester="r")
        assert q.attribute == "cpu"
        assert not q.is_range

    def test_multi_query_validation(self):
        with pytest.raises(ValueError):
            MultiAttributeQuery(())
        with pytest.raises(ValueError):
            MultiAttributeQuery(
                (
                    AttributeConstraint.point("cpu", 1.0),
                    AttributeConstraint.point("cpu", 2.0),
                )
            )

    def test_multi_query_sub_queries(self):
        mq = MultiAttributeQuery(
            (
                AttributeConstraint.point("cpu", 1.0),
                AttributeConstraint.at_least("mem", 2.0),
            ),
            requester="me",
        )
        subs = mq.sub_queries()
        assert [s.attribute for s in subs] == ["cpu", "mem"]
        assert all(s.requester == "me" for s in subs)
        assert mq.num_attributes == 2
        assert mq.is_range  # one constraint is a range


class TestResults:
    def _info(self, provider: str) -> ResourceInfo:
        return ResourceInfo("cpu", 1.0, provider)

    def test_query_result_providers(self):
        r = QueryResult(matches=(self._info("a"), self._info("b"), self._info("a")),
                        hops=3, visited_nodes=1)
        assert r.providers == {"a", "b"}

    def test_multi_result_accounting(self):
        subs = (
            QueryResult((), hops=3, visited_nodes=1),
            QueryResult((), hops=5, visited_nodes=4),
        )
        mr = MultiQueryResult(providers=frozenset({"x"}), sub_results=subs)
        assert mr.total_hops == 8
        assert mr.total_visited == 5
        assert mr.latency_hops == 5
        assert mr.num_matches == 1


class TestSpanFraction:
    def test_linear_fraction(self):
        c = AttributeConstraint.between("cpu", 2.0, 4.0)
        assert effective_span_fraction(c, 0.0, 10.0) == pytest.approx(0.2)

    def test_cdf_fraction(self):
        c = AttributeConstraint.between("cpu", 2.0, 4.0)
        frac = effective_span_fraction(c, 0.0, 10.0, cdf=lambda v: (v / 10.0) ** 2)
        assert frac == pytest.approx(0.16 - 0.04)

    def test_unbounded_covers_rest_of_domain(self):
        c = AttributeConstraint.at_least("cpu", 7.5)
        assert effective_span_fraction(c, 0.0, 10.0) == pytest.approx(0.25)
