"""Tests for lease-tracked periodic reporting."""

from __future__ import annotations

import pytest

from repro.baselines.maan import MaanService
from repro.baselines.mercury import MercuryService
from repro.baselines.sword import SwordService
from repro.core.lorm import LormService
from repro.core.refresh import RefreshManager
from repro.core.resource import AttributeConstraint, Query, ResourceInfo
from repro.sim.engine import Simulator
from repro.workloads.attributes import AttributeSchema

SCHEMA = AttributeSchema.synthetic(5)


def make_service(kind: str = "lorm"):
    if kind == "lorm":
        return LormService.build_full(4, SCHEMA, seed=1)
    if kind == "mercury":
        return MercuryService.build_full(6, SCHEMA, seed=1)
    if kind == "sword":
        return SwordService.build_full(6, SCHEMA, seed=1)
    return MaanService.build_full(6, SCHEMA, seed=1)


def cpu_query() -> Query:
    return Query(AttributeConstraint.at_least("cpu-mhz", 100.0))


class TestDeregister:
    @pytest.mark.parametrize("kind", ["lorm", "mercury", "sword", "maan"])
    def test_register_then_deregister_round_trip(self, kind):
        service = make_service(kind)
        info = ResourceInfo("cpu-mhz", 2000.0, "p1")
        service.register(info, routed=False)
        assert service.query(cpu_query()).providers == {"p1"}
        removed = service.deregister(info)
        assert removed >= 1
        assert service.query(cpu_query()).providers == frozenset()
        assert service.total_info_pieces() == 0

    def test_deregister_absent_is_zero(self):
        service = make_service()
        assert service.deregister(ResourceInfo("cpu-mhz", 1.0, "ghost")) == 0

    def test_deregister_with_replication_removes_all_copies(self):
        service = LormService.build_full(4, SCHEMA, seed=2, replication=2)
        info = ResourceInfo("cpu-mhz", 2000.0, "p1")
        service.register(info, routed=False)
        assert service.total_info_pieces() == 2
        assert service.deregister(info) == 2
        assert service.total_info_pieces() == 0


class TestLeases:
    def test_report_registers_once(self):
        manager = RefreshManager(make_service(), ttl=10.0)
        info = ResourceInfo("cpu-mhz", 1500.0, "p1")
        manager.report(info, now=0.0)
        manager.report(info, now=5.0)  # renewal, same value
        assert manager.renewals == 1
        assert manager.service.total_info_pieces() == 1

    def test_renewal_extends_lease(self):
        manager = RefreshManager(make_service(), ttl=10.0)
        info = ResourceInfo("cpu-mhz", 1500.0, "p1")
        manager.report(info, now=0.0)
        manager.report(info, now=8.0)
        assert manager.expire(now=12.0) == 0  # renewed at 8 -> expires 18
        assert manager.expire(now=18.0) == 1

    def test_changed_value_replaces_stale_report(self):
        service = make_service()
        manager = RefreshManager(service, ttl=10.0)
        manager.report(ResourceInfo("cpu-mhz", 3000.0, "p1"), now=0.0)
        manager.report(ResourceInfo("cpu-mhz", 900.0, "p1"), now=1.0)
        assert manager.replacements == 1
        assert service.total_info_pieces() == 1
        result = service.query(Query(AttributeConstraint.at_least("cpu-mhz", 2000.0)))
        assert result.providers == frozenset()  # old 3000 report is gone

    def test_expire_withdraws_from_directories(self):
        service = make_service()
        manager = RefreshManager(service, ttl=5.0)
        manager.report(ResourceInfo("cpu-mhz", 1500.0, "p1"), now=0.0)
        assert manager.expire(now=5.0) == 1
        assert service.query(cpu_query()).providers == frozenset()
        assert manager.live_leases == 0

    def test_withdraw_explicit(self):
        service = make_service()
        manager = RefreshManager(service, ttl=5.0)
        manager.report(ResourceInfo("cpu-mhz", 1500.0, "p1"), now=0.0)
        assert manager.withdraw("p1", "cpu-mhz")
        assert not manager.withdraw("p1", "cpu-mhz")
        assert service.total_info_pieces() == 0

    def test_lease_introspection(self):
        manager = RefreshManager(make_service(), ttl=7.0)
        manager.report(ResourceInfo("cpu-mhz", 1500.0, "p1"), now=1.0)
        lease = manager.lease_of("p1", "cpu-mhz")
        assert lease is not None and lease.expires_at == 8.0
        assert manager.lease_of("p2", "cpu-mhz") is None

    def test_invalid_ttl(self):
        with pytest.raises(ValueError):
            RefreshManager(make_service(), ttl=0.0)


class TestSimIntegration:
    def test_periodic_expiry_in_simulation(self):
        service = make_service()
        manager = RefreshManager(service, ttl=10.0)
        sim = Simulator()
        manager.install_periodic_expiry(sim, period=5.0, horizon=60.0)

        # p1 reports once and goes silent; p2 keeps renewing.
        manager.report(ResourceInfo("cpu-mhz", 1500.0, "p1"), now=0.0)

        def renew(t: float) -> None:
            manager.report(ResourceInfo("cpu-mhz", 2500.0, "p2"), now=t)

        for t in range(0, 55, 5):
            sim.schedule_at(float(t), lambda t=float(t): renew(t))
        sim.run()

        assert service.query(cpu_query()).providers == {"p2"}
        assert manager.expirations == 1

    def test_dead_provider_ages_out_after_crash(self):
        """Combine crashes with leases: a crashed provider's reports are
        not renewed, so its stale availability disappears after the TTL
        even though nobody deregistered explicitly."""
        service = LormService.build_full(4, SCHEMA, seed=3, replication=2)
        manager = RefreshManager(service, ttl=10.0)
        manager.report(ResourceInfo("cpu-mhz", 2222.0, "dead-box"), now=0.0)
        # (the provider machine crashes; its directory entries survive on
        # replicas, but its renewals stop)
        assert manager.expire(now=10.0) == 1
        assert service.query(cpu_query()).providers == frozenset()
