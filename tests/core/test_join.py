"""Tests for the requester-side join operation."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.join import join_on_provider
from repro.core.resource import ResourceInfo


def infos(attr: str, providers: list[str]) -> list[ResourceInfo]:
    return [ResourceInfo(attr, 1.0, p) for p in providers]


class TestJoin:
    def test_intersection(self):
        result = join_on_provider(
            [infos("cpu", ["a", "b", "c"]), infos("mem", ["b", "c", "d"])]
        )
        assert result == {"b", "c"}

    def test_single_attribute_identity(self):
        assert join_on_provider([infos("cpu", ["a", "b"])]) == {"a", "b"}

    def test_empty_sub_result_kills_join(self):
        assert join_on_provider([infos("cpu", ["a"]), []]) == frozenset()

    def test_no_sub_queries(self):
        assert join_on_provider([]) == frozenset()

    def test_duplicates_within_attribute_ignored(self):
        result = join_on_provider(
            [infos("cpu", ["a", "a"]), infos("mem", ["a"])]
        )
        assert result == {"a"}

    def test_three_way(self):
        result = join_on_provider(
            [
                infos("cpu", ["a", "b", "c"]),
                infos("mem", ["a", "c"]),
                infos("disk", ["c", "d"]),
            ]
        )
        assert result == {"c"}

    providers = st.lists(st.sampled_from("abcdefgh"), max_size=8)

    @given(a=providers, b=providers)
    def test_matches_set_intersection(self, a, b):
        result = join_on_provider([infos("x", a), infos("y", b)])
        assert result == set(a) & set(b)

    @given(a=providers)
    def test_idempotent(self, a):
        assert join_on_provider([infos("x", a), infos("y", a)]) == set(a)
