"""Tests for the semantic-discovery extension (the paper's future work)."""

from __future__ import annotations

import pytest

from repro.core.lorm import LormService
from repro.core.resource import AttributeConstraint, MultiAttributeQuery, Query, ResourceInfo
from repro.core.semantic import Ontology, SemanticResolver, UnitConversion
from repro.workloads.attributes import AttributeSchema


@pytest.fixture()
def resolver() -> SemanticResolver:
    schema = AttributeSchema.synthetic(6)
    service = LormService.build_full(4, schema, seed=9)
    service.register(ResourceInfo("cpu-mhz", 2400.0, "fast-box"))
    service.register(ResourceInfo("cpu-mhz", 900.0, "slow-box"))
    service.register(ResourceInfo("free-memory-mb", 8192.0, "fast-box"))
    service.register(ResourceInfo("disk-gb", 500.0, "disk-box"))
    service.register(ResourceInfo("network-mbps", 900.0, "net-box"))
    ontology = (
        Ontology()
        .add_synonym("clock-speed", "cpu-mhz")
        .add_conversion("free-memory-gb", "free-memory-mb", scale=1024.0)
        .add_conversion("cpu-ghz", "cpu-mhz", scale=1000.0)
        .add_broader("io-capacity", ("disk-gb", "network-mbps"))
    )
    return SemanticResolver(service, ontology)


class TestUnitConversion:
    def test_affine(self):
        conv = UnitConversion("x", scale=2.0, offset=1.0)
        assert conv.to_canonical(3.0) == 7.0


class TestOntology:
    def test_synonym_resolution(self, resolver):
        [c] = resolver.ontology.resolve(AttributeConstraint.at_least("clock-speed", 1.0))
        assert c.attribute == "cpu-mhz"
        assert c.low == 1.0

    def test_conversion_scales_bounds(self, resolver):
        [c] = resolver.ontology.resolve(
            AttributeConstraint.between("free-memory-gb", 2.0, 4.0)
        )
        assert c.attribute == "free-memory-mb"
        assert (c.low, c.high) == (2048.0, 4096.0)

    def test_conversion_preserves_unbounded_sides(self, resolver):
        [c] = resolver.ontology.resolve(AttributeConstraint.at_least("cpu-ghz", 2.0))
        assert c.low == 2000.0 and c.high is None

    def test_negative_scale_flips_bounds(self):
        ontology = Ontology().add_conversion("inv", "x", scale=-1.0)
        [c] = ontology.resolve(AttributeConstraint.between("inv", 1.0, 2.0))
        assert (c.low, c.high) == (-2.0, -1.0)

    def test_broader_fans_out(self, resolver):
        resolved = resolver.ontology.resolve(
            AttributeConstraint.at_least("io-capacity", 100.0)
        )
        assert {c.attribute for c in resolved} == {"disk-gb", "network-mbps"}

    def test_canonical_passthrough(self, resolver):
        [c] = resolver.ontology.resolve(AttributeConstraint.at_least("cpu-mhz", 1.0))
        assert c.attribute == "cpu-mhz"

    def test_duplicate_terms_rejected(self):
        ontology = Ontology().add_synonym("a", "x")
        with pytest.raises(ValueError):
            ontology.add_conversion("a", "y")

    def test_empty_broader_rejected(self):
        with pytest.raises(ValueError):
            Ontology().add_broader("t", ())


class TestSemanticQueries:
    def test_synonym_query_finds_providers(self, resolver):
        result = resolver.query(Query(AttributeConstraint.at_least("clock-speed", 2000.0)))
        assert result.providers == {"fast-box"}

    def test_converted_units_query(self, resolver):
        result = resolver.query(
            Query(AttributeConstraint.at_least("free-memory-gb", 4.0))
        )
        assert result.providers == {"fast-box"}

    def test_broader_term_unions(self, resolver):
        result = resolver.query(
            Query(AttributeConstraint.at_least("io-capacity", 400.0))
        )
        assert result.providers == {"disk-box", "net-box"}

    def test_multi_query_joins_across_terms(self, resolver):
        mq = MultiAttributeQuery(
            (
                AttributeConstraint.at_least("cpu-ghz", 2.0),
                AttributeConstraint.at_least("free-memory-gb", 4.0),
            )
        )
        result = resolver.multi_query(mq)
        assert result.providers == {"fast-box"}

    def test_broader_and_specific_join(self, resolver):
        mq = MultiAttributeQuery(
            (
                AttributeConstraint.at_least("io-capacity", 400.0),
                AttributeConstraint.at_least("clock-speed", 2000.0),
            )
        )
        # No provider offers both IO capacity and a fast CPU.
        assert resolver.multi_query(mq).providers == frozenset()

    def test_accounting_accumulates(self, resolver):
        result = resolver.query(
            Query(AttributeConstraint.at_least("io-capacity", 1.0))
        )
        # Two fan-out sub-queries: both are accounted.
        assert result.visited_nodes >= 2
        assert result.hops > 0
