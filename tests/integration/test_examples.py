"""Every example script must run clean end-to-end.

Examples are part of the public deliverable; these tests execute them the
way a user would (fresh interpreter) and sanity-check their output.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "machines satisfy both attributes" in out
        assert "-> 0 machines" not in out  # the demo query must have hits

    def test_grid_scheduler(self):
        out = run_example("grid_scheduler.py")
        assert "placed" in out
        # A healthy majority of jobs find a host.
        placed = int(out.split("placed ")[1].split("/")[0])
        assert placed >= 60

    def test_compare_approaches(self):
        out = run_example("compare_approaches.py")
        assert "25/25 spot-check queries identical" in out
        for name in ("LORM", "Mercury", "SWORD", "MAAN"):
            assert name in out

    def test_churn_resilience(self):
        out = run_example("churn_resilience.py")
        assert "wrong answers: 0" in out
        assert "consistent with the paper" in out

    def test_semantic_discovery(self):
        out = run_example("semantic_discovery.py")
        assert "the raw service rejects it" in out
        assert "-> 0 machines" not in out.split("join across semantic terms")[0]

    def test_load_balance_viz(self):
        out = run_example("load_balance_viz.py")
        for name in ("SWORD", "MAAN", "Mercury", "LORM"):
            assert f"== {name}" in out
        assert "Cycloid d=5 load grid" in out
