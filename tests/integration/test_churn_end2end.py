"""End-to-end churn: the Section V-C experiment at miniature scale."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.common import build_services
from repro.experiments.figure6 import run_churn_trial
from repro.sim.invariants import install_churn_guards
from repro.workloads.generator import QueryKind


class TestChurnTrial:
    @pytest.fixture(scope="class")
    def trial(self, tiny_config):
        return run_churn_trial(tiny_config, rate=0.5)

    def test_no_query_failures(self, trial):
        assert trial.failures == 0

    def test_churn_events_actually_happened(self, trial):
        assert trial.churn_events > 0

    def test_all_approaches_reported(self, trial):
        assert set(trial) == {"LORM", "Mercury", "SWORD", "MAAN"}

    def test_metrics_sane(self, trial):
        for name, (hops, visited) in trial.items():
            assert hops > 0, name
            assert visited >= 1, name

    def test_ordering_under_churn(self, trial):
        assert trial["Mercury"][0] < trial["MAAN"][0]
        assert trial["SWORD"][1] <= trial["LORM"][1] < trial["Mercury"][1]


class TestQueriesDuringManualChurn:
    def test_every_service_stays_correct_through_churn(
        self, tiny_config, assert_invariants
    ):
        """Interleave churn and queries; answers must stay brute-force
        correct for all approaches (info is handed off on departure).
        Churn guards validate structural invariants and directory
        conservation at every event along the way."""
        bundle = build_services(tiny_config)
        guards = [install_churn_guards(service) for service in bundle.all()]
        wl = bundle.workload
        rng = np.random.default_rng(1)
        queries = list(wl.query_stream(30, 2, QueryKind.RANGE, label="manual-churn"))
        for i, query in enumerate(queries):
            for service in bundle.all():
                if i % 3 == 0:
                    service.churn_leave()
                elif i % 3 == 1:
                    service.churn_join()
                if i % 10 == 0:
                    service.stabilize()
                assert service.multi_query(query).providers == (
                    wl.matching_providers_bruteforce(query)
                ), f"{service.name} wrong after churn step {i}"
        assert all(guard.events > 0 for guard in guards)
        assert_invariants(bundle)

    def test_population_recovers_after_balanced_churn(self, tiny_config):
        bundle = build_services(tiny_config, register=False)
        for service in bundle.all():
            start = service.num_nodes()
            for _ in range(10):
                service.churn_leave()
            for _ in range(10):
                service.churn_join()
            assert service.num_nodes() == start
