"""The semantic layer is service-agnostic: identical answers over all four
approaches (and consistent with a manual canonical rewrite)."""

from __future__ import annotations

import pytest

from repro.core.resource import AttributeConstraint, MultiAttributeQuery, ResourceInfo
from repro.core.semantic import Ontology, SemanticResolver


@pytest.fixture(scope="module")
def ontology() -> Ontology:
    return (
        Ontology()
        .add_synonym("clock-speed", "cpu-mhz")
        .add_conversion("free-memory-gb", "free-memory-mb", scale=1024.0)
        .add_broader("capacity", ("disk-gb", "free-memory-mb"))
    )


def semantic_query() -> MultiAttributeQuery:
    return MultiAttributeQuery(
        (
            AttributeConstraint.at_least("clock-speed", 1000.0),
            AttributeConstraint.at_least("free-memory-gb", 1.0),
        )
    )


def canonical_query() -> MultiAttributeQuery:
    return MultiAttributeQuery(
        (
            AttributeConstraint.at_least("cpu-mhz", 1000.0),
            AttributeConstraint.at_least("free-memory-mb", 1024.0),
        )
    )


def test_identical_answers_across_all_approaches(loaded_bundle, ontology):
    answers = {}
    for service in loaded_bundle.all():
        resolver = SemanticResolver(service, ontology)
        answers[service.name] = resolver.multi_query(semantic_query()).providers
    assert len(set(answers.values())) == 1, answers


def test_semantic_equals_manual_canonical_rewrite(loaded_bundle, ontology):
    for service in loaded_bundle.all():
        resolver = SemanticResolver(service, ontology)
        semantic = resolver.multi_query(semantic_query()).providers
        canonical = service.multi_query(canonical_query()).providers
        assert semantic == canonical, service.name


def test_broader_term_unions_over_every_service(loaded_bundle, ontology):
    query = MultiAttributeQuery(
        (AttributeConstraint.at_least("capacity", 1.0),)
    )
    for service in loaded_bundle.all():
        resolver = SemanticResolver(service, ontology)
        got = resolver.multi_query(query).providers
        disk = service.multi_query(
            MultiAttributeQuery((AttributeConstraint.at_least("disk-gb", 1.0),))
        ).providers
        mem = service.multi_query(
            MultiAttributeQuery((AttributeConstraint.at_least("free-memory-mb", 1.0),))
        ).providers
        assert got == disk | mem, service.name


def test_semantic_layer_accounting_sums_subqueries(loaded_bundle, ontology):
    resolver = SemanticResolver(loaded_bundle.lorm, ontology)
    result = resolver.multi_query(semantic_query())
    assert result.total_hops == sum(r.hops for r in result.sub_results)
    assert all(r.visited_nodes >= 1 for r in result.sub_results)


def test_fresh_registration_visible_through_resolver(loaded_bundle, ontology):
    service = loaded_bundle.lorm
    info = ResourceInfo("cpu-mhz", 4999.0, "semantic-new-box")
    service.register(info, routed=False)
    try:
        resolver = SemanticResolver(service, ontology)
        result = resolver.multi_query(
            MultiAttributeQuery(
                (AttributeConstraint.at_least("clock-speed", 4998.0),)
            )
        )
        assert "semantic-new-box" in result.providers
    finally:
        service.deregister(info)
