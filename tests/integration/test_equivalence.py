"""Cross-approach equivalence: all four services answer identically.

The strongest end-to-end check in the suite — on identical workloads, LORM,
Mercury, SWORD and MAAN must each return exactly the brute-force-correct
provider set, for every query shape the paper uses.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads.generator import QueryKind


@pytest.mark.parametrize("kind", [QueryKind.POINT, QueryKind.RANGE, QueryKind.AT_LEAST])
@pytest.mark.parametrize("num_attributes", [1, 2, 3])
def test_all_approaches_match_bruteforce(loaded_bundle, kind, num_attributes):
    wl = loaded_bundle.workload
    queries = list(
        wl.query_stream(15, num_attributes, kind, label=f"eq-{kind.value}")
    )
    for query in queries:
        truth = wl.matching_providers_bruteforce(query)
        for service in loaded_bundle.all():
            got = service.multi_query(query).providers
            assert got == truth, (
                f"{service.name} diverged on {kind.value}/{num_attributes}-attr query"
            )


def test_all_approaches_agree_with_each_other(loaded_bundle):
    """Pairwise agreement on a fresh query mix (redundant with brute force,
    but catches accounting-only refactors that break one service)."""
    wl = loaded_bundle.workload
    rng = np.random.default_rng(99)
    for _ in range(20):
        mq = wl.sample_multi_query(2, QueryKind.RANGE, rng)
        answers = {s.name: s.multi_query(mq).providers for s in loaded_bundle.all()}
        baseline = answers["LORM"]
        assert all(a == baseline for a in answers.values()), answers


def test_sub_results_join_consistency(loaded_bundle):
    """The joined provider set equals the intersection of sub-result
    provider sets for every service."""
    wl = loaded_bundle.workload
    rng = np.random.default_rng(7)
    mq = wl.sample_multi_query(3, QueryKind.RANGE, rng)
    for service in loaded_bundle.all():
        result = service.multi_query(mq)
        expected = frozenset.intersection(
            *(r.providers for r in result.sub_results)
        )
        assert result.providers == expected


def test_empty_result_when_constraints_unsatisfiable(loaded_bundle):
    from repro.core.resource import AttributeConstraint, MultiAttributeQuery

    spec = loaded_bundle.workload.schema.specs[0]
    impossible = MultiAttributeQuery(
        (AttributeConstraint.between(spec.name, spec.hi * 0.999999, spec.hi),)
    )
    # With Bounded-Pareto values, mass near the upper bound is ~0.
    for service in loaded_bundle.all():
        result = service.multi_query(impossible)
        assert result.providers == loaded_bundle.workload.matching_providers_bruteforce(
            impossible
        )


def test_accounting_ordering_between_approaches(loaded_bundle):
    """The paper's headline orderings hold on every individual range query:
    SWORD <= LORM visited counts, and LORM << system-wide approaches on
    average."""
    wl = loaded_bundle.workload
    totals = {name: 0 for name in ("LORM", "Mercury", "SWORD", "MAAN")}
    queries = list(wl.query_stream(25, 2, QueryKind.RANGE, label="ordering"))
    for query in queries:
        for service in loaded_bundle.all():
            outcome = service.multi_query(query)
            totals[service.name] += outcome.total_visited
    assert totals["SWORD"] <= totals["LORM"]
    assert totals["LORM"] * 5 < totals["Mercury"]
    assert totals["Mercury"] <= totals["MAAN"]


def test_loaded_bundle_satisfies_invariants(loaded_bundle, assert_invariants):
    """The shared bundle's overlays pass every structural invariant after
    registration and the full battery of queries above."""
    assert_invariants(loaded_bundle)
