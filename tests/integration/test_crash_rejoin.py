"""Regression tests: a crashed node's state must never be resurrected.

A crash (``fail``) destroys the node's memory — ``clear_storage`` runs and
the node object leaves the membership maps.  When the same identifier later
rejoins (``churn_join`` re-uses departed IDs), the overlay must hand it a
*fresh* node: anything it held before the crash is recoverable only through
replicas that survived elsewhere, never through the old node object
leaking back in.  These tests pin that behaviour for both overlays at
replication 1 (data genuinely gone) and replication 2 (data restored from
replicas, not from the corpse).
"""

from __future__ import annotations

from repro.overlay.chord import ChordRing
from repro.overlay.cycloid import CycloidId, CycloidOverlay


class TestChordCrashRejoin:
    def test_rejoin_after_crash_is_empty_without_replication(self):
        ring = ChordRing(6)
        ring.build(range(0, 64, 4))
        key = 17  # owned by node 20
        owner = ring.store("ns", key, "payload")
        assert owner.node_id == 20
        old = ring.node(20)
        ring.fail(20)
        assert not old.alive
        assert old.directory_size() == 0  # memory cleared at crash time

        rejoined = ring.join(20)
        assert rejoined is not old  # a fresh node object, not the corpse
        assert rejoined.alive
        assert rejoined.directory_size() == 0  # r=1: the payload is gone
        assert "payload" not in [
            item for _, _, item in rejoined.stored_entries()
        ]

    def test_rejoin_receives_data_only_via_replicas(self):
        ring = ChordRing(6, replication=2)
        ring.build(range(0, 64, 4))
        key = 17
        ring.store("ns", key, "payload")  # at node 20, replica at 24
        ring.fail(20)
        ring.repair_replication()  # survivors re-home the copy

        rejoined = ring.join(20)
        ring.repair_replication()
        # The payload is back on the owner — restored from the replica at
        # 24, not resurrected from the crashed node's cleared memory.
        holders = {
            node.node_id
            for node in ring.nodes()
            for _, key_id, item in node.stored_entries()
            if item == "payload"
        }
        assert holders == {n.node_id for n in ring.replica_set(key)}
        assert 20 in holders

    def test_crashed_node_object_stays_dead_after_rejoin(self):
        ring = ChordRing(6)
        ring.build(range(0, 64, 8))
        old = ring.node(8)
        ring.fail(8)
        ring.join(8)
        assert not old.alive  # the corpse is not revived in place
        assert ring.node(8) is not old
        ring.check_ring_invariants()


class TestCycloidCrashRejoin:
    def test_rejoin_after_crash_is_empty_without_replication(self):
        overlay = CycloidOverlay(4)
        overlay.build_full()
        key = CycloidId(2, 5)
        owner = overlay.store("ns", key, "payload")
        cid = owner.cid
        old = overlay.node(cid)
        overlay.fail(cid)
        assert not old.alive
        assert old.directory_size() == 0

        rejoined = overlay.join(cid)
        assert rejoined is not old
        assert rejoined.directory_size() == 0

    def test_rejoin_receives_data_only_via_replicas(self):
        overlay = CycloidOverlay(4, replication=2)
        overlay.build_full()
        key = CycloidId(2, 5)
        owner = overlay.store("ns", key, "payload")
        overlay.fail(owner.cid)
        overlay.repair_replication()

        overlay.join(owner.cid)
        overlay.repair_replication()
        holders = {
            node.cid
            for node in overlay.nodes()
            for _, _, item in node.stored_entries()
            if item == "payload"
        }
        assert holders == {n.cid for n in overlay.replica_set(key)}
