"""Unit tests for the span tracer mechanics (:mod:`repro.obs.spans`)."""

from __future__ import annotations

import pytest

from repro.obs.spans import QueryTracer, SpanKind
from repro.sim.trace import TraceEventKind, TraceRecorder


class TestSpanLifecycle:
    def test_begin_end_builds_one_trace(self):
        tracer = QueryTracer()
        tracer.begin("query", "q")
        tracer.end()
        assert len(tracer.traces) == 1
        assert tracer.traces[0].root.kind is SpanKind.QUERY

    def test_nesting_builds_a_tree(self):
        tracer = QueryTracer()
        tracer.begin("query", "q")
        tracer.begin("subquery", "s")
        tracer.begin("lookup", "l")
        tracer.end()
        tracer.end()
        tracer.end()
        trace = tracer.traces[0]
        assert [s.kind for s in trace.spans()] == [
            SpanKind.QUERY, SpanKind.SUBQUERY, SpanKind.LOOKUP,
        ]
        assert trace.root.children[0].children[0].name == "l"

    def test_tick_clock_is_monotone_and_deterministic(self):
        def run():
            tracer = QueryTracer()
            with tracer.span("query", "q"):
                tracer.hop(1, 2, "finger")
                tracer.hop(2, 3, "finger")
            return [(s.start, s.end) for s in tracer.traces[0].spans()]

        stamps = run()
        assert stamps == run()
        assert all(end >= start for start, end in stamps)

    def test_sim_clock_overrides_ticks(self):
        now = [7.5]
        tracer = QueryTracer(clock=lambda: now[0])
        tracer.begin("query", "q")
        now[0] = 9.0
        span = tracer.end()
        assert span.start == 7.5 and span.end == 9.0

    def test_end_without_begin_raises(self):
        with pytest.raises(ValueError):
            QueryTracer().end()

    def test_span_contextmanager_records_error(self):
        tracer = QueryTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("query", "q"):
                raise RuntimeError("boom")
        root = tracer.traces[0].root
        assert root.attrs["error"] == "RuntimeError"
        assert root.end > 0  # still closed

    def test_max_traces_evicts_oldest(self):
        tracer = QueryTracer(max_traces=2)
        for i in range(3):
            with tracer.span("query", f"q{i}"):
                pass
        assert tracer.dropped == 1
        assert [t.root.name for t in tracer.traces] == ["q1", "q2"]


class TestAnnotations:
    def test_annotate_merges_into_innermost(self):
        tracer = QueryTracer()
        with tracer.span("query", "q") as span:
            tracer.annotate(hops=3)
        assert span.attrs["hops"] == 3

    def test_event_defaults_to_innermost(self):
        tracer = QueryTracer()
        with tracer.span("lookup", "l"):
            tracer.event("retry", attempt=1)
        events = tracer.traces[0].events_of("retry")
        assert len(events) == 1 and events[0].detail == {"attempt": 1}

    def test_hop_records_src_dst_choice(self):
        tracer = QueryTracer()
        with tracer.span("lookup", "l"):
            hop = tracer.hop(4, 9, "successor-list")
        assert hop.kind is SpanKind.HOP
        assert hop.attrs == {"src": 4, "dst": 9, "choice": "successor-list"}
        assert hop.start == hop.end

    def test_hop_outside_span_raises(self):
        with pytest.raises(ValueError):
            QueryTracer().hop(1, 2, "finger")

    def test_faulted_property(self):
        tracer = QueryTracer()
        with tracer.span("query", "clean"):
            pass
        with tracer.span("query", "dirty"):
            tracer.event("drop", target=3)
        clean, dirty = tracer.traces
        assert not clean.faulted and dirty.faulted


class TestRecorderSink:
    def test_completed_spans_forward_to_recorder(self):
        recorder = TraceRecorder()
        tracer = QueryTracer(recorder=recorder)
        with tracer.span("query", "q"):
            with tracer.span("lookup", "l", origin=5):
                tracer.hop(5, 6, "finger")
        assert recorder.count(TraceEventKind.HOP) == 1
        assert recorder.count(TraceEventKind.LOOKUP) == 1
        assert recorder.count(TraceEventKind.QUERY) == 1
        lookup_event = recorder.events(TraceEventKind.LOOKUP)[0]
        assert lookup_event.detail["origin"] == 5

    def test_walk_and_register_map_to_legacy_kinds(self):
        recorder = TraceRecorder()
        tracer = QueryTracer(recorder=recorder)
        with tracer.span("walk", "w"):
            pass
        with tracer.span("register", "r"):
            pass
        assert recorder.count(TraceEventKind.RANGE_WALK) == 1
        assert recorder.count(TraceEventKind.STORE) == 1
