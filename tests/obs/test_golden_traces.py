"""Golden-trace regression tests.

One canonical trace per system lives under
``tests/baselines/golden_traces/<system>.jsonl``: the JSONL export of one
seed-0 two-attribute range query, exactly what ``repro trace --system
<system> --seed 0 --format jsonl`` prints.  The tests regenerate each
trace from scratch and assert the output is *byte-identical* to the
committed file — any change to routing, hashing, workload generation, the
span model or the exporter shows up as a diff here.

Updating the goldens
--------------------
When a change intentionally alters traces (new span attribute, routing
fix, workload change), regenerate all four files and commit them together
with the change::

    for s in lorm mercury sword maan; do
        PYTHONPATH=src python -m repro trace --system $s --seed 0 \
            --format jsonl --out tests/baselines/golden_traces/$s.jsonl
    done

Review the diff before committing: every changed line should be explained
by the change you made.  Never hand-edit the files.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs.export import traces_to_jsonl
from repro.obs.replay import SYSTEMS, replay_queries

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "baselines" / "golden_traces"


def _regenerate(system: str) -> str:
    _, traces = replay_queries(system, seed=0, num_queries=1, num_attributes=2)
    return traces_to_jsonl(traces)


@pytest.mark.parametrize("system", sorted(SYSTEMS))
def test_trace_matches_committed_golden(system):
    golden = (GOLDEN_DIR / f"{system}.jsonl").read_text()
    regenerated = _regenerate(system)
    assert regenerated == golden, (
        f"{system} trace diverged from its golden; if intentional, "
        f"regenerate per the module docstring"
    )


@pytest.mark.parametrize("system", sorted(SYSTEMS))
def test_regeneration_is_stable(system):
    """Two fresh replays in the same process are byte-identical (no hidden
    global state leaks into the traces)."""
    assert _regenerate(system) == _regenerate(system)


@pytest.mark.parametrize("system", sorted(SYSTEMS))
def test_golden_is_wellformed_jsonl(system):
    lines = (GOLDEN_DIR / f"{system}.jsonl").read_text().splitlines()
    assert lines, f"{system}.jsonl is empty"
    roots = 0
    for line in lines:
        record = json.loads(line)
        assert {"trace", "span", "parent", "kind", "name", "start", "end",
                "attrs", "events"} <= set(record)
        roots += record["parent"] is None
    assert roots == 1  # one query -> one span tree
