"""Golden-trace regression tests.

One canonical trace per system lives under
``tests/baselines/golden_traces/<system>.jsonl``: the JSONL export of one
seed-0 two-attribute range query, exactly what ``repro trace --system
<system> --seed 0 --format jsonl`` prints.  The same query replayed on
the single-hop and ReCord routing tiers lives in
``<overlay>_<system>.jsonl``.  The tests regenerate each trace from
scratch and assert the output is *byte-identical* to the committed file —
any change to routing, hashing, workload generation, the span model or
the exporter shows up as a diff here.

Updating the goldens
--------------------
When a change intentionally alters traces (new span attribute, routing
fix, workload change), regenerate all the files and commit them together
with the change::

    for s in lorm mercury sword maan; do
        PYTHONPATH=src python -m repro trace --system $s --seed 0 \
            --format jsonl --out tests/baselines/golden_traces/$s.jsonl
        for o in singlehop record; do
            PYTHONPATH=src python -m repro trace --system $s --seed 0 \
                --overlay $o --format jsonl \
                --out tests/baselines/golden_traces/${o}_$s.jsonl
        done
    done

Review the diff before committing: every changed line should be explained
by the change you made.  Never hand-edit the files.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs.export import traces_to_jsonl
from repro.obs.replay import SYSTEMS, replay_queries

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "baselines" / "golden_traces"

#: The alternative routing tiers with committed goldens.
OVERLAYS = ("singlehop", "record")

#: Every committed golden: (filename stem, system, overlay-or-None).
CASES = [(system, system, None) for system in sorted(SYSTEMS)] + [
    (f"{overlay}_{system}", system, overlay)
    for overlay in OVERLAYS
    for system in sorted(SYSTEMS)
]


def _regenerate(system: str, overlay: str | None = None) -> str:
    _, traces = replay_queries(
        system, seed=0, num_queries=1, num_attributes=2, overlay=overlay
    )
    return traces_to_jsonl(traces)


@pytest.mark.parametrize("stem,system,overlay", CASES)
def test_trace_matches_committed_golden(stem, system, overlay):
    golden = (GOLDEN_DIR / f"{stem}.jsonl").read_text()
    regenerated = _regenerate(system, overlay)
    assert regenerated == golden, (
        f"{stem} trace diverged from its golden; if intentional, "
        f"regenerate per the module docstring"
    )


@pytest.mark.parametrize("stem,system,overlay", CASES)
def test_regeneration_is_stable(stem, system, overlay):
    """Two fresh replays in the same process are byte-identical (no hidden
    global state leaks into the traces)."""
    assert _regenerate(system, overlay) == _regenerate(system, overlay)


@pytest.mark.parametrize("stem", [case[0] for case in CASES])
def test_golden_is_wellformed_jsonl(stem):
    lines = (GOLDEN_DIR / f"{stem}.jsonl").read_text().splitlines()
    assert lines, f"{stem}.jsonl is empty"
    roots = 0
    for line in lines:
        record = json.loads(line)
        assert {"trace", "span", "parent", "kind", "name", "start", "end",
                "attrs", "events"} <= set(record)
        roots += record["parent"] is None
    assert roots == 1  # one query -> one span tree


@pytest.mark.parametrize("system", sorted(SYSTEMS))
def test_record_fanout_one_matches_chord_hop_counts(system):
    """ReCord at fan-out 1 degenerates into deterministic Chord: the same
    seeded query takes identical hop counts on both substrates."""
    _, chord_traces = replay_queries(
        system, seed=0, num_queries=2, num_attributes=2, overlay="chord"
    )
    _, record_traces = replay_queries(
        system, seed=0, num_queries=2, num_attributes=2,
        overlay="record", fanout=1,
    )
    chord_hops = [t.hop_count() for t in chord_traces]
    record_hops = [t.hop_count() for t in record_traces]
    assert record_hops == chord_hops
