"""Fault-path tracing: injected loss surfaces as span annotations.

Seeded message loss must show up in the span trees as ``drop`` / ``retry``
/ ``timeout`` / ``failover`` point events, and the annotation counts must
reconcile with the ``LookupResult`` / ``WalkResult`` accounting the
fault-injection layer already reports.
"""

from __future__ import annotations

import pytest

from repro.obs.replay import SYSTEMS, build_traced_service, replay_queries
from repro.obs.spans import QueryTracer, SpanKind
from repro.overlay.chord import ChordRing
from repro.overlay.cycloid import CycloidOverlay
from repro.sim.chaos import network_ids_of, slow_victims
from repro.sim.faults import (
    DEFAULT_POLICY,
    HEDGED_POLICY,
    FaultInjector,
    FaultPlan,
    LookupPolicy,
)
from repro.sim.invariants import overlay_of
from repro.sim.latency import LognormalLatency
from repro.testing import assert_trace_bounds
from repro.workloads.generator import QueryKind

LOSS = 0.3


def _retry_events(span) -> int:
    return sum(1 for s in span.walk() for ev in s.events if ev.kind == "retry")


class TestChordFaultTraces:
    def _traced_lookup(self, *, loss=LOSS, seed=5, policy=None):
        ring = ChordRing(6)
        ring.build_full()
        ring.network.faults = FaultInjector(FaultPlan(loss_rate=loss, seed=seed))
        tracer = QueryTracer()
        ring.tracer = tracer
        start = ring.node(0)
        result = ring.lookup(start, 47, policy or LookupPolicy(max_retries=3))
        return ring, tracer, result

    def test_retry_annotations_equal_lookup_retries(self):
        for seed in range(6):
            _, tracer, result = self._traced_lookup(seed=seed)
            (trace,) = tracer.traces
            assert len(trace.events_of("retry")) == result.retries

    def test_drops_are_annotated_with_target_and_attempt(self):
        for seed in range(8):
            _, tracer, result = self._traced_lookup(seed=seed)
            drops = tracer.traces[0].events_of("drop")
            if drops:
                assert all(
                    "target" in ev.detail and "attempt" in ev.detail for ev in drops
                )
                return
        pytest.fail("30% loss over 8 seeds never dropped a message")

    def test_failover_annotated_when_candidates_skipped(self):
        for seed in range(30):
            _, tracer, result = self._traced_lookup(seed=seed, loss=0.6)
            failovers = tracer.traces[0].events_of("failover")
            if failovers:
                assert all(ev.detail["skipped"] >= 1 for ev in failovers)
                return
        pytest.fail("60% loss over 30 seeds never failed over")

    def test_timeout_annotated_on_dead_end(self):
        for seed in range(40):
            _, tracer, result = self._traced_lookup(
                seed=seed, loss=0.9,
                policy=LookupPolicy(
                    max_retries=0, successor_failover=False, finger_fallback=False
                ),
            )
            if result.timed_out:
                assert tracer.traces[0].events_of("timeout")
                return
        pytest.fail("90% loss with no retries never timed out in 40 seeds")

    def test_hop_spans_match_hops_under_loss(self):
        for seed in range(6):
            _, tracer, result = self._traced_lookup(seed=seed)
            (trace,) = tracer.traces
            assert trace.hop_count() == result.hops


class TestCycloidFaultTraces:
    def _traced_lookup(self, *, loss=LOSS, seed=5):
        overlay = CycloidOverlay(4)
        overlay.build_full()
        overlay.network.faults = FaultInjector(FaultPlan(loss_rate=loss, seed=seed))
        tracer = QueryTracer()
        overlay.tracer = tracer
        nodes = list(overlay.nodes())
        start, target = nodes[0], nodes[-1].cid
        result = overlay.lookup(start, target, LookupPolicy(max_retries=3))
        return overlay, tracer, result

    def test_retry_annotations_equal_lookup_retries(self):
        for seed in range(6):
            _, tracer, result = self._traced_lookup(seed=seed)
            (trace,) = tracer.traces
            assert len(trace.events_of("retry")) == result.retries

    def test_hop_spans_match_hops_under_loss(self):
        for seed in range(6):
            _, tracer, result = self._traced_lookup(seed=seed)
            assert tracer.traces[0].hop_count() == result.hops


class TestHedgeTraces:
    """Hedged backup requests surface as ``hedge`` span events whose
    accounting reconciles with the network's hedge counters."""

    def _traced_hedged_lookup(self, *, seed=5, intermittency=0.6):
        ring = ChordRing(6)
        ring.build_full()
        net = ring.network
        injector = FaultInjector(FaultPlan(seed=seed))
        # Every destination is intermittently gray, so primaries straggle
        # often enough to arm hedges while backups still win sometimes.
        for node_id in network_ids_of(ring):
            injector.mark_slow(node_id, 40.0, intermittency)
        net.faults = injector
        net.latency_model = LognormalLatency(
            median=net.hop_latency, sigma=0.35, seed=seed
        )
        for _ in range(12):  # warm the shared aggregate estimator
            net.rtt_for(0).observe(net.hop_latency)
        tracer = QueryTracer()
        ring.tracer = tracer
        result = ring.lookup(ring.node(0), 47, HEDGED_POLICY)
        return ring, tracer, result

    def test_hedge_events_reconcile_with_network_stats(self):
        fired = 0
        for seed in range(8):
            ring, tracer, _ = self._traced_hedged_lookup(seed=seed)
            events = tracer.traces[0].events_of("hedge")
            assert len(events) == ring.network.stats.hedges
            won = sum(1 for ev in events if ev.detail["won"])
            assert won == ring.network.stats.hedges_won
            fired += len(events)
        assert fired > 0, "gray destinations over 8 seeds never hedged"

    def test_hedge_events_carry_target_and_verdict(self):
        for seed in range(8):
            _, tracer, _ = self._traced_hedged_lookup(seed=seed)
            events = tracer.traces[0].events_of("hedge")
            if events:
                assert all(
                    "target" in ev.detail and ev.detail["won"] in (True, False)
                    for ev in events
                )
                return
        pytest.fail("gray destinations over 8 seeds never hedged")

    def test_hedged_hop_spans_are_annotated(self):
        for seed in range(8):
            _, tracer, _ = self._traced_hedged_lookup(seed=seed)
            (trace,) = tracer.traces
            hedged_hops = [
                span for span in trace.spans_of(SpanKind.HOP)
                if span.attrs.get("hedge")
            ]
            if hedged_hops:
                for span in hedged_hops:
                    own = [ev for ev in span.events if ev.kind == "hedge"]
                    assert own
                    assert span.attrs["hedge_won"] == any(
                        ev.detail["won"] for ev in own
                    )
                return
        pytest.fail("gray destinations over 8 seeds never hedged on a hop")

    def test_hedging_marks_the_trace_faulted(self):
        for seed in range(8):
            _, tracer, _ = self._traced_hedged_lookup(seed=seed)
            (trace,) = tracer.traces
            if trace.events_of("hedge"):
                assert trace.faulted
                return
        pytest.fail("gray destinations over 8 seeds never hedged")


def test_latency_spans_reconcile_with_metrics_and_route_clock():
    """Under a gray-failure replay every query span carries a measured
    ``latency`` attribute; the per-sub metric samples sum to the network's
    requester clock, and each multi-query's latency is its critical path."""
    service, workload, tracer = build_traced_service("lorm")
    overlay = overlay_of(service)
    net = overlay.network
    injector = FaultInjector(FaultPlan(seed=3))
    for victim in slow_victims(overlay, 0.1):
        injector.mark_slow(victim, 20.0, 0.6)
    service.configure_faults(injector, HEDGED_POLICY)
    service.configure_latency(
        LognormalLatency(median=net.hop_latency, sigma=0.35, seed=3)
    )
    try:
        queries = workload.query_stream(4, 2, QueryKind.RANGE, label="hedge-spans")
        results = [service.multi_query(q) for q in queries]
    finally:
        service.configure_latency(None)
        service.configure_faults(None, DEFAULT_POLICY)
    sub_latencies = []
    for trace, result in zip(tracer.traces, results):
        (root,) = trace.spans_of(SpanKind.QUERY)
        assert root.attrs["latency"] == result.latency
        subs = trace.spans_of(SpanKind.SUBQUERY)
        assert [s.attrs["latency"] for s in subs] == [
            r.latency for r in result.sub_results
        ]
        assert result.latency == max(s.attrs["latency"] for s in subs)
        sub_latencies.extend(s.attrs["latency"] for s in subs)
    samples = service.metrics.samples("query.latency")
    assert sorted(samples) == pytest.approx(sorted(sub_latencies))
    assert sum(samples) == pytest.approx(net.route_clock)


@pytest.mark.parametrize("system", sorted(SYSTEMS))
def test_service_level_fault_annotations(system):
    """A lossy replay yields faulted traces whose accounting still
    reconciles, and every lookup/walk span's retry annotations equal its
    recorded ``retries`` attribute."""
    service, traces = replay_queries(
        system, seed=3, num_queries=4, num_attributes=2,
        kind=QueryKind.RANGE, loss=0.25,
    )
    assert any(trace.faulted for trace in traces)
    for trace in traces:
        assert_trace_bounds(trace, service)
        for span in trace.spans_of(SpanKind.LOOKUP) + trace.spans_of(SpanKind.WALK):
            assert _retry_events(span) == span.attrs.get("retries", 0)


def test_fault_free_replay_has_no_annotations():
    _, traces = replay_queries("lorm", seed=0, num_queries=2, num_attributes=2)
    assert all(not trace.faulted for trace in traces)
