"""Fault-path tracing: injected loss surfaces as span annotations.

Seeded message loss must show up in the span trees as ``drop`` / ``retry``
/ ``timeout`` / ``failover`` point events, and the annotation counts must
reconcile with the ``LookupResult`` / ``WalkResult`` accounting the
fault-injection layer already reports.
"""

from __future__ import annotations

import pytest

from repro.obs.replay import SYSTEMS, replay_queries
from repro.obs.spans import QueryTracer, SpanKind
from repro.overlay.chord import ChordRing
from repro.overlay.cycloid import CycloidOverlay
from repro.sim.faults import FaultInjector, FaultPlan, LookupPolicy
from repro.testing import assert_trace_bounds
from repro.workloads.generator import QueryKind

LOSS = 0.3


def _retry_events(span) -> int:
    return sum(1 for s in span.walk() for ev in s.events if ev.kind == "retry")


class TestChordFaultTraces:
    def _traced_lookup(self, *, loss=LOSS, seed=5, policy=None):
        ring = ChordRing(6)
        ring.build_full()
        ring.network.faults = FaultInjector(FaultPlan(loss_rate=loss, seed=seed))
        tracer = QueryTracer()
        ring.tracer = tracer
        start = ring.node(0)
        result = ring.lookup(start, 47, policy or LookupPolicy(max_retries=3))
        return ring, tracer, result

    def test_retry_annotations_equal_lookup_retries(self):
        for seed in range(6):
            _, tracer, result = self._traced_lookup(seed=seed)
            (trace,) = tracer.traces
            assert len(trace.events_of("retry")) == result.retries

    def test_drops_are_annotated_with_target_and_attempt(self):
        for seed in range(8):
            _, tracer, result = self._traced_lookup(seed=seed)
            drops = tracer.traces[0].events_of("drop")
            if drops:
                assert all(
                    "target" in ev.detail and "attempt" in ev.detail for ev in drops
                )
                return
        pytest.fail("30% loss over 8 seeds never dropped a message")

    def test_failover_annotated_when_candidates_skipped(self):
        for seed in range(30):
            _, tracer, result = self._traced_lookup(seed=seed, loss=0.6)
            failovers = tracer.traces[0].events_of("failover")
            if failovers:
                assert all(ev.detail["skipped"] >= 1 for ev in failovers)
                return
        pytest.fail("60% loss over 30 seeds never failed over")

    def test_timeout_annotated_on_dead_end(self):
        for seed in range(40):
            _, tracer, result = self._traced_lookup(
                seed=seed, loss=0.9,
                policy=LookupPolicy(
                    max_retries=0, successor_failover=False, finger_fallback=False
                ),
            )
            if result.timed_out:
                assert tracer.traces[0].events_of("timeout")
                return
        pytest.fail("90% loss with no retries never timed out in 40 seeds")

    def test_hop_spans_match_hops_under_loss(self):
        for seed in range(6):
            _, tracer, result = self._traced_lookup(seed=seed)
            (trace,) = tracer.traces
            assert trace.hop_count() == result.hops


class TestCycloidFaultTraces:
    def _traced_lookup(self, *, loss=LOSS, seed=5):
        overlay = CycloidOverlay(4)
        overlay.build_full()
        overlay.network.faults = FaultInjector(FaultPlan(loss_rate=loss, seed=seed))
        tracer = QueryTracer()
        overlay.tracer = tracer
        nodes = list(overlay.nodes())
        start, target = nodes[0], nodes[-1].cid
        result = overlay.lookup(start, target, LookupPolicy(max_retries=3))
        return overlay, tracer, result

    def test_retry_annotations_equal_lookup_retries(self):
        for seed in range(6):
            _, tracer, result = self._traced_lookup(seed=seed)
            (trace,) = tracer.traces
            assert len(trace.events_of("retry")) == result.retries

    def test_hop_spans_match_hops_under_loss(self):
        for seed in range(6):
            _, tracer, result = self._traced_lookup(seed=seed)
            assert tracer.traces[0].hop_count() == result.hops


@pytest.mark.parametrize("system", sorted(SYSTEMS))
def test_service_level_fault_annotations(system):
    """A lossy replay yields faulted traces whose accounting still
    reconciles, and every lookup/walk span's retry annotations equal its
    recorded ``retries`` attribute."""
    service, traces = replay_queries(
        system, seed=3, num_queries=4, num_attributes=2,
        kind=QueryKind.RANGE, loss=0.25,
    )
    assert any(trace.faulted for trace in traces)
    for trace in traces:
        assert_trace_bounds(trace, service)
        for span in trace.spans_of(SpanKind.LOOKUP) + trace.spans_of(SpanKind.WALK):
            assert _retry_events(span) == span.attrs.get("retries", 0)


def test_fault_free_replay_has_no_annotations():
    _, traces = replay_queries("lorm", seed=0, num_queries=2, num_attributes=2)
    assert all(not trace.faulted for trace in traces)
