"""End-to-end tracing through all four discovery systems.

Each test replays a deterministic multi-attribute query stream through
:func:`repro.obs.replay.replay_queries` and checks the resulting span
trees against the trace oracles: structural bounds, hop-chain continuity,
trace/metrics conservation, and that tracing never changes query results.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import build_workload
from repro.obs.replay import TRACE_CONFIG, SYSTEMS, build_traced_service, replay_queries
from repro.obs.spans import SpanKind
from repro.testing import TraceBoundViolation, assert_trace_bounds
from repro.workloads.generator import QueryKind

ALL = sorted(SYSTEMS)


@pytest.mark.parametrize("system", ALL)
@pytest.mark.parametrize("kind", [QueryKind.POINT, QueryKind.RANGE])
def test_one_trace_per_query_and_bounds_hold(system, kind):
    service, traces = replay_queries(
        system, seed=0, num_queries=3, num_attributes=2, kind=kind
    )
    assert len(traces) == 3
    for trace in traces:
        assert trace.root.kind is SpanKind.QUERY
        assert len(trace.spans_of(SpanKind.SUBQUERY)) == 2
        assert_trace_bounds(trace, service)


@pytest.mark.parametrize("system", ALL)
def test_trace_totals_match_metrics_samples(system):
    """Span-tree hop/visited totals reconcile with what the service's
    MetricsRegistry recorded for the same queries, query by query."""
    service, traces = replay_queries(
        system, seed=0, num_queries=4, num_attributes=2, kind=QueryKind.RANGE
    )
    hops = service.metrics.samples("multi_query.total_hops")
    visited = service.metrics.samples("multi_query.total_visited")
    assert len(hops) == len(traces) == 4
    for trace, h, v in zip(traces, hops, visited):
        assert trace.root.attrs["total_hops"] == h
        assert trace.hop_count() == h
        assert trace.root.attrs["total_visited"] == v
        for sub in trace.spans_of(SpanKind.SUBQUERY):
            assert len(sub.find(SpanKind.HOP)) == sub.attrs["hops"]


@pytest.mark.parametrize("system", ALL)
def test_tracing_does_not_change_results(system):
    """The traced query path returns byte-identical results and metrics
    to the untraced one."""
    config = TRACE_CONFIG.scaled(seed=0)
    traced, workload, _ = build_traced_service(system, config)
    untraced, _, _ = build_traced_service(system, config)
    untraced.attach_tracer(None)
    queries_t = list(workload.query_stream(3, 2, QueryKind.RANGE, label="eq"))
    queries_u = list(
        build_workload(config).query_stream(3, 2, QueryKind.RANGE, label="eq")
    )
    for qt, qu in zip(queries_t, queries_u):
        rt, ru = traced.multi_query(qt), untraced.multi_query(qu)
        assert rt.providers == ru.providers
        assert [s.hops for s in rt.sub_results] == [s.hops for s in ru.sub_results]
        assert [s.visited_nodes for s in rt.sub_results] == [
            s.visited_nodes for s in ru.sub_results
        ]
    assert traced.metrics.samples("query.hops") == untraced.metrics.samples(
        "query.hops"
    )


@pytest.mark.parametrize("system", ALL)
def test_hop_choices_name_real_routing_entries(system):
    expected = (
        {"cubical", "cyclic", "inside-leaf", "outside-leaf"}
        if system == "lorm"
        else {"finger", "successor", "successor-list", "predecessor"}
    )
    _, traces = replay_queries(
        system, seed=0, num_queries=3, num_attributes=2, kind=QueryKind.RANGE
    )
    seen = {
        hop.attrs["choice"]
        for trace in traces
        for hop in trace.root.find(SpanKind.HOP)
    }
    assert seen and seen <= expected


def test_bounds_oracle_rejects_tampered_trace():
    service, traces = replay_queries("sword", seed=0, num_queries=1)
    trace = traces[0]
    lookup = trace.spans_of(SpanKind.LOOKUP)[0]
    lookup.attrs["hops"] = lookup.attrs["hops"] + 1  # forge the accounting
    with pytest.raises(TraceBoundViolation):
        assert_trace_bounds(trace, service)


def test_untraced_service_has_no_tracer_branches():
    """config.trace=False leaves service and overlay tracer-free."""
    from repro.sim.invariants import overlay_of

    service, _, tracer = build_traced_service("mercury", TRACE_CONFIG)
    service.attach_tracer(None)
    assert service.tracer is None
    assert overlay_of(service).tracer is None
    service.multi_query(
        next(iter(build_workload(TRACE_CONFIG).query_stream(1, 2, QueryKind.RANGE)))
    )
    assert len(tracer.traces) == 0
