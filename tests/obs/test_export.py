"""Exporter tests: determinism, structure, and the Chrome trace shape."""

from __future__ import annotations

import json

from repro.obs.export import (
    render_tree,
    span_records,
    trace_to_jsonl,
    traces_to_chrome,
    traces_to_jsonl,
)
from repro.obs.spans import QueryTracer


def _sample_trace():
    tracer = QueryTracer()
    with tracer.span("query", "q", attributes=2):
        with tracer.span("subquery", "s", attribute="cpu"):
            with tracer.span("lookup", "l", origin=(2, 10)):
                tracer.hop((2, 10), (1, 8), "cubical")
                tracer.event("retry", attempt=1)
    return tracer.traces[0]


class TestSpanRecords:
    def test_parent_links_are_depth_first(self):
        records = span_records(_sample_trace())
        assert [r["kind"] for r in records] == [
            "query", "subquery", "lookup", "hop",
        ]
        assert records[0]["parent"] is None
        assert records[1]["parent"] == records[0]["span"]
        assert records[3]["parent"] == records[2]["span"]

    def test_tuples_serialize_as_lists(self):
        records = span_records(_sample_trace())
        hop = records[3]
        assert hop["attrs"]["src"] == [2, 10]

    def test_events_carry_time_kind_detail(self):
        records = span_records(_sample_trace())
        (event,) = records[2]["events"]
        assert event["kind"] == "retry" and event["detail"] == {"attempt": 1}


class TestJsonl:
    def test_lines_are_valid_sorted_json(self):
        text = trace_to_jsonl(_sample_trace())
        for line in text.splitlines():
            obj = json.loads(line)
            assert line == json.dumps(obj, sort_keys=True, separators=(",", ":"))

    def test_byte_identical_across_builds(self):
        assert trace_to_jsonl(_sample_trace()) == trace_to_jsonl(_sample_trace())

    def test_empty_traces_empty_string(self):
        assert traces_to_jsonl([]) == ""

    def test_multi_trace_has_trailing_newline(self):
        text = traces_to_jsonl([_sample_trace()])
        assert text.endswith("\n") and not text.endswith("\n\n")


class TestChrome:
    def test_top_level_shape(self):
        doc = json.loads(traces_to_chrome([_sample_trace()]))
        assert set(doc) == {"displayTimeUnit", "traceEvents"}

    def test_spans_become_complete_events(self):
        doc = json.loads(traces_to_chrome([_sample_trace()]))
        xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [e["cat"] for e in xs] == ["query", "subquery", "lookup", "hop"]
        for e in xs:
            assert e["dur"] >= 0 and "span" in e["args"]

    def test_fault_annotations_become_instants(self):
        doc = json.loads(traces_to_chrome([_sample_trace()]))
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["name"] == "retry" and instants[0]["cat"] == "fault"

    def test_byte_identical_across_builds(self):
        assert traces_to_chrome([_sample_trace()]) == traces_to_chrome(
            [_sample_trace()]
        )


class TestRenderTree:
    def test_indentation_follows_depth(self):
        lines = render_tree(_sample_trace()).splitlines()
        assert lines[0].startswith("query ")
        assert lines[1].startswith("  subquery ")
        assert lines[2].startswith("    lookup ")

    def test_events_render_with_bang(self):
        text = render_tree(_sample_trace())
        assert "! retry" in text

    def test_hop_line_names_choice(self):
        text = render_tree(_sample_trace())
        assert 'choice="cubical"' in text
