"""Tests for Mercury's record/pointer optimisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.mercury import MercuryService
from repro.baselines.mercury_pointers import (
    PointerMercuryService,
    RecordEnvelope,
    RecordPointer,
)
from repro.core.resource import AttributeConstraint, Query, ResourceInfo
from repro.workloads.attributes import AttributeSchema
from repro.workloads.generator import GridWorkload, QueryKind


@pytest.fixture(scope="module")
def schema() -> AttributeSchema:
    return AttributeSchema.synthetic(5)


def record_for(wl: GridWorkload, provider_idx: int) -> list[ResourceInfo]:
    return [
        ResourceInfo(spec.name, wl.provider_value(spec.name, provider_idx),
                     wl.provider_name(provider_idx))
        for spec in wl.schema
    ]


@pytest.fixture()
def loaded(schema):
    service = PointerMercuryService.build_full(6, schema, seed=8)
    wl = GridWorkload(schema, infos_per_attribute=30, seed=9)
    for p in range(wl.num_providers):
        service.register_record(record_for(wl, p), routed=False)
    return service, wl


class TestRegistration:
    def test_one_envelope_per_provider(self, loaded):
        service, wl = loaded
        assert service.stored_record_copies() == wl.num_providers

    def test_pointers_for_remaining_attributes(self, loaded):
        service, wl = loaded
        assert service.stored_pointers() == wl.num_providers * (len(wl.schema) - 1)

    def test_record_needs_single_provider(self, schema):
        service = PointerMercuryService.build_full(6, schema, seed=1)
        with pytest.raises(ValueError):
            service.register_record(
                [ResourceInfo("cpu-mhz", 1.0, "a"), ResourceInfo("disk-gb", 1.0, "b")]
            )

    def test_empty_record_rejected(self, schema):
        service = PointerMercuryService.build_full(6, schema, seed=1)
        with pytest.raises(ValueError):
            service.register_record([])

    def test_single_info_register_wraps_record(self, schema):
        service = PointerMercuryService.build_full(6, schema, seed=1)
        service.register(ResourceInfo("cpu-mhz", 2000.0, "p"), routed=False)
        assert service.stored_record_copies() == 1
        assert service.stored_pointers() == 0


class TestQueries:
    def test_home_attribute_query(self, loaded):
        service, wl = loaded
        value = wl.provider_value(wl.schema.names[0], 3)
        q = Query(AttributeConstraint.point(wl.schema.names[0], value))
        assert wl.provider_name(3) in service.query(q).providers

    def test_pointer_attribute_query_chases(self, loaded):
        service, wl = loaded
        attr = wl.schema.names[2]  # non-home attribute -> pointers
        value = wl.provider_value(attr, 5)
        q = Query(AttributeConstraint.point(attr, value))
        result = service.query(q)
        assert wl.provider_name(5) in result.providers

    def test_answers_match_plain_mercury(self, schema):
        pointered = PointerMercuryService.build_full(6, schema, seed=21)
        plain = MercuryService.build_full(6, schema, seed=21)
        wl = GridWorkload(schema, infos_per_attribute=25, seed=22)
        for p in range(wl.num_providers):
            pointered.register_record(record_for(wl, p), routed=False)
        for info in wl.resource_infos():
            plain.register(info, routed=False)
        rng = np.random.default_rng(23)
        for _ in range(25):
            mq = wl.sample_multi_query(3, QueryKind.RANGE, rng)
            assert pointered.multi_query(mq).providers == (
                plain.multi_query(mq).providers
            ) == wl.matching_providers_bruteforce(mq)

    def test_pointer_queries_cost_extra_hops(self, loaded, schema):
        """Chasing pointers trades hops for storage: a non-home range query
        costs at least as many hops as the same query in plain Mercury."""
        service, wl = loaded
        plain = MercuryService.build_full(6, schema, seed=8)
        for info in wl.resource_infos():
            plain.register(info, routed=False)
        attr = wl.schema.names[1]
        spec = wl.schema.spec(attr)
        q = Query(AttributeConstraint.between(
            attr, spec.distribution.ppf(0.2), spec.distribution.ppf(0.6)
        ))
        start_p = service.ring.node(service.ring.node_ids[0])
        start_m = plain.ring.node(plain.ring.node_ids[0])
        assert service.query(q, start_p).hops >= plain.query(q, start_m).hops


class TestStorageSavings:
    def test_total_pieces_reduced_vs_plain(self, loaded, schema):
        """Plain Mercury stores m full copies per provider; pointers store
        1 full copy + (m-1) pointers."""
        service, wl = loaded
        plain = MercuryService.build_full(6, schema, seed=8)
        for info in wl.resource_infos():
            plain.register(info, routed=False)
        # Count *record copies* (heavyweight items).
        assert service.stored_record_copies() == wl.num_providers
        assert plain.total_info_pieces() == wl.num_providers * len(schema)

    def test_dataclasses_exposed(self):
        env = RecordEnvelope("p", (ResourceInfo("a", 1.0, "p"),))
        assert env.value_of("a") == 1.0
        assert env.value_of("zzz") is None
        ptr = RecordPointer("p", 1.0, "a", 3)
        assert ptr.home_key == 3


class TestDeregistration:
    def test_deregister_record_removes_envelope_and_pointers(self, schema):
        service = PointerMercuryService.build_full(6, schema, seed=31)
        wl = GridWorkload(schema, infos_per_attribute=10, seed=32)
        record = record_for(wl, 4)
        service.register_record(record, routed=False)
        assert service.stored_record_copies() == 1
        removed = service.deregister_record(record)
        assert removed == len(record)  # envelope + (m-1) pointers
        assert service.stored_record_copies() == 0
        assert service.stored_pointers() == 0

    def test_deregister_absent_record_is_zero(self, schema):
        service = PointerMercuryService.build_full(6, schema, seed=33)
        wl = GridWorkload(schema, infos_per_attribute=10, seed=34)
        assert service.deregister_record(record_for(wl, 0)) == 0

    def test_single_info_deregister(self, schema):
        service = PointerMercuryService.build_full(6, schema, seed=35)
        info = ResourceInfo("cpu-mhz", 1000.0, "p")
        service.register(info, routed=False)
        assert service.deregister(info) == 1
        assert service.total_info_pieces() == 0
