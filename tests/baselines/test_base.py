"""Tests for the shared service interface (ChordBackedService machinery)."""

from __future__ import annotations

import pytest

from repro.baselines.sword import SwordService
from repro.core.resource import AttributeConstraint, MultiAttributeQuery, ResourceInfo
from repro.workloads.attributes import AttributeSchema


@pytest.fixture(scope="module")
def schema() -> AttributeSchema:
    return AttributeSchema.synthetic(4)


class TestConstruction:
    def test_build_full_population(self, schema):
        service = SwordService.build_full(5, schema, seed=1)
        assert service.num_nodes() == 32

    def test_build_partial_population(self, schema):
        service = SwordService.build(8, 60, schema, seed=1)
        assert service.num_nodes() == 60

    def test_build_caps_at_space_size(self, schema):
        service = SwordService.build(4, 100, schema, seed=1)
        assert service.num_nodes() == 16


class TestValueHashes:
    def test_cached_per_attribute(self, schema):
        service = SwordService.build_full(5, schema, seed=1)
        assert service.value_hash("cpu-mhz") is service.value_hash("cpu-mhz")

    def test_lph_kind_respected(self, schema):
        from repro.hashing.locality import CdfLocalityHash, LinearLocalityHash

        cdf = SwordService.build_full(5, schema, seed=1, lph_kind="cdf")
        lin = SwordService.build_full(5, schema, seed=1, lph_kind="linear")
        assert isinstance(cdf.value_hash("cpu-mhz"), CdfLocalityHash)
        assert isinstance(lin.value_hash("cpu-mhz"), LinearLocalityHash)


class TestRandomNodes:
    def test_random_node_is_live(self, schema):
        service = SwordService.build_full(5, schema, seed=1)
        for _ in range(20):
            assert service.random_node().alive

    def test_seeded_reproducibility(self, schema):
        a = SwordService.build_full(5, schema, seed=4)
        b = SwordService.build_full(5, schema, seed=4)
        assert [a.random_node().node_id for _ in range(10)] == [
            b.random_node().node_id for _ in range(10)
        ]


class TestMultiQueryInterface:
    def test_multi_query_uses_one_entry_node(self, schema):
        """All sub-queries of one request originate at the same requester."""
        service = SwordService.build_full(5, schema, seed=1)
        service.register(ResourceInfo("cpu-mhz", 500.0, "p"))
        service.register(ResourceInfo("disk-gb", 5.0, "p"))
        start = service.random_node()
        mq = MultiAttributeQuery(
            (
                AttributeConstraint.at_least("cpu-mhz", 100.0),
                AttributeConstraint.at_least("disk-gb", 1.0),
            )
        )
        result = service.multi_query(mq, start=start)
        assert result.providers == {"p"}

    def test_metrics_recorded(self, schema):
        service = SwordService.build_full(5, schema, seed=1)
        mq = MultiAttributeQuery((AttributeConstraint.at_least("cpu-mhz", 0.0),))
        service.multi_query(mq)
        assert len(service.metrics.samples("multi_query.total_hops")) == 1
        assert len(service.metrics.samples("multi_query.total_visited")) == 1


class TestChurnBookkeeping:
    def test_leave_then_join_recycles_ids(self, schema):
        service = SwordService.build_full(5, schema, seed=1)
        before = set(service.ring.node_ids)
        assert service.churn_leave()
        departed = before - set(service.ring.node_ids)
        assert service.churn_join()
        assert set(service.ring.node_ids) == before, departed

    def test_join_without_departures_noop(self, schema):
        service = SwordService.build_full(5, schema, seed=1)
        assert not service.churn_join()

    def test_leave_floor_of_two_nodes(self, schema):
        service = SwordService.build(5, 2, schema, seed=1)
        assert not service.churn_leave()

    def test_stabilize_runs(self, schema):
        service = SwordService.build_full(5, schema, seed=1)
        service.churn_leave()
        service.stabilize()
        service.ring.check_ring_invariants()
