"""Tests for hotspot mitigations: key salting and dynamic replication."""

from __future__ import annotations

import pytest

from repro.baselines.sword import _NAMESPACE
from repro.core.hotspot import DynamicReplicator, SaltPlan, route_choice
from repro.core.resource import AttributeConstraint, MultiAttributeQuery, ResourceInfo
from repro.experiments.common import build_service, build_workload
from repro.experiments.config import SMOKE_CONFIG
from repro.sim.loadstats import LoadStats
from repro.sim.maintenance import MaintenanceBudget

CONFIG = SMOKE_CONFIG.scaled(num_attributes=6, infos_per_attribute=12)


@pytest.fixture(scope="module")
def workload():
    return build_workload(CONFIG)


@pytest.fixture(scope="module")
def base(workload):
    return build_service(CONFIG, "SWORD", workload=workload)


@pytest.fixture(scope="module")
def salted(workload):
    return build_service(CONFIG, "SWORD", workload=workload, salting=SaltPlan(salts=3))


def _attr_query(service, attribute, requester):
    spec = service.schema.spec(attribute)
    constraint = AttributeConstraint.between(attribute, spec.lo, spec.hi)
    return MultiAttributeQuery((constraint,), requester=requester)


def _hammer(service, attribute, count):
    """``count`` distinct-requester full-range queries on one attribute."""
    stats = LoadStats()
    service.attach_load_stats(stats)
    try:
        answers = []
        for i in range(count):
            q = _attr_query(service, attribute, f"req-{i:04d}")
            answers.append(service.multi_query(q).providers)
    finally:
        service.attach_load_stats(None)
    return stats.total, answers


class TestRouteChoice:
    def test_stable_and_in_range(self):
        picks = [route_choice("cpu", f"req-{i}", 5) for i in range(100)]
        assert all(0 <= p < 5 for p in picks)
        assert picks == [route_choice("cpu", f"req-{i}", 5) for i in range(100)]

    def test_spreads_over_requesters(self):
        assert len({route_choice("cpu", f"req-{i}", 5) for i in range(100)}) == 5

    def test_fanout_validation(self):
        with pytest.raises(ValueError):
            route_choice("cpu", "req", 0)


class TestSaltPlan:
    def test_salted_names(self):
        assert SaltPlan(salts=3).salted_names("cpu") == ("cpu#s0", "cpu#s1", "cpu#s2")

    def test_applies_to_all_by_default(self):
        assert SaltPlan().applies_to("anything")

    def test_restricted_scope(self):
        plan = SaltPlan(salts=2, attributes=["cpu"])
        assert plan.applies_to("cpu")
        assert not plan.applies_to("mem")

    def test_choose_within_fanout(self):
        plan = SaltPlan(salts=4)
        assert all(0 <= plan.choose("cpu", f"r{i}") < 4 for i in range(50))

    def test_validation(self):
        with pytest.raises(ValueError):
            SaltPlan(salts=0)

    def test_describe(self):
        assert "S=4" in SaltPlan(salts=4).describe()


class TestSaltedService:
    def test_lorm_rejects_salting(self, workload):
        with pytest.raises(ValueError):
            build_service(CONFIG, "LORM", workload=workload, salting=SaltPlan())

    def test_store_keys_are_distinct_salted_roots(self, salted):
        attribute = salted.schema.specs[0].name
        keys = salted.attr_store_keys(attribute)
        assert len(keys) == 3
        assert len(set(keys)) == 3
        assert salted.attr_key(attribute) not in keys

    def test_every_salted_root_holds_the_full_directory(self, salted):
        attribute = salted.schema.specs[0].name
        for key in salted.attr_store_keys(attribute):
            holder = salted.ring.successor_of(key)
            assert len(holder.items_at(_NAMESPACE, key)) == CONFIG.infos_per_attribute

    def test_answers_match_unsalted(self, base, salted, workload):
        for i, q in enumerate(workload.query_stream(15, 2, label="salt-transparency")):
            assert salted.multi_query(q).providers == base.multi_query(q).providers, i

    def test_salting_spreads_serve_load(self, base, salted):
        attribute = base.schema.specs[0].name
        base_load, base_answers = _hammer(base, attribute, 30)
        salt_load, salt_answers = _hammer(salted, attribute, 30)
        assert salt_answers == base_answers
        # Unmitigated: one root serves everything.  Salted: three roots
        # split the same 30 queries, so the hottest node serves less.
        assert len(base_load.serves) == 1
        assert len(salt_load.serves) == 3
        assert max(salt_load.serves.values()) < max(base_load.serves.values())


class TestDynamicReplicator:
    @pytest.fixture()
    def service(self, workload):
        # Function-scoped: replicator state must not leak across tests.
        return build_service(CONFIG, "SWORD", workload=workload)

    def _replicate(self, service, attribute, queries=30):
        replicator = DynamicReplicator(
            service, _NAMESPACE, trigger_ratio=2.0, max_replicas=2, decay_windows=1
        )
        service.attach_hot_replicator(replicator)
        window, answers = _hammer(service, attribute, queries)
        hot = replicator.observe(window, service.num_nodes())
        report = replicator.tick(MaintenanceBudget(0, 0, 10_000))
        return replicator, hot, report, answers

    def test_hot_attribute_detected_and_replicated(self, service):
        attribute = service.schema.specs[0].name
        replicator, hot, report, _ = self._replicate(service, attribute)
        assert hot == {attribute}
        assert report["created"] == 1
        assert report["copies"] == 2 * CONFIG.infos_per_attribute
        assert len(replicator.holders(attribute)) == 2

    def test_copies_charged_to_maintenance(self, service):
        attribute = service.schema.specs[0].name
        before = service.ring.network.stats.maintenance_messages
        self._replicate(service, attribute)
        assert service.ring.network.stats.maintenance_messages >= before + 24

    def test_replicated_reads_spread_and_stay_transparent(self, service):
        attribute = service.schema.specs[0].name
        replicator, _, _, before = self._replicate(service, attribute)
        load, after = _hammer(service, attribute, 30)
        assert after == before
        assert len(load.serves) == 3  # native root + 2 replicas
        targets = {replicator.route_for(attribute, f"req-{i:04d}") for i in range(30)}
        assert None in targets and len(targets) == 3

    def test_on_register_mirrors_to_replicas(self, service, workload):
        attribute = service.schema.specs[0].name
        replicator, _, _, _ = self._replicate(service, attribute)
        info = ResourceInfo(attribute, 1.0, "fresh-provider")
        service.register(info, routed=False)
        key = service.attr_key(attribute)
        for node_id in replicator.holders(attribute):
            items = service.ring.node(node_id).items_at(replicator.replica_namespace, key)
            assert any(item.provider == "fresh-provider" for item in items)

    def test_cold_windows_decay_replicas(self, service):
        attribute = service.schema.specs[0].name
        replicator, _, _, _ = self._replicate(service, attribute)
        stats = LoadStats()
        replicator.observe(stats.take_window(), service.num_nodes())  # cold window
        report = replicator.tick(MaintenanceBudget(0, 0, 10_000))
        assert report["dropped"] == 1
        assert replicator.holders(attribute) == []
        key = service.attr_key(attribute)
        for node in service.ring.nodes():
            assert not node.items_at(replicator.replica_namespace, key)

    def test_detach_clears_replicas(self, service):
        attribute = service.schema.specs[0].name
        replicator, _, _, _ = self._replicate(service, attribute)
        assert replicator.holders(attribute)
        service.attach_hot_replicator(None)
        assert replicator.holders(attribute) == []
        assert service.hot_replicator is None

    def test_validation(self, service):
        with pytest.raises(ValueError):
            DynamicReplicator(service, _NAMESPACE, trigger_ratio=1.0)
        with pytest.raises(ValueError):
            DynamicReplicator(service, _NAMESPACE, max_replicas=0)
        with pytest.raises(ValueError):
            DynamicReplicator(service, _NAMESPACE, decay_windows=0)

    def test_describe(self, service):
        replicator = DynamicReplicator(service, _NAMESPACE)
        assert "dynamic" in replicator.describe()
