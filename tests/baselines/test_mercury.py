"""Tests for the Mercury comparator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.mercury import MercuryService
from repro.core.resource import AttributeConstraint, Query, ResourceInfo
from repro.workloads.attributes import AttributeSchema
from repro.workloads.generator import GridWorkload, QueryKind


@pytest.fixture(scope="module")
def schema() -> AttributeSchema:
    return AttributeSchema.synthetic(6)


@pytest.fixture()
def service(schema) -> MercuryService:
    return MercuryService.build_full(6, schema, seed=2)


class TestPlacement:
    def test_value_indexed_placement(self, service):
        info = ResourceInfo("cpu-mhz", 2500.0, "p")
        service.register(info)
        key = service.value_hash("cpu-mhz")(2500.0)
        owner = service.ring.successor_of(key)
        assert info in owner.items_in("hub:cpu-mhz")

    def test_hubs_are_namespaced_per_attribute(self, service):
        service.register(ResourceInfo("cpu-mhz", 2500.0, "p"))
        for node in service.ring.nodes():
            assert node.items_in("hub:disk-gb") == []

    def test_same_attribute_spreads_over_ring(self, service):
        """Value indexing spreads one attribute's infos over many nodes —
        the opposite of SWORD (basis of Figure 3(d) balance).  Values are
        drawn from the attribute's own distribution so the CDF-calibrated
        LPH can uniformise them."""
        spec = service.schema.spec("cpu-mhz")
        rng = np.random.default_rng(0)
        for i, v in enumerate(spec.distribution.sample(rng, 40)):
            service.register(ResourceInfo("cpu-mhz", float(v), f"p{i}"))
        holders = [n for n in service.ring.nodes() if n.directory_size("hub:cpu-mhz")]
        assert len(holders) > 20


class TestQueries:
    def test_point_query(self, service):
        service.register(ResourceInfo("cpu-mhz", 1200.0, "p"))
        result = service.query(Query(AttributeConstraint.point("cpu-mhz", 1200.0)))
        assert result.providers == {"p"}
        assert result.visited_nodes == 1

    def test_range_query_walks_arc(self, service):
        spec = service.schema.spec("cpu-mhz")
        values = np.linspace(spec.lo, spec.hi, 30)
        for i, v in enumerate(values):
            service.register(ResourceInfo("cpu-mhz", float(v), f"p{i}"))
        result = service.query(
            Query(AttributeConstraint.between("cpu-mhz", float(values[4]), float(values[20])))
        )
        assert result.providers == {f"p{i}" for i in range(4, 21)}
        assert result.visited_nodes > 1

    def test_range_visited_scales_with_span(self, service):
        spec = service.schema.spec("cpu-mhz")
        dist = spec.distribution
        narrow = service.query(
            Query(AttributeConstraint.between("cpu-mhz", dist.ppf(0.40), dist.ppf(0.45)))
        )
        wide = service.query(
            Query(AttributeConstraint.between("cpu-mhz", dist.ppf(0.10), dist.ppf(0.90)))
        )
        assert wide.visited_nodes > narrow.visited_nodes

    def test_equivalence_with_bruteforce(self, schema):
        service = MercuryService.build_full(6, schema, seed=21)
        wl = GridWorkload(schema, infos_per_attribute=25, seed=22)
        for info in wl.resource_infos():
            service.register(info, routed=False)
        rng = np.random.default_rng(23)
        for _ in range(20):
            mq = wl.sample_multi_query(3, QueryKind.RANGE, rng)
            assert service.multi_query(mq).providers == (
                wl.matching_providers_bruteforce(mq)
            )


class TestStructure:
    def test_outlinks_scaled_by_hub_count(self, service):
        base = service.ring.outlink_counts()
        scaled = service.outlink_counts()
        assert scaled == [len(service.schema) * c for c in base]

    def test_maintenance_scale(self, service):
        assert service.maintenance_scale() == 6

    def test_build_sparse_population(self, schema):
        service = MercuryService.build(8, 100, schema, seed=1)
        assert service.num_nodes() == 100
