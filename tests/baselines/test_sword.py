"""Tests for the SWORD comparator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.sword import SwordService
from repro.core.resource import AttributeConstraint, Query, ResourceInfo
from repro.workloads.attributes import AttributeSchema
from repro.workloads.generator import GridWorkload, QueryKind


@pytest.fixture(scope="module")
def schema() -> AttributeSchema:
    return AttributeSchema.synthetic(6)


@pytest.fixture()
def service(schema) -> SwordService:
    return SwordService.build_full(6, schema, seed=2)


class TestPlacement:
    def test_all_infos_of_attribute_on_one_node(self, service):
        spec = service.schema.spec("cpu-mhz")
        for i, v in enumerate(np.linspace(spec.lo, spec.hi, 30)):
            service.register(ResourceInfo("cpu-mhz", float(v), f"p{i}"))
        holders = [n for n in service.ring.nodes() if n.directory_size("sword")]
        # cpu-mhz pools entirely at one directory node.
        cpu_holders = [
            n for n in holders
            if any(i.attribute == "cpu-mhz" for i in n.items_in("sword"))
        ]
        assert len(cpu_holders) == 1
        assert cpu_holders[0].directory_size("sword") == 30

    def test_attribute_root_is_consistent_hash(self, service):
        info = ResourceInfo("os", 3.0, "p")
        service.register(info)
        root = service.ring.successor_of(service.attr_key("os"))
        assert info in root.items_in("sword")


class TestQueries:
    def test_point_query_single_visit(self, service):
        service.register(ResourceInfo("cpu-mhz", 999.0, "p"))
        result = service.query(Query(AttributeConstraint.point("cpu-mhz", 999.0)))
        assert result.providers == {"p"}
        assert result.visited_nodes == 1

    def test_range_query_also_single_visit(self, service):
        """SWORD never forwards: the root answers range queries alone
        (Theorem 4.9's m visited nodes)."""
        spec = service.schema.spec("cpu-mhz")
        for i, v in enumerate(np.linspace(spec.lo, spec.hi, 20)):
            service.register(ResourceInfo("cpu-mhz", float(v), f"p{i}"))
        result = service.query(
            Query(AttributeConstraint.at_least("cpu-mhz", spec.lo))
        )
        assert result.visited_nodes == 1
        assert len(result.providers) == 20

    def test_attribute_hash_collision_filtered(self, service):
        """Two attributes can share a root node; answers must still be
        attribute-correct."""
        service.register(ResourceInfo("cpu-mhz", 500.0, "cpu-p"))
        service.register(ResourceInfo("num-cores", 500.0, "core-p"))
        result = service.query(Query(AttributeConstraint.point("cpu-mhz", 500.0)))
        assert result.providers == {"cpu-p"}

    def test_equivalence_with_bruteforce(self, schema):
        service = SwordService.build_full(6, schema, seed=31)
        wl = GridWorkload(schema, infos_per_attribute=25, seed=32)
        for info in wl.resource_infos():
            service.register(info, routed=False)
        rng = np.random.default_rng(33)
        for _ in range(20):
            mq = wl.sample_multi_query(3, QueryKind.RANGE, rng)
            assert service.multi_query(mq).providers == (
                wl.matching_providers_bruteforce(mq)
            )


class TestImbalance:
    def test_directory_variance_exceeds_mercury_like_spread(self, schema):
        """SWORD's pooling produces far larger directory spread than value
        spreading would — the Figure 3(c) story at miniature scale."""
        service = SwordService.build_full(6, schema, seed=41)
        wl = GridWorkload(schema, infos_per_attribute=30, seed=42)
        for info in wl.resource_infos():
            service.register(info, routed=False)
        sizes = service.directory_sizes()
        nonzero = [s for s in sizes if s]
        # At most as many loaded nodes as attributes.
        assert len(nonzero) <= len(schema)
        assert max(sizes) >= 30  # at least one full attribute pool
