"""Tests for the MAAN comparator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.maan import MaanService
from repro.core.resource import AttributeConstraint, Query, ResourceInfo
from repro.workloads.attributes import AttributeSchema
from repro.workloads.generator import GridWorkload, QueryKind


@pytest.fixture(scope="module")
def schema() -> AttributeSchema:
    return AttributeSchema.synthetic(6)


@pytest.fixture()
def service(schema) -> MaanService:
    return MaanService.build_full(6, schema, seed=2)


class TestSplitRegistration:
    def test_each_info_stored_twice(self, service):
        """Theorem 4.2: MAAN doubles the total resource information."""
        service.register(ResourceInfo("cpu-mhz", 1000.0, "p"))
        assert service.total_info_pieces() == 2

    def test_attribute_copy_at_attribute_root(self, service):
        info = ResourceInfo("cpu-mhz", 1000.0, "p")
        service.register(info)
        root = service.ring.successor_of(service.attr_key("cpu-mhz"))
        assert info in root.items_in("maan:attr")

    def test_value_copy_at_value_root(self, service):
        info = ResourceInfo("cpu-mhz", 1000.0, "p")
        service.register(info)
        key = service.value_hash("cpu-mhz")(1000.0)
        root = service.ring.successor_of(key)
        assert info in root.items_in("maan:value")

    def test_register_hops_cover_two_lookups(self, service):
        hops = service.register(ResourceInfo("cpu-mhz", 1000.0, "p"))
        # Two routed insertions from the same origin.
        assert hops >= 0
        assert len(service.metrics.samples("register.hops")) == 1


class TestPointQueries:
    def test_two_visited_nodes(self, service):
        """Theorems 4.7/4.8 rest on MAAN's two lookups per attribute."""
        service.register(ResourceInfo("cpu-mhz", 1500.0, "p"))
        result = service.query(Query(AttributeConstraint.point("cpu-mhz", 1500.0)))
        assert result.visited_nodes == 2
        assert result.providers == {"p"}

    def test_point_hops_are_sum_of_two_lookups(self, schema):
        """MAAN's hop count per point query statistically doubles a
        single-lookup approach's."""
        service = MaanService.build_full(7, schema, seed=9)
        rng = np.random.default_rng(0)
        wl = GridWorkload(schema, infos_per_attribute=20, seed=10)
        for info in wl.resource_infos():
            service.register(info, routed=False)
        hops = [
            service.query(
                Query(wl.sample_constraint("cpu-mhz", QueryKind.POINT, rng))
            ).hops
            for _ in range(150)
        ]
        # Each Chord lookup on a full 7-bit ring averages ~4.5 hops.
        assert 7.0 < float(np.mean(hops)) < 11.5


class TestRangeQueries:
    def test_range_query_correct(self, service):
        spec = service.schema.spec("cpu-mhz")
        values = np.linspace(spec.lo, spec.hi, 25)
        for i, v in enumerate(values):
            service.register(ResourceInfo("cpu-mhz", float(v), f"p{i}"))
        result = service.query(
            Query(AttributeConstraint.between("cpu-mhz", float(values[3]), float(values[12])))
        )
        assert result.providers == {f"p{i}" for i in range(3, 13)}

    def test_range_visits_attr_root_plus_walk(self, service):
        spec = service.schema.spec("cpu-mhz")
        result = service.query(
            Query(AttributeConstraint.between("cpu-mhz", spec.lo, spec.hi))
        )
        # Full-domain walk touches every ring node plus the attribute root.
        assert result.visited_nodes == service.num_nodes() + 1

    def test_attribute_isolation_on_shared_value_ring(self, service):
        """Value registrations of all attributes share one ring; filtering
        by attribute must keep them apart."""
        service.register(ResourceInfo("cpu-mhz", 500.0, "cpu-p"))
        service.register(ResourceInfo("disk-gb", 500.0, "disk-p"))
        spec = service.schema.spec("cpu-mhz")
        result = service.query(
            Query(AttributeConstraint.between("cpu-mhz", spec.lo, spec.hi))
        )
        assert result.providers == {"cpu-p"}

    def test_equivalence_with_bruteforce(self, schema):
        service = MaanService.build_full(6, schema, seed=51)
        wl = GridWorkload(schema, infos_per_attribute=25, seed=52)
        for info in wl.resource_infos():
            service.register(info, routed=False)
        rng = np.random.default_rng(53)
        for _ in range(20):
            mq = wl.sample_multi_query(3, QueryKind.RANGE, rng)
            assert service.multi_query(mq).providers == (
                wl.matching_providers_bruteforce(mq)
            )


class TestDirectoryDoubling:
    def test_total_pieces_double_of_workload(self, schema):
        service = MaanService.build_full(6, schema, seed=61)
        wl = GridWorkload(schema, infos_per_attribute=15, seed=62)
        for info in wl.resource_infos():
            service.register(info, routed=False)
        assert service.total_info_pieces() == 2 * wl.total_info_pieces()
