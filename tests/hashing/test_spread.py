"""Tests for collision-free attribute placement."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.consistent import ConsistentHash
from repro.hashing.spread import spread_attribute_ids


class TestSpread:
    def test_all_ids_distinct(self):
        names = [f"attr-{i:03d}" for i in range(200)]
        ids = spread_attribute_ids(names, ConsistentHash(8))
        assert len(set(ids.values())) == 200

    def test_deterministic_and_order_independent(self):
        names = ["cpu", "mem", "disk", "net"]
        a = spread_attribute_ids(names, ConsistentHash(6))
        b = spread_attribute_ids(reversed(names), ConsistentHash(6))
        assert a == b

    def test_no_collision_means_plain_hash(self):
        """Attributes whose hashes don't collide keep their hash ID."""
        h = ConsistentHash(16)  # huge space, collisions ~impossible
        names = [f"a{i}" for i in range(50)]
        ids = spread_attribute_ids(names, h)
        assert all(ids[name] == h(name) for name in names)

    def test_overfull_space_rejected(self):
        with pytest.raises(ValueError):
            spread_attribute_ids([f"a{i}" for i in range(20)], ConsistentHash(4))

    def test_exactly_full_space(self):
        names = [f"x{i}" for i in range(16)]
        ids = spread_attribute_ids(names, ConsistentHash(4))
        assert sorted(ids.values()) == list(range(16))

    def test_duplicate_names_collapse(self):
        ids = spread_attribute_ids(["a", "a", "b"], ConsistentHash(4))
        assert set(ids) == {"a", "b"}

    @given(st.sets(st.text(min_size=1, max_size=8), min_size=1, max_size=30))
    def test_distinctness_property(self, names):
        ids = spread_attribute_ids(names, ConsistentHash(6))
        assert len(set(ids.values())) == len(names)
        assert all(0 <= v < 64 for v in ids.values())
