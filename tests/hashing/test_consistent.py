"""Tests for the consistent hash H."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.consistent import ConsistentHash


class TestDeterminism:
    def test_same_key_same_value(self):
        h = ConsistentHash(8)
        assert h("cpu") == h("cpu")

    def test_stable_across_instances(self):
        assert ConsistentHash(11)("memory") == ConsistentHash(11)("memory")

    def test_str_and_bytes_agree(self):
        h = ConsistentHash(10)
        assert h("disk") == h(b"disk")

    @given(st.text(max_size=64))
    def test_always_in_range(self, key):
        h = ConsistentHash(9)
        assert 0 <= h(key) < 512


class TestSalt:
    def test_salts_give_independent_functions(self):
        a = ConsistentHash(16, salt="a")
        b = ConsistentHash(16, salt="b")
        keys = [f"attr-{i}" for i in range(64)]
        assert any(a(k) != b(k) for k in keys)

    def test_salted_still_deterministic(self):
        assert ConsistentHash(8, salt="s")("x") == ConsistentHash(8, salt="s")("x")


class TestUniformity:
    def test_spread_over_buckets(self):
        """Hashing many keys should touch a large share of a small space."""
        h = ConsistentHash(8)
        hits = {h(f"key-{i}") for i in range(2000)}
        assert len(hits) > 220  # of 256

    def test_chi_square_not_catastrophic(self):
        """Coarse uniformity: no bucket grossly over-represented."""
        h = ConsistentHash(4)  # 16 buckets
        counts = np.zeros(16)
        n = 4800
        for i in range(n):
            counts[h(f"k{i}")] += 1
        expected = n / 16
        assert counts.max() < expected * 1.5
        assert counts.min() > expected * 0.5

    def test_top_bits_used(self):
        """IDs must cover the high end of the space, proving we take the
        top bits of the digest rather than the low ones mod size."""
        h = ConsistentHash(3)
        values = {h(f"{i}") for i in range(100)}
        assert values == set(range(8))


class TestDigest:
    def test_digest_full_is_160_bits(self):
        h = ConsistentHash(8)
        assert 0 <= h.digest_full("abc") < (1 << 160)

    def test_call_matches_digest_top_bits(self):
        h = ConsistentHash(12)
        assert h("xyz") == h.digest_full("xyz") >> (160 - 12)

    @pytest.mark.parametrize("bits", [1, 8, 11, 32, 160])
    def test_all_widths_work(self, bits):
        h = ConsistentHash(bits)
        assert 0 <= h("k") < (1 << bits)
