"""Tests for the locality-preserving hashes ℋ (linear and CDF flavours)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.locality import CdfLocalityHash, LinearLocalityHash
from repro.workloads.pareto import BoundedPareto

values = st.floats(min_value=0.0, max_value=100.0, allow_nan=False)


class TestLinear:
    def test_endpoints(self):
        h = LinearLocalityHash(size=8, lo=0.0, hi=100.0)
        assert h(0.0) == 0
        assert h(100.0) == 7

    def test_midpoint(self):
        h = LinearLocalityHash(size=8, lo=0.0, hi=100.0)
        assert h(50.0) == 4

    def test_clamps_out_of_domain(self):
        h = LinearLocalityHash(size=8, lo=10.0, hi=20.0)
        assert h(-5.0) == 0
        assert h(99.0) == 7

    @given(v1=values, v2=values)
    def test_monotone(self, v1, v2):
        h = LinearLocalityHash(size=64, lo=0.0, hi=100.0)
        if v1 <= v2:
            assert h(v1) <= h(v2)

    def test_size_one_all_zero(self):
        h = LinearLocalityHash(size=1, lo=0.0, hi=1.0)
        assert h(0.0) == h(1.0) == 0

    def test_invalid_domain_rejected(self):
        with pytest.raises(ValueError):
            LinearLocalityHash(size=8, lo=5.0, hi=5.0)

    def test_hash_range_normalises_order(self):
        h = LinearLocalityHash(size=16, lo=0.0, hi=1.0)
        assert h.hash_range(0.9, 0.1) == (h(0.1), h(0.9))


class TestCdfAnalytic:
    @pytest.fixture
    def pareto_hash(self) -> CdfLocalityHash:
        dist = BoundedPareto(alpha=2.0, low=1.0, high=1000.0)
        return CdfLocalityHash(size=256, lo=1.0, hi=1000.0, cdf=dist.cdf)

    def test_endpoints(self, pareto_hash):
        assert pareto_hash(1.0) == 0
        assert pareto_hash(1000.0) == 255

    @given(v1=st.floats(1.0, 1000.0), v2=st.floats(1.0, 1000.0))
    def test_monotone(self, v1, v2):
        dist = BoundedPareto(alpha=2.0, low=1.0, high=1000.0)
        h = CdfLocalityHash(size=64, lo=1.0, hi=1000.0, cdf=dist.cdf)
        if v1 <= v2:
            assert h(v1) <= h(v2)

    def test_uniformises_skewed_values(self, pareto_hash):
        """Hashed Pareto samples should spread evenly — the whole point of
        the CDF calibration."""
        dist = BoundedPareto(alpha=2.0, low=1.0, high=1000.0)
        rng = np.random.default_rng(1)
        hashed = [pareto_hash(float(v)) for v in dist.sample(rng, 4000)]
        counts = np.bincount(hashed, minlength=256)
        # Every quarter of the space holds roughly a quarter of the mass.
        quarters = counts.reshape(4, 64).sum(axis=1) / 4000
        assert all(0.17 < q < 0.33 for q in quarters)

    def test_linear_hash_skews_pareto_low(self):
        """Contrast case: the linear LPH piles Pareto values into the low
        end (motivates the CDF flavour; exercised by the LPH ablation)."""
        dist = BoundedPareto(alpha=2.0, low=1.0, high=1000.0)
        h = LinearLocalityHash(size=256, lo=1.0, hi=1000.0)
        rng = np.random.default_rng(1)
        hashed = [h(float(v)) for v in dist.sample(rng, 4000)]
        low_quarter = sum(1 for x in hashed if x < 64) / 4000
        assert low_quarter > 0.9


class TestCdfEmpirical:
    def test_from_samples_endpoints(self):
        h = CdfLocalityHash.from_samples(16, [1.0, 2.0, 4.0, 8.0])
        assert h(1.0) == 0
        assert h(8.0) == 15

    def test_from_samples_monotone_on_grid(self):
        h = CdfLocalityHash.from_samples(64, [1.0, 3.0, 10.0, 30.0, 100.0])
        grid = np.linspace(1.0, 100.0, 200)
        hashed = [h(float(v)) for v in grid]
        assert hashed == sorted(hashed)

    def test_from_samples_interpolates_between_knots(self):
        h = CdfLocalityHash.from_samples(100, [0.0, 10.0])
        assert h(5.0) == 50

    def test_needs_two_samples(self):
        with pytest.raises(ValueError):
            CdfLocalityHash.from_samples(8, [1.0])

    def test_explicit_domain_overrides_sample_extremes(self):
        h = CdfLocalityHash.from_samples(8, [2.0, 3.0], lo=0.0, hi=10.0)
        assert h(0.0) == 0  # clamped into domain, below first knot
        assert h(10.0) == 7
