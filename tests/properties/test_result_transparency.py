"""Property: the tail-latency defenses are *result-transparent*.

Under a pure fail-slow plan (no loss, no partitions — only gray nodes),
retransmissions and hedge backups go to the *same* destination, so the
fixed, adaptive and hedged policies must return identical answers: same
owners, same matches, same completeness.  Only response time and the
hedge/timeout accounting may differ.  This is the invariant that makes
the tail experiment's policy comparison honest — any divergence means a
defense changed *what* was answered, not just *when*.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.chaos import slow_victims
from repro.sim.faults import (
    ADAPTIVE_POLICY,
    DEFAULT_POLICY,
    HEDGED_POLICY,
    FaultInjector,
    FaultPlan,
)
from repro.sim.invariants import overlay_of
from repro.sim.latency import LognormalLatency
from repro.workloads.generator import QueryKind

_POLICIES = (
    ("fixed", DEFAULT_POLICY),
    ("adaptive", ADAPTIVE_POLICY),
    ("hedged", HEDGED_POLICY),
)
_WARMUP = 3
_MEASURED = 4


def _run_cell(service, queries, starts, seed, fraction, intermittency, policy):
    """One policy's replay of the identical (query, entry-node) pairs."""
    net = overlay_of(service).network
    injector = FaultInjector(FaultPlan(seed=seed))
    for victim in slow_victims(overlay_of(service), fraction):
        injector.mark_slow(victim, 20.0, intermittency)
    service.configure_faults(injector, policy)
    service.configure_latency(
        LognormalLatency(median=net.hop_latency, sigma=0.35, seed=seed)
    )
    try:
        for q, s in zip(queries[:_WARMUP], starts[:_WARMUP]):
            service.multi_query(q, s)
        return [
            service.multi_query(q, s)
            for q, s in zip(queries[_WARMUP:], starts[_WARMUP:])
        ]
    finally:
        service.configure_latency(None)
        service.configure_faults(None, DEFAULT_POLICY)


def _fingerprint(results):
    """Everything about the *answers* — nothing about their timing."""
    return [
        (
            r.providers,
            r.complete,
            tuple((s.hops, s.matches, s.complete) for s in r.sub_results),
        )
        for r in results
    ]


@given(
    seed=st.integers(0, 2**16),
    fraction=st.sampled_from((0.05, 0.1, 0.2)),
    intermittency=st.sampled_from((0.6, 1.0)),
)
def test_policies_are_result_transparent(
    loaded_bundle, seed, fraction, intermittency
):
    queries = list(
        loaded_bundle.workload.query_stream(
            _WARMUP + _MEASURED, 2, QueryKind.RANGE,
            label=f"transparency-{seed}",
        )
    )
    for service in (loaded_bundle.lorm, loaded_bundle.sword):
        starts = [service.random_node() for _ in queries]
        fingerprints = {}
        latencies = {}
        for name, policy in _POLICIES:
            results = _run_cell(
                service, queries, starts, seed, fraction, intermittency, policy
            )
            fingerprints[name] = _fingerprint(results)
            latencies[name] = [r.latency for r in results]
        assert fingerprints["adaptive"] == fingerprints["fixed"]
        assert fingerprints["hedged"] == fingerprints["fixed"]
        # The latency side actually engaged: every measured query that
        # moved at all carries a positive requester-observed latency.
        for name, _ in _POLICIES:
            assert all(
                latency > 0.0
                for latency, fp in zip(latencies[name], fingerprints[name])
                if any(hops for hops, _, _ in fp[2])
            )
