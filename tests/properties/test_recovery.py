"""Hypothesis properties of budgeted self-healing maintenance.

The contract the recovery experiment leans on, stated as properties:

* unbounded budget is *complete* — after any crash storm the overlay is
  structurally clean, every surviving key is fully replicated in place,
  and the census is conserved (replication >= 2 means single crashes
  lose nothing);
* zero budget is *inert* — whatever replica deficit a crash storm left
  persists through any number of maintenance rounds, so non-recovery is
  observable rather than assumed.

Both properties hold along the *durability-policy axis* too: successor
replication, symmetric spread replication and erasure coding all repair
to zero deficit under an unlimited sweep, and bounded partial sweeps
conserve the policy's (decodable) census at every step.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, assume, given, settings
from hypothesis import strategies as st

from repro.overlay.chord import ChordRing
from repro.sim.durability import (
    erasure_code,
    successor_replication,
    symmetric_replication,
)
from repro.sim.invariants import (
    check_overlay,
    check_replica_placement,
    directory_census,
)
from repro.sim.maintenance import (
    UNLIMITED_BUDGET,
    ZERO_BUDGET,
    MaintenanceBudget,
    MaintenanceRound,
)
from repro.sim.recovery import replica_deficit

slow = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

#: One policy per placement × redundancy kind the engine supports.
POLICIES = [
    successor_replication(2),
    symmetric_replication(2),
    erasure_code(2, 1),
]


def _stormed_ring(keys, crash_seq, policy=None) -> ChordRing:
    """A replicated ring loaded with ``keys``, then hit by a crash storm.

    ``crash_seq`` picks victims by index into the shrinking live set; the
    storm always leaves at least two nodes alive.  ``policy`` swaps the
    default successor replication for any durability policy (the storm
    then strikes a ring repaired into that policy's placement).
    """
    ring = (
        ChordRing(6, replication=2)
        if policy is None
        else ChordRing(6, durability=policy)
    )
    ring.build_full()
    for key in keys:
        ring.store("ns", key, f"v{key}")
    if policy is not None:
        ring.repair_replication()  # place fragments per the policy first
    for pick in crash_seq:
        if ring.num_nodes <= 2:
            break
        ring.fail(ring.node_ids[pick % ring.num_nodes])
    return ring


keys_strategy = st.lists(
    st.integers(0, 63), min_size=1, max_size=12, unique=True
)
storm_strategy = st.lists(st.integers(0, 1000), min_size=1, max_size=12)


class TestUnboundedBudgetIsComplete:
    @slow
    @given(keys=keys_strategy, crash_seq=storm_strategy)
    def test_one_unlimited_round_always_reconverges(self, keys, crash_seq):
        ring = _stormed_ring(keys, crash_seq)
        before = directory_census(ring)
        report = MaintenanceRound(ring).run(UNLIMITED_BUDGET)
        assert report.full_sweep
        check_overlay(ring)
        check_replica_placement(ring)
        assert replica_deficit(ring) == 0
        assert directory_census(ring) == before  # r=2 survives every storm step

    @slow
    @given(
        keys=keys_strategy,
        crash_seq=storm_strategy,
        repair_keys=st.integers(1, 6),
        rounds=st.integers(0, 3),
    )
    def test_bounded_rounds_never_lose_data(self, keys, crash_seq, repair_keys, rounds):
        """Partial repair in any dose conserves the census; finishing with
        an unlimited round lands in the same healed state."""
        ring = _stormed_ring(keys, crash_seq)
        before = directory_census(ring)
        round_ = MaintenanceRound(ring)
        budget = MaintenanceBudget(
            stabilize_nodes=4, refresh_nodes=4, repair_keys=repair_keys
        )
        for _ in range(rounds):
            round_.run(budget)
            assert directory_census(ring) == before
        round_.run(UNLIMITED_BUDGET)
        assert replica_deficit(ring) == 0
        assert directory_census(ring) == before


class TestEveryPolicyRepairsCompletely:
    """The unbounded/bounded properties along the durability-policy axis."""

    @slow
    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.name)
    @given(keys=keys_strategy, crash_seq=storm_strategy)
    def test_unlimited_sweep_restores_zero_deficit(self, policy, keys, crash_seq):
        ring = _stormed_ring(keys, crash_seq, policy=policy)
        before = directory_census(ring, policy)
        report = MaintenanceRound(ring).run(UNLIMITED_BUDGET)
        assert report.full_sweep
        check_overlay(ring)
        check_replica_placement(ring)
        assert replica_deficit(ring) == 0
        # Whatever the storm left decodable, repair keeps — exactly.
        assert directory_census(ring, policy) == before

    @slow
    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.name)
    @given(
        keys=keys_strategy,
        crash_seq=storm_strategy,
        repair_keys=st.integers(1, 6),
        rounds=st.integers(0, 3),
    )
    def test_bounded_rounds_conserve_policy_census(
        self, policy, keys, crash_seq, repair_keys, rounds
    ):
        ring = _stormed_ring(keys, crash_seq, policy=policy)
        before = directory_census(ring, policy)
        round_ = MaintenanceRound(ring)
        budget = MaintenanceBudget(
            stabilize_nodes=4, refresh_nodes=4, repair_keys=repair_keys
        )
        for _ in range(rounds):
            round_.run(budget)
            assert directory_census(ring, policy) == before
        round_.run(UNLIMITED_BUDGET)
        assert replica_deficit(ring) == 0
        assert directory_census(ring, policy) == before


class TestZeroBudgetIsInert:
    @slow
    @given(
        keys=keys_strategy,
        crash_seq=storm_strategy,
        rounds=st.integers(1, 8),
    )
    def test_deficit_persists_through_zero_budget_rounds(self, keys, crash_seq, rounds):
        ring = _stormed_ring(keys, crash_seq)
        deficit = replica_deficit(ring)
        assume(deficit > 0)  # the storm must actually have wounded a replica set
        round_ = MaintenanceRound(ring)
        for _ in range(rounds):
            report = round_.run(ZERO_BUDGET)
            assert report.stabilized == report.refreshed == 0
            assert report.copies_moved == 0
        assert replica_deficit(ring) == deficit
