"""Property suites over the differential harness: random churn
interleavings x random workload seeds, all four systems each example.

Example counts come from the Hypothesis profile registered in
``tests/conftest.py`` ("dev" locally, "ci" in the workflow); per-test
settings only disable the deadline (a replay builds four overlays).
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.testing.differential import run_differential

graceful_ops = st.lists(
    st.sampled_from(["leave", "join", "stabilize"]), min_size=1, max_size=6
)
crashy_ops = st.lists(
    st.sampled_from(["leave", "join", "stabilize", "fail"]),
    min_size=1,
    max_size=6,
)


class TestDifferentialProperties:
    @given(seed=st.integers(0, 2**16))
    @settings(deadline=None)
    def test_fault_free_replay_is_exact_for_any_seed(self, seed):
        report = run_differential(seed=seed, num_queries=6)
        assert report.ok, report.render()

    @given(ops=graceful_ops, seed=st.integers(0, 2**10))
    @settings(deadline=None)
    def test_graceful_interleavings_stay_oracle_exact(self, ops, seed):
        report = run_differential(
            seed=seed, num_queries=6, churn_ops=tuple(ops), expect="exact"
        )
        assert report.ok, report.render()

    @given(ops=crashy_ops, seed=st.integers(0, 2**10))
    @settings(deadline=None)
    def test_crashy_interleavings_never_invent_providers(self, ops, seed):
        report = run_differential(
            seed=seed,
            num_queries=6,
            churn_ops=tuple(ops),
            replication=2,
            expect="subset",
        )
        assert report.ok, report.render()
