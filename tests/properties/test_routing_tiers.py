"""Properties of the single-hop and ReCord routing tiers.

The headline property is D1HT's contract, **"1 hop means 1 hop"**: under a
fully disseminated membership table every fault-free
:class:`~repro.overlay.singlehop.SingleHopRing` lookup resolves in at most
one hop (zero only when the requester already owns the key), and any churn
burst followed by an unlimited-budget maintenance round *restores* the
property.  The trace-level variant re-checks the same contract through the
span oracles — per-lookup hop spans, conservation laws and the structural
bound checker — so the routing tier and the observability pipeline are
pinned against each other.

The companion ReCord property pins the randomized tier to the paper's
structural ceiling: for every sampled fan-out, fault-free lookups stay
within ``bits + 1`` hops, because each level's deterministic Chord anchor
preserves the classic halving argument no matter what the extra sampled
fingers do.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.replay import SYSTEMS, replay_queries
from repro.obs.spans import SpanKind
from repro.overlay.record import ReCordOverlay
from repro.overlay.singlehop import SingleHopRing
from repro.sim.maintenance import UNLIMITED_BUDGET, MaintenanceRound
from repro.testing.traces import assert_trace_bounds

BITS = 6
SIZE = 1 << BITS

population_st = st.sets(
    st.integers(min_value=0, max_value=SIZE - 1), min_size=4, max_size=24
)
#: A churn burst: positive ids join, negative ids leave (when present).
churn_st = st.lists(
    st.integers(min_value=-(SIZE - 1), max_value=SIZE - 1), max_size=12
)


def _apply_churn(ring, events) -> None:
    for event in events:
        nid = abs(event)
        if event >= 0 and nid not in ring._nodes:
            ring.join(nid)
        elif nid in ring._nodes and ring.num_nodes > 1:
            ring.leave(nid)


def _assert_one_hop(ring) -> None:
    for start in ring.node_ids:
        for key in range(0, ring.space.size, 5):
            result = ring.lookup(ring.node(start), key)
            assert result.hops <= 1
            assert result.retries == 0
            assert result.owner is ring.successor_of(key)
            if result.hops == 0:
                assert result.owner.node_id == start


@given(population=population_st)
@settings(max_examples=25)
def test_one_hop_means_one_hop_when_fully_disseminated(population):
    ring = SingleHopRing(bits=BITS)
    ring.build(sorted(population))
    assert ring.pending_events() == 0
    _assert_one_hop(ring)


@given(population=population_st, churn=churn_st)
@settings(max_examples=25)
def test_unlimited_budget_round_restores_one_hop_after_churn(population, churn):
    ring = SingleHopRing(bits=BITS)
    ring.build(sorted(population))
    _apply_churn(ring, churn)
    MaintenanceRound(ring).run(UNLIMITED_BUDGET)
    # The sweep flushed every outstanding membership event...
    assert ring.pending_events() == 0
    # ...so the single-hop contract holds again.
    _assert_one_hop(ring)


@given(
    system=st.sampled_from(sorted(SYSTEMS)),
    seed=st.integers(min_value=0, max_value=2**16),
)
@settings(max_examples=10, deadline=None)
def test_one_hop_contract_through_the_trace_oracles(system, seed):
    """Trace-level "1 hop means 1 hop": every fault-free lookup span on the
    single-hop substrate accounts for at most one hop, hop by hop."""
    service, traces = replay_queries(
        system, seed=seed, num_queries=2, num_attributes=2,
        overlay="singlehop",
    )
    assert traces
    for trace in traces:
        assert_trace_bounds(trace, service)
        lookups = trace.spans_of(SpanKind.LOOKUP)
        assert lookups
        for span in lookups:
            hops = span.hop_spans()
            assert len(hops) <= 1
            assert span.attrs["hops"] == len(hops)
            # Per-hop accounting: the one long jump rides the membership
            # table (or a neighbour link), never a Chord finger.
            for hop in hops:
                assert hop.attrs["choice"] != "finger"


@given(
    fanout=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=2**16),
    population=population_st,
)
@settings(max_examples=25)
def test_record_hops_stay_within_the_structural_ceiling(fanout, seed, population):
    ring = ReCordOverlay(bits=BITS, fanout=fanout, seed=seed)
    ring.build(sorted(population))
    for start in ring.node_ids:
        for key in range(0, ring.space.size, 7):
            result = ring.lookup(ring.node(start), key)
            assert result.hops <= ring.bits + 1
            assert result.owner is ring.successor_of(key)
