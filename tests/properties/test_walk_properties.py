"""Hypothesis properties of the range-walk primitives.

The range-query correctness of Mercury/MAAN (``walk_arc``) and LORM
(``walk_cluster``) reduces to one statement each:

* the walk visits **exactly** the nodes owning at least one key of the
  queried arc/sector — no owner missed (completeness, Proposition 3.1's
  content) and no extra nodes billed (the paper's visited-node accounting).
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.overlay.chord import ChordRing
from repro.overlay.cycloid import CycloidId, CycloidOverlay

slow = settings(
    max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

ring_members = st.sets(st.integers(0, 63), min_size=1, max_size=30)
cycloid_members = st.sets(
    st.builds(CycloidId, st.integers(0, 3), st.integers(0, 15)),
    min_size=1,
    max_size=30,
)


class TestWalkArcProperties:
    @slow
    @given(members=ring_members, k1=st.integers(0, 63), span=st.integers(0, 63))
    def test_walk_visits_exactly_the_arc_owners(self, members, k1, span):
        ring = ChordRing(6)
        ring.build(members)
        k2 = (k1 + span) % 64
        start = ring.successor_of(k1)
        walked = {n.node_id for n in ring.walk_arc(start, k1, k2)}
        owners = {
            ring.successor_of((k1 + offset) % 64).node_id
            for offset in range(span + 1)
        }
        assert walked == owners

    @slow
    @given(members=ring_members, k1=st.integers(0, 63), span=st.integers(0, 63))
    def test_walk_is_contiguous_clockwise(self, members, k1, span):
        ring = ChordRing(6)
        ring.build(members)
        start = ring.successor_of(k1)
        walk = ring.walk_arc(start, k1, (k1 + span) % 64)
        ids = ring.node_ids
        positions = [ids.index(n.node_id) for n in walk]
        for a, b in zip(positions, positions[1:]):
            assert b == (a + 1) % len(ids)


class TestWalkClusterProperties:
    @slow
    @given(
        members=cycloid_members,
        k1=st.integers(0, 3),
        span=st.integers(0, 3),
        cluster_hint=st.integers(0, 15),
    )
    def test_walk_visits_exactly_the_sector_owners(
        self, members, k1, span, cluster_hint
    ):
        overlay = CycloidOverlay(4)
        overlay.build(members)
        cluster = overlay.nearest_cluster(cluster_hint)
        k2 = (k1 + span) % 4
        start = overlay.closest_node(CycloidId(k1, cluster))
        # Guard: the walk API contract requires start in the key's cluster.
        if start.a != cluster:
            return
        walked = {n.cid for n in overlay.walk_cluster(start, k1, k2)}
        owners = {
            overlay.closest_node(CycloidId((k1 + o) % 4, cluster)).cid
            for o in range(span + 1)
        }
        assert walked == owners

    @slow
    @given(members=cycloid_members, k1=st.integers(0, 3), span=st.integers(0, 3))
    def test_walk_stays_in_start_cluster(self, members, k1, span):
        overlay = CycloidOverlay(4)
        overlay.build(members)
        some_cluster = overlay.node_ids[0].a
        start = overlay.closest_node(CycloidId(k1, some_cluster))
        walk = overlay.walk_cluster(start, k1, (k1 + span) % 4)
        assert all(n.a == start.a for n in walk)
