"""Hypothesis properties: arbitrary churn interleavings leave the overlays
routable and repairable.

Random sequences of ``churn_leave`` / ``churn_fail`` / ``churn_join`` /
``stabilize`` — in any order, including failures striking mid-repair — must
never corrupt an overlay: after a final stabilization round the ring
invariants hold, every lookup lands on the true owner, and
``repair_replication`` re-homes every *surviving* copy onto exactly its
replica set.  (With replication 2, two adjacent crashes between repairs can
legitimately lose a key — the property is about placement of what
survives, not about zero loss.)
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.mercury import MercuryService
from repro.core.lorm import LormService
from repro.core.resource import ResourceInfo
from repro.workloads.attributes import AttributeSchema

SCHEMA = AttributeSchema.synthetic(4)

slow = settings(
    max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

OPS = ("leave", "fail", "join", "stabilize")

op_sequences = st.lists(st.sampled_from(OPS), min_size=0, max_size=25)


def _apply(service, op: str) -> None:
    if op == "leave":
        service.churn_leave()
    elif op == "fail":
        service.churn_fail()
    elif op == "join":
        service.churn_join()
    else:
        service.stabilize()


def _register_some(service, count: int = 12) -> None:
    spec = SCHEMA.specs[0]
    step = (spec.hi - spec.lo) / (count + 1)
    for i in range(count):
        info = ResourceInfo(spec.name, spec.lo + (i + 1) * step, f"prov-{i:02d}")
        service.register(info, routed=False)


def _stored_placement(overlay) -> dict[tuple[str, int], set]:
    """(namespace, key) -> the IDs of the nodes currently holding a copy."""
    placement: dict[tuple[str, int], set] = {}
    for node in list(overlay.nodes()):
        for namespace, key_id, _item in node.stored_entries():
            placement.setdefault((namespace, key_id), set()).add(
                node.node_id if hasattr(node, "node_id") else node.cid
            )
    return placement


class TestChordChurnSequences:
    @slow
    @given(ops=op_sequences, seed=st.integers(0, 1 << 20))
    def test_ring_routable_and_replicas_restored(self, ops, seed):
        service = MercuryService.build(6, 40, SCHEMA, seed=seed, replication=2)
        _register_some(service)
        for op in ops:
            _apply(service, op)
        service.stabilize()
        ring = service.ring
        ring.check_ring_invariants()

        # Routable: every key resolves to the true successor from any start.
        starts = ring.node_ids
        for i, key in enumerate(range(0, 64, 7)):
            start = ring.node(starts[(seed + i) % len(starts)])
            assert ring.lookup(start, key).owner is ring.successor_of(key)

        # Repair re-homes every surviving copy onto exactly its replica set.
        ring.repair_replication()
        for (_, key_id), holders in _stored_placement(ring).items():
            expected = {n.node_id for n in ring.replica_set(key_id)}
            assert holders == expected, (key_id, holders, expected)


class TestCycloidChurnSequences:
    @slow
    @given(ops=op_sequences, seed=st.integers(0, 1 << 20))
    def test_overlay_routable_and_replicas_restored(self, ops, seed):
        service = LormService.build_full(3, SCHEMA, seed=seed, replication=2)
        _register_some(service)
        for op in ops:
            _apply(service, op)
        service.stabilize()
        overlay = service.overlay
        overlay.check_invariants()

        # Routable: legacy lookup converges on the closest node (it raises
        # RuntimeError if routing state were corrupt).
        ids = overlay.node_ids
        for i in range(8):
            start = overlay.node(ids[(seed + i) % len(ids)])
            target = overlay.delinearize((seed * 7 + i * 5) % 24)
            result = overlay.lookup(start, target)
            assert result.owner is overlay.closest_node(target)

        overlay.repair_replication()
        for (_, key_id), holders in _stored_placement(overlay).items():
            expected = {
                n.cid for n in overlay.replica_set(overlay.delinearize(key_id))
            }
            assert holders == expected, (key_id, holders, expected)
