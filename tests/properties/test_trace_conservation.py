"""Property: trace/metrics conservation across every discovery system.

For any seeded query stream, the hop and visited-node totals derivable
from a query's span tree must *exactly* equal the samples the service's
:class:`~repro.sim.metrics.MetricsRegistry` recorded for that query —
the span tree and the metrics pipeline observe the same wire activity
through independent code paths, so any drift between them is a bug in
one of the two.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.replay import SYSTEMS, replay_queries
from repro.obs.spans import SpanKind
from repro.workloads.generator import QueryKind

system_st = st.sampled_from(sorted(SYSTEMS))
kind_st = st.sampled_from([QueryKind.POINT, QueryKind.RANGE, QueryKind.AT_LEAST])


@given(
    system=system_st,
    kind=kind_st,
    seed=st.integers(min_value=0, max_value=2**16),
    num_attributes=st.integers(min_value=1, max_value=3),
    loss=st.sampled_from([0.0, 0.0, 0.2]),
)
@settings(max_examples=20)
def test_span_totals_reconcile_with_metrics(system, kind, seed, num_attributes, loss):
    service, traces = replay_queries(
        system,
        seed=seed,
        num_queries=2,
        num_attributes=num_attributes,
        kind=kind,
        loss=loss,
    )
    total_hops = service.metrics.samples("multi_query.total_hops")
    total_visited = service.metrics.samples("multi_query.total_visited")
    per_query_hops = service.metrics.samples("query.hops")
    per_query_visited = service.metrics.samples("query.visited")

    assert len(traces) == len(total_hops) == 2

    subquery_index = 0
    for trace, hops_sample, visited_sample in zip(traces, total_hops, total_visited):
        root = trace.root
        subs = trace.spans_of(SpanKind.SUBQUERY)
        assert len(subs) == num_attributes

        # Root totals equal the registry's per-multi-query samples and the
        # actual number of hop spans in the tree.
        assert root.attrs["total_hops"] == hops_sample == trace.hop_count()
        assert root.attrs["total_visited"] == visited_sample

        # Each sub-query's span reconciles with its per-query samples, and
        # its hop descendants account for exactly its recorded hops.
        for sub in subs:
            assert sub.attrs["hops"] == per_query_hops[subquery_index]
            assert sub.attrs["visited"] == per_query_visited[subquery_index]
            assert len(sub.find(SpanKind.HOP)) == sub.attrs["hops"]
            subquery_index += 1
    assert subquery_index == len(per_query_hops)
