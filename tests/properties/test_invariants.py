"""Hypothesis property tests on the core invariants.

These cover the load-bearing correctness properties:

* Proposition 3.1 — range-query containment between the two roots;
* Chord: lookup(key) == successor(key) under arbitrary membership;
* Cycloid: lookup lands on the closest node under arbitrary membership;
* storage conservation under arbitrary churn sequences.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.lorm import LormService
from repro.core.resource import AttributeConstraint, Query, ResourceInfo
from repro.overlay.chord import ChordRing
from repro.overlay.cycloid import CycloidId, CycloidOverlay
from repro.workloads.attributes import AttributeSchema

SCHEMA = AttributeSchema.synthetic(4)
SPEC = SCHEMA.specs[0]

slow = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# ---------------------------------------------------------------------------
# Chord properties
# ---------------------------------------------------------------------------
class TestChordProperties:
    @slow
    @given(
        members=st.sets(st.integers(0, 63), min_size=1, max_size=40),
        start_idx=st.integers(0, 1000),
        key=st.integers(0, 63),
    )
    def test_lookup_always_lands_on_successor(self, members, start_idx, key):
        ring = ChordRing(6)
        ring.build(members)
        ids = ring.node_ids
        start = ring.node(ids[start_idx % len(ids)])
        assert ring.lookup(start, key).owner is ring.successor_of(key)

    @slow
    @given(
        members=st.sets(st.integers(0, 63), min_size=2, max_size=40),
        keys=st.lists(st.integers(0, 63), min_size=1, max_size=20),
        victims=st.data(),
    )
    def test_storage_conserved_under_leaves(self, members, keys, victims):
        ring = ChordRing(6)
        ring.build(members)
        for key in keys:
            ring.store("ns", key, key)
        leaves = victims.draw(
            st.integers(0, max(0, ring.num_nodes - 2)), label="leave-count"
        )
        for _ in range(leaves):
            ring.leave(ring.node_ids[0])
        assert sum(ring.directory_sizes("ns")) == len(keys)
        for key in keys:
            assert key in ring.successor_of(key).items_at("ns", key)

    @slow
    @given(members=st.sets(st.integers(0, 63), min_size=1, max_size=40))
    def test_ring_invariants_for_any_membership(self, members):
        ring = ChordRing(6)
        ring.build(members)
        ring.check_ring_invariants()


# ---------------------------------------------------------------------------
# Cycloid properties
# ---------------------------------------------------------------------------
cycloid_ids = st.builds(
    CycloidId, st.integers(0, 3), st.integers(0, 15)
)


class TestCycloidProperties:
    @slow
    @given(
        members=st.sets(cycloid_ids, min_size=1, max_size=40),
        start_idx=st.integers(0, 1000),
        target=cycloid_ids,
    )
    def test_lookup_lands_on_closest(self, members, start_idx, target):
        overlay = CycloidOverlay(4)
        overlay.build(members)
        ids = overlay.node_ids
        start = overlay.node(ids[start_idx % len(ids)])
        assert overlay.lookup(start, target).owner is overlay.closest_node(target)

    @slow
    @given(members=st.sets(cycloid_ids, min_size=1, max_size=40))
    def test_leaf_invariants_for_any_membership(self, members):
        overlay = CycloidOverlay(4)
        overlay.build(members)
        overlay.check_invariants()

    @slow
    @given(
        members=st.sets(cycloid_ids, min_size=2, max_size=40),
        keys=st.lists(cycloid_ids, min_size=1, max_size=15),
        leave_count=st.integers(0, 10),
    )
    def test_storage_conserved_under_leaves(self, members, keys, leave_count):
        overlay = CycloidOverlay(4)
        overlay.build(members)
        for key in keys:
            overlay.store("ns", key, str(key))
        for _ in range(min(leave_count, overlay.num_nodes - 1)):
            overlay.leave(overlay.node_ids[0])
        assert sum(overlay.directory_sizes("ns")) == len(keys)
        for key in keys:
            owner = overlay.closest_node(key)
            assert str(key) in owner.items_at("ns", overlay.linearize(key))


# ---------------------------------------------------------------------------
# Proposition 3.1 — LORM range containment
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def lorm() -> LormService:
    service = LormService.build_full(4, SCHEMA, seed=77)
    return service


class TestProposition31:
    @slow
    @given(
        quantiles=st.tuples(st.floats(0.001, 0.999), st.floats(0.001, 0.999)),
        value_q=st.floats(0.001, 0.999),
    )
    def test_in_range_value_stored_between_roots(self, lorm, quantiles, value_q):
        """Any stored value inside [π1, π2] lives on a node between
        root(ℋ(π1)) and root(ℋ(π2)) in the cluster's cyclic order."""
        q1, q2 = sorted(quantiles)
        dist = SPEC.distribution
        pi1, pi2 = dist.ppf(q1), dist.ppf(q2)
        value = dist.ppf(q1 + value_q * (q2 - q1))  # inside [pi1, pi2]

        vh = lorm.value_hash(SPEC.name)
        cluster = lorm.attr_key(SPEC.name)
        owner = lorm.overlay.closest_node(CycloidId(vh(value), cluster))
        root1 = lorm.overlay.closest_node(CycloidId(vh(pi1), cluster))
        root2 = lorm.overlay.closest_node(CycloidId(vh(pi2), cluster))
        assert root1.k <= owner.k <= root2.k

    @slow
    @given(
        values=st.lists(st.floats(0.01, 0.99), min_size=1, max_size=12),
        bounds=st.tuples(st.floats(0.0, 1.0), st.floats(0.0, 1.0)),
    )
    def test_range_walk_finds_exactly_matching_values(self, values, bounds):
        """End-to-end Proposition 3.1: a fresh LORM instance loaded with
        arbitrary values answers an arbitrary range query exactly."""
        service = LormService.build_full(4, SCHEMA, seed=5)
        dist = SPEC.distribution
        concrete = [dist.ppf(q) for q in values]
        for i, v in enumerate(concrete):
            service.register(ResourceInfo(SPEC.name, v, f"p{i}"), routed=False)
        q1, q2 = sorted(bounds)
        lo, hi = dist.ppf(q1), dist.ppf(q2)
        result = service.query(Query(AttributeConstraint.between(SPEC.name, lo, hi)))
        expected = {f"p{i}" for i, v in enumerate(concrete) if lo <= v <= hi}
        assert result.providers == expected
