"""The determinism contract of ``repro bench``.

Two ``repro bench --smoke --seed 0`` runs must produce identical op
inventories and identical non-timing fields; only the nanosecond samples
(and run provenance: timestamp, host, RSS) may differ.  The same
contract, restricted to checksums, must hold between a cached and an
uncached overlay — that is what lets the routing caches ship at all.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import main

_VOLATILE_KEYS = ("created_unix", "git_sha", "host", "rss_max_kb")


def _run_bench(tmp_path: Path, name: str) -> dict:
    out = tmp_path / name
    assert main(["bench", "--smoke", "--seed", "0", "--out", str(out)]) == 0
    return json.loads(out.read_text())


def _strip_volatile(report: dict) -> dict:
    report = dict(report)
    for key in _VOLATILE_KEYS:
        report.pop(key, None)
    report["ops"] = [
        {k: v for k, v in op.items() if k != "timing"} for op in report["ops"]
    ]
    return report


@pytest.fixture(scope="module")
def two_smoke_runs(tmp_path_factory):
    tmp_path = tmp_path_factory.mktemp("bench-determinism")
    return (
        _run_bench(tmp_path, "run1.json"),
        _run_bench(tmp_path, "run2.json"),
    )


class TestSmokeDeterminism:
    def test_op_inventories_identical(self, two_smoke_runs):
        first, second = two_smoke_runs
        assert [op["name"] for op in first["ops"]] == [
            op["name"] for op in second["ops"]
        ]

    def test_non_timing_fields_identical(self, two_smoke_runs):
        first, second = two_smoke_runs
        assert _strip_volatile(first) == _strip_volatile(second)

    def test_checksums_identical(self, two_smoke_runs):
        first, second = two_smoke_runs
        checksums = {
            op["name"]: op["checksum"] for op in first["ops"]
        }
        assert checksums == {
            op["name"]: op["checksum"] for op in second["ops"]
        }

    def test_covers_all_op_kinds(self, two_smoke_runs):
        first, _ = two_smoke_runs
        kinds = {op["kind"] for op in first["ops"]}
        assert kinds == {"micro", "macro", "figure"}
        names = {op["name"] for op in first["ops"]}
        # The contract the CI gate relies on: overlay micro-ops, all four
        # systems' macro-ops, end-to-end figures, and the calibration op.
        assert "calibration.spin" in names
        assert {"chord.lookup", "chord.walk_arc", "cycloid.lookup"} <= names
        assert {"singlehop.lookup", "record.lookup", "singlehop.stabilize"} <= names
        for system in ("lorm", "mercury", "sword", "maan"):
            assert f"{system}.register" in names
            assert f"{system}.multi_query" in names

    def test_timings_are_isolated_under_timing_key(self, two_smoke_runs):
        first, _ = two_smoke_runs
        for op in first["ops"]:
            assert "timing" in op
            assert "p50_ns" in op["timing"]
            assert "p50_ns" not in op


class TestCachedVsUncachedChecksums:
    def test_micro_checksums_unchanged_without_caches(self, monkeypatch):
        """The routing caches must not change what any op *computes*."""
        from repro.bench.ops import build_ops
        from repro.bench.harness import time_op
        from repro.experiments.config import SMOKE_CONFIG
        from repro.overlay import chord, cycloid

        config = SMOKE_CONFIG.scaled(seed=0)

        def checksums(ops):
            return {op.name: time_op(op).checksum for op in ops}

        cached = checksums(build_ops(config, profile="micro"))

        original_ring_init = chord.ChordRing.__init__
        original_overlay_init = cycloid.CycloidOverlay.__init__

        def ring_no_cache(self, *args, **kwargs):
            kwargs["routing_cache"] = False
            original_ring_init(self, *args, **kwargs)

        def overlay_no_cache(self, *args, **kwargs):
            kwargs["routing_cache"] = False
            original_overlay_init(self, *args, **kwargs)

        monkeypatch.setattr(chord.ChordRing, "__init__", ring_no_cache)
        monkeypatch.setattr(cycloid.CycloidOverlay, "__init__", overlay_no_cache)
        uncached = checksums(build_ops(config, profile="micro"))
        assert cached == uncached
