"""Report IO and the compare gate (the CI perf-smoke contract)."""

from __future__ import annotations

import json

import pytest

from repro.bench.compare import compare_reports
from repro.bench.harness import OpResult
from repro.bench.report import SCHEMA_VERSION, BenchReport


def _op(name: str, min_ns: float, *, kind: str = "micro", checksum: int = 1) -> OpResult:
    return OpResult(
        name=name, kind=kind, iterations=100, repeats=3, checksum=checksum,
        p50_ns=min_ns * 1.1, p95_ns=min_ns * 1.3, mean_ns=min_ns * 1.15,
        min_ns=min_ns, ops_per_sec=1e9 / min_ns, samples_ns=[],
    )


def _report(ops: list[OpResult]) -> BenchReport:
    return BenchReport(
        scale="smoke", profile="all", seed=0, config={"seed": 0},
        ops=ops, created_unix=1_000_000.0,
    )


def _with_calibration(ops: list[OpResult], cal_ns: float = 1000.0) -> list[OpResult]:
    return [_op("calibration.spin", cal_ns), *ops]


class TestReportIO:
    def test_save_load_roundtrip(self, tmp_path):
        report = _report(_with_calibration([_op("chord.lookup", 500.0)]))
        path = report.save(tmp_path)
        assert path.name.startswith("BENCH_") and path.suffix == ".json"
        loaded = BenchReport.load(path)
        assert loaded.op_names() == report.op_names()
        assert loaded.ops == report.ops
        assert loaded.scale == "smoke"

    def test_explicit_file_path(self, tmp_path):
        report = _report(_with_calibration([]))
        path = report.save(tmp_path / "baseline.json")
        assert path == tmp_path / "baseline.json"

    def test_unknown_schema_version_rejected(self, tmp_path):
        report = _report(_with_calibration([]))
        data = report.as_dict()
        data["schema_version"] = SCHEMA_VERSION + 1
        path = tmp_path / "future.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError, match="schema version"):
            BenchReport.load(path)

    def test_render_lists_every_op(self):
        report = _report(_with_calibration([_op("chord.lookup", 500.0)]))
        rendered = report.render()
        assert "chord.lookup" in rendered and "calibration.spin" in rendered


class TestCompare:
    def test_flat_run_passes(self):
        base = _report(_with_calibration([_op("a", 100.0)]))
        cur = _report(_with_calibration([_op("a", 105.0)]))
        result = compare_reports(base, cur, threshold=0.25)
        assert result.ok and not result.regressions

    def test_regression_fails(self):
        base = _report(_with_calibration([_op("a", 100.0)]))
        cur = _report(_with_calibration([_op("a", 200.0)]))
        result = compare_reports(base, cur, threshold=0.25)
        assert not result.ok
        assert [d.name for d in result.regressions] == ["a"]
        assert "FAIL" in result.render()

    def test_machine_speed_normalised_out(self):
        # The whole current machine is 2x slower (calibration included):
        # no op actually regressed.
        base = _report(_with_calibration([_op("a", 100.0)], cal_ns=1000.0))
        cur = _report(_with_calibration([_op("a", 200.0)], cal_ns=2000.0))
        result = compare_reports(base, cur, threshold=0.25)
        assert result.machine_factor == pytest.approx(2.0)
        assert result.ok

    def test_genuine_regression_survives_normalisation(self):
        # Machine 2x slower AND the op 4x slower: still a regression.
        base = _report(_with_calibration([_op("a", 100.0)], cal_ns=1000.0))
        cur = _report(_with_calibration([_op("a", 400.0)], cal_ns=2000.0))
        assert not compare_reports(base, cur, threshold=0.25).ok

    def test_inventory_drift_warns_without_gating(self):
        base = _report(_with_calibration([_op("a", 100.0), _op("gone", 50.0)]))
        cur = _report(_with_calibration([_op("a", 100.0), _op("new", 50.0)]))
        result = compare_reports(base, cur)
        assert result.ok
        assert any("only in baseline: gone" in w for w in result.warnings)
        assert any("only in current: new" in w for w in result.warnings)

    def test_checksum_mismatch_warns(self):
        base = _report(_with_calibration([_op("a", 100.0, checksum=1)]))
        cur = _report(_with_calibration([_op("a", 100.0, checksum=2)]))
        result = compare_reports(base, cur)
        assert result.ok  # behaviour drift is the determinism tests' job
        assert any("checksum mismatch on a" in w for w in result.warnings)

    def test_improvement_reported(self):
        base = _report(_with_calibration([_op("a", 300.0)]))
        cur = _report(_with_calibration([_op("a", 100.0)]))
        result = compare_reports(base, cur)
        assert "3.00x faster" in result.render()

    def test_bad_threshold_rejected(self):
        base = _report(_with_calibration([]))
        with pytest.raises(ValueError, match="threshold"):
            compare_reports(base, base, threshold=0.0)


class TestCompareCli:
    def test_exit_codes(self, tmp_path):
        from repro.cli import main

        base = _report(_with_calibration([_op("a", 100.0)]))
        good = _report(_with_calibration([_op("a", 101.0)]))
        bad = _report(_with_calibration([_op("a", 300.0)]))
        base_path = str(base.save(tmp_path / "base.json"))
        good_path = str(good.save(tmp_path / "good.json"))
        bad_path = str(bad.save(tmp_path / "bad.json"))
        assert main(["bench", "compare", base_path, good_path]) == 0
        assert main(["bench", "compare", base_path, bad_path]) == 1
        # A generous threshold lets the same pair pass.
        assert (
            main(["bench", "compare", base_path, bad_path, "--threshold", "3"])
            == 0
        )
