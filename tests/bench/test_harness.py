"""Unit tests for the bench timing harness."""

from __future__ import annotations

import pytest

from repro.bench.harness import BenchOp, OpResult, _percentile, time_op


class TestTimeOp:
    def test_times_and_checksums(self):
        calls = []

        def run(n: int) -> int:
            calls.append(n)
            return n * 3

        result = time_op(BenchOp(name="x", kind="micro", iterations=10, run=run))
        # One warmup + five timed repeats, all at the declared iteration count.
        assert calls == [10] * 6
        assert result.checksum == 30
        assert result.repeats == 5
        assert len(result.samples_ns) == 5
        assert result.min_ns <= result.p50_ns <= result.p95_ns
        assert result.ops_per_sec > 0

    def test_unrepeatable_op_raises(self):
        state = {"n": 0}

        def run(n: int) -> int:
            state["n"] += 1
            return state["n"]

        with pytest.raises(RuntimeError, match="not repeatable"):
            time_op(BenchOp(name="drift", kind="micro", iterations=1, run=run))

    def test_warmup_skip(self):
        calls = []

        def run(n: int) -> int:
            calls.append(n)
            return 7

        result = time_op(
            BenchOp(
                name="figure.x", kind="figure", iterations=1,
                repeats=1, warmup=False, run=run,
            )
        )
        assert calls == [1]  # no warmup repeat
        assert result.checksum == 7


class TestOpResult:
    def test_dict_roundtrip_nests_timing(self):
        result = OpResult(
            name="a", kind="micro", iterations=5, repeats=2, checksum=9,
            p50_ns=10.0, p95_ns=12.0, mean_ns=11.0, min_ns=10.0,
            ops_per_sec=9e7, samples_ns=[10.0, 12.0],
        )
        data = result.as_dict()
        assert set(data["timing"]) == {
            "p50_ns", "p95_ns", "mean_ns", "min_ns", "ops_per_sec", "samples_ns",
        }
        assert "p50_ns" not in data  # timing is isolated for strip-and-diff
        assert OpResult.from_dict(data) == result


class TestPercentile:
    def test_interpolates(self):
        assert _percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)
        assert _percentile([1.0, 2.0, 3.0, 4.0], 0.0) == 1.0
        assert _percentile([1.0, 2.0, 3.0, 4.0], 1.0) == 4.0
        assert _percentile([5.0], 0.95) == 5.0
