"""Shared fixtures: small overlays, schemas and workloads.

Everything here is deterministic (fixed seeds) and sized for sub-second
construction; paper-scale runs live in ``benchmarks/``.
"""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import HealthCheck, settings

from repro.experiments.common import ServiceBundle, build_services
from repro.experiments.config import SMOKE_CONFIG, ExperimentConfig
from repro.overlay.chord import ChordRing
from repro.overlay.cycloid import CycloidId, CycloidOverlay
from repro.workloads.attributes import AttributeSchema
from repro.workloads.generator import GridWorkload

# Hypothesis profiles: "dev" keeps property suites laptop-fast; "ci" runs
# more examples, derandomized for reproducible builds.  Select with
# HYPOTHESIS_PROFILE=ci (the GitHub Actions workflow does).
settings.register_profile(
    "dev",
    deadline=None,
    max_examples=15,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "ci",
    deadline=None,
    max_examples=60,
    derandomize=True,
    print_blob=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def rng() -> random.Random:
    """A deterministic stdlib RNG for ad-hoc test sampling."""
    return random.Random(0xC0FFEE)


@pytest.fixture
def full_ring() -> ChordRing:
    """A fully populated 6-bit (64-node) Chord ring."""
    ring = ChordRing(6)
    ring.build_full()
    return ring


@pytest.fixture
def sparse_ring() -> ChordRing:
    """A 7-bit ring with 40 scattered nodes."""
    ring = ChordRing(7)
    r = random.Random(7)
    ring.build(r.sample(range(128), 40))
    return ring


@pytest.fixture
def full_overlay() -> CycloidOverlay:
    """A fully populated dimension-4 Cycloid (64 nodes)."""
    overlay = CycloidOverlay(4)
    overlay.build_full()
    return overlay


@pytest.fixture
def sparse_overlay() -> CycloidOverlay:
    """A dimension-4 Cycloid with 40 of 64 positions occupied."""
    overlay = CycloidOverlay(4)
    r = random.Random(4)
    all_ids = [CycloidId(k, a) for a in range(16) for k in range(4)]
    overlay.build(r.sample(all_ids, 40))
    return overlay


@pytest.fixture(scope="session")
def tiny_config() -> ExperimentConfig:
    """Sub-second experiment configuration with the paper's shape."""
    return SMOKE_CONFIG.scaled(
        num_attributes=8,
        infos_per_attribute=30,
        max_query_attributes=3,
        num_requesters=5,
        queries_per_requester=4,
        num_range_queries=30,
        num_churn_requests=60,
        churn_rates=(0.2, 0.5),
    )


@pytest.fixture(scope="session")
def schema(tiny_config: ExperimentConfig) -> AttributeSchema:
    """The tiny config's attribute schema."""
    return tiny_config.schema()


@pytest.fixture(scope="session")
def workload(tiny_config: ExperimentConfig) -> GridWorkload:
    """The tiny config's workload."""
    return GridWorkload(
        schema=tiny_config.schema(),
        infos_per_attribute=tiny_config.infos_per_attribute,
        seed=tiny_config.seed,
        mean_span_fraction=tiny_config.mean_span_fraction,
    )


@pytest.fixture(scope="session")
def loaded_bundle(tiny_config: ExperimentConfig) -> ServiceBundle:
    """All four services built at tiny scale with the workload registered.

    Session-scoped: tests must not mutate overlay membership (churn tests
    build their own bundles).
    """
    return build_services(tiny_config)


@pytest.fixture
def assert_invariants():
    """Callable validating every service's overlay in a bundle."""
    from repro.sim.invariants import check_overlay, overlay_of

    def _check(bundle: ServiceBundle) -> None:
        for service in bundle.all():
            check_overlay(overlay_of(service))

    return _check


@pytest.fixture(scope="session")
def check_report():
    """One shared (seed-0, scaled-down) run of the ``repro check`` harness."""
    from repro.testing.differential import run_check

    return run_check(seed=0, num_queries=24, churn_events=24)
