"""Tests for argument-validation helpers."""

from __future__ import annotations

import pytest

from repro.utils.validation import require, require_in_range, require_positive


class TestRequire:
    def test_passes_silently(self):
        require(True, "never raised")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="broken invariant"):
            require(False, "broken invariant")


class TestRequirePositive:
    @pytest.mark.parametrize("value", [1, 0.001, 1e12])
    def test_accepts_positive(self, value):
        require_positive(value, "x")

    @pytest.mark.parametrize("value", [0, -1, -0.5])
    def test_rejects_nonpositive(self, value):
        with pytest.raises(ValueError, match="x must be > 0"):
            require_positive(value, "x")


class TestRequireInRange:
    def test_accepts_bounds_inclusively(self):
        require_in_range(0, 0, 10, "v")
        require_in_range(10, 0, 10, "v")

    def test_rejects_outside(self):
        with pytest.raises(ValueError, match="v must be in"):
            require_in_range(11, 0, 10, "v")

    def test_works_for_floats(self):
        require_in_range(0.5, 0.0, 1.0, "f")
        with pytest.raises(ValueError):
            require_in_range(-0.01, 0.0, 1.0, "f")
