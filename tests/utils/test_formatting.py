"""Tests for text formatting helpers."""

from __future__ import annotations

from repro.utils.formatting import format_count, format_float, render_table


class TestFormatFloat:
    def test_trims_trailing_zeros(self):
        assert format_float(1.5) == "1.5"
        assert format_float(2.0) == "2"

    def test_small_magnitudes_use_scientific(self):
        assert "e" in format_float(1.2e-7)

    def test_large_magnitudes_use_scientific(self):
        assert "e" in format_float(3.2e9)

    def test_nan(self):
        assert format_float(float("nan")) == "nan"

    def test_zero(self):
        assert format_float(0.0) == "0"

    def test_precision_parameter(self):
        assert format_float(3.14159, precision=2) == "3.14"


class TestFormatCount:
    def test_thousands_separators(self):
        assert format_count(1234567) == "1,234,567"

    def test_small(self):
        assert format_count(7) == "7"


class TestRenderTable:
    def test_contains_headers_and_cells(self):
        out = render_table(["name", "value"], [["alpha", 1], ["beta", 22]])
        assert "name" in out and "alpha" in out and "22" in out

    def test_title_prepended(self):
        out = render_table(["h"], [["x"]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_columns_aligned(self):
        out = render_table(["h1", "h2"], [["a", 1], ["bbbb", 22]])
        lines = out.splitlines()
        # All rows have the same width.
        assert len({len(line) for line in lines[1:]}) <= 2

    def test_floats_formatted(self):
        out = render_table(["v"], [[2.0]])
        assert "2" in out and "2.000" not in out

    def test_empty_rows_ok(self):
        out = render_table(["a"], [])
        assert "a" in out
