"""Tests for deterministic hierarchical seeding."""

from __future__ import annotations

from repro.utils.seeding import SeedFactory


class TestChildSeeds:
    def test_same_label_same_seed(self):
        f = SeedFactory(42)
        assert f.child_seed("a") == f.child_seed("a")

    def test_different_labels_differ(self):
        f = SeedFactory(42)
        assert f.child_seed("a") != f.child_seed("b")

    def test_different_roots_differ(self):
        assert SeedFactory(1).child_seed("a") != SeedFactory(2).child_seed("a")

    def test_reproducible_across_instances(self):
        assert SeedFactory(42).child_seed("x") == SeedFactory(42).child_seed("x")

    def test_seed_is_nonnegative_63bit(self):
        for label in ("a", "workload", "chord", "很长的标签"):
            seed = SeedFactory(123456789).child_seed(label)
            assert 0 <= seed < (1 << 63)

    def test_issued_labels_tracked_in_order(self):
        f = SeedFactory(1)
        f.child_seed("one")
        f.child_seed("two")
        assert f.issued_labels == ("one", "two")


class TestGenerators:
    def test_numpy_streams_reproducible(self):
        g1 = SeedFactory(7).numpy("stream")
        g2 = SeedFactory(7).numpy("stream")
        assert g1.integers(1 << 40) == g2.integers(1 << 40)

    def test_numpy_streams_independent_by_label(self):
        f = SeedFactory(7)
        a = f.numpy("a").integers(1 << 40, size=16)
        b = f.numpy("b").integers(1 << 40, size=16)
        assert list(a) != list(b)

    def test_python_rng_reproducible(self):
        r1 = SeedFactory(9).python("p")
        r2 = SeedFactory(9).python("p")
        assert [r1.random() for _ in range(5)] == [r2.random() for _ in range(5)]

    def test_fork_changes_streams(self):
        f = SeedFactory(11)
        direct = f.numpy("x").integers(1 << 40)
        forked = f.fork("child").numpy("x").integers(1 << 40)
        assert direct != forked

    def test_fork_reproducible(self):
        a = SeedFactory(11).fork("child").child_seed("x")
        b = SeedFactory(11).fork("child").child_seed("x")
        assert a == b
