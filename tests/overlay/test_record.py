"""Unit tests for the ReCord randomized-Chord overlay."""

import pytest

from repro.overlay.chord import ChordRing
from repro.overlay.record import ReCordOverlay


def build_ring(bits=6, fanout=2, seed=0, step=1):
    ring = ReCordOverlay(bits=bits, fanout=fanout, seed=seed)
    ring.build(range(0, 1 << bits, step))
    return ring


def test_fanout_must_be_positive():
    with pytest.raises(ValueError):
        ReCordOverlay(bits=4, fanout=0)


def test_lookups_resolve_to_the_true_owner():
    ring = build_ring(bits=6, fanout=3, step=3)
    for key in range(0, ring.space.size, 5):
        result = ring.lookup(ring.node(0), key)
        assert result.owner is ring.successor_of(key)
        assert result.hops <= ring.bits + 1


def test_fingers_sorted_by_clockwise_distance():
    ring = build_ring(bits=6, fanout=4, step=1)
    size = ring.space.size
    for node in ring.nodes():
        dists = [(f.node_id - node.node_id) % size for f in node.fingers]
        assert dists == sorted(dists)


def test_deterministic_anchor_present_at_every_level():
    ring = build_ring(bits=6, fanout=3, step=3)
    for node in ring.nodes():
        finger_ids = {f.node_id for f in node.fingers}
        for level in range(ring.bits):
            anchor = ring.successor_of(node.node_id + (1 << level))
            assert anchor.node_id in finger_ids


def test_fanout_one_is_byte_identical_to_chord():
    chord = ChordRing(bits=6)
    chord.build(range(0, 64, 3))
    record = build_ring(bits=6, fanout=1, step=3)
    for cn, rn in zip(chord.nodes(), record.nodes()):
        assert [f.node_id for f in cn.fingers] == [f.node_id for f in rn.fingers]
    for key in range(0, 64, 7):
        assert chord.lookup(chord.node(0), key).path == \
            record.lookup(record.node(0), key).path


def test_sampled_offsets_are_stable_and_nested():
    ring = build_ring(bits=6, fanout=4)
    assert ring._sample_offset(5, 4, 1) == ring._sample_offset(5, 4, 1)
    # Nested sampling: the fan-out-h table reuses the first h-1 draws, so
    # a larger fan-out strictly adds fingers.
    small = build_ring(bits=6, fanout=2, step=3)
    large = build_ring(bits=6, fanout=4, step=3)
    for s_node, l_node in zip(small.nodes(), large.nodes()):
        s_ids = {f.node_id for f in s_node.fingers}
        l_ids = {f.node_id for f in l_node.fingers}
        assert s_ids <= l_ids


def test_mean_hops_non_increasing_in_fanout():
    means = []
    for fanout in (1, 2, 8):
        ring = build_ring(bits=7, fanout=fanout, step=1)
        keys = range(0, ring.space.size, 3)
        hops = [ring.lookup(ring.node(0), key).hops for key in keys]
        means.append(sum(hops) / len(hops))
    assert means[0] >= means[1] >= means[2]


def test_different_seeds_sample_different_fingers():
    a = build_ring(bits=6, fanout=4, seed=1, step=1)
    b = build_ring(bits=6, fanout=4, seed=2, step=1)
    tables_differ = any(
        [f.node_id for f in na.fingers] != [f.node_id for f in nb.fingers]
        for na, nb in zip(a.nodes(), b.nodes())
    )
    assert tables_differ


def test_invariants_and_routing_survive_churn():
    ring = build_ring(bits=6, fanout=3, step=3)
    ring.leave(ring.node_ids[4])
    ring.fail(ring.node_ids[-1])
    ring.join(1)
    ring.stabilize_all()
    ring.check_ring_invariants()
    for key in range(0, ring.space.size, 5):
        result = ring.lookup(ring.node(ring.node_ids[0]), key)
        assert result.owner is ring.successor_of(key)
        assert result.hops <= ring.bits + 1
