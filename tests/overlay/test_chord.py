"""Tests for the Chord ring: construction, lookup, walks, storage."""

from __future__ import annotations

import random
import statistics

import pytest

from repro.overlay.chord import ChordRing


class TestConstruction:
    def test_build_full_population(self, full_ring):
        assert full_ring.num_nodes == 64
        assert full_ring.node_ids == list(range(64))

    def test_build_deduplicates_and_wraps(self):
        ring = ChordRing(4)
        ring.build([1, 17, 5])  # 17 wraps to 1
        assert ring.node_ids == [1, 5]

    def test_build_empty_rejected(self):
        with pytest.raises(ValueError):
            ChordRing(4).build([])

    def test_ring_invariants_after_build(self, full_ring, sparse_ring):
        full_ring.check_ring_invariants()
        sparse_ring.check_ring_invariants()

    def test_fingers_point_to_true_successors(self, sparse_ring):
        for node in sparse_ring.nodes():
            for i, finger in enumerate(node.fingers):
                expected = sparse_ring.successor_of(node.node_id + (1 << i))
                assert finger is expected

    def test_successor_list_excludes_self_when_possible(self, sparse_ring):
        for node in sparse_ring.nodes():
            assert all(s.node_id != node.node_id for s in node.successor_list)

    def test_single_node_ring(self):
        ring = ChordRing(4)
        ring.build([9])
        node = ring.node(9)
        assert node.successor is node
        assert node.predecessor is None


class TestOracle:
    def test_successor_of_exact(self, sparse_ring):
        nid = sparse_ring.node_ids[3]
        assert sparse_ring.successor_of(nid).node_id == nid

    def test_successor_of_wraps(self, sparse_ring):
        top = sparse_ring.node_ids[-1]
        assert sparse_ring.successor_of(top + 1).node_id == sparse_ring.node_ids[0]

    def test_predecessor_of(self, sparse_ring):
        ids = sparse_ring.node_ids
        assert sparse_ring.predecessor_of(ids[2]).node_id == ids[1]

    def test_predecessor_wraps(self, sparse_ring):
        ids = sparse_ring.node_ids
        assert sparse_ring.predecessor_of(ids[0]).node_id == ids[-1]


class TestLookup:
    def test_lookup_reaches_owner_everywhere(self, sparse_ring, rng):
        for _ in range(300):
            start = sparse_ring.node(rng.choice(sparse_ring.node_ids))
            key = rng.randrange(sparse_ring.space.size)
            result = sparse_ring.lookup(start, key)
            assert result.owner is sparse_ring.successor_of(key)

    def test_lookup_from_owner_is_zero_hops(self, full_ring):
        result = full_ring.lookup(full_ring.node(5), 5)
        assert result.hops == 0
        assert result.owner.node_id == 5

    def test_path_starts_at_requester(self, full_ring):
        result = full_ring.lookup(full_ring.node(0), 40)
        assert result.path[0] == 0
        assert result.path[-1] == result.owner.node_id

    def test_hops_equals_path_edges(self, sparse_ring, rng):
        for _ in range(50):
            start = sparse_ring.node(rng.choice(sparse_ring.node_ids))
            result = sparse_ring.lookup(start, rng.randrange(128))
            assert result.hops == len(result.path) - 1

    def test_average_hops_near_half_log_n(self, full_ring, rng):
        """Stoica et al.: average lookup path is ~ (1/2) log2 n."""
        samples = []
        for _ in range(800):
            start = full_ring.node(rng.randrange(64))
            samples.append(full_ring.lookup(start, rng.randrange(64)).hops)
        mean = statistics.mean(samples)
        assert 2.0 < mean < 4.6  # log2(64)/2 = 3, plus the final hop

    def test_hops_bounded_by_log_n_plus_slack(self, full_ring, rng):
        for _ in range(300):
            start = full_ring.node(rng.randrange(64))
            assert full_ring.lookup(start, rng.randrange(64)).hops <= 8

    def test_network_counter_accumulates(self):
        ring = ChordRing(5)
        ring.build_full()
        before = ring.network.stats.routing_hops
        ring.lookup(ring.node(0), 17)
        assert ring.network.stats.routing_hops > before


class TestWalkArc:
    def test_walk_stops_at_arc_end_owner(self, sparse_ring):
        ids = sparse_ring.node_ids
        start = sparse_ring.node(ids[0])
        until = ids[4]
        walk = sparse_ring.walk_arc(start, ids[0], until)
        assert [n.node_id for n in walk] == ids[:5]

    def test_walk_single_node_when_start_owns_end(self, sparse_ring):
        ids = sparse_ring.node_ids
        start = sparse_ring.node(ids[2])
        walk = sparse_ring.walk_arc(start, ids[2], ids[2])
        assert walk == [start]

    def test_walk_wraps_around_ring(self, sparse_ring):
        ids = sparse_ring.node_ids
        start = sparse_ring.node(ids[-2])
        walk = sparse_ring.walk_arc(start, ids[-2], ids[1])
        assert [n.node_id for n in walk] == [ids[-2], ids[-1], ids[0], ids[1]]

    def test_walk_covers_every_node_owning_arc_keys(self, full_ring):
        start = full_ring.node(10)
        walk = full_ring.walk_arc(start, 10, 20)
        assert [n.node_id for n in walk] == list(range(10, 21))

    def test_full_space_arc_visits_every_node(self, sparse_ring):
        """Theorem 4.10's worst case: an arc covering the whole ID space
        walks the entire ring even though the arc's end key lands back in
        the first node's (wrapping) sector."""
        start = sparse_ring.successor_of(0)
        walk = sparse_ring.walk_arc(start, 0, sparse_ring.space.size - 1)
        assert len(walk) == sparse_ring.num_nodes

    def test_arc_start_behind_start_node(self, sparse_ring):
        """from_key usually precedes the start node's ID (the start is
        successor(from_key)); the span math must use the key, not the node."""
        ids = sparse_ring.node_ids
        from_key = (ids[3] + 1) % sparse_ring.space.size  # between nodes 3 and 4
        start = sparse_ring.successor_of(from_key)
        walk = sparse_ring.walk_arc(start, from_key, ids[6])
        assert [n.node_id for n in walk] == ids[4:7]


class TestStorage:
    def test_store_places_at_successor(self, sparse_ring):
        key = 77
        owner = sparse_ring.store("ns", key, "item")
        assert owner is sparse_ring.successor_of(key)
        assert owner.items_at("ns", key % sparse_ring.space.size) == ["item"]

    def test_routed_store_same_placement(self, sparse_ring, rng):
        for _ in range(30):
            key = rng.randrange(128)
            start = sparse_ring.node(rng.choice(sparse_ring.node_ids))
            result = sparse_ring.routed_store(start, "ns2", key, key)
            assert result.owner is sparse_ring.successor_of(key)

    def test_directory_sizes_count_pieces(self, full_ring):
        full_ring.store("d", 3, "a")
        full_ring.store("d", 3, "b")
        full_ring.store("other", 3, "c")
        assert full_ring.node(3).directory_size() == 3
        assert full_ring.node(3).directory_size("d") == 2

    def test_namespaces_isolated(self, full_ring):
        full_ring.store("n1", 9, "x")
        assert full_ring.node(9).items_at("n2", 9) == []


class TestOutlinks:
    def test_full_ring_outlinks_about_log_n(self, full_ring):
        counts = full_ring.outlink_counts()
        # 6 distinct fingers + predecessor + successor-list extras.
        assert all(6 <= c <= 10 for c in counts)

    def test_outlinks_exclude_self_and_dead(self):
        ring = ChordRing(4)
        ring.build_full()
        ring.leave(3)
        for node in ring.nodes():
            assert 3 not in node.outlinks()
            assert node.node_id not in node.outlinks()
