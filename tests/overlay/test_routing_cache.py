"""Cached routing must be observably identical to uncached routing.

The overlays memoise *derived* routing state (Chord's ``successor_of``
and per-node live-finger lists, Cycloid's key-owner resolution) per
membership epoch.  These tests drive a cached and an uncached twin
through identical seeded churn storms — joins, graceful leaves, crash
failures, stabilization sweeps — probing owners, hop counts, full routed
paths and range walks after every event, and require byte-identical
transcripts.  A divergence means a cache outlived its epoch.
"""

from __future__ import annotations

import random

from repro.overlay.chord import ChordRing
from repro.overlay.cycloid import CycloidId, CycloidOverlay

_STORM_EVENTS = 40
_PROBES_PER_EVENT = 6


def _chord_probe(ring: ChordRing, rng: random.Random) -> list:
    """Owners, hops, paths and walks — everything a service observes."""
    size = ring.space.size
    transcript = []
    for _ in range(_PROBES_PER_EVENT):
        ids = ring.node_ids
        start = ring.node(ids[rng.randrange(len(ids))])
        key = rng.randrange(size)
        result = ring.lookup(start, key)
        transcript.append(
            (
                "lookup",
                result.owner.node_id,
                result.hops,
                tuple(result.path),
                result.complete,
            )
        )
        from_key = rng.randrange(size)
        until_key = (from_key + rng.randrange(1, max(2, size // 4))) % size
        walk = ring.walk_arc(ring.successor_of(from_key), from_key, until_key)
        transcript.append(
            ("walk", tuple(node.node_id for node in walk), walk.truncated)
        )
    return transcript


def _chord_storm(ring: ChordRing, seed: int) -> list:
    """A deterministic churn storm; returns the full probe transcript."""
    rng = random.Random(seed)
    size = ring.space.size
    departed: list[int] = []
    transcript = _chord_probe(ring, rng)
    for step in range(_STORM_EVENTS):
        roll = rng.random()
        ids = ring.node_ids
        if roll < 0.25 and len(ids) > 8:
            ring.leave(ids[rng.randrange(len(ids))])
        elif roll < 0.5 and len(ids) > 8:
            victim = ids[rng.randrange(len(ids))]
            ring.fail(victim)
            departed.append(victim)
        elif departed:
            ring.join(departed.pop(rng.randrange(len(departed))))
        else:
            newcomer = rng.randrange(size)
            if newcomer in set(ids):
                continue
            ring.join(newcomer)
        if step % 5 == 4:
            ring.stabilize_all()
        transcript.extend(_chord_probe(ring, rng))
    return transcript


def _cycloid_probe(overlay: CycloidOverlay, rng: random.Random) -> list:
    d = overlay.dimension
    num_clusters = overlay.cubical_space.size
    transcript = []
    for _ in range(_PROBES_PER_EVENT):
        ids = overlay.node_ids
        start = overlay.node(ids[rng.randrange(len(ids))])
        target = CycloidId(rng.randrange(d), rng.randrange(num_clusters))
        transcript.append(("owner", overlay.closest_node(target).cid))
        result = overlay.lookup(start, target)
        transcript.append(
            (
                "lookup",
                result.owner.cid,
                result.hops,
                tuple(result.path),
                result.complete,
            )
        )
        k_from, k_to = rng.randrange(d), rng.randrange(d)
        anchor = overlay.closest_node(CycloidId(k_from, target.a))
        walk = overlay.walk_cluster(anchor, k_from, k_to)
        transcript.append(
            ("walk", tuple(node.cid for node in walk), walk.truncated)
        )
    return transcript


def _cycloid_storm(overlay: CycloidOverlay, seed: int) -> list:
    rng = random.Random(seed)
    d = overlay.dimension
    num_clusters = overlay.cubical_space.size
    departed: list[CycloidId] = []
    transcript = _cycloid_probe(overlay, rng)
    for step in range(_STORM_EVENTS):
        roll = rng.random()
        ids = overlay.node_ids
        if roll < 0.25 and len(ids) > 8:
            victim = ids[rng.randrange(len(ids))]
            overlay.leave(victim)
            departed.append(victim)
        elif roll < 0.5 and len(ids) > 8:
            victim = ids[rng.randrange(len(ids))]
            overlay.fail(victim)
            departed.append(victim)
        elif departed:
            overlay.join(departed.pop(rng.randrange(len(departed))))
        else:
            cid = CycloidId(rng.randrange(d), rng.randrange(num_clusters))
            if cid in set(overlay.node_ids):
                continue
            overlay.join(cid)
        if step % 5 == 4:
            overlay.stabilize_all()
        transcript.extend(_cycloid_probe(overlay, rng))
    return transcript


class TestChordCacheEquivalence:
    def _rings(self) -> tuple[ChordRing, ChordRing]:
        node_ids = random.Random(11).sample(range(128), 48)
        cached = ChordRing(7, routing_cache=True)
        cached.build(node_ids)
        plain = ChordRing(7, routing_cache=False)
        plain.build(node_ids)
        return cached, plain

    def test_storm_transcripts_identical(self):
        cached, plain = self._rings()
        assert _chord_storm(cached, seed=23) == _chord_storm(plain, seed=23)

    def test_caches_actually_engage(self):
        cached, plain = self._rings()
        _chord_storm(cached, seed=23)
        _chord_storm(plain, seed=23)
        assert cached._succ_cache and cached._cpf_cache
        assert not plain._succ_cache and not plain._cpf_cache

    def test_invalidation_on_membership_change(self):
        cached, _ = self._rings()
        size = cached.space.size
        for key in range(size):
            cached.successor_of(key)
        joiner = next(i for i in range(size) if i not in cached._nodes)
        # The memo currently answers ``joiner``'s key with its old owner;
        # after the join it must answer with the joiner itself (the join
        # flushes the epoch, then repopulates while refreshing routing).
        assert cached.successor_of(joiner).node_id != joiner
        cached.join(joiner)
        assert cached.successor_of(joiner).node_id == joiner


class TestCycloidCacheEquivalence:
    def _overlays(self) -> tuple[CycloidOverlay, CycloidOverlay]:
        all_ids = [CycloidId(k, a) for a in range(16) for k in range(4)]
        node_ids = random.Random(5).sample(all_ids, 48)
        cached = CycloidOverlay(4, routing_cache=True)
        cached.build(node_ids)
        plain = CycloidOverlay(4, routing_cache=False)
        plain.build(node_ids)
        return cached, plain

    def test_storm_transcripts_identical(self):
        cached, plain = self._overlays()
        assert _cycloid_storm(cached, seed=31) == _cycloid_storm(plain, seed=31)

    def test_caches_actually_engage(self):
        cached, plain = self._overlays()
        _cycloid_storm(cached, seed=31)
        _cycloid_storm(plain, seed=31)
        assert cached._owner_cache
        assert not plain._owner_cache

    def test_invalidation_on_membership_change(self):
        cached, _ = self._overlays()
        for a in range(16):
            for k in range(4):
                cached.closest_node(CycloidId(k, a))
        live = set(cached.node_ids)
        joiner = next(
            CycloidId(k, a)
            for a in range(16)
            for k in range(4)
            if CycloidId(k, a) not in live
        )
        # The memo holds the joiner's key under its old owner; the join
        # must flush it so the key re-resolves to the joiner itself.
        assert cached.closest_node(joiner).cid != joiner
        cached.join(joiner)
        assert cached.closest_node(joiner).cid == joiner
