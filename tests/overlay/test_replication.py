"""Tests for crash failures and successor-list / intra-cluster replication.

The paper's churn model is graceful (Section V-C reports zero failures
because departures hand their state off).  The library additionally
supports crash failures; these tests pin down the semantics:

* ``replication = 1``: a crash loses exactly the keys solely held there;
* ``replication >= 2``: every key survives any single crash, reads stay
  correct immediately, and ``repair_replication`` restores the replica
  count so the system tolerates the *next* crash too.
"""

from __future__ import annotations

import random

import pytest

from repro.overlay.chord import ChordRing
from repro.overlay.cycloid import CycloidId, CycloidOverlay


class TestChordReplication:
    def make_ring(self, replication: int) -> ChordRing:
        ring = ChordRing(6, replication=replication)
        ring.build_full()
        return ring

    def test_replica_set_size(self):
        ring = self.make_ring(3)
        assert len(ring.replica_set(10)) == 3
        assert ring.replica_set(10)[0] is ring.successor_of(10)

    def test_store_places_on_all_replicas(self):
        ring = self.make_ring(3)
        ring.store("ns", 10, "item")
        for holder in ring.replica_set(10):
            assert holder.items_at("ns", 10) == ["item"]

    def test_invalid_replication_rejected(self):
        with pytest.raises(ValueError):
            ChordRing(6, replication=0)
        with pytest.raises(ValueError):
            ChordRing(6, successor_list_len=2, replication=4)

    def test_crash_without_replication_loses_keys(self):
        ring = self.make_ring(1)
        ring.store("ns", 20, "doomed")
        ring.fail(20)
        assert sum(ring.directory_sizes("ns")) == 0

    def test_crash_with_replication_preserves_reads(self):
        ring = self.make_ring(2)
        ring.store("ns", 20, "survivor")
        ring.fail(20)
        # The new owner (old replica #2) already has the copy.
        assert "survivor" in ring.successor_of(20).items_at("ns", 20)

    def test_repair_restores_replica_count(self):
        ring = self.make_ring(3)
        ring.store("ns", 20, "x")
        ring.fail(20)
        ring.repair_replication()
        holders = [
            node for node in ring.nodes() if node.has_item("ns", 20, "x")
        ]
        assert len(holders) == 3
        assert set(h.node_id for h in holders) == {
            n.node_id for n in ring.replica_set(20)
        }

    def test_survives_sequential_crashes_with_repair(self):
        ring = self.make_ring(2)
        for key in range(0, 64, 4):
            ring.store("ns", key, f"v{key}")
        r = random.Random(5)
        for _ in range(20):
            ring.fail(r.choice(ring.node_ids))
            ring.repair_replication()
            for key in range(0, 64, 4):
                owner = ring.successor_of(key)
                assert f"v{key}" in owner.items_at("ns", key), key

    def test_graceful_leave_does_not_duplicate_replicas(self):
        ring = self.make_ring(2)
        ring.store("ns", 30, "once")
        ring.leave(30)  # successor already held the replica
        ring.repair_replication()
        total = sum(ring.directory_sizes("ns"))
        assert total == 2  # exactly the replica count

    def test_lookup_correct_after_crashes_before_stabilize(self):
        ring = self.make_ring(2)
        r = random.Random(9)
        for _ in range(8):
            ring.fail(r.choice(ring.node_ids))
        for _ in range(100):
            key = r.randrange(64)
            start = ring.node(r.choice(ring.node_ids))
            assert ring.lookup(start, key).owner is ring.successor_of(key)


class TestCycloidReplication:
    def make_overlay(self, replication: int) -> CycloidOverlay:
        overlay = CycloidOverlay(4, replication=replication)
        overlay.build_full()
        return overlay

    def test_replica_set_within_cluster(self):
        overlay = self.make_overlay(3)
        key = CycloidId(1, 5)
        replicas = overlay.replica_set(key)
        assert len(replicas) == 3
        assert all(r.a == 5 for r in replicas)
        assert replicas[0] is overlay.closest_node(key)

    def test_replica_set_capped_by_cluster_size(self):
        overlay = CycloidOverlay(4, replication=3)
        overlay.build([CycloidId(0, 1), CycloidId(2, 1), CycloidId(0, 9)])
        replicas = overlay.replica_set(CycloidId(0, 1))
        assert len(replicas) == 2  # cluster 1 only has two members

    def test_invalid_replication_rejected(self):
        with pytest.raises(ValueError):
            CycloidOverlay(4, replication=0)
        with pytest.raises(ValueError):
            CycloidOverlay(4, replication=5)

    def test_crash_without_replication_loses_keys(self):
        overlay = self.make_overlay(1)
        key = CycloidId(2, 7)
        overlay.store("ns", key, "doomed")
        overlay.fail(key)
        assert sum(overlay.directory_sizes("ns")) == 0

    def test_crash_with_replication_preserves_reads(self):
        overlay = self.make_overlay(2)
        key = CycloidId(2, 7)
        overlay.store("ns", key, "kept")
        overlay.fail(key)
        new_owner = overlay.closest_node(key)
        assert new_owner.has_item("ns", overlay.linearize(key), "kept")

    def test_repair_restores_replica_count(self):
        overlay = self.make_overlay(2)
        key = CycloidId(2, 7)
        overlay.store("ns", key, "x")
        overlay.fail(key)
        overlay.repair_replication()
        holders = [
            node for node in overlay.nodes()
            if node.has_item("ns", overlay.linearize(key), "x")
        ]
        assert len(holders) == 2

    def test_survives_crash_storm_with_repair(self):
        overlay = self.make_overlay(2)
        keys = [CycloidId(k, a) for a in range(0, 16, 2) for k in range(4)]
        for key in keys:
            overlay.store("ns", key, str(key))
        r = random.Random(3)
        for _ in range(15):
            overlay.fail(overlay.node_ids[r.randrange(overlay.num_nodes)])
            overlay.repair_replication()
            for key in keys:
                owner = overlay.closest_node(key)
                assert owner.has_item("ns", overlay.linearize(key), str(key)), key

    def test_routing_correct_after_crashes(self):
        overlay = self.make_overlay(2)
        r = random.Random(4)
        for _ in range(10):
            overlay.fail(overlay.node_ids[r.randrange(overlay.num_nodes)])
        live = overlay.node_ids
        for _ in range(150):
            start = overlay.node(live[r.randrange(len(live))])
            target = CycloidId(r.randrange(4), r.randrange(16))
            assert overlay.lookup(start, target).owner is overlay.closest_node(target)
