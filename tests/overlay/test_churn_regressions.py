"""Regression tests for churn-path state corruption and replica drift.

Covers three fixed bugs:

* ``ChordRing.leave`` / ``fail`` popped the node from the membership
  indexes *before* the last-node guard, so a refused removal left the
  ring corrupted;
* ``repair_replication`` (both overlays) collapsed duplicate identical
  pieces to one copy while re-placing replicas;
* ``CycloidOverlay.join`` summed the replica copies held by several
  donors onto the newcomer, duplicating data under ``replication >= 2``.
"""

from __future__ import annotations

import pytest

from repro.overlay.chord import ChordRing
from repro.overlay.cycloid import CycloidId, CycloidOverlay
from repro.sim.invariants import check_overlay, directory_census


def _small_ring(replication: int = 1) -> ChordRing:
    ring = ChordRing(5, replication=replication)
    ring.build([1, 9, 17, 25])
    return ring


class TestLastNodeGuard:
    @pytest.mark.parametrize("removal", ["leave", "fail"])
    def test_refused_removal_leaves_ring_intact(self, removal):
        ring = ChordRing(4)
        ring.build([5])
        ring.store("ns", 3, "x")
        with pytest.raises(ValueError, match="last ring node"):
            getattr(ring, removal)(5)
        # The refused call must not have mutated anything: the node is
        # still indexed, alive, routable and holding its data.
        assert ring.num_nodes == 1
        node = ring.node(5)
        assert node.alive
        assert ring.successor_of(3) is node
        assert node.items_at("ns", 3) == ["x"]
        check_overlay(ring)

    @pytest.mark.parametrize("removal", ["leave", "fail"])
    def test_second_to_last_removal_still_works(self, removal):
        ring = ChordRing(4)
        ring.build([5, 12])
        getattr(ring, removal)(12)
        assert ring.num_nodes == 1
        check_overlay(ring)


class TestLeaveMultiplicity:
    def test_duplicate_pieces_survive_leave(self):
        ring = _small_ring()
        owner = ring.successor_of(5)
        ring.store("ns", 5, "x")
        ring.store("ns", 5, "x")
        ring.leave(owner.node_id)
        assert ring.successor_of(5).items_at("ns", 5) == ["x", "x"]

    def test_leave_with_replication_does_not_double_copies(self):
        # The successor already holds replica copies; the departing
        # owner's transfer must top the bucket up, not append to it.
        ring = _small_ring(replication=2)
        ring.store("ns", 5, "x")
        ring.store("ns", 5, "x")
        before = directory_census(ring)
        ring.leave(ring.successor_of(5).node_id)
        assert directory_census(ring) == before
        assert ring.successor_of(5).items_at("ns", 5) == ["x", "x"]


class TestRepairMultiplicity:
    def test_chord_repair_preserves_duplicates(self):
        ring = _small_ring(replication=2)
        ring.store("ns", 5, "x")
        ring.store("ns", 5, "x")
        before = directory_census(ring)
        ring.repair_replication()
        assert directory_census(ring) == before
        for holder in ring.replica_set(5):
            assert holder.items_at("ns", 5) == ["x", "x"]

    def test_cycloid_repair_preserves_duplicates(self):
        overlay = CycloidOverlay(3, replication=2)
        overlay.build_full()
        key = CycloidId(1, 2)
        overlay.store("ns", key, "x")
        overlay.store("ns", key, "x")
        before = directory_census(overlay)
        overlay.repair_replication()
        assert directory_census(overlay) == before
        key_id = overlay.linearize(key)
        for holder in overlay.replica_set(key):
            assert holder.items_at("ns", key_id) == ["x", "x"]


class TestCycloidJoinTransfer:
    def test_join_does_not_duplicate_replicated_pieces(self):
        overlay = CycloidOverlay(3, replication=2)
        overlay.build_full()
        key = CycloidId(0, 4)
        owner_cid = overlay.closest_node(key).cid
        overlay.store("ns", key, "x")
        before = directory_census(overlay)

        overlay.leave(owner_cid)
        overlay.repair_replication()
        # Two surviving replicas now hold the piece; when the old owner
        # re-joins, both are donors for the key it reclaims.
        newcomer = overlay.join(owner_cid)
        assert directory_census(overlay) == before
        assert newcomer.items_at("ns", overlay.linearize(key)) == ["x"]
