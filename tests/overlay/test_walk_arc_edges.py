"""Edge cases of ``ChordRing.walk_arc``: wrap-around arcs, degenerate
rings, and truncation accounting under an active fault injector."""

from __future__ import annotations

from repro.overlay.chord import ChordRing
from repro.sim.faults import ArcPartition, FaultInjector, FaultPlan


def _ring() -> ChordRing:
    ring = ChordRing(6)
    ring.build(range(0, 64, 8))
    return ring


class TestWrapAround:
    def test_arc_spanning_id_zero(self):
        ring = _ring()
        start = ring.successor_of(60)
        walk = ring.walk_arc(start, 60, 12)
        assert [n.node_id for n in walk] == [0, 8, 16]
        assert walk.complete and not walk.timed_out

    def test_wrapping_arc_covers_every_owner(self):
        ring = _ring()
        from_key, until_key = 60, 12
        walk = ring.walk_arc(ring.successor_of(from_key), from_key, until_key)
        owners = {n.node_id for n in walk}
        for key in [*range(60, 64), *range(0, 13)]:
            assert ring.successor_of(key).node_id in owners, key

    def test_arc_ending_just_behind_start_walks_full_ring(self):
        # Theorem 4.10's worst case: the arc spans (almost) the whole ring.
        ring = _ring()
        walk = ring.walk_arc(ring.successor_of(8), 8, 7)
        assert len(walk) == ring.num_nodes
        assert walk.complete


class TestDegenerateArcs:
    def test_from_key_equals_until_key(self):
        ring = _ring()
        start = ring.successor_of(20)
        walk = ring.walk_arc(start, 20, 20)
        assert list(walk) == [start]
        assert walk.complete

    def test_single_node_ring_short_arc(self):
        ring = ChordRing(4)
        ring.build([5])
        node = ring.node(5)
        # dist(9, 5) >= span: the loop never starts.
        walk = ring.walk_arc(node, 9, 3)
        assert list(walk) == [node]
        assert walk.complete

    def test_single_node_ring_self_successor_terminates(self):
        ring = ChordRing(4)
        ring.build([5])
        node = ring.node(5)
        # dist(4, 5) < span, but the node's successor is itself: the walk
        # must stop at the wrap instead of spinning.
        walk = ring.walk_arc(node, 4, 14)
        assert list(walk) == [node]
        assert walk.complete


class TestTruncationAccounting:
    def test_partition_truncates_and_counts(self):
        ring = _ring()
        # Cut the [32, 63] arc off: the walk cannot cross 24 -> 32, and
        # every failover candidate lies inside the partition too.
        injector = FaultInjector(
            FaultPlan(partitions=(ArcPartition(32, 63, space=64),), seed=1)
        )
        ring.network.faults = injector
        try:
            assert ring.faults_active
            before = ring.network.stats.walk_truncations
            walk = ring.walk_arc(ring.successor_of(0), 0, 40)
            assert walk.truncated and not walk.complete
            assert walk.timed_out
            assert walk.reason == "unreachable successor chain"
            assert ring.network.stats.walk_truncations == before + 1
            # The visited prefix is still the correct arc prefix.
            assert [n.node_id for n in walk] == [0, 8, 16, 24]
        finally:
            ring.network.faults = None

    def test_no_truncations_counted_on_clean_walks(self):
        ring = _ring()
        ring.walk_arc(ring.successor_of(0), 0, 40)
        assert ring.network.stats.walk_truncations == 0
