"""Focused tests of Chord routing internals."""

from __future__ import annotations

import random

import pytest

from repro.overlay.chord import ChordRing


class TestClosestPrecedingFinger:
    def test_greedy_never_overshoots(self, full_ring):
        """Every hop of a lookup path must stay within (previous, key]."""
        r = random.Random(4)
        for _ in range(100):
            start = full_ring.node(r.randrange(64))
            key = r.randrange(64)
            result = full_ring.lookup(start, key)
            for frm, to in zip(result.path, result.path[1:]):
                # Each hop lands strictly closer to the key (clockwise).
                d_before = full_ring.space.clockwise_distance(frm, key)
                d_after = full_ring.space.clockwise_distance(to, key)
                assert d_after < d_before

    def test_path_halves_distance_typically(self, full_ring):
        """Finger routing roughly halves the clockwise distance per hop."""
        result = full_ring.lookup(full_ring.node(0), 63)
        assert result.hops <= 7  # popcount(63) + final = 6..7

    def test_first_hop_is_largest_applicable_finger(self, full_ring):
        start = full_ring.node(0)
        result = full_ring.lookup(start, 40)
        assert result.path[1] == 32  # finger[5] = successor(0 + 32)


class TestDegenerateRings:
    def test_two_node_ring_lookups(self):
        ring = ChordRing(5)
        ring.build([3, 19])
        for key in range(32):
            for start_id in (3, 19):
                owner = ring.lookup(ring.node(start_id), key).owner
                assert owner is ring.successor_of(key)

    def test_lookup_key_equal_to_node_id(self, sparse_ring):
        nid = sparse_ring.node_ids[5]
        result = sparse_ring.lookup(sparse_ring.node(nid), nid)
        assert result.owner.node_id == nid
        assert result.hops == 0

    def test_single_node_owns_everything(self):
        ring = ChordRing(4)
        ring.build([9])
        result = ring.lookup(ring.node(9), 2)
        assert result.owner.node_id == 9


class TestStaleFingerTolerance:
    def test_lookup_skips_dead_fingers(self):
        ring = ChordRing(7)
        ring.build(random.Random(2).sample(range(128), 50))
        r = random.Random(3)
        # Kill a third of the ring without any stabilization round.
        for _ in range(16):
            ring.leave(r.choice(ring.node_ids))
        for _ in range(200):
            start = ring.node(r.choice(ring.node_ids))
            key = r.randrange(128)
            assert ring.lookup(start, key).owner is ring.successor_of(key)

    def test_crashes_without_stabilize_still_resolve(self):
        ring = ChordRing(7, replication=2)
        ring.build(random.Random(8).sample(range(128), 60))
        r = random.Random(9)
        for _ in range(15):
            ring.fail(r.choice(ring.node_ids))
        for _ in range(150):
            start = ring.node(r.choice(ring.node_ids))
            key = r.randrange(128)
            assert ring.lookup(start, key).owner is ring.successor_of(key)


class TestReplicaSets:
    def test_replica_set_distinct_nodes(self):
        ring = ChordRing(6, replication=3)
        ring.build([1, 20, 40])
        replicas = ring.replica_set(5)
        assert len({n.node_id for n in replicas}) == 3

    def test_replica_set_capped_by_population(self):
        ring = ChordRing(6, replication=3)
        ring.build([1, 20])
        assert len(ring.replica_set(5)) == 2
