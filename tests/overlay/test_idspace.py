"""Tests for circular ID-space arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.overlay.idspace import IdSpace, closest_on_ring

SPACE = IdSpace(6)  # 64 identifiers
ids = st.integers(min_value=0, max_value=SPACE.size - 1)


class TestBasics:
    def test_size(self):
        assert IdSpace(4).size == 16

    def test_wrap(self):
        assert SPACE.wrap(65) == 1
        assert SPACE.wrap(-1) == 63

    @pytest.mark.parametrize("bits", [0, -1, 161])
    def test_invalid_bits_rejected(self, bits):
        with pytest.raises(ValueError):
            IdSpace(bits)


class TestDistances:
    def test_clockwise_wraps(self):
        assert SPACE.clockwise_distance(60, 4) == 8

    def test_clockwise_zero(self):
        assert SPACE.clockwise_distance(5, 5) == 0

    def test_ring_distance_symmetric(self):
        assert SPACE.ring_distance(3, 60) == SPACE.ring_distance(60, 3) == 7

    @given(a=ids, b=ids)
    def test_ring_distance_at_most_half(self, a, b):
        assert SPACE.ring_distance(a, b) <= SPACE.size // 2

    @given(a=ids, b=ids)
    def test_clockwise_distances_complementary(self, a, b):
        if a != b:
            assert (
                SPACE.clockwise_distance(a, b) + SPACE.clockwise_distance(b, a)
                == SPACE.size
            )


class TestIntervals:
    def test_half_open_default(self):
        assert SPACE.in_interval(5, 3, 5)  # right-closed
        assert not SPACE.in_interval(3, 3, 5)  # left-open

    def test_wrapping_interval(self):
        assert SPACE.in_interval(1, 60, 5)
        assert not SPACE.in_interval(30, 60, 5)

    def test_degenerate_open_interval_is_everything_but_point(self):
        assert SPACE.in_interval(9, 7, 7, closed_left=False, closed_right=False)
        assert not SPACE.in_interval(7, 7, 7, closed_left=False, closed_right=False)

    def test_degenerate_closed_interval_full_ring(self):
        assert SPACE.in_interval(7, 7, 7)  # closed_right default

    @given(x=ids, a=ids, b=ids)
    def test_open_interval_excludes_endpoints(self, x, a, b):
        inside = SPACE.in_interval(x, a, b, closed_left=False, closed_right=False)
        if x == a or (x == b and a != b):
            assert not inside

    @given(x=ids, a=ids, b=ids)
    def test_interval_membership_matches_walk(self, x, a, b):
        """(a, b] must equal the set of points reached walking clockwise
        from a+1 through b."""
        if a == b:
            return
        walk = set()
        cur = (a + 1) % SPACE.size
        while True:
            walk.add(cur)
            if cur == b:
                break
            cur = (cur + 1) % SPACE.size
        assert SPACE.in_interval(x, a, b) == (x in walk)


class TestClosest:
    def test_exact_match_wins(self):
        assert SPACE.closest(10, [3, 10, 20]) == 10

    def test_tie_broken_clockwise(self):
        # 8 and 12 are both distance 2 from 10; clockwise from 10 reaches 12 first.
        assert SPACE.closest(10, [8, 12]) == 12

    def test_wrapping_closest(self):
        assert SPACE.closest(63, [0, 55]) == 0

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            SPACE.closest(1, [])

    @given(target=ids, cands=st.lists(ids, min_size=1, max_size=12))
    def test_closest_minimises_ring_distance(self, target, cands):
        best = SPACE.closest(target, cands)
        assert SPACE.ring_distance(target, best) == min(
            SPACE.ring_distance(target, c) for c in cands
        )


class TestClosestOnRingEdges:
    """Bisect-based closest_on_ring edge cases (mirrors IdSpace.closest)."""

    def test_target_equals_a_candidate(self):
        assert closest_on_ring(10, [3, 10, 20], 64) == 10
        assert closest_on_ring(3, [3], 64) == 3

    def test_insertion_point_past_last_candidate_wraps(self):
        # target sorts after every candidate: successor must wrap to index 0.
        assert closest_on_ring(63, [0, 55], 64) == 0
        assert closest_on_ring(60, [1, 2], 64) == 1

    def test_insertion_point_before_first_candidate_wraps(self):
        # predecessor of index 0 is the last candidate, across the origin.
        assert closest_on_ring(0, [10, 11], 16) == 11

    def test_duplicate_candidate_ids(self):
        assert closest_on_ring(5, [4, 4, 12], 16) == 4
        assert closest_on_ring(4, [4, 4, 12], 16) == 4

    def test_single_candidate(self):
        assert closest_on_ring(9, [2], 16) == 2

    def test_non_power_of_two_cycle(self):
        # Cycloid's intra-cluster cycle length d is not a power of two.
        assert closest_on_ring(0, [1, 5], 6) == 1
        assert closest_on_ring(0, [2, 4], 6) == 2  # tie broken clockwise

    @given(target=ids, cands=st.lists(ids, min_size=1, max_size=12))
    def test_matches_linear_scan(self, target, cands):
        cands = sorted(cands)
        assert closest_on_ring(target, cands, SPACE.size) == SPACE.closest(
            target, cands
        )


class TestIntervalEdges:
    """in_interval degenerate bounds (a == b) and exact-endpoint hits."""

    @pytest.mark.parametrize(
        "closed_left,closed_right",
        [(False, False), (False, True), (True, False), (True, True)],
    )
    def test_degenerate_interval_each_bound_combination(
        self, closed_left, closed_right
    ):
        a = 7
        # Any closed bound makes the degenerate interval the full ring.
        expect_full = closed_left or closed_right
        assert (
            SPACE.in_interval(
                a, a, a, closed_left=closed_left, closed_right=closed_right
            )
            is expect_full
        )
        # A point distinct from a is inside unless the interval is fully open
        # at a single-node ring's own id -- i.e. always inside: the open
        # degenerate interval covers the whole ring except ``a`` itself.
        assert SPACE.in_interval(
            a + 1, a, a, closed_left=closed_left, closed_right=closed_right
        )

    def test_x_equals_left_endpoint(self):
        assert not SPACE.in_interval(3, 3, 9)  # default (a, b]
        assert SPACE.in_interval(3, 3, 9, closed_left=True)

    def test_x_equals_right_endpoint(self):
        assert SPACE.in_interval(9, 3, 9)  # default (a, b]
        assert not SPACE.in_interval(9, 3, 9, closed_right=False)

    def test_wrapped_interval_endpoints(self):
        assert SPACE.in_interval(5, 60, 5)
        assert not SPACE.in_interval(5, 60, 5, closed_right=False)
        assert not SPACE.in_interval(60, 60, 5)
        assert SPACE.in_interval(60, 60, 5, closed_left=True)
