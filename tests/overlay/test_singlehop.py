"""Unit tests for the D1HT-style single-hop ring."""

import pytest

from repro.overlay.singlehop import SingleHopRing
from repro.sim.maintenance import UNLIMITED_BUDGET, MaintenanceRound


def build_ring(bits=6, step=3):
    ring = SingleHopRing(bits=bits)
    ring.build(range(0, 1 << bits, step))
    return ring


def test_fresh_ring_is_fully_disseminated():
    ring = build_ring()
    assert ring.pending_events() == 0


def test_every_fault_free_lookup_is_at_most_one_hop():
    ring = build_ring()
    for start in ring.node_ids:
        for key in range(0, ring.space.size, 5):
            result = ring.lookup(ring.node(start), key)
            assert result.hops <= 1
            assert result.owner is ring.successor_of(key)
            # Zero hops only when the requester already owns the key.
            if result.hops == 0:
                assert result.owner.node_id == start


def test_lookup_result_path_accounting():
    ring = build_ring()
    result = ring.lookup(ring.node(0), 17)
    assert result.hops == len(result.path) - 1
    assert all(nid in ring._nodes for nid in result.path)


def test_join_queues_events_for_distant_nodes_only():
    ring = build_ring(bits=5, step=4)
    n = ring.num_nodes
    ring.join(1)
    # Nodes outside the repaired neighbourhood owe a notification; the
    # joiner and its immediate neighbours owe none.
    assert 0 < ring.pending_events() < n
    assert ring._pending[1] == {}


def test_join_counts_full_table_download():
    ring = build_ring(bits=5, step=4)
    before = ring.network.stats.snapshot()
    ring.join(1)
    delta = ring.network.stats.delta_since(before)
    # At least n-1 membership entries plus the inherited join traffic.
    assert delta.maintenance_messages >= ring.num_nodes - 1


def test_join_then_leave_cancels_pending_events():
    ring = build_ring(bits=5, step=4)
    ring.join(1)
    ring.leave(1)
    assert ring.pending_events() == 0


def test_stale_lookup_misroutes_then_corrects():
    ring = build_ring(bits=6, step=3)
    # A node joins between 0 and its old successor; 0's neighbourhood is
    # repaired immediately but a *far* node still holds the stale view.
    far = ring.node_ids[len(ring.node_ids) // 2]
    ring.join(1)
    assert ring._pending[far].get(1) is True
    result = ring.lookup(ring.node(far), 1)
    assert result.owner.node_id == 1
    # The stale view cost at most a correction hop, never a failure.
    assert 1 <= result.hops <= 2
    assert result.path[-1] == 1


def test_departed_believed_owner_costs_a_retry_not_a_dead_hop():
    ring = build_ring(bits=6, step=3)
    ids = ring.node_ids
    victim = ids[len(ids) // 2]
    observer = ids[0]
    ring.fail(victim)
    assert ring._pending[observer].get(victim) is False
    result = ring.lookup(ring.node(observer), victim)
    assert result.retries >= 1
    assert victim not in result.path
    assert result.owner is ring.successor_of(victim)
    # The timeout taught the observer the departure.
    assert victim not in ring._pending[observer]


def test_stabilize_all_flushes_staleness_and_counts_messages():
    ring = build_ring(bits=6, step=3)
    ring.leave(ring.node_ids[-1])
    ring.join(1)
    outstanding = ring.pending_events()
    assert outstanding > 0
    before = ring.network.stats.snapshot()
    ring.stabilize_all()
    assert ring.pending_events() == 0
    delta = ring.network.stats.delta_since(before)
    assert delta.maintenance_messages >= outstanding


def test_stabilize_step_delivers_one_nodes_backlog():
    ring = build_ring(bits=6, step=3)
    ring.join(1)
    stale = next(
        nid for nid in ring.node_ids if ring._pending.get(nid)
    )
    ring.stabilize_step(ring.node(stale))
    assert ring._pending[stale] == {}


def test_maintenance_round_with_unlimited_budget_restores_one_hop():
    ring = build_ring(bits=6, step=3)
    for victim in list(ring.node_ids[5:9]):
        ring.leave(victim)
    ring.join(1)
    ring.join(2)
    MaintenanceRound(ring).run(UNLIMITED_BUDGET)
    assert ring.pending_events() == 0
    for start in ring.node_ids[:8]:
        for key in range(0, ring.space.size, 7):
            assert ring.lookup(ring.node(start), key).hops <= 1


def test_edge_kind_attributes_long_jumps_to_the_membership_table():
    ring = build_ring(bits=6, step=3)
    src = ring.node(0)
    far = ring.successor_of(ring.space.size // 2)
    assert ring.edge_kind(src, far) == "membership"
    assert ring.edge_kind(src, src.successor) == "successor"


def test_outlink_counts_reflect_full_membership():
    ring = build_ring(bits=6, step=3)
    n = ring.num_nodes
    assert ring.outlink_counts() == [n - 1] * n


def test_ring_invariants_hold_through_churn():
    ring = build_ring(bits=6, step=3)
    ring.leave(ring.node_ids[2])
    ring.fail(ring.node_ids[-1])
    ring.join(1)
    ring.check_ring_invariants()


def test_duplicate_join_raises_like_chord():
    ring = build_ring(bits=5, step=4)
    with pytest.raises(ValueError):
        ring.join(ring.node_ids[0])
    # The failed join must not leave phantom pending events behind.
    assert ring.pending_events() == 0
