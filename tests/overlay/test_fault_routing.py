"""Fault-path routing: zero-loss parity, honest failure, walk truncation.

The contract under test: with an *active but lossless* injector the fault
path routes exactly like the legacy path (Chord) or lands on the true owner
(Cycloid); with real loss the membership oracle is never consulted, every
unfinishable route surfaces as a ``complete=False`` result instead of an
exception, and cut-short range walks come back flagged ``truncated``.
"""

from __future__ import annotations

import random

import pytest

from repro.overlay.chord import ChordRing
from repro.overlay.cycloid import CycloidId, CycloidOverlay
from repro.overlay.node import WalkResult
from repro.sim.faults import (
    DEFAULT_POLICY,
    NO_RETRY_POLICY,
    ArcPartition,
    CrashStorm,
    FaultInjector,
    FaultPlan,
)


def storm_only_injector() -> FaultInjector:
    """Active (a storm is planned) but lossless: every message delivers,
    yet ``faults_active`` is True so the fault code path runs."""
    return FaultInjector(FaultPlan(crash_storms=(CrashStorm(1e9, 1),)))


def lossy_injector(rate: float, seed: int = 0) -> FaultInjector:
    return FaultInjector(FaultPlan(loss_rate=rate, seed=seed))


class TestChordParity:
    """The fault path at zero loss reproduces the legacy route exactly."""

    def test_lookup_identical_to_legacy(self, full_ring):
        r = random.Random(1)
        cases = [
            (full_ring.node(r.randrange(64)), r.randrange(64))
            for _ in range(80)
        ]
        full_ring.network.faults = storm_only_injector()
        faulty = [full_ring.lookup(s, k) for s, k in cases]
        full_ring.network.faults = None
        legacy = [full_ring.lookup(s, k) for s, k in cases]
        for f, l in zip(faulty, legacy):
            assert f.owner is l.owner
            assert f.hops == l.hops
            assert f.path == l.path
            assert f.complete and f.retries == 0 and not f.timed_out

    def test_lookup_identical_on_sparse_ring(self, sparse_ring):
        r = random.Random(2)
        cases = [
            (sparse_ring.node(r.choice(sparse_ring.node_ids)), r.randrange(128))
            for _ in range(80)
        ]
        sparse_ring.network.faults = storm_only_injector()
        faulty = [sparse_ring.lookup(s, k) for s, k in cases]
        sparse_ring.network.faults = None
        legacy = [sparse_ring.lookup(s, k) for s, k in cases]
        for f, l in zip(faulty, legacy):
            assert (f.owner, f.hops, f.path) == (l.owner, l.hops, l.path)

    def test_walk_identical_to_legacy(self, full_ring):
        full_ring.network.faults = storm_only_injector()
        faulty = full_ring.walk_arc(full_ring.node(10), 10, 30)
        full_ring.network.faults = None
        legacy = full_ring.walk_arc(full_ring.node(10), 10, 30)
        assert list(faulty) == list(legacy)
        assert isinstance(faulty, WalkResult)
        assert not faulty.truncated and faulty.complete

    def test_null_plan_keeps_legacy_path_and_counters(self, full_ring):
        """A null-plan injector is a strict identity: same results, and the
        fault counters never move."""
        full_ring.network.faults = FaultInjector(FaultPlan())
        assert not full_ring.faults_active
        result = full_ring.lookup(full_ring.node(0), 40)
        assert result.complete
        stats = full_ring.network.stats
        assert stats.dropped == 0 and stats.retries == 0
        assert stats.timeouts == 0 and stats.walk_truncations == 0
        full_ring.network.faults = None


class TestCycloidParity:
    def test_greedy_fault_route_finds_true_owner(self, full_overlay):
        r = random.Random(3)
        full_overlay.network.faults = storm_only_injector()
        try:
            for _ in range(80):
                start = full_overlay.node(
                    CycloidId(r.randrange(4), r.randrange(16))
                )
                target = CycloidId(r.randrange(4), r.randrange(16))
                result = full_overlay.lookup(start, target)
                assert result.complete and not result.timed_out
                assert result.owner is full_overlay.closest_node(target)
        finally:
            full_overlay.network.faults = None

    def test_sparse_overlay_reaches_equally_close_owner(self, sparse_overlay):
        """On a sparse overlay ties exist; the believed owner must be
        exactly as close to the key as the oracle's choice."""
        r = random.Random(4)
        sparse_overlay.network.faults = storm_only_injector()
        try:
            for _ in range(80):
                start = sparse_overlay.node(r.choice(sparse_overlay.node_ids))
                target = CycloidId(r.randrange(4), r.randrange(16))
                result = sparse_overlay.lookup(start, target)
                assert result.complete
                tk, ta = target.k % 4, target.a % 16
                oracle = sparse_overlay.closest_node(target)
                assert sparse_overlay._key_badness(
                    result.owner, tk, ta
                ) == sparse_overlay._key_badness(oracle, tk, ta)
        finally:
            sparse_overlay.network.faults = None

    def test_walk_identical_to_legacy(self, full_overlay):
        start = full_overlay.node(CycloidId(0, 5))
        full_overlay.network.faults = storm_only_injector()
        faulty = full_overlay.walk_cluster(start, 0, 3)
        full_overlay.network.faults = None
        legacy = full_overlay.walk_cluster(start, 0, 3)
        assert list(faulty) == list(legacy)
        assert not faulty.truncated


class TestOracleIndependence:
    """With faults active the membership oracle must never be consulted."""

    def test_chord_fault_lookup_never_calls_oracle(self, full_ring, monkeypatch):
        def forbidden(key):  # pragma: no cover - must not run
            raise AssertionError("oracle consulted on the fault path")

        full_ring.network.faults = lossy_injector(0.3, seed=11)
        monkeypatch.setattr(full_ring, "successor_of", forbidden)
        try:
            r = random.Random(5)
            for _ in range(40):
                start = full_ring.node(r.randrange(64))
                result = full_ring.lookup(start, r.randrange(64))
                assert isinstance(result.complete, bool)  # never raises
        finally:
            full_ring.network.faults = None

    def test_cycloid_fault_lookup_never_calls_oracle(
        self, full_overlay, monkeypatch
    ):
        def forbidden(target):  # pragma: no cover - must not run
            raise AssertionError("oracle consulted on the fault path")

        full_overlay.network.faults = lossy_injector(0.3, seed=12)
        monkeypatch.setattr(full_overlay, "closest_node", forbidden)
        try:
            r = random.Random(6)
            for _ in range(40):
                start = full_overlay.node(
                    CycloidId(r.randrange(4), r.randrange(16))
                )
                target = CycloidId(r.randrange(4), r.randrange(16))
                result = full_overlay.lookup(start, target)
                assert isinstance(result.complete, bool)
        finally:
            full_overlay.network.faults = None


class TestHonestFailure:
    def test_partition_makes_lookup_fail_not_raise(self):
        ring = ChordRing(6)
        ring.build_full()
        ring.network.faults = FaultInjector(
            FaultPlan(partitions=(ArcPartition(32, 63, space=64),))
        )
        result = ring.lookup(ring.node(0), 40)
        assert not result.complete
        assert result.timed_out
        assert result.owner is not None  # last node reached, not the owner
        assert ring.network.stats.dropped > 0
        # Same-side keys still resolve completely.
        ok = ring.lookup(ring.node(0), 10)
        assert ok.complete and ok.owner.node_id == 10

    def test_retries_absorb_moderate_loss(self):
        ring = ChordRing(6)
        ring.build_full()
        ring.network.faults = lossy_injector(0.1, seed=13)
        r = random.Random(7)
        results = [
            ring.lookup(ring.node(r.randrange(64)), r.randrange(64))
            for _ in range(50)
        ]
        # Retry + failover masks 10% loss: every lookup still completes...
        assert all(res.complete for res in results)
        # ...but not for free: retransmissions happened and were counted.
        assert sum(res.retries for res in results) > 0
        assert ring.network.stats.retries > 0
        assert ring.network.stats.backoff_seconds > 0

    def test_no_retry_policy_fails_honestly_under_loss(self):
        ring = ChordRing(6)
        ring.build_full()
        ring.lookup_policy = NO_RETRY_POLICY
        ring.network.faults = lossy_injector(0.3, seed=14)
        r = random.Random(8)
        results = [
            ring.lookup(ring.node(r.randrange(64)), r.randrange(64))
            for _ in range(100)
        ]
        failed = [res for res in results if not res.complete]
        assert failed, "30% loss with no retries must kill some lookups"
        assert all(res.timed_out for res in failed)
        assert all(res.retries == 0 for res in results)
        assert ring.network.stats.timeouts > 0

    def test_cycloid_partition_fails_honestly(self):
        overlay = CycloidOverlay(4)
        overlay.build_full()
        # Cut off clusters 8..15 (linearized ids 32..63).
        overlay.network.faults = FaultInjector(
            FaultPlan(partitions=(ArcPartition(32, 63, space=64),))
        )
        result = overlay.lookup(overlay.node(CycloidId(0, 0)), CycloidId(2, 10))
        assert not result.complete
        assert result.timed_out


class TestWalkTruncation:
    def test_chord_walk_truncates_at_partition(self):
        ring = ChordRing(6)
        ring.build_full()
        before = ring.network.stats.walk_truncations
        ring.network.faults = FaultInjector(
            FaultPlan(partitions=(ArcPartition(32, 63, space=64),))
        )
        walk = ring.walk_arc(ring.node(20), 20, 40)
        assert walk.truncated and not walk.complete
        assert walk.reason == "unreachable successor chain"
        assert walk.timed_out
        assert [n.node_id for n in walk] == list(range(20, 32))
        assert ring.network.stats.walk_truncations == before + 1

    def test_cycloid_walk_truncates_at_partition(self):
        overlay = CycloidOverlay(4)
        overlay.build_full()
        before = overlay.network.stats.walk_truncations
        # Sever cyclic positions 2..3 of cluster 0 (linearized ids 2..3).
        overlay.network.faults = FaultInjector(
            FaultPlan(partitions=(ArcPartition(2, 3, space=64),))
        )
        walk = overlay.walk_cluster(overlay.node(CycloidId(0, 0)), 0, 3)
        assert walk.truncated
        assert walk.reason == "unreachable cluster successor"
        assert walk.timed_out
        assert [n.cid for n in walk] == [CycloidId(0, 0), CycloidId(1, 0)]
        assert overlay.network.stats.walk_truncations == before + 1

    def test_walk_result_is_a_list(self):
        walk = WalkResult(["a", "b"], truncated=True, reason="test", retries=2)
        assert list(walk) == ["a", "b"]
        assert len(walk) == 2
        assert not walk.complete
        assert walk.retries == 2
        assert WalkResult().complete


class TestDegradedResultAggregation:
    def test_query_result_defaults_complete(self):
        from repro.core.resource import QueryResult

        result = QueryResult(matches=(), hops=3, visited_nodes=1)
        assert result.complete and result.retries == 0 and not result.timed_out

    def test_multi_query_join_is_under_approximation(self):
        from repro.core.resource import MultiQueryResult, QueryResult

        ok = QueryResult(matches=(), hops=2, visited_nodes=1, retries=1)
        bad = QueryResult(
            matches=(), hops=5, visited_nodes=0,
            complete=False, retries=3, timed_out=True,
        )
        joined = MultiQueryResult(
            providers=frozenset(), sub_results=(ok, bad)
        )
        assert not joined.complete
        assert joined.retries == 4
        assert joined.timed_out
        all_ok = MultiQueryResult(providers=frozenset(), sub_results=(ok, ok))
        assert all_ok.complete and not all_ok.timed_out
