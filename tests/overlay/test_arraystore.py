"""Tests for the flat array-backed ring core (``repro.overlay.arraystore``).

The load-bearing property is *equivalence*: :class:`CompactChordRing` must
route hop-for-hop like the object :class:`ChordRing` on the same stabilized
membership, and count the same maintenance messages per churn event — that
is what makes the 100k–1M-node scale figures comparable with the paper-scale
ones.
"""

from __future__ import annotations

from array import array

import numpy as np
import pytest

from repro.overlay.arraystore import CompactChordRing, RingVector
from repro.overlay.chord import ChordRing


class TestRingVector:
    def test_init_sorts(self):
        assert RingVector([9, 1, 5]).as_list() == [1, 5, 9]

    def test_sequence_protocol(self):
        v = RingVector([2, 4, 6])
        assert len(v) == 3
        assert bool(v)
        assert not RingVector()
        assert v[1] == 4
        assert v[-1] == 6
        assert list(v) == [2, 4, 6]

    def test_contains_is_exact(self):
        v = RingVector([2, 4, 6])
        assert 4 in v
        assert 5 not in v
        assert 1 not in v
        assert 7 not in v

    def test_add_keeps_sorted(self):
        v = RingVector([1, 9])
        v.add(5)
        v.add(0)
        assert v.as_list() == [0, 1, 5, 9]

    def test_remove(self):
        v = RingVector([1, 5, 9])
        v.remove(5)
        assert v.as_list() == [1, 9]

    def test_eq_against_list_tuple_and_self(self):
        v = RingVector([3, 1])
        assert v == [1, 3]
        assert v == (1, 3)
        assert v == RingVector([1, 3])
        assert v != [1, 2]

    def test_successor_index_wraps(self):
        v = RingVector([2, 8, 12])
        assert v.successor_index(8) == 1   # exact hit
        assert v.successor_index(9) == 2
        assert v.successor_index(13) == 0  # past the end wraps
        assert v.successor_index(0) == 0

    def test_bisect_helpers_match_module_bisect(self):
        import bisect

        v = RingVector([1, 5, 5, 9])
        for key in (0, 1, 5, 6, 9, 10):
            assert v.bisect_left(key) == bisect.bisect_left(v, key)
            assert v.bisect_right(key) == bisect.bisect_right(v, key)

    def test_to_numpy(self):
        arr = RingVector([9, 1, 5]).to_numpy()
        assert arr.dtype == np.int64
        assert arr.tolist() == [1, 5, 9]
        assert RingVector().to_numpy().tolist() == []

    def test_machine_width_backing_by_default(self):
        assert isinstance(RingVector([1, 2, 3]).data, array)

    def test_list_fallback_beyond_int64(self):
        # 160-bit id spaces (IdSpace allows them) exceed array('q').
        big = 1 << 100
        v = RingVector([big, 7], max_id=(1 << 160) - 1)
        assert isinstance(v.data, list)
        assert v.as_list() == [7, big]
        v.add(big + 1)
        assert big + 1 in v
        assert v.successor_index(big + 2) == 0

    def test_auto_fallback_when_values_exceed_int64(self):
        v = RingVector([1 << 70])
        assert isinstance(v.data, list)
        assert v.as_list() == [1 << 70]


class TestIndexedDirectory:
    def test_place_matches_bruteforce_owners(self):
        ring = CompactChordRing(bits=6, ids=[3, 17, 30, 45, 60])
        keys = np.arange(64, dtype=np.int64)
        ring.directory.place("resource", keys)
        expected = np.zeros(ring.num_nodes, np.int64)
        for key in keys:
            expected[ring.owner_index(int(key))] += 1
        assert ring.directory.sizes("resource").tolist() == expected.tolist()
        assert int(ring.directory.sizes("resource").sum()) == len(keys)

    def test_sizes_sum_across_namespaces(self):
        ring = CompactChordRing(bits=6, ids=[3, 17, 30])
        ring.directory.place("a", np.array([1, 2], dtype=np.int64))
        ring.directory.place("b", np.array([4], dtype=np.int64))
        assert int(ring.directory.sizes().sum()) == 3
        assert ring.directory.sizes("missing").tolist() == [0, 0, 0]

    def test_repeated_place_accumulates(self):
        ring = CompactChordRing(bits=6, ids=[3, 17, 30])
        keys = np.array([5, 5], dtype=np.int64)
        ring.directory.place("a", keys)
        ring.directory.place("a", keys)
        assert int(ring.directory.sizes("a").sum()) == 4

    def test_matches_object_ring_directory(self):
        bits = 8
        rng = np.random.default_rng(11)
        ids = sorted(int(i) for i in rng.choice(1 << bits, size=24, replace=False))
        keys = rng.integers(1 << bits, size=200, dtype=np.int64)

        obj = ChordRing(bits=bits)
        obj.build(ids)
        for key in keys:
            obj.store("resource", int(key), f"item-{int(key)}")

        compact = CompactChordRing(bits=bits, ids=ids)
        compact.directory.place("resource", keys)

        # Both report per-node sizes in sorted-id (ring) order.
        assert compact.directory.sizes("resource").tolist() == obj.directory_sizes(
            "resource"
        )


def _object_hops(ring: ChordRing, start_id: int, key: int) -> tuple[int, int]:
    result = ring.lookup(ring.node(start_id), key)
    return result.owner.node_id, result.hops


class TestCompactChordRingEquivalence:
    BITS = 10

    def _paired_rings(self, seed: int = 5, n: int = 48):
        rng = np.random.default_rng(seed)
        ids = sorted(int(i) for i in rng.choice(1 << self.BITS, size=n, replace=False))
        obj = ChordRing(bits=self.BITS)
        obj.build(ids)
        compact = CompactChordRing(bits=self.BITS, ids=ids)
        return obj, compact, rng

    def _assert_routes_match(self, obj, compact, rng, queries=150):
        ids = compact.ids
        starts = rng.integers(len(ids), size=queries)
        keys = rng.integers(1 << self.BITS, size=queries, dtype=np.int64)
        for s, key in zip(starts, keys):
            start_id = int(ids[int(s)])
            owner_idx, hops = compact.lookup(int(s), int(key))
            obj_owner, obj_hops = _object_hops(obj, start_id, int(key))
            assert int(ids[owner_idx]) == obj_owner, (start_id, int(key))
            assert hops == obj_hops, (start_id, int(key))

    def test_owner_and_hops_match_object_ring(self):
        obj, compact, rng = self._paired_rings()
        self._assert_routes_match(obj, compact, rng)

    def test_owner_index_matches_successor_of(self):
        obj, compact, _ = self._paired_rings(seed=6)
        for key in range(0, 1 << self.BITS, 7):
            assert (
                int(compact.ids[compact.owner_index(key)])
                == obj.successor_of(key).node_id
            )

    def test_equivalence_survives_churn(self):
        obj, compact, rng = self._paired_rings(seed=7)
        members = set(int(i) for i in compact.ids)
        # A joined/left/failed mix, then re-stabilize both representations.
        for event in range(9):
            if event % 3 == 0:
                node_id = int(rng.integers(1 << self.BITS))
                while node_id in members:
                    node_id = int(rng.integers(1 << self.BITS))
                members.add(node_id)
                obj.join(node_id)
                compact.join(node_id)
            else:
                node_id = int(rng.choice(sorted(members)))
                members.remove(node_id)
                if event % 3 == 1:
                    obj.leave(node_id)
                    compact.leave(node_id)
                else:
                    obj.fail(node_id)
                    compact.fail(node_id)
        obj.stabilize_all()
        compact.stabilize_all()
        assert compact.ids.tolist() == obj.node_ids
        self._assert_routes_match(obj, compact, rng, queries=100)


class TestMaintenanceParity:
    """Per-event maintenance messages match the object ring's accounting."""

    BITS = 9

    def _paired_rings(self):
        rng = np.random.default_rng(13)
        ids = sorted(int(i) for i in rng.choice(1 << self.BITS, size=20, replace=False))
        obj = ChordRing(bits=self.BITS)
        obj.build(ids)
        compact = CompactChordRing(bits=self.BITS, ids=ids)
        return obj, compact

    def _deltas(self, obj, compact, action):
        before_obj = obj.network.stats.maintenance_messages
        before_compact = compact.maintenance_messages
        action()
        return (
            obj.network.stats.maintenance_messages - before_obj,
            compact.maintenance_messages - before_compact,
        )

    def test_join_parity(self):
        obj, compact = self._paired_rings()
        node_id = next(i for i in range(1 << self.BITS) if i not in obj.node_ids)
        d_obj, d_compact = self._deltas(
            obj, compact, lambda: (obj.join(node_id), compact.join(node_id))
        )
        assert d_obj == d_compact

    def test_leave_parity(self):
        obj, compact = self._paired_rings()
        node_id = obj.node_ids[3]
        d_obj, d_compact = self._deltas(
            obj, compact, lambda: (obj.leave(node_id), compact.leave(node_id))
        )
        assert d_obj == d_compact

    def test_fail_parity(self):
        obj, compact = self._paired_rings()
        node_id = obj.node_ids[5]
        d_obj, d_compact = self._deltas(
            obj, compact, lambda: (obj.fail(node_id), compact.fail(node_id))
        )
        assert d_obj == d_compact

    def test_stabilize_all_parity(self):
        obj, compact = self._paired_rings()
        d_obj, d_compact = self._deltas(
            obj, compact, lambda: (obj.stabilize_all(), compact.stabilize_all())
        )
        assert d_obj == d_compact == obj.num_nodes


class TestCompactChordRingValidation:
    def test_rejects_out_of_range_bits(self):
        with pytest.raises(ValueError):
            CompactChordRing(bits=63, ids=[1])
        with pytest.raises(ValueError):
            CompactChordRing(bits=0, ids=[1])

    def test_rejects_empty_ring(self):
        with pytest.raises(ValueError):
            CompactChordRing(bits=4, ids=[])

    def test_join_rejects_duplicate(self):
        ring = CompactChordRing(bits=4, ids=[1, 5])
        with pytest.raises(ValueError):
            ring.join(5)

    def test_cannot_remove_last_node(self):
        ring = CompactChordRing(bits=4, ids=[1])
        with pytest.raises(ValueError):
            ring.leave(1)

    def test_sampled_population_and_determinism(self):
        a = CompactChordRing.sampled(500, seed=3)
        b = CompactChordRing.sampled(500, seed=3)
        assert a.num_nodes == 500
        assert a.bits == b.bits
        assert a.ids.tolist() == b.ids.tolist()

    def test_state_bytes_counts_ids_and_fingers(self):
        ring = CompactChordRing.sampled(100, seed=1)
        expected = ring.ids.nbytes + 100 * ring.bits * 4  # int32 fingers
        assert ring.state_bytes() == expected
