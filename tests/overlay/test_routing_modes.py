"""Tests for the two Cycloid routing disciplines."""

from __future__ import annotations

import random
import statistics

import pytest

from repro.overlay.cycloid import CycloidId, CycloidOverlay


def build(mode: str, d: int = 4, full: bool = True, members=None) -> CycloidOverlay:
    overlay = CycloidOverlay(d, routing_mode=mode)
    if full:
        overlay.build_full()
    else:
        overlay.build(members)
    return overlay


class TestModeValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            CycloidOverlay(4, routing_mode="teleport")

    def test_default_is_adaptive(self):
        assert CycloidOverlay(4).routing_mode == "adaptive"


class TestBothModesCorrect:
    @pytest.mark.parametrize("mode", ["adaptive", "msb"])
    def test_full_overlay_lookups(self, mode):
        overlay = build(mode)
        r = random.Random(1)
        ids = overlay.node_ids
        for _ in range(300):
            start = overlay.node(ids[r.randrange(len(ids))])
            target = CycloidId(r.randrange(4), r.randrange(16))
            assert overlay.lookup(start, target).owner is overlay.closest_node(target)

    @pytest.mark.parametrize("mode", ["adaptive", "msb"])
    def test_sparse_overlay_lookups(self, mode):
        r = random.Random(2)
        all_ids = [CycloidId(k, a) for a in range(16) for k in range(4)]
        overlay = build(mode, full=False, members=r.sample(all_ids, 30))
        ids = overlay.node_ids
        for _ in range(300):
            start = overlay.node(ids[r.randrange(len(ids))])
            target = CycloidId(r.randrange(4), r.randrange(16))
            assert overlay.lookup(start, target).owner is overlay.closest_node(target)

    @pytest.mark.parametrize("mode", ["adaptive", "msb"])
    def test_under_churn(self, mode):
        overlay = build(mode, d=4)
        r = random.Random(3)
        for _ in range(20):
            overlay.leave(overlay.node_ids[r.randrange(overlay.num_nodes)])
        ids = overlay.node_ids
        for _ in range(200):
            start = overlay.node(ids[r.randrange(len(ids))])
            target = CycloidId(r.randrange(4), r.randrange(16))
            assert overlay.lookup(start, target).owner is overlay.closest_node(target)


class TestModeCostDifference:
    def test_msb_pays_the_ascending_phase(self):
        r = random.Random(4)
        targets = [
            (r.randrange(64), CycloidId(r.randrange(4), r.randrange(16)))
            for _ in range(600)
        ]
        means = {}
        for mode in ("adaptive", "msb"):
            overlay = build(mode)
            ids = overlay.node_ids
            hops = [
                overlay.lookup(overlay.node(ids[i]), t).hops for i, t in targets
            ]
            means[mode] = statistics.mean(hops)
        assert means["adaptive"] < means["msb"]

    def test_msb_path_includes_ascent(self):
        """From a low cyclic level with a high differing bit, MSB routing
        must ascend first (k increases along the path)."""
        overlay = build("msb")
        start = overlay.node(CycloidId(0, 0b0000))
        target = CycloidId(0, 0b1000)  # differing bit 3 needs level 3
        result = overlay.lookup(start, target)
        ks = [cid.k for cid in result.path]
        assert max(ks) > ks[0]  # ascended before flipping
