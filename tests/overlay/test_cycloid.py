"""Tests for the Cycloid overlay: IDs, routing tables, lookup, walks."""

from __future__ import annotations

import random
import statistics

import pytest

from repro.overlay.cycloid import CycloidId, CycloidOverlay


class TestConstruction:
    def test_capacity(self):
        assert CycloidOverlay(4).capacity == 64
        assert CycloidOverlay(8).capacity == 2048

    def test_build_full(self, full_overlay):
        assert full_overlay.num_nodes == 64
        assert len(full_overlay.node_ids) == 64

    def test_min_dimension_enforced(self):
        with pytest.raises(ValueError):
            CycloidOverlay(1)

    def test_build_empty_rejected(self):
        with pytest.raises(ValueError):
            CycloidOverlay(3).build([])

    def test_build_wraps_indices(self):
        overlay = CycloidOverlay(3)
        overlay.build([CycloidId(5, 9)])  # k wraps mod 3, a mod 8
        assert overlay.node_ids == [CycloidId(2, 1)]

    def test_cluster_members_ordered(self, sparse_overlay):
        for a in range(16):
            members = sparse_overlay.cluster_members(a)
            ks = [m.k for m in members]
            assert ks == sorted(ks)

    def test_invariants_after_build(self, full_overlay, sparse_overlay):
        full_overlay.check_invariants()
        sparse_overlay.check_invariants()


class TestRoutingTable:
    def test_full_overlay_constant_degree(self, full_overlay):
        for node in full_overlay.nodes():
            assert len(node.outlinks()) <= 7

    def test_cubical_neighbor_flips_responsible_bit(self, full_overlay):
        d = full_overlay.dimension
        for node in full_overlay.nodes():
            j = (node.k - 1) % d
            nbr = node.cubical_neighbor
            assert nbr is not None
            assert nbr.a == node.a ^ (1 << j)
            assert nbr.k == j

    def test_inside_leaf_are_cluster_neighbours(self, full_overlay):
        d = full_overlay.dimension
        for node in full_overlay.nodes():
            pred, succ = node.inside_leaf
            assert pred.cid == CycloidId((node.k - 1) % d, node.a)
            assert succ.cid == CycloidId((node.k + 1) % d, node.a)

    def test_outside_leaf_are_adjacent_cluster_tops(self, full_overlay):
        d = full_overlay.dimension
        size = full_overlay.cubical_space.size
        for node in full_overlay.nodes():
            prev_top, next_top = node.outside_leaf
            assert prev_top.cid == CycloidId(d - 1, (node.a - 1) % size)
            assert next_top.cid == CycloidId(d - 1, (node.a + 1) % size)

    def test_sparse_overlay_tables_live(self, sparse_overlay):
        for node in sparse_overlay.nodes():
            for entry in node.table_entries():
                assert entry.alive


class TestClosestNode:
    def test_exact_position(self, full_overlay):
        assert full_overlay.closest_node(CycloidId(2, 5)).cid == CycloidId(2, 5)

    def test_cluster_first_semantics(self, sparse_overlay):
        """The owner is in the nearest non-empty cluster, even if another
        cluster has a node with the exact cyclic index."""
        target = CycloidId(1, 7)
        owner = sparse_overlay.closest_node(target)
        nearest_cluster = sparse_overlay.nearest_cluster(7)
        assert owner.a == nearest_cluster

    def test_within_cluster_nearest_cyclic(self, sparse_overlay):
        for a in sparse_overlay._cluster_ids:
            ks = sparse_overlay._clusters[a]
            for k_t in range(sparse_overlay.dimension):
                owner = sparse_overlay.closest_node(CycloidId(k_t, a))
                d = sparse_overlay.dimension
                best = min(min((k - k_t) % d, (k_t - k) % d) for k in ks)
                got = min((owner.k - k_t) % d, (k_t - owner.k) % d)
                assert got == best

    def test_empty_overlay_rejected(self):
        overlay = CycloidOverlay(3)
        with pytest.raises(ValueError):
            overlay.nearest_cluster(0)


class TestLookup:
    def test_lookup_reaches_owner_full(self, full_overlay, rng):
        for _ in range(300):
            ids = full_overlay.node_ids
            start = full_overlay.node(ids[rng.randrange(len(ids))])
            target = CycloidId(rng.randrange(4), rng.randrange(16))
            result = full_overlay.lookup(start, target)
            assert result.owner is full_overlay.closest_node(target)

    def test_lookup_reaches_owner_sparse(self, sparse_overlay, rng):
        for _ in range(300):
            ids = sparse_overlay.node_ids
            start = sparse_overlay.node(ids[rng.randrange(len(ids))])
            target = CycloidId(rng.randrange(4), rng.randrange(16))
            result = sparse_overlay.lookup(start, target)
            assert result.owner is sparse_overlay.closest_node(target)

    def test_self_lookup_zero_hops(self, full_overlay):
        node = full_overlay.node(CycloidId(1, 3))
        assert full_overlay.lookup(node, CycloidId(1, 3)).hops == 0

    def test_average_hops_order_d(self):
        """Cycloid's lookup path is O(d); for a full overlay it empirically
        sits near d (the paper's Theorem 4.7 uses exactly d)."""
        overlay = CycloidOverlay(6)
        overlay.build_full()
        r = random.Random(2)
        ids = overlay.node_ids
        samples = []
        for _ in range(600):
            start = overlay.node(ids[r.randrange(len(ids))])
            target = CycloidId(r.randrange(6), r.randrange(64))
            samples.append(overlay.lookup(start, target).hops)
        mean = statistics.mean(samples)
        assert 4.0 < mean < 9.0  # d=6: expect ~6-7

    def test_hops_equals_path_edges(self, sparse_overlay, rng):
        ids = sparse_overlay.node_ids
        for _ in range(50):
            start = sparse_overlay.node(ids[rng.randrange(len(ids))])
            result = sparse_overlay.lookup(start, CycloidId(rng.randrange(4), rng.randrange(16)))
            assert result.hops == len(result.path) - 1

    def test_path_follows_links(self, full_overlay, rng):
        """Every edge of the reported path must be a routing-table link of
        the previous node — routing may not teleport."""
        ids = full_overlay.node_ids
        for _ in range(60):
            start = full_overlay.node(ids[rng.randrange(len(ids))])
            target = CycloidId(rng.randrange(4), rng.randrange(16))
            result = full_overlay.lookup(start, target)
            for frm, to in zip(result.path, result.path[1:]):
                node = full_overlay.node(frm)
                assert to in {e.cid for e in node.table_entries()}


class TestWalkCluster:
    def test_walk_covers_cyclic_sector(self, full_overlay):
        start = full_overlay.node(CycloidId(1, 5))
        walk = full_overlay.walk_cluster(start, 1, 3)
        assert [n.cid for n in walk] == [
            CycloidId(1, 5), CycloidId(2, 5), CycloidId(3, 5)
        ]

    def test_walk_single_when_start_owns_end(self, full_overlay):
        start = full_overlay.node(CycloidId(2, 5))
        assert full_overlay.walk_cluster(start, 2, 2) == [start]

    def test_walk_stays_in_cluster(self, sparse_overlay):
        for a in sparse_overlay._cluster_ids:
            members = sparse_overlay.cluster_members(a)
            start = members[0]
            walk = sparse_overlay.walk_cluster(start, start.k, (start.k + 2) % 4)
            assert all(n.a == a for n in walk)

    def test_walk_bounded_by_cluster_size(self, sparse_overlay):
        for a in sparse_overlay._cluster_ids:
            members = sparse_overlay.cluster_members(a)
            walk = sparse_overlay.walk_cluster(members[0], 0, 3)
            assert len(walk) <= len(members)


class TestStorage:
    def test_store_at_closest(self, sparse_overlay):
        key = CycloidId(2, 9)
        owner = sparse_overlay.store("ns", key, "item")
        assert owner is sparse_overlay.closest_node(key)

    def test_routed_store_matches_oracle_placement(self, sparse_overlay, rng):
        ids = sparse_overlay.node_ids
        for _ in range(40):
            key = CycloidId(rng.randrange(4), rng.randrange(16))
            start = sparse_overlay.node(ids[rng.randrange(len(ids))])
            result = sparse_overlay.routed_store(start, "ns", key, 1)
            assert result.owner is sparse_overlay.closest_node(key)

    def test_linearize_roundtrip(self, full_overlay):
        for cid in full_overlay.node_ids:
            assert full_overlay.delinearize(full_overlay.linearize(cid)) == cid
