"""Tests for Chord join/leave: key transfer, repairs, lookup correctness."""

from __future__ import annotations

import random

import pytest

from repro.overlay.chord import ChordRing


@pytest.fixture
def ring() -> ChordRing:
    ring = ChordRing(7)
    ring.build(random.Random(13).sample(range(128), 48))
    return ring


class TestJoin:
    def test_join_adds_member(self, ring):
        vacant = next(i for i in range(128) if i not in ring.node_ids)
        ring.join(vacant)
        assert vacant in ring.node_ids

    def test_join_duplicate_rejected(self, ring):
        with pytest.raises(ValueError):
            ring.join(ring.node_ids[0])

    def test_join_takes_over_keys(self, ring):
        vacant = next(i for i in range(128) if i not in ring.node_ids)
        old_owner = ring.successor_of(vacant)
        ring.store("ns", vacant, "payload")
        assert old_owner.items_at("ns", vacant) == ["payload"]
        node = ring.join(vacant)
        assert node.items_at("ns", vacant) == ["payload"]
        assert old_owner.items_at("ns", vacant) == []

    def test_join_does_not_steal_other_keys(self, ring):
        ids = ring.node_ids
        keeper_key = ids[5]  # exactly on an existing node
        ring.store("ns", keeper_key, "keep")
        vacant = next(i for i in range(128) if i not in ids)
        ring.join(vacant)
        assert ring.successor_of(keeper_key).items_at("ns", keeper_key) == ["keep"]

    def test_neighbours_repaired_immediately(self, ring):
        vacant = next(i for i in range(128) if i not in ring.node_ids)
        node = ring.join(vacant)
        assert node.predecessor is ring.predecessor_of(vacant)
        assert node.predecessor.successor is node

    def test_lookups_correct_after_join(self, ring):
        r = random.Random(5)
        vacant = next(i for i in range(128) if i not in ring.node_ids)
        ring.join(vacant)
        for _ in range(100):
            start = ring.node(r.choice(ring.node_ids))
            key = r.randrange(128)
            assert ring.lookup(start, key).owner is ring.successor_of(key)


class TestLeave:
    def test_leave_removes_member(self, ring):
        victim = ring.node_ids[10]
        ring.leave(victim)
        assert victim not in ring.node_ids

    def test_leave_transfers_keys_to_successor(self, ring):
        victim_id = ring.node_ids[10]
        ring.store("ns", victim_id, "data")
        successor = ring.successor_of(victim_id + 1)
        ring.leave(victim_id)
        assert successor.items_at("ns", victim_id) == ["data"]

    def test_leave_marks_node_dead(self, ring):
        victim_id = ring.node_ids[3]
        victim = ring.node(victim_id)
        ring.leave(victim_id)
        assert not victim.alive

    def test_cannot_remove_last_node(self):
        ring = ChordRing(4)
        ring.build([7])
        with pytest.raises(ValueError):
            ring.leave(7)

    def test_lookups_correct_after_leaves_without_stabilize(self, ring):
        """Stale fingers are skipped; successor lists bridge the gaps."""
        r = random.Random(99)
        for _ in range(10):
            ring.leave(r.choice(ring.node_ids))
        for _ in range(150):
            start = ring.node(r.choice(ring.node_ids))
            key = r.randrange(128)
            assert ring.lookup(start, key).owner is ring.successor_of(key)

    def test_ring_invariants_hold_after_leaves(self, ring):
        r = random.Random(3)
        for _ in range(8):
            ring.leave(r.choice(ring.node_ids))
        ring.check_ring_invariants()


class TestChurnStorm:
    def test_interleaved_churn_preserves_correctness_and_data(self, ring):
        r = random.Random(42)
        # Register sentinel data spread over the key space.
        for key in range(0, 128, 3):
            ring.store("storm", key, f"v{key}")
        departed: list[int] = []
        for step in range(120):
            if (r.random() < 0.5 or not departed) and ring.num_nodes > 4:
                victim = r.choice(ring.node_ids)
                ring.leave(victim)
                departed.append(victim)
            elif departed:
                ring.join(departed.pop(r.randrange(len(departed))))
            if step % 20 == 0:
                ring.stabilize_all()
        # Every sentinel is still reachable at the correct owner.
        for key in range(0, 128, 3):
            owner = ring.successor_of(key)
            assert owner.items_at("storm", key) == [f"v{key}"]
        # And routed lookups find the owners.
        for key in range(0, 128, 7):
            start = ring.node(r.choice(ring.node_ids))
            assert ring.lookup(start, key).owner is ring.successor_of(key)
        ring.check_ring_invariants()

    def test_total_data_conserved_through_churn(self, ring):
        r = random.Random(17)
        for key in range(128):
            ring.store("conserve", key, key)
        total_before = sum(ring.directory_sizes("conserve"))
        departed = []
        for _ in range(60):
            if r.random() < 0.5 and ring.num_nodes > 4:
                victim = r.choice(ring.node_ids)
                ring.leave(victim)
                departed.append(victim)
            elif departed:
                ring.join(departed.pop())
        assert sum(ring.directory_sizes("conserve")) == total_before

    def test_maintenance_messages_counted(self, ring):
        before = ring.network.stats.maintenance_messages
        ring.leave(ring.node_ids[0])
        assert ring.network.stats.maintenance_messages > before


class TestStabilize:
    def test_stabilize_restores_optimal_fingers(self, ring):
        r = random.Random(1)
        for _ in range(6):
            ring.leave(r.choice(ring.node_ids))
        ring.stabilize_all()
        for node in ring.nodes():
            for i, finger in enumerate(node.fingers):
                assert finger is ring.successor_of(node.node_id + (1 << i))
