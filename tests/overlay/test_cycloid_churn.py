"""Tests for Cycloid join/leave, repairs and storms."""

from __future__ import annotations

import random

import pytest

from repro.overlay.cycloid import CycloidId, CycloidOverlay


@pytest.fixture
def overlay() -> CycloidOverlay:
    overlay = CycloidOverlay(4)
    overlay.build_full()
    return overlay


def _all_ids(d: int) -> list[CycloidId]:
    return [CycloidId(k, a) for a in range(1 << d) for k in range(d)]


class TestJoin:
    def test_join_into_vacancy(self, overlay):
        overlay.leave(CycloidId(2, 5))
        node = overlay.join(CycloidId(2, 5))
        assert node.cid == CycloidId(2, 5)
        assert overlay.num_nodes == 64

    def test_join_duplicate_rejected(self, overlay):
        with pytest.raises(ValueError):
            overlay.join(CycloidId(0, 0))

    def test_join_takes_over_keys(self, overlay):
        key = CycloidId(2, 5)
        overlay.leave(key)
        fallback_owner = overlay.closest_node(key)
        overlay.store("ns", key, "payload")
        assert fallback_owner.items_at("ns", overlay.linearize(key)) == ["payload"]
        node = overlay.join(key)
        assert node.items_at("ns", overlay.linearize(key)) == ["payload"]
        assert fallback_owner.items_at("ns", overlay.linearize(key)) == []

    def test_join_creates_new_cluster(self):
        overlay = CycloidOverlay(3)
        overlay.build([CycloidId(0, 0), CycloidId(1, 0)])
        overlay.join(CycloidId(2, 4))
        assert 4 in overlay._cluster_ids
        overlay.check_invariants()

    def test_leaf_sets_repaired_after_join(self, overlay):
        overlay.leave(CycloidId(1, 3))
        overlay.join(CycloidId(1, 3))
        overlay.check_invariants()


class TestLeave:
    def test_leave_removes_node(self, overlay):
        overlay.leave(CycloidId(0, 7))
        assert CycloidId(0, 7) not in overlay.node_ids

    def test_leave_transfers_keys(self, overlay):
        key = CycloidId(3, 9)
        overlay.store("ns", key, "v")
        overlay.leave(key)
        new_owner = overlay.closest_node(key)
        assert new_owner.items_at("ns", overlay.linearize(key)) == ["v"]

    def test_leave_last_member_removes_cluster(self, overlay):
        for k in range(4):
            overlay.leave(CycloidId(k, 11))
        assert 11 not in overlay._cluster_ids
        overlay.check_invariants()

    def test_cannot_remove_last_node(self):
        overlay = CycloidOverlay(3)
        overlay.build([CycloidId(0, 0)])
        with pytest.raises(ValueError):
            overlay.leave(CycloidId(0, 0))

    def test_lookups_correct_after_leaves(self, overlay):
        r = random.Random(6)
        ids = list(overlay.node_ids)
        for victim in r.sample(ids, 12):
            overlay.leave(victim)
        live = overlay.node_ids
        for _ in range(200):
            start = overlay.node(live[r.randrange(len(live))])
            target = CycloidId(r.randrange(4), r.randrange(16))
            assert overlay.lookup(start, target).owner is overlay.closest_node(target)


class TestChurnStorm:
    def test_storm_preserves_data_and_routing(self, overlay):
        r = random.Random(8)
        for cid in _all_ids(4)[::2]:
            overlay.store("storm", cid, overlay.linearize(cid))
        total = sum(overlay.directory_sizes("storm"))
        departed: list[CycloidId] = []
        for step in range(120):
            if (r.random() < 0.5 or not departed) and overlay.num_nodes > 8:
                victim = overlay.node_ids[r.randrange(overlay.num_nodes)]
                overlay.leave(victim)
                departed.append(victim)
            elif departed:
                overlay.join(departed.pop(r.randrange(len(departed))))
            if step % 25 == 0:
                overlay.stabilize_all()
        assert sum(overlay.directory_sizes("storm")) == total
        overlay.check_invariants()
        live = overlay.node_ids
        for _ in range(150):
            start = overlay.node(live[r.randrange(len(live))])
            target = CycloidId(r.randrange(4), r.randrange(16))
            assert overlay.lookup(start, target).owner is overlay.closest_node(target)

    def test_every_key_lands_on_its_current_owner(self, overlay):
        """After churn, each stored key sits exactly where closest_node says."""
        r = random.Random(20)
        for cid in _all_ids(4)[::3]:
            overlay.store("own", cid, str(cid))
        departed = []
        for _ in range(40):
            if r.random() < 0.6 and overlay.num_nodes > 8:
                victim = overlay.node_ids[r.randrange(overlay.num_nodes)]
                overlay.leave(victim)
                departed.append(victim)
            elif departed:
                overlay.join(departed.pop())
        for cid in _all_ids(4)[::3]:
            owner = overlay.closest_node(cid)
            assert owner.items_at("own", overlay.linearize(cid)) == [str(cid)]

    def test_maintenance_counted(self, overlay):
        before = overlay.network.stats.maintenance_messages
        overlay.leave(CycloidId(0, 0))
        assert overlay.network.stats.maintenance_messages > before
