"""Focused tests of Cycloid routing internals: phases, fallbacks, walks."""

from __future__ import annotations

import random

import pytest

from repro.overlay.cycloid import CycloidId, CycloidOverlay


class TestCccPhases:
    def test_cubical_hop_taken_when_bit_differs(self):
        """From (k, a) with bit k-1 differing, the first hop is cubical."""
        overlay = CycloidOverlay(4)
        overlay.build_full()
        start = overlay.node(CycloidId(3, 0b0000))
        target = CycloidId(3, 0b0100)  # differs exactly at bit 2 = start.k - 1
        result = overlay.lookup(start, target)
        assert result.path[1] == CycloidId(2, 0b0100)

    def test_descend_hop_when_bit_matches(self):
        overlay = CycloidOverlay(4)
        overlay.build_full()
        start = overlay.node(CycloidId(3, 0b0000))
        target = CycloidId(0, 0b0001)  # bit 2 matches; must descend first
        result = overlay.lookup(start, target)
        assert result.path[1] == CycloidId(2, 0b0000)  # inside-leaf pred

    def test_final_phase_walks_short_direction(self):
        overlay = CycloidOverlay(6)
        overlay.build_full()
        start = overlay.node(CycloidId(1, 9))
        result = overlay.lookup(start, CycloidId(5, 9))
        # Short way from k=1 to k=5 on a 6-cycle is backwards (1->0->5).
        assert result.hops == 2
        assert result.path == (CycloidId(1, 9), CycloidId(0, 9), CycloidId(5, 9))

    def test_worst_case_bound(self):
        """Full overlay: every route completes within ~1.5 d + d/2 hops."""
        overlay = CycloidOverlay(5)
        overlay.build_full()
        r = random.Random(0)
        ids = overlay.node_ids
        for _ in range(500):
            start = overlay.node(ids[r.randrange(len(ids))])
            target = CycloidId(r.randrange(5), r.randrange(32))
            assert overlay.lookup(start, target).hops <= 2 * 5 + 3


class TestFallbacks:
    def test_routing_with_single_cluster(self):
        overlay = CycloidOverlay(4)
        overlay.build([CycloidId(k, 3) for k in range(4)])
        start = overlay.node(CycloidId(0, 3))
        result = overlay.lookup(start, CycloidId(2, 9))  # only cluster 3 exists
        assert result.owner.a == 3

    def test_routing_between_two_singleton_clusters(self):
        overlay = CycloidOverlay(4)
        overlay.build([CycloidId(1, 2), CycloidId(3, 11)])
        a = overlay.node(CycloidId(1, 2))
        result = overlay.lookup(a, CycloidId(3, 11))
        assert result.owner.cid == CycloidId(3, 11)

    def test_very_sparse_random_memberships(self):
        r = random.Random(77)
        all_ids = [CycloidId(k, a) for a in range(16) for k in range(4)]
        for trial in range(30):
            members = r.sample(all_ids, r.randint(2, 8))
            overlay = CycloidOverlay(4)
            overlay.build(members)
            ids = overlay.node_ids
            start = overlay.node(ids[r.randrange(len(ids))])
            target = CycloidId(r.randrange(4), r.randrange(16))
            assert overlay.lookup(start, target).owner is overlay.closest_node(target)

    def test_clockwise_fallback_terminates_after_heavy_failures(self):
        """Crash half the overlay without stabilizing between crashes;
        routing must still converge via the deterministic fallback."""
        overlay = CycloidOverlay(4)
        overlay.build_full()
        r = random.Random(5)
        for _ in range(32):
            victim = overlay.node_ids[r.randrange(overlay.num_nodes)]
            overlay.fail(victim)
        ids = overlay.node_ids
        for _ in range(200):
            start = overlay.node(ids[r.randrange(len(ids))])
            target = CycloidId(r.randrange(4), r.randrange(16))
            result = overlay.lookup(start, target)
            assert result.owner is overlay.closest_node(target)


class TestWalkClusterBoundaries:
    def test_full_cyclic_span_visits_whole_cluster(self):
        overlay = CycloidOverlay(4)
        overlay.build_full()
        start = overlay.closest_node(CycloidId(0, 6))
        walk = overlay.walk_cluster(start, 0, 3)
        assert len(walk) == 4  # every member of cluster 6

    def test_wrapping_sector_ownership(self):
        """With members at {1, 2} (d=4), position 0 belongs to node 1 but
        position 3 belongs to node... the midpoint rule; the walk over the
        full span must visit both members."""
        overlay = CycloidOverlay(4)
        overlay.build([CycloidId(1, 0), CycloidId(2, 0), CycloidId(0, 8)])
        start = overlay.closest_node(CycloidId(0, 0))
        walk = overlay.walk_cluster(start, 0, 3)
        assert {n.k for n in walk} == {1, 2}

    def test_zero_span_stays_home(self):
        overlay = CycloidOverlay(4)
        overlay.build_full()
        start = overlay.closest_node(CycloidId(2, 5))
        assert overlay.walk_cluster(start, 2, 2) == [start]

    def test_walk_never_leaves_cluster_even_with_vacancies(self):
        overlay = CycloidOverlay(4)
        overlay.build(
            [CycloidId(0, 4), CycloidId(3, 4), CycloidId(1, 5), CycloidId(2, 5)]
        )
        start = overlay.closest_node(CycloidId(0, 4))
        walk = overlay.walk_cluster(start, 0, 3)
        assert all(n.a == 4 for n in walk)


class TestTableEntries:
    def test_dedup(self):
        overlay = CycloidOverlay(4)
        overlay.build([CycloidId(0, 1), CycloidId(2, 1)])
        node = overlay.node(CycloidId(0, 1))
        entries = node.table_entries()
        assert len(entries) == len({e.cid for e in entries})

    def test_never_contains_self_or_dead(self):
        overlay = CycloidOverlay(4)
        overlay.build_full()
        victim_id = CycloidId(2, 7)
        victim = overlay.node(victim_id)
        overlay.leave(victim_id)
        for node in overlay.nodes():
            entries = node.table_entries()
            assert node not in entries
            assert victim not in entries
