"""Setuptools shim.

The offline environment ships setuptools 65 without the ``wheel`` package,
so PEP 660 editable installs (which build an editable wheel) fail.  This
shim lets ``pip install -e . --no-use-pep517 --no-build-isolation`` fall
back to the legacy ``setup.py develop`` path.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
