"""Maintenance-traffic extension figure at paper scale.

Mercury's repair traffic is m=200 × a single ring's; the single-DHT
approaches (and LORM's constant-degree Cycloid) stay within a small factor
of each other — Theorem 4.1's practical consequence in message units.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.maintenance import run_maintenance


def test_maintenance_figure(benchmark, paper_config, results_dir):
    config = paper_config.scaled(churn_rates=(0.1, 0.3, 0.5))
    figure = run_once(benchmark, run_maintenance, config)
    figure.save(results_dir)

    mercury = figure.curve("Mercury").y
    sword = figure.curve("SWORD").y
    lorm = figure.curve("LORM").y
    for i in range(len(mercury)):
        # Mercury pays roughly m x the single-ring price.
        assert mercury[i] > 50 * sword[i]
        # LORM stays within a small constant of the single-ring approaches.
        assert lorm[i] < 6 * sword[i]
    # Traffic scales with churn.
    assert mercury[-1] > mercury[0]
    assert lorm[-1] > lorm[0]
