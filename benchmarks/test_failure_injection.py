"""Failure injection — data availability under crashes vs replication.

Extends the paper's graceful-churn study (Section V-C) with *crash*
failures: nodes vanish without handing off their directories.  Sweeps the
replication factor r and measures, after a crash storm with periodic
replica repair, the fraction of queries still answered completely —
r = 1 loses data, r >= 2 keeps availability at 100% for single failures
between repairs.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.core.lorm import LormService
from repro.utils.formatting import render_table
from repro.workloads.attributes import AttributeSchema
from repro.workloads.generator import GridWorkload, QueryKind

REPLICATION_FACTORS = (1, 2, 3)
CRASHES = 40
REPAIR_EVERY = 5


def _availability(replication: int) -> dict[str, float]:
    schema = AttributeSchema.synthetic(16)
    service = LormService.build_full(
        6, schema, seed=50 + replication, replication=replication
    )
    wl = GridWorkload(schema, infos_per_attribute=64, seed=60)
    for info in wl.resource_infos():
        service.register(info, routed=False)

    queries = list(wl.query_stream(120, 2, QueryKind.RANGE, label=f"fail-r{replication}"))
    complete = 0
    for i in range(CRASHES):
        service.churn_fail()
        if (i + 1) % REPAIR_EVERY == 0:
            service.overlay.repair_replication()
            service.stabilize()
    service.overlay.repair_replication()
    service.stabilize()
    for query in queries:
        got = service.multi_query(query).providers
        truth = wl.matching_providers_bruteforce(query)
        if got == truth:
            complete += 1
    surviving = sum(service.directory_sizes()) / replication
    return {
        "replication": replication,
        "complete_fraction": complete / len(queries),
        "surviving_fraction": surviving / wl.total_info_pieces(),
        "nodes_left": service.num_nodes(),
    }


@pytest.fixture(scope="module")
def sweep():
    return [_availability(r) for r in REPLICATION_FACTORS]


def test_failure_injection(benchmark, sweep, results_dir):
    rows = run_once(benchmark, lambda: sweep)

    table = render_table(
        ["replication", "queries complete", "infos surviving", "nodes left"],
        [
            [r["replication"], r["complete_fraction"], r["surviving_fraction"], r["nodes_left"]]
            for r in rows
        ],
        title=f"Failure injection: {CRASHES} crashes, repair every {REPAIR_EVERY}",
    )
    (results_dir / "failure_injection.txt").write_text(table + "\n")

    by_r = {r["replication"]: r for r in rows}
    # Without replication a crash storm visibly loses data and answers.
    assert by_r[1]["surviving_fraction"] < 1.0
    assert by_r[1]["complete_fraction"] < 1.0
    # With replication >= 2 and periodic repair, nothing is lost.
    for r in (2, 3):
        assert by_r[r]["surviving_fraction"] == pytest.approx(1.0)
        assert by_r[r]["complete_fraction"] == 1.0
    # Availability is monotone in the replication factor.
    fractions = [by_r[r]["complete_fraction"] for r in REPLICATION_FACTORS]
    assert fractions == sorted(fractions)


def test_crash_storm_never_breaks_routing(sweep):
    """Whatever happens to the data, lookups must keep terminating on the
    correct owner (routing state repairs are independent of replication)."""
    schema = AttributeSchema.synthetic(8)
    service = LormService.build_full(5, schema, seed=99, replication=1)
    rng = np.random.default_rng(1)
    for _ in range(50):
        service.churn_fail()
    ids = service.overlay.node_ids
    for _ in range(200):
        start = service.overlay.node(ids[int(rng.integers(len(ids)))])
        from repro.overlay.cycloid import CycloidId

        target = CycloidId(int(rng.integers(5)), int(rng.integers(32)))
        result = service.overlay.lookup(start, target)
        assert result.owner is service.overlay.closest_node(target)
