"""Ablation — locality-preserving hash flavour (DESIGN.md §4, choice 1).

The paper funnels "value or string description" through a locality
preserving hash but does not pin down the flavour.  This ablation contrasts
the plain affine map with the CDF-calibrated variant (MAAN's *uniform* LPH)
under the paper's Bounded-Pareto values: the linear map piles resource
information into the low end of the ID space, inflating the 99th-percentile
directory size of every value-indexed approach, while the CDF variant
restores the balance the paper's Figure 3(d) shows.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.experiments.common import build_services
from repro.sim.metrics import summarize
from repro.utils.formatting import render_table


@pytest.fixture(scope="module")
def ablation_config(paper_config):
    # Quarter-scale keeps the two full service builds cheap.
    return paper_config.scaled(
        dimension=6, chord_bits=9, num_attributes=64, infos_per_attribute=128
    )


def _build_both(config):
    return {
        kind: build_services(config.scaled(lph_kind=kind))
        for kind in ("linear", "cdf")
    }


def test_lph_flavour_directory_balance(benchmark, ablation_config, results_dir):
    bundles = run_once(benchmark, _build_both, ablation_config)

    rows = []
    stats = {}
    for kind, bundle in bundles.items():
        for service in (bundle.mercury, bundle.lorm, bundle.maan):
            s = summarize(service.directory_sizes())
            stats[(kind, service.name)] = s
            rows.append([kind, service.name, s.mean, s.p99, s.std])
    table = render_table(
        ["lph", "approach", "mean", "p99", "std"],
        rows,
        title="Ablation: LPH flavour vs directory balance (Bounded-Pareto values)",
    )
    (results_dir / "ablation_lph.txt").write_text(table + "\n")

    # Averages are placement-invariant...
    for name in ("Mercury", "LORM", "MAAN"):
        assert stats[("linear", name)].mean == pytest.approx(
            stats[("cdf", name)].mean, rel=1e-6
        )
    # ...but the linear LPH concentrates load: every value-indexed approach
    # gets a fatter tail than with the CDF calibration.
    for name in ("Mercury", "MAAN"):
        assert stats[("linear", name)].p99 > 1.5 * stats[("cdf", name)].p99
    assert stats[("linear", "LORM")].p99 >= stats[("cdf", "LORM")].p99


def test_lph_flavour_does_not_change_answers(ablation_config):
    """Correctness is LPH-invariant: both flavours answer identically."""
    from repro.workloads.generator import QueryKind

    bundles = _build_both(
        ablation_config.scaled(
            num_attributes=8, max_query_attributes=4, infos_per_attribute=40
        )
    )
    wl = bundles["cdf"].workload
    queries = list(wl.query_stream(20, 2, QueryKind.RANGE, label="lph-abl"))
    for query in queries:
        truth = wl.matching_providers_bruteforce(query)
        for bundle in bundles.values():
            for service in bundle.all():
                assert service.multi_query(query).providers == truth


def test_linear_lph_concentrates_query_traffic(ablation_config):
    """The linear LPH compresses Pareto values into few low IDs, so range
    walks visit few nodes — the *same* few nodes for almost every query.
    Cheap-looking walks are really a query hotspot: the handful of low-ID
    nodes absorb the traffic (the flip side of the storage skew above).
    The CDF calibration spreads the walks over the ring, so per-query
    visits track the quantile span (Theorem 4.9's regime)."""
    from repro.workloads.generator import QueryKind

    bundles = _build_both(ablation_config)
    visits = {}
    for kind, bundle in bundles.items():
        bundle.set_collect_matches(False)
        wl = bundle.workload
        queries = list(wl.query_stream(150, 1, QueryKind.RANGE, label="lph-walk"))
        samples = [bundle.mercury.multi_query(q).total_visited for q in queries]
        visits[kind] = np.asarray(samples, dtype=float)
    n = ablation_config.population
    # Linear: walks collapse onto the compressed low-ID region...
    assert visits["linear"].mean() < visits["cdf"].mean() / 3
    # ...while the CDF flavour realises the average-case span*n regime.
    assert visits["cdf"].mean() == pytest.approx(1 + 0.25 * n, rel=0.2)
