"""Ablation — Cycloid routing discipline: adaptive-descend vs MSB-first.

The Cycloid paper routes MSB-first (ascend to the most significant
differing bit, then descend); this library's default descends immediately,
fixing whichever bit the current level governs — no ascending phase.  Both
land on the correct owner; the ablation quantifies the path-length cost of
the classical discipline at paper scale (~2.2 extra hops at d=8), which is
why the adaptive default measures so close to Theorem 4.7's d-hops model.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.overlay.cycloid import CycloidId, CycloidOverlay
from repro.utils.formatting import render_table
from repro.utils.seeding import SeedFactory


def _measure():
    results = {}
    rng = SeedFactory(7).python("routing-ablation")
    targets = [
        (rng.randrange(2048), CycloidId(rng.randrange(8), rng.randrange(256)))
        for _ in range(3000)
    ]
    for mode in ("adaptive", "msb"):
        overlay = CycloidOverlay(8, routing_mode=mode)
        overlay.build_full()
        ids = overlay.node_ids
        hops = []
        for start_idx, target in targets:
            start = overlay.node(ids[start_idx])
            result = overlay.lookup(start, target)
            assert result.owner is overlay.closest_node(target)
            hops.append(result.hops)
        results[mode] = {
            "mean": float(np.mean(hops)),
            "p99": float(np.percentile(hops, 99)),
            "max": float(np.max(hops)),
        }
    return results


def test_routing_mode_ablation(benchmark, results_dir):
    results = run_once(benchmark, _measure)

    table = render_table(
        ["mode", "mean hops", "p99", "max"],
        [[m, r["mean"], r["p99"], r["max"]] for m, r in results.items()],
        title="Ablation: Cycloid routing discipline (d=8, full overlay)",
    )
    (results_dir / "ablation_routing.txt").write_text(table + "\n")

    adaptive, msb = results["adaptive"], results["msb"]
    # Both are O(d); MSB-first pays the ascending phase.
    assert adaptive["mean"] < msb["mean"]
    assert msb["mean"] - adaptive["mean"] > 1.0
    # The adaptive default sits near the d-hops model of Theorem 4.7.
    assert adaptive["mean"] == pytest.approx(8.0, rel=0.2)
    # Worst cases stay bounded for both.
    assert adaptive["max"] <= 2 * 8
    assert msb["max"] <= 3 * 8
