"""Availability under message loss × replication, across all four systems.

The companion of ``test_failure_injection.py`` on the *message* axis: after
an identical crash storm, every approach answers the same multi-attribute
workload while the fault injector drops messages.  Two policies are
measured at 5% loss:

* the default lookup policy (retries + successor-list failover +
  alternate-finger fallback), which should mask the loss entirely —
  with r >= 2 completeness stays >= 0.99;
* retries and failover disabled (``NO_RETRY_POLICY``), where every hop
  gambles on delivery and completeness measurably collapses.

The benchmark also checks the accounting: at positive loss the injector
must actually drop messages and the retry counters must move, and every
failed query must come back flagged ``complete=False`` — never as an
exception, never silently wrong.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments.availability import (
    _crash_storm,
    _query_cases,
    measure_completeness,
    run_availability,
)
from repro.experiments.common import build_services
from repro.experiments.config import SMOKE_CONFIG
from repro.sim.faults import NO_RETRY_POLICY, FaultInjector, FaultPlan
from repro.utils.formatting import render_table

LOSS = 0.05
CONFIG = SMOKE_CONFIG.scaled(
    loss_rates=(0.0, LOSS),
    availability_replications=(1, 2, 3),
    num_availability_queries=120,
)


def _sweep():
    figure = run_availability(CONFIG)

    # The extra cell: r=1, 5% loss, retries/failover disabled.  Rebuilt the
    # same way run_availability builds its r=1 bundle (same seed offset),
    # so the only difference from the "LORM r=1" curve is the policy.
    bundle = build_services(CONFIG, register=True, replication=1, seed_offset=1)
    _crash_storm(bundle, CONFIG)
    cases = _query_cases(bundle, CONFIG)
    no_retry = {}
    dropped = {}
    flagged_ok = {}
    conserved = {}
    for service in bundle.all():
        network = (
            service.overlay.network
            if hasattr(service, "overlay")
            else service.ring.network
        )
        before = network.stats.snapshot()
        injector = FaultInjector(FaultPlan(loss_rate=LOSS, seed=7_000 + len(no_retry)))
        service.configure_faults(injector, NO_RETRY_POLICY)
        try:
            exact = 0
            honest = True
            for query, truth in cases:
                result = service.multi_query(query)
                if result.providers == truth:
                    exact += 1
                elif not result.providers <= truth:
                    # Degraded answers must under-approximate: missing
                    # providers are honest, spurious providers are a lie.
                    honest = False
        finally:
            service.configure_faults(None)
        delta = network.stats.delta_since(before)
        no_retry[service.name] = exact / len(cases)
        dropped[service.name] = delta.dropped
        flagged_ok[service.name] = honest
        conserved[service.name] = (
            delta.messages,
            delta.routing_hops + delta.maintenance_messages + delta.dropped,
        )
    return figure, no_retry, dropped, flagged_ok, conserved


@pytest.fixture(scope="module")
def sweep():
    return _sweep()


def test_availability_loss(benchmark, sweep, results_dir):
    figure, no_retry, dropped, flagged_ok, conserved = run_once(benchmark, lambda: sweep)
    figure.save(results_dir)

    def completeness(name: str, r: int, loss: float) -> float:
        curve = figure.curve(f"{name} r={r}")
        return dict(zip(curve.x, curve.y))[loss]

    names = ("LORM", "Mercury", "SWORD", "MAAN")
    rows = [
        [
            name,
            completeness(name, 1, 0.0),
            completeness(name, 1, LOSS),
            no_retry[name],
            completeness(name, 2, LOSS),
            completeness(name, 3, LOSS),
            dropped[name],
        ]
        for name in names
    ]
    table = render_table(
        [
            "approach",
            "r=1 loss=0",
            "r=1 5% loss",
            "r=1 5% no-retry",
            "r=2 5% loss",
            "r=3 5% loss",
            "msgs dropped",
        ],
        rows,
        title=f"Availability: crash storm + {LOSS:.0%} message loss",
    )
    (results_dir / "availability_loss.txt").write_text(table + "\n")

    for name in names:
        # With retries + failover + replication, 5% loss is fully masked.
        for r in (2, 3):
            assert completeness(name, r, LOSS) >= 0.99, (name, r)
        # Completeness is monotone in the replication factor at every loss.
        for loss in CONFIG.loss_rates:
            by_r = [completeness(name, r, loss) for r in (1, 2, 3)]
            assert by_r == sorted(by_r), (name, loss, by_r)
        # Stripping retries and failover measurably degrades r=1: at least
        # ten points of completeness lost versus the default policy.
        assert no_retry[name] <= completeness(name, 1, LOSS) - 0.10, (
            name,
            no_retry[name],
        )
        # The injector really ran: messages were dropped in the no-retry
        # cell, and every miss was an honest under-approximation.
        assert dropped[name] > 0, name
        assert flagged_ok[name], name
        # Message conservation: every sent message is a routing hop, a
        # maintenance message, or a drop — nothing uncounted.
        messages, accounted = conserved[name]
        assert messages == accounted, (name, messages, accounted)


def test_default_policy_masks_loss(sweep):
    """With the default retry/failover policy, 5% loss costs (almost) no
    completeness relative to the lossless network at the same replication."""
    figure, _, _, _, _ = sweep
    for curve in figure.curves:
        cells = dict(zip(curve.x, curve.y))
        assert cells[LOSS] >= cells[0.0] - 0.02, (curve.name, cells)
