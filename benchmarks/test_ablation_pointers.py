"""Ablation — Mercury's record/pointer strategy (Section IV's footnote).

Measures the trade the paper set aside "to make the different methods
comparable": storing one full record plus (m−1) pointers instead of m full
copies slashes heavyweight storage m-fold, at the price of one extra
pointer-chasing lookup per non-home hit.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.baselines.mercury import MercuryService
from repro.baselines.mercury_pointers import PointerMercuryService
from repro.core.resource import ResourceInfo
from repro.utils.formatting import render_table
from repro.workloads.attributes import AttributeSchema
from repro.workloads.generator import GridWorkload, QueryKind


@pytest.fixture(scope="module")
def setup():
    schema = AttributeSchema.synthetic(24)
    wl = GridWorkload(schema, infos_per_attribute=128, seed=31)

    pointered = PointerMercuryService.build_full(9, schema, seed=31)
    for p in range(wl.num_providers):
        record = [
            ResourceInfo(spec.name, wl.provider_value(spec.name, p), wl.provider_name(p))
            for spec in schema
        ]
        pointered.register_record(record, routed=False)

    plain = MercuryService.build_full(9, schema, seed=31)
    for info in wl.resource_infos():
        plain.register(info, routed=False)
    return wl, plain, pointered


def _measure(setup):
    wl, plain, pointered = setup
    queries = list(wl.query_stream(200, 1, QueryKind.RANGE, label="ptr-abl"))
    plain_hops = [plain.multi_query(q).total_hops for q in queries]
    ptr_hops = [pointered.multi_query(q).total_hops for q in queries]
    return {
        "plain_records": plain.total_info_pieces(),
        "ptr_records": pointered.stored_record_copies(),
        "ptr_pointers": pointered.stored_pointers(),
        "plain_hops": float(np.mean(plain_hops)),
        "ptr_hops": float(np.mean(ptr_hops)),
        "queries": queries,
        "wl": wl,
        "plain": plain,
        "pointered": pointered,
    }


def test_pointer_strategy_tradeoff(benchmark, setup, results_dir):
    out = run_once(benchmark, _measure, setup)
    wl = out["wl"]
    m = len(wl.schema)

    table = render_table(
        ["variant", "record copies", "pointers", "avg hops / range query"],
        [
            ["Mercury", out["plain_records"], 0, out["plain_hops"]],
            ["Mercury+ptr", out["ptr_records"], out["ptr_pointers"], out["ptr_hops"]],
        ],
        title="Ablation: Mercury record/pointer strategy",
    )
    (results_dir / "ablation_pointers.txt").write_text(table + "\n")

    # Storage: m-fold fewer heavyweight record copies.
    assert out["plain_records"] == m * out["ptr_records"]
    assert out["ptr_pointers"] == (m - 1) * wl.num_providers
    # Cost: pointer chasing makes queries at least as expensive in hops.
    assert out["ptr_hops"] >= out["plain_hops"]


def test_pointer_strategy_answers_identical(setup):
    wl, plain, pointered = setup
    for query in wl.query_stream(30, 2, QueryKind.RANGE, label="ptr-eq"):
        assert (
            pointered.multi_query(query).providers
            == plain.multi_query(query).providers
            == wl.matching_providers_bruteforce(query)
        )
