"""Latency extension figure at paper scale.

Parallel sub-query resolution means response time is set by the slowest
sub-query; the sequential range walks of the system-wide approaches then
dominate end-to-end latency by orders of magnitude — Theorem 4.9 in time
units.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.latency import run_latency


def test_latency_figure(benchmark, paper_config, paper_bundle, results_dir):
    figure = run_once(benchmark, run_latency, paper_config, paper_bundle)
    figure.save(results_dir)

    lorm = figure.curve("LORM").y
    mercury = figure.curve("Mercury").y
    sword = figure.curve("SWORD").y
    maan = figure.curve("MAAN").y
    for i in range(len(lorm)):
        # System-wide range walks dominate latency by >20x over LORM.
        assert mercury[i] > 20 * lorm[i]
        assert maan[i] >= mercury[i] * 0.95
        assert sword[i] <= lorm[i]
    # Parallelism: tripling the attribute count far less than triples
    # latency for every approach.
    for name in ("LORM", "Mercury", "SWORD", "MAAN"):
        ys = figure.curve(name).y
        assert ys[2] < 2.0 * ys[0]
