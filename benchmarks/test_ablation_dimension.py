"""Ablation — Cycloid dimension d (DESIGN.md §4, choice 2).

d controls LORM's central trade-off: lookup cost and range-walk length grow
with d (hops ~ d, walk ~ 1 + d/4) while per-node directory load shrinks
(~k/d per cluster member) and the SWORD-relative reduction improves
(Theorem 4.4's factor d).  This bench sweeps d and records both sides.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.analysis import theorems
from repro.core.lorm import LormService
from repro.sim.metrics import summarize
from repro.utils.formatting import render_table
from repro.workloads.attributes import AttributeSchema
from repro.workloads.generator import GridWorkload, QueryKind

DIMS = (4, 5, 6, 7, 8)


def _sweep():
    schema = AttributeSchema.synthetic(16)  # must fit the smallest 2**d cluster space
    rows = []
    for d in DIMS:
        service = LormService.build_full(d, schema, seed=100 + d)
        wl = GridWorkload(schema, infos_per_attribute=96, seed=200 + d)
        for info in wl.resource_infos():
            service.register(info, routed=False)
        point_queries = list(wl.query_stream(300, 1, QueryKind.POINT, label=f"d{d}"))
        hops = float(np.mean([service.multi_query(q).total_hops for q in point_queries]))
        service.collect_matches = False
        range_queries = list(wl.query_stream(300, 1, QueryKind.RANGE, label=f"dr{d}"))
        visited = float(
            np.mean([service.multi_query(q).total_visited for q in range_queries])
        )
        dir_stats = summarize(service.directory_sizes())
        rows.append(
            {
                "d": d,
                "nodes": service.num_nodes(),
                "hops": hops,
                "visited": visited,
                "dir_p99": dir_stats.p99,
                "outlinks": float(np.mean(service.outlink_counts())),
            }
        )
    return rows


def test_dimension_tradeoff(benchmark, results_dir):
    rows = run_once(benchmark, _sweep)

    table = render_table(
        ["d", "nodes", "avg hops", "avg visited", "dir p99", "outlinks"],
        [[r["d"], r["nodes"], r["hops"], r["visited"], r["dir_p99"], r["outlinks"]] for r in rows],
        title="Ablation: Cycloid dimension d (LORM)",
    )
    (results_dir / "ablation_dimension.txt").write_text(table + "\n")

    by_d = {r["d"]: r for r in rows}
    # Hop cost grows with d, tracking Theorem 4.7's d-hops model.
    assert by_d[8]["hops"] > by_d[4]["hops"]
    for d in DIMS:
        predicted = theorems.cycloid_expected_lookup_hops(d)
        assert by_d[d]["hops"] == pytest.approx(predicted, rel=0.45)
    # Range-walk cost tracks 1 + d/4 (Theorem 4.9's LORM term).
    for d in DIMS:
        assert by_d[d]["visited"] == pytest.approx(1 + d / 4, rel=0.35)
    # Directory tails shrink as clusters widen (Theorem 4.4's d-fold gain).
    assert by_d[8]["dir_p99"] < by_d[4]["dir_p99"]
    # Degree stays constant regardless of d.
    assert all(r["outlinks"] <= 7.0 for r in rows)
