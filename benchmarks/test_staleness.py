"""Staleness extension figure at a representative scale.

Provider churn makes unexpired directory entries lie; lease TTLs bound the
lie.  Uses a quarter-scale grid (the dynamics are per-provider, so the
result is scale-insensitive; the paper-scale bundle is not needed).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.staleness import run_staleness


def test_staleness_figure(benchmark, paper_config, results_dir):
    config = paper_config.scaled(
        dimension=6, chord_bits=9, num_attributes=32, infos_per_attribute=64
    )
    figure = run_once(benchmark, run_staleness, config)
    figure.save(results_dir)

    leased = figure.curve("with expiry").y
    baseline = figure.curve("no expiry (baseline)").y[0]
    # Without expiry a large share of answers cites departed providers.
    assert baseline > 0.15
    # Every tested TTL stays below the baseline, and the short TTLs (well
    # under the run duration) cut staleness by at least 3x.
    assert all(v < baseline for v in leased)
    assert all(v < baseline / 3 for v in leased[:2])
    # Staleness grows (weakly) with the TTL.
    assert leased[0] <= leased[-1] + 0.02
