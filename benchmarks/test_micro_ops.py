"""Micro-benchmarks of the primitive operations every figure rests on.

These use pytest-benchmark's normal multi-round timing (the operations are
microseconds-scale): Chord lookup, Cycloid lookup, routed registration per
approach, range walks, and overlay construction.
"""

from __future__ import annotations

import itertools

import pytest

from repro.core.resource import AttributeConstraint, Query
from repro.overlay.chord import ChordRing
from repro.overlay.cycloid import CycloidId, CycloidOverlay
from repro.utils.seeding import SeedFactory
from repro.workloads.generator import QueryKind


@pytest.fixture(scope="module")
def micro_bundle():
    """A private paper-scale bundle: the registration/query micro-benches
    mutate directories, so they must not touch the shared session bundle
    other benches measure."""
    from repro.experiments.common import build_services
    from repro.experiments.config import PAPER_CONFIG

    return build_services(PAPER_CONFIG)


@pytest.fixture(scope="module")
def chord_2048():
    ring = ChordRing(11)
    ring.build_full()
    return ring


@pytest.fixture(scope="module")
def cycloid_2048():
    overlay = CycloidOverlay(8)
    overlay.build_full()
    return overlay


class TestLookupLatency:
    def test_chord_lookup(self, benchmark, chord_2048):
        rng = SeedFactory(0).python("chord-micro")
        pairs = [
            (chord_2048.node(rng.randrange(2048)), rng.randrange(2048))
            for _ in range(512)
        ]
        cycle = itertools.cycle(pairs)

        def op():
            start, key = next(cycle)
            return chord_2048.lookup(start, key).hops

        result = benchmark(op)
        assert result >= 0

    def test_cycloid_lookup(self, benchmark, cycloid_2048):
        rng = SeedFactory(0).python("cycloid-micro")
        ids = cycloid_2048.node_ids
        pairs = [
            (
                cycloid_2048.node(rng.choice(ids)),
                CycloidId(rng.randrange(8), rng.randrange(256)),
            )
            for _ in range(512)
        ]
        cycle = itertools.cycle(pairs)

        def op():
            start, target = next(cycle)
            return cycloid_2048.lookup(start, target).hops

        result = benchmark(op)
        assert result >= 0


class TestRegistrationThroughput:
    @pytest.mark.parametrize("approach", ["LORM", "Mercury", "SWORD", "MAAN"])
    def test_routed_register(self, benchmark, micro_bundle, approach):
        service = micro_bundle.by_name(approach)
        infos = itertools.cycle(
            micro_bundle.workload.infos_for_attribute("cpu-mhz")
        )
        benchmark(lambda: service.register(next(infos), routed=True))


class TestQueryLatency:
    @pytest.mark.parametrize("approach", ["LORM", "Mercury", "SWORD", "MAAN"])
    def test_point_query(self, benchmark, micro_bundle, approach):
        service = micro_bundle.by_name(approach)
        queries = itertools.cycle(
            list(
                micro_bundle.workload.query_stream(
                    64, 1, QueryKind.POINT, label=f"micro-{approach}"
                )
            )
        )
        benchmark(lambda: service.multi_query(next(queries)).total_hops)

    @pytest.mark.parametrize("approach", ["LORM", "SWORD"])
    def test_range_query_cheap_approaches(self, benchmark, micro_bundle, approach):
        service = micro_bundle.by_name(approach)
        spec = micro_bundle.workload.schema.spec("cpu-mhz")
        dist = spec.distribution
        q = Query(AttributeConstraint.between("cpu-mhz", dist.ppf(0.25), dist.ppf(0.5)))
        benchmark(lambda: service.query(q).visited_nodes)


class TestConstruction:
    def test_build_chord_2048(self, benchmark):
        def build():
            ring = ChordRing(11)
            ring.build_full()
            return ring.num_nodes

        assert benchmark.pedantic(build, rounds=3, iterations=1) == 2048

    def test_build_cycloid_2048(self, benchmark):
        def build():
            overlay = CycloidOverlay(8)
            overlay.build_full()
            return overlay.num_nodes

        assert benchmark.pedantic(build, rounds=3, iterations=1) == 2048
