"""Ablation — attribute placement: collision-free spread vs plain hashing.

The paper's model gives every attribute its own cluster (LORM) and its own
root node (SWORD/MAAN) — "the information is accumulated in 200 nodes
among 2048 nodes".  Plain consistent hashing of 200 attributes into 256
Cycloid clusters collides ~38% of clusters, which fattens LORM's directory
tail well past the theorems' predictions.  This ablation quantifies that
gap at paper scale, justifying the library's `spread` default
(DESIGN.md's substitution table).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.core.lorm import LormService
from repro.experiments.common import build_workload
from repro.sim.metrics import summarize
from repro.utils.formatting import render_table


def _measure(config):
    workload = build_workload(config)
    stats = {}
    for placement in ("spread", "hash"):
        service = LormService.build_full(
            config.dimension,
            workload.schema,
            seed=config.seed,
            attr_placement=placement,
        )
        for info in workload.resource_infos():
            service.register(info, routed=False)
        stats[placement] = summarize(service.directory_sizes())
    return stats


def test_attr_placement_tail(benchmark, paper_config, results_dir):
    stats = run_once(benchmark, _measure, paper_config)

    d = paper_config.dimension
    table = render_table(
        ["placement", "mean", "p99", "max"],
        [
            [name, s.mean, s.p99, s.maximum]
            for name, s in stats.items()
        ],
        title="Ablation: LORM attribute placement (paper scale)",
    )
    (results_dir / "ablation_attr_placement.txt").write_text(
        table + f"\nk/d (one attribute per cluster, uniform values) = "
        f"{paper_config.infos_per_attribute / d:.1f}\n"
    )

    # Means are identical (same total info, same node count)...
    assert stats["hash"].mean == pytest.approx(stats["spread"].mean, rel=1e-9)
    # ...but hashing collisions fatten the tail by ~2x or more: colliding
    # clusters carry 2-3 attributes' worth of pieces.
    assert stats["hash"].p99 > 1.8 * stats["spread"].p99
    assert stats["hash"].maximum > 1.8 * stats["spread"].maximum
    # Spread placement keeps the paper's "slightly above analysis" regime.
    k_over_d = paper_config.infos_per_attribute / d
    assert stats["spread"].p99 < 1.6 * k_over_d
