"""Benchmark fixtures: paper-scale services, shared across figure benches.

Every bench runs at the paper's Section V scale (n = 2048, m = 200,
k = 500) unless stated otherwise, regenerates one figure, writes its CSV
and text rendering under ``results/``, and asserts the paper's qualitative
shape.  ``pytest benchmarks/ --benchmark-only`` therefore both measures the
harness and reproduces the evaluation.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.common import ServiceBundle, build_services
from repro.experiments.config import PAPER_CONFIG, ExperimentConfig

#: Where figure outputs land (CSV + rendered text).
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def paper_config() -> ExperimentConfig:
    """The paper's exact Section V parameters."""
    return PAPER_CONFIG


@pytest.fixture(scope="session")
def paper_bundle(paper_config) -> ServiceBundle:
    """All four services at paper scale, fully loaded (built once)."""
    return build_services(paper_config)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def run_once(benchmark, fn, *args, **kwargs):
    """Run a heavyweight experiment exactly once under the benchmark timer.

    Figure sweeps are minutes-scale; pedantic single-round mode measures
    them without pytest-benchmark's default multi-round calibration.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
