"""Figure 4 bench — non-range lookup hops at paper scale.

1000 point queries per attribute count (1..10), all four approaches;
asserts Theorems 4.7/4.8: Mercury == SWORD == MAAN/2, and LORM ≈
MAAN / (log2(n)/d) sitting strictly between Mercury and MAAN.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments import figure4


@pytest.fixture(scope="module")
def fig4_panels(paper_config, paper_bundle):
    """Run the sweep once for both panels (shared)."""
    return figure4.run_fig4(paper_config, paper_bundle)


def test_fig4a(benchmark, paper_config, fig4_panels, results_dir):
    avg = run_once(benchmark, lambda: fig4_panels[0])
    avg.save(results_dir)

    n_attrs = avg.curve("MAAN").x
    maan, lorm = avg.curve("MAAN").y, avg.curve("LORM").y
    mercury, sword = avg.curve("Mercury").y, avg.curve("SWORD").y
    analysis_lorm = avg.curve("Analysis-LORM").y
    analysis_ms = avg.curve("Analysis-SWORD/Mercury").y

    for i in range(len(n_attrs)):
        # Ordering: Mercury/SWORD < LORM < MAAN (the paper's Figure 4).
        assert mercury[i] < lorm[i] < maan[i]
        # Theorem 4.8: Mercury and SWORD overlap and equal MAAN / 2.
        assert mercury[i] == pytest.approx(sword[i], rel=0.06)
        assert mercury[i] == pytest.approx(analysis_ms[i], rel=0.06)
        # Theorem 4.7: LORM within ~15% of MAAN / (11/8), "very close".
        assert lorm[i] == pytest.approx(analysis_lorm[i], rel=0.18)
        # Hops grow linearly with the attribute count.
    assert maan[-1] == pytest.approx(maan[0] * n_attrs[-1], rel=0.05)


def test_fig4b(benchmark, paper_config, fig4_panels, results_dir):
    total = run_once(benchmark, lambda: fig4_panels[1])
    total.save(results_dir)

    num_queries = paper_config.num_requesters * paper_config.queries_per_requester
    avg_first = total.curve("MAAN").y[0] / num_queries
    # Per-attribute MAAN hops = 2 Chord lookups ~ log2(n) (+2 final hops).
    assert 10.0 < avg_first < 14.5
