"""Figure 3 benches — maintenance overhead at paper scale.

Regenerates all four panels and asserts the paper's claims:

* 3(a): LORM's outlinks are constant (≤7) and at least m times below
  Mercury's (Theorem 4.1);
* 3(b): LORM's average directory size is half MAAN's (Theorem 4.2), its
  spread roughly d(1+m/n)=8.78× tighter (Theorem 4.3);
* 3(c): same average as SWORD, ~d× tighter spread (Theorem 4.4);
* 3(d): same average as Mercury, Mercury at most n/(dm)=1.28× more
  balanced (Theorem 4.5).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments import figure3


class TestFig3a:
    def test_fig3a(self, benchmark, paper_config, results_dir):
        result = run_once(benchmark, figure3.run_fig3a, paper_config)
        result.save(results_dir)

        lorm = result.curve("LORM")
        mercury = result.curve("Mercury")
        bound = result.curve("Analysis>LORM")
        # LORM: constant degree, independent of network size.
        assert max(lorm.y) <= 7.0
        assert max(lorm.y) - min(lorm.y) < 0.5
        # Theorem 4.1 at every swept size: saving >= m (LORM <= Mercury/m).
        assert all(l <= b for l, b in zip(lorm.y, bound.y))
        # Mercury's overhead is in the thousands at m=200.
        assert min(mercury.y) > 1000


class TestFig3bcd:
    def test_fig3b(self, benchmark, paper_config, paper_bundle, results_dir):
        result = run_once(benchmark, figure3.run_fig3b, paper_config, paper_bundle)
        result.save(results_dir)

        maan, lorm = result.row("MAAN"), result.row("LORM")
        analysis = result.row("Analysis-LORM")
        # Theorem 4.2: averages differ exactly by 2 (same total / same n).
        assert lorm.mean == pytest.approx(maan.mean / 2, rel=1e-6)
        assert analysis.mean == pytest.approx(lorm.mean, rel=1e-6)
        # LORM's 99th percentile close to (slightly above) the analysis, as
        # the paper observes.
        assert lorm.p99 >= analysis.p99 * 0.8
        assert lorm.p99 <= analysis.p99 * 2.5
        # MAAN's spread is dominated by the k-piece attribute roots: its
        # tail sits ~d(1+m/n) = 8.78x above LORM's (Theorem 4.3).
        assert maan.p99 > 5 * lorm.p99

    def test_fig3c(self, benchmark, paper_config, paper_bundle, results_dir):
        result = run_once(benchmark, figure3.run_fig3c, paper_config, paper_bundle)
        result.save(results_dir)

        sword, lorm = result.row("SWORD"), result.row("LORM")
        analysis = result.row("Analysis-LORM")
        assert lorm.mean == pytest.approx(sword.mean, rel=1e-6)
        # SWORD pools whole attributes: p99 around k=500.
        assert sword.p99 >= 400
        # LORM's p99 lands near SWORD/d, slightly above (paper's remark).
        assert lorm.p99 == pytest.approx(analysis.p99, rel=1.0)
        assert lorm.p99 < sword.p99 / 3

    def test_fig3d(self, benchmark, paper_config, paper_bundle, results_dir):
        result = run_once(benchmark, figure3.run_fig3d, paper_config, paper_bundle)
        result.save(results_dir)

        mercury, lorm = result.row("Mercury"), result.row("LORM")
        # Equal averages (Theorem 4.2)...
        assert lorm.mean == pytest.approx(mercury.mean, rel=1e-6)
        # ...and Mercury at least as balanced (Theorem 4.5), but within the
        # small n/(dm) = 1.28 factor — both are "balanced" approaches.
        assert mercury.p99 <= lorm.p99 * 1.1
        assert lorm.p99 <= mercury.p99 * 2.5
