"""Theorem-table bench — every Section IV constant validated at paper scale.

This is the reproduction's tightest summary: each theorem's closed-form
constant (8.78, 1.28, 11/8, 2, 513m, …) against its direct measurement at
n=2048, m=200, k=500, d=8.
"""

from __future__ import annotations


from benchmarks.conftest import run_once
from repro.experiments.theorem_table import run_theorem_table


def test_theorem_table(benchmark, paper_config, paper_bundle, results_dir):
    table = run_once(benchmark, run_theorem_table, paper_config, paper_bundle)
    table.save(results_dir)

    # Exact identities.
    assert table.row("4.2").measured == 2.0
    sword49 = next(r for r in table.rows if "SWORD visited" in r.quantity)
    assert sword49.measured == 1.0
    worst_mercury = next(r for r in table.rows if "Mercury worst" in r.quantity)
    assert worst_mercury.measured == paper_config.population

    # Theorem 4.1 is a lower bound: the measured saving must be at least
    # m*log(n)/d (LORM's constant-degree table makes it bigger in practice).
    row41 = table.row("4.1")
    assert row41.measured >= row41.predicted

    # Ratio theorems within tight tolerances at paper scale.
    tolerances = {"4.3": 0.20, "4.4": 0.20, "4.5": 0.10,
                  "4.7": 0.10, "4.8": 0.05}
    for theorem, tolerance in tolerances.items():
        row = table.row(theorem)
        assert row.relative_error < tolerance, (
            f"Theorem {theorem}: predicted {row.predicted:.3f}, "
            f"measured {row.measured:.3f}"
        )

    # Theorem 4.9 per-approach averages within 10%.
    for row in table.rows:
        if row.theorem == "4.9":
            assert row.relative_error < 0.10, row.quantity
