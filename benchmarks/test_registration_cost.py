"""Registration (information-maintenance) cost across the four approaches.

Not a figure in the paper, but implied by its overhead analysis: MAAN pays
two routed insertions per info piece (Theorem 4.2's doubling shows up in
write traffic too), Mercury/SWORD one Chord insertion, LORM one Cycloid
insertion.  This bench measures routed-insert hop costs at paper scale and
checks those relationships.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.analysis import theorems
from repro.experiments.common import build_services
from repro.utils.formatting import render_table


def _measure(config):
    bundle = build_services(config, register=False)
    wl = bundle.workload
    infos = [
        info
        for attr in wl.schema.names[:20]
        for info in wl.infos_for_attribute(attr)[:50]
    ]
    means = {}
    for service in bundle.all():
        hops = [service.register(info, routed=True) for info in infos]
        means[service.name] = float(np.mean(hops))
    return means


def test_registration_cost(benchmark, paper_config, results_dir):
    means = run_once(benchmark, _measure, paper_config)

    table = render_table(
        ["approach", "avg hops per routed insert"],
        [[name, value] for name, value in means.items()],
        title="Registration cost at paper scale (1000 inserts/approach)",
    )
    (results_dir / "registration_cost.txt").write_text(table + "\n")

    n, d = paper_config.population, paper_config.dimension
    # MAAN registers twice: exactly double Mercury's insert cost.
    assert means["MAAN"] == pytest.approx(2 * means["Mercury"], rel=0.08)
    # SWORD and Mercury both pay one Chord lookup.
    assert means["SWORD"] == pytest.approx(means["Mercury"], rel=0.08)
    # LORM pays one Cycloid lookup: costlier than one Chord lookup,
    # cheaper than MAAN's two.
    assert means["Mercury"] < means["LORM"] < means["MAAN"]
    # And the MAAN/LORM ratio tracks Theorem 4.7's log(n)/d.
    assert means["MAAN"] / means["LORM"] == pytest.approx(
        theorems.thm47_contacted_reduction_vs_maan(n, d), rel=0.15
    )
