"""Ablation — range-query span (DESIGN.md §4, choice 3).

Theorem 4.9's "average case" assumes range queries cover 1/4 of the value
space; the paper's workload generator is calibrated to that regime.  This
bench sweeps the mean span fraction and shows how each approach's
visited-node count responds: Mercury/MAAN scale linearly with span × n,
LORM with span × d, and SWORD not at all — so LORM's advantage is
span-robust, which is the claim behind Theorem 4.10's worst case.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import run_once
from repro.experiments.common import build_services
from repro.utils.formatting import render_table
from repro.workloads.generator import QueryKind

SPANS = (0.05, 0.125, 0.25, 0.5)


def _sweep(config):
    results = {}
    for span in SPANS:
        bundle = build_services(config.scaled(mean_span_fraction=span))
        bundle.set_collect_matches(False)
        wl = bundle.workload
        queries = list(wl.query_stream(200, 1, QueryKind.RANGE, label=f"span{span}"))
        results[span] = {
            s.name: float(np.mean([s.multi_query(q).total_visited for q in queries]))
            for s in bundle.all()
        }
    return results


@pytest.fixture(scope="module")
def span_config(paper_config):
    return paper_config.scaled(
        dimension=6, chord_bits=9, num_attributes=48, infos_per_attribute=96
    )


def test_span_scaling(benchmark, span_config, results_dir):
    results = run_once(benchmark, _sweep, span_config)

    rows = [
        [span, vals["LORM"], vals["Mercury"], vals["SWORD"], vals["MAAN"]]
        for span, vals in results.items()
    ]
    table = render_table(
        ["mean span", "LORM", "Mercury", "SWORD", "MAAN"],
        rows,
        title="Ablation: visited nodes per 1-attribute range query vs span",
    )
    (results_dir / "ablation_span.txt").write_text(table + "\n")

    n, d = span_config.population, span_config.dimension
    for span, vals in results.items():
        # Mercury ~ 1 + span * n; MAAN adds the extra attribute root.
        assert vals["Mercury"] == pytest.approx(1 + span * n, rel=0.15)
        assert vals["MAAN"] == pytest.approx(2 + span * n, rel=0.15)
        # LORM ~ 1 + span * d — the cluster confines the walk.
        assert vals["LORM"] == pytest.approx(1 + span * d, rel=0.3)
        # SWORD is span-invariant.
        assert vals["SWORD"] == 1.0

    # The LORM-vs-Mercury gap widens linearly with span (Theorem 4.9's
    # m(n-d)/4 saving generalises to span * (n - d)).
    gaps = {span: vals["Mercury"] - vals["LORM"] for span, vals in results.items()}
    assert gaps[0.5] > gaps[0.05] * 5


def test_worst_case_full_span(span_config):
    """Theorem 4.10's worst case: a full-domain range query probes the
    whole system in Mercury/MAAN but at most d nodes in LORM."""
    bundle = build_services(span_config)
    bundle.set_collect_matches(False)
    from repro.core.resource import AttributeConstraint, Query

    spec = bundle.workload.schema.spec("cpu-mhz")
    q = Query(AttributeConstraint.between("cpu-mhz", spec.lo, spec.hi))
    n, d = span_config.population, span_config.dimension
    assert bundle.mercury.query(q).visited_nodes == n
    assert bundle.maan.query(q).visited_nodes == n + 1
    assert bundle.lorm.query(q).visited_nodes <= d
    assert bundle.sword.query(q).visited_nodes == 1
