"""Figure 5 bench — range-query visited nodes at paper scale.

1000 range queries per attribute count; asserts Theorem 4.9's average-case
values: Mercury ≈ 513m, MAAN ≈ 514m, LORM ≈ 3m (slightly below, as the
paper observes), SWORD = m exactly.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments import figure5


@pytest.fixture(scope="module")
def fig5_panels(paper_config, paper_bundle):
    return figure5.run_fig5(paper_config, paper_bundle)


def test_fig5a(benchmark, paper_config, fig5_panels, results_dir):
    panel = run_once(benchmark, lambda: fig5_panels[0])
    panel.save(results_dir)

    nq = paper_config.num_range_queries
    for name, analysis in (("MAAN", "Analysis-MAAN"), ("Mercury", "Analysis-Mercury")):
        measured = panel.curve(name)
        predicted = panel.curve(analysis)
        for i, m in enumerate(measured.x):
            per_query = measured.y[i] / nq
            # Theorem 4.9: m(2 + n/4) for MAAN / m(1 + n/4) for Mercury,
            # within the noise of the random span draw.
            assert per_query == pytest.approx(predicted.y[i] / nq, rel=0.1)
    # MAAN and Mercury overlap (they differ by m per query out of ~513m).
    maan, mercury = panel.curve("MAAN").y, panel.curve("Mercury").y
    for a, b in zip(maan, mercury):
        assert a == pytest.approx(b, rel=0.05)
        assert a >= b  # MAAN's extra attribute-root visit


def test_fig5b(benchmark, paper_config, fig5_panels, results_dir):
    panel = run_once(benchmark, lambda: fig5_panels[1])
    panel.save(results_dir)

    nq = paper_config.num_range_queries
    sword = panel.curve("SWORD")
    lorm = panel.curve("LORM")
    analysis_lorm = panel.curve("Analysis-LORM")
    for i, m in enumerate(sword.x):
        # SWORD: exactly m visited nodes per query.
        assert sword.y[i] == nq * m
        # LORM: close to — and, as in the paper, slightly below — m(1+d/4).
        assert lorm.y[i] == pytest.approx(analysis_lorm.y[i], rel=0.15)
        assert lorm.y[i] <= analysis_lorm.y[i] * 1.02
        # LORM within m*d of SWORD (Theorem 4.9's md/4 gap, loose bound).
        assert lorm.y[i] - sword.y[i] <= nq * m * paper_config.dimension


def test_fig5_headline_gap(fig5_panels, paper_config):
    """The paper's headline: system-wide approaches visit ~500x more nodes
    than LORM for range discovery."""
    a, b = fig5_panels
    mercury = a.curve("Mercury").y[0]
    lorm = b.curve("LORM").y[0]
    assert mercury / lorm > 100
