"""Figure 6 bench — efficiency under churn at paper scale.

Sweeps R = 0.1 … 0.5 with event-driven churn, stabilization and 10000
alternating point/range requests per rate, and asserts the paper's
Section V-C findings: zero failures, flat curves in R, and agreement with
the static analysis lines of Theorems 4.7–4.9.

Note on scale: the request count per rate is the paper's 10000.  The
dominant cost is the system-wide range walks of Mercury/MAAN (~512 visited
nodes per query), exactly as it dominates the paper's own simulation.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.experiments import figure6


@pytest.fixture(scope="module")
def fig6_panels(paper_config):
    return figure6.run_fig6(paper_config)


def test_fig6a(benchmark, paper_config, fig6_panels, results_dir):
    panel = run_once(benchmark, lambda: fig6_panels[0])
    panel.save(results_dir)

    # "There were no failures in all test cases."
    assert any("no failures" in note for note in panel.notes), panel.notes

    for name, analysis_name, slack in (
        ("MAAN", "Analysis-MAAN", 0.35),
        ("LORM", "Analysis-LORM", 0.35),
        ("Mercury", "Analysis-SWORD/Mercury", 0.35),
    ):
        measured = panel.curve(name).y
        level = panel.curve(analysis_name).y[0]
        for value in measured:
            assert value == pytest.approx(level, rel=slack)
        # Flat in R: the paper's "does not change with the rate R".
        assert max(measured) - min(measured) < 0.2 * max(measured)

    # Ordering preserved under churn.
    a = fig6_panels[0]
    for i in range(len(a.curve("MAAN").x)):
        assert a.curve("Mercury").y[i] < a.curve("LORM").y[i] < a.curve("MAAN").y[i]


def test_fig6b(benchmark, paper_config, fig6_panels, results_dir):
    panel = run_once(benchmark, lambda: fig6_panels[1])
    panel.save(results_dir)

    n, d = paper_config.population, paper_config.dimension
    mercury_level = 1 + n / 4
    for name in ("Mercury", "MAAN"):
        for value in panel.curve(name).y:
            assert value == pytest.approx(mercury_level, rel=0.12)
    for value in panel.curve("LORM").y:
        assert value == pytest.approx(1 + d / 4, rel=0.35)
    for value in panel.curve("SWORD").y:
        assert value == pytest.approx(1.0, abs=0.01)

    # Mercury/MAAN overlap, as in the paper ("differ no more than 30").
    for a, b in zip(panel.curve("MAAN").y, panel.curve("Mercury").y):
        assert abs(a - b) < 30
