"""Deterministic hierarchical seeding.

Every stochastic component in the library (overlay construction, workload
generation, churn, query sampling) draws its randomness from a
:class:`SeedFactory`, which derives independent child streams from a single
root seed by *label*.  Two runs with the same root seed and the same labels
therefore produce byte-identical results regardless of the order in which
components are constructed — a requirement for reproducible experiments and
for the resumable benchmark harness.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field

import numpy as np

__all__ = ["SeedFactory"]


def _label_to_entropy(label: str) -> int:
    """Map a textual label to a stable 64-bit integer.

    Uses SHA-256 rather than :func:`hash` because the latter is salted per
    interpreter run (PYTHONHASHSEED), which would break reproducibility.
    """
    digest = hashlib.sha256(label.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass
class SeedFactory:
    """Derives independent, label-addressed random streams from one seed.

    Parameters
    ----------
    root_seed:
        The experiment's master seed.  All derived generators are a pure
        function of ``(root_seed, label)``.

    Examples
    --------
    >>> f = SeedFactory(42)
    >>> g1 = f.numpy("workload")
    >>> g2 = SeedFactory(42).numpy("workload")
    >>> bool(g1.integers(1 << 30) == g2.integers(1 << 30))
    True
    """

    root_seed: int
    _issued: dict[str, int] = field(default_factory=dict, repr=False)

    def child_seed(self, label: str) -> int:
        """Return the derived integer seed for ``label``.

        Repeated calls with the same label return the same seed; the label
        registry is kept so callers can introspect what was issued.
        """
        seed = (_label_to_entropy(label) ^ (self.root_seed * 0x9E3779B97F4A7C15)) % (1 << 63)
        self._issued[label] = seed
        return seed

    def numpy(self, label: str) -> np.random.Generator:
        """A NumPy :class:`~numpy.random.Generator` keyed by ``label``."""
        return np.random.default_rng(self.child_seed(label))

    def python(self, label: str) -> random.Random:
        """A stdlib :class:`random.Random` keyed by ``label``."""
        return random.Random(self.child_seed(label))

    def fork(self, label: str) -> "SeedFactory":
        """A child factory whose streams are independent of the parent's."""
        return SeedFactory(self.child_seed(label))

    @property
    def issued_labels(self) -> tuple[str, ...]:
        """Labels for which seeds have been handed out, in issue order."""
        return tuple(self._issued)
