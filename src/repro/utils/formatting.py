"""Plain-text formatting for experiment reports.

The offline environment has no plotting stack, so every figure in the paper
is emitted as (a) a CSV file and (b) an aligned text table / ASCII chart.
This module provides the table renderer shared by all reports.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_count", "format_float", "render_table"]


def format_float(value: float, precision: int = 3) -> str:
    """Format a float compactly: trims trailing zeros, keeps magnitude."""
    if value != value:  # NaN
        return "nan"
    if abs(value) >= 1e6 or (value != 0 and abs(value) < 1e-3):
        return f"{value:.{precision}e}"
    text = f"{value:.{precision}f}".rstrip("0").rstrip(".")
    return text if text not in ("", "-") else "0"

def format_count(value: int) -> str:
    """Format an integer with thousands separators."""
    return f"{value:,}"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned monospaced table.

    Numeric cells are right-aligned, text cells left-aligned.  Floats are
    formatted with :func:`format_float`.
    """
    rendered_rows: list[list[str]] = []
    for row in rows:
        cells: list[str] = []
        for cell in row:
            if isinstance(cell, bool):
                cells.append(str(cell))
            elif isinstance(cell, float):
                cells.append(format_float(cell))
            elif isinstance(cell, int):
                cells.append(format_count(cell))
            else:
                cells.append(str(cell))
        rendered_rows.append(cells)

    widths = [len(h) for h in headers]
    for cells in rendered_rows:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))

    def fmt_line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_line(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_line(cells) for cells in rendered_rows)
    return "\n".join(lines)
