"""Shared helpers: deterministic seeding, validation, text formatting."""

from repro.utils.formatting import format_count, format_float, render_table
from repro.utils.seeding import SeedFactory
from repro.utils.validation import require, require_in_range, require_positive

__all__ = [
    "SeedFactory",
    "format_count",
    "format_float",
    "render_table",
    "require",
    "require_in_range",
    "require_positive",
]
