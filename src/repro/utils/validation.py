"""Small argument-validation helpers used across the package.

These raise early with precise messages instead of letting malformed
parameters surface as obscure failures deep inside a simulation run.
"""

from __future__ import annotations

from typing import Any

__all__ = ["require", "require_positive", "require_in_range"]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str) -> None:
    """Raise unless ``value`` is strictly positive."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")


def require_in_range(value: Any, lo: Any, hi: Any, name: str) -> None:
    """Raise unless ``lo <= value <= hi`` (inclusive both ends)."""
    if not (lo <= value <= hi):
        raise ValueError(f"{name} must be in [{lo!r}, {hi!r}], got {value!r}")
