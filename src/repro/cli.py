"""Command-line interface: regenerate any figure of the paper.

Examples
--------
::

    repro list
    repro run fig4a --scale smoke
    repro run fig3a fig3b --scale paper --out results/
    repro run fig6a --invariants
    repro all --scale smoke
    repro availability --scale smoke --loss 0 0.05 --replication 1 2
    repro chaos --smoke --seed 0
    repro durability --smoke --seed 0
    repro durability --policies replication:2 erasure:2+1 --systems LORM
    repro tail --smoke --seed 0
    repro hotspot --smoke --seed 0
    repro hotspot --systems SWORD --zipf-s 0 1.1 --out results/
    repro tradeoff --smoke --seed 0
    repro tradeoff --overlays singlehop record:f4 --out results/
    repro trace --system maan --overlay singlehop --format jsonl
    repro check --systems all --seed 0
    repro bench --smoke --seed 0
    repro bench compare benchmarks/baseline.json BENCH_20260805T120000Z.json
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Sequence

from repro.experiments.config import PAPER_CONFIG, SMOKE_CONFIG, ExperimentConfig
from repro.experiments.runner import FIGURES, run_all_figures, run_figure

__all__ = ["main", "build_parser"]

_SCALES = {"paper": PAPER_CONFIG, "smoke": SMOKE_CONFIG}


def build_parser() -> argparse.ArgumentParser:
    """The argparse CLI definition."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Shen & Xu (ICPP 2009): DHT algorithms for "
            "range-query and multi-attribute resource discovery in grids."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available figures")

    run_p = sub.add_parser("run", help="run one or more figures")
    run_p.add_argument("figures", nargs="+", choices=sorted(FIGURES), metavar="FIGURE")
    _add_common(run_p)
    _add_parallel(run_p)

    all_p = sub.add_parser("all", help="run every figure")
    _add_common(all_p)
    _add_parallel(all_p)

    avail_p = sub.add_parser(
        "availability",
        help="query completeness under message loss x replication",
    )
    _add_common(avail_p)
    avail_p.add_argument(
        "--loss",
        type=float,
        nargs="+",
        default=None,
        metavar="RATE",
        help="message-loss rates to sweep (e.g. --loss 0 0.05 0.1)",
    )
    avail_p.add_argument(
        "--replication",
        type=int,
        nargs="+",
        default=None,
        metavar="R",
        help="replication factors to sweep (e.g. --replication 1 2 3)",
    )
    avail_p.add_argument(
        "--queries",
        type=int,
        default=None,
        help="multi-attribute queries per (loss, replication) cell",
    )

    chaos_p = sub.add_parser(
        "chaos",
        help="seeded chaos-timeline demo: partition heal + crash burst "
        "under budgeted maintenance; exits non-zero unless every system "
        "reconverges (and the budget=0 control does NOT)",
    )
    _add_common(chaos_p)
    chaos_p.add_argument(
        "--smoke",
        action="store_true",
        help="alias for --scale smoke (deterministic CI entry point)",
    )

    durability_p = sub.add_parser(
        "durability",
        help="redundancy-policy sweep: successor/symmetric replication and "
        "erasure coding through chaos timelines, reporting pieces lost, "
        "data time-to-recover and repair bandwidth per policy; exits "
        "non-zero unless every cell recovers its surviving data",
    )
    _add_common(durability_p)
    durability_p.add_argument(
        "--smoke",
        action="store_true",
        help="alias for --scale smoke (deterministic CI entry point)",
    )
    durability_p.add_argument(
        "--policies",
        nargs="+",
        default=None,
        metavar="SPEC",
        help="policy specs to sweep: replication:R | symmetric:R | "
        "erasure:K+M, optionally @successor/@symmetric "
        "(default: replication:2 symmetric:2 erasure:2+1)",
    )
    durability_p.add_argument(
        "--systems",
        nargs="+",
        default=None,
        metavar="SYSTEM",
        help="systems to subject to the sweep (default: LORM Mercury)",
    )
    durability_p.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        choices=["demo", "crash-storm"],
        help="chaos timelines to run (default: both)",
    )

    hotspot_p = sub.add_parser(
        "hotspot",
        help="load-balance sweep under zipf-skewed popularity: per-node "
        "serve-load imbalance (max/mean, Gini, top-5 share) per system x "
        "zipf-s x mitigation (none / salted roots / dynamic replication); "
        "exits non-zero unless the best mitigation cuts SWORD's imbalance "
        ">= 2x at the highest s with byte-identical answers and hop "
        "counts within the structural ceilings",
    )
    _add_common(hotspot_p)
    hotspot_p.add_argument(
        "--smoke",
        action="store_true",
        help="alias for --scale smoke (deterministic CI entry point)",
    )
    hotspot_p.add_argument(
        "--systems",
        nargs="+",
        default=None,
        metavar="SYSTEM",
        help="systems to sweep (default: LORM Mercury SWORD MAAN; "
        "mitigations apply to SWORD and MAAN)",
    )
    hotspot_p.add_argument(
        "--zipf-s",
        type=float,
        nargs="+",
        default=None,
        metavar="S",
        help="zipf exponents to sweep (e.g. --zipf-s 0 0.8 1.1)",
    )
    hotspot_p.add_argument(
        "--queries",
        type=int,
        default=None,
        help="measured multi-attribute queries per cell",
    )
    hotspot_p.add_argument(
        "--salts",
        type=int,
        default=None,
        help="salted roots per attribute (S) for the salt mitigation",
    )

    tradeoff_p = sub.add_parser(
        "tradeoff",
        help="lookup-vs-maintenance sweep across routing tiers (chord / "
        "record:f<N> randomized-Chord / singlehop full-membership) x "
        "maintenance budget (zero/default/unlimited), common random "
        "numbers; exits non-zero unless single-hop means <= 1.05 hops at "
        "unlimited budget (trace-oracle verified) and ReCord hops are "
        "monotone in the fan-out",
    )
    _add_common(tradeoff_p)
    tradeoff_p.add_argument(
        "--smoke",
        action="store_true",
        help="alias for --scale smoke (deterministic CI entry point)",
    )
    tradeoff_p.add_argument(
        "--systems",
        nargs="+",
        default=None,
        metavar="SYSTEM",
        help="systems to sweep (default: LORM Mercury SWORD MAAN)",
    )
    tradeoff_p.add_argument(
        "--overlays",
        nargs="+",
        default=None,
        metavar="POINT",
        help="overlay points to sweep: chord, record:f<N>, singlehop "
        "(default: all configured points)",
    )
    tradeoff_p.add_argument(
        "--queries",
        type=int,
        default=None,
        help="measured point queries per overlay x budget cell",
    )
    tradeoff_p.add_argument(
        "--churn-events",
        type=int,
        default=None,
        help="churn events (leave/join alternating) per cell",
    )
    tradeoff_p.add_argument(
        "--fanouts",
        type=int,
        nargs="+",
        default=None,
        metavar="H",
        help="ReCord per-level fan-outs to sweep (e.g. --fanouts 1 4 16)",
    )

    tail_p = sub.add_parser(
        "tail",
        help="tail-latency sweep under gray failures: p50/p99/p99.9 "
        "response time vs slow-node fraction x requester policy "
        "(fixed/adaptive/hedged timeouts); exits non-zero unless the "
        "hedged policy cuts p99 >= 2x vs fixed on LORM and SWORD, meets "
        "the p99 SLO and keeps hedge overhead bounded",
    )
    _add_common(tail_p)
    tail_p.add_argument(
        "--smoke",
        action="store_true",
        help="alias for --scale smoke (deterministic CI entry point)",
    )
    tail_p.add_argument(
        "--fractions",
        type=float,
        nargs="+",
        default=None,
        metavar="F",
        help="slow-node fractions to sweep (e.g. --fractions 0 0.05 0.1)",
    )
    tail_p.add_argument(
        "--queries",
        type=int,
        default=None,
        help="measured multi-attribute queries per cell",
    )
    tail_p.add_argument(
        "--slo-p99",
        type=float,
        default=None,
        metavar="SECONDS",
        help="p99 response-time SLO the hedged policy must meet",
    )

    scale_p = sub.add_parser(
        "scale",
        help="n-scaling sweep on the compact array core: hops and "
        "maintenance messages at 100k-1M nodes with wall-clock and peak "
        "memory per point; exits non-zero when a --budget is exceeded",
    )
    scale_p.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="paper",
        help="paper = 100k-1M nodes (default); smoke = small, CI-fast",
    )
    scale_p.add_argument(
        "--smoke",
        action="store_true",
        help="alias for --scale smoke (deterministic CI entry point)",
    )
    scale_p.add_argument(
        "--seed", type=int, default=None, help="override the master seed"
    )
    scale_p.add_argument(
        "--sizes",
        type=int,
        nargs="+",
        default=None,
        metavar="N",
        help="populations to sweep (e.g. --sizes 100000 1000000)",
    )
    scale_p.add_argument(
        "--queries",
        type=int,
        default=None,
        help="routed lookups measured per population point",
    )
    scale_p.add_argument(
        "--churn-events",
        type=int,
        default=None,
        help="churn events (join/leave/fail round-robin) measured per point",
    )
    scale_p.add_argument(
        "--budget-seconds",
        type=float,
        default=None,
        help="fail (exit 1) when the whole sweep takes longer than this",
    )
    scale_p.add_argument(
        "--budget-mb",
        type=float,
        default=None,
        help="fail (exit 1) when any point's peak traced memory exceeds "
        "this many MB (peak RSS is reported alongside)",
    )
    scale_p.add_argument(
        "--out", default=None, help="directory for CSV/text/JSON output"
    )
    scale_p.add_argument(
        "--parallel",
        nargs="?",
        type=int,
        const=0,
        default=None,
        metavar="WORKERS",
        help="shard population points over worker processes (results are "
        "identical to a serial run; WORKERS defaults to the CPU count)",
    )

    bench_p = sub.add_parser(
        "bench",
        help="wall-clock benchmark: time overlay/system hot paths into a "
        "schema-versioned BENCH_<timestamp>.json, or compare two reports",
    )
    bench_sub = bench_p.add_subparsers(dest="bench_command", required=False)
    bench_p.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="smoke",
        help="paper = Section V parameters; smoke = laptop-fast (default)",
    )
    bench_p.add_argument(
        "--smoke",
        action="store_true",
        help="alias for --scale smoke (deterministic CI entry point)",
    )
    bench_p.add_argument(
        "--seed", type=int, default=None, help="override the master seed"
    )
    bench_p.add_argument(
        "--profile",
        choices=["micro", "macro", "figures", "all"],
        default="all",
        help="op groups to time (default: all)",
    )
    bench_p.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="override every op's timed repeat count",
    )
    bench_p.add_argument(
        "--out",
        default=".",
        help="output JSON file, or a directory for BENCH_<timestamp>.json "
        "(default: current directory)",
    )
    compare_p = bench_sub.add_parser(
        "compare",
        help="diff two BENCH_*.json reports; exits non-zero when any op "
        "regresses beyond the threshold (calibration-normalised p50)",
    )
    compare_p.add_argument("baseline", help="baseline BENCH_*.json")
    compare_p.add_argument("current", help="current BENCH_*.json")
    compare_p.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative p50 regression tolerance (default: 0.25 = +25%%)",
    )

    trace_p = sub.add_parser(
        "trace",
        help="replay a seeded multi-attribute query with hop-level span "
        "tracing on and print the trace (tree, JSONL or Chrome "
        "trace_event JSON); deterministic for a given seed",
    )
    trace_p.add_argument(
        "--system",
        required=True,
        choices=["lorm", "mercury", "sword", "maan"],
        help="which discovery system to trace",
    )
    trace_p.add_argument(
        "--overlay",
        default=None,
        metavar="OVERLAY",
        help="routing substrate: chord, cycloid (LORM only), singlehop, "
        "record (default: the system's native substrate)",
    )
    trace_p.add_argument(
        "--fanout",
        type=int,
        default=2,
        help="ReCord per-level finger fan-out (--overlay record only)",
    )
    trace_p.add_argument(
        "--seed", type=int, default=0, help="replay seed (default: 0)"
    )
    trace_p.add_argument(
        "--queries", type=int, default=1,
        help="multi-attribute queries to replay (default: 1)",
    )
    trace_p.add_argument(
        "--attributes", type=int, default=2,
        help="attributes per query (default: 2)",
    )
    trace_p.add_argument(
        "--kind",
        choices=["point", "range", "at-least"],
        default="range",
        help="per-attribute constraint shape (default: range)",
    )
    trace_p.add_argument(
        "--loss", type=float, default=0.0,
        help="seeded per-message loss rate; > 0 adds fault annotations "
        "(drop/retry/timeout/failover) to the spans",
    )
    trace_p.add_argument(
        "--format",
        choices=["tree", "jsonl", "chrome"],
        default="tree",
        help="tree = human-readable; jsonl = one span per line; "
        "chrome = chrome://tracing / Perfetto trace_event JSON",
    )
    trace_p.add_argument(
        "--out", default=None,
        help="write the trace to a file instead of stdout",
    )

    report_p = sub.add_parser(
        "report", help="assemble results/REPORT.md from existing artifacts"
    )
    report_p.add_argument(
        "--out", default="results", help="results directory (default: results/)"
    )

    check_p = sub.add_parser(
        "check",
        help="differential/invariant correctness check (oracle replay + "
        "guarded churn storm); exits non-zero on any divergence",
    )
    check_p.add_argument(
        "--systems",
        nargs="+",
        default=["all"],
        metavar="SYSTEM",
        help="systems to check: all (default) or any of LORM Mercury SWORD MAAN",
    )
    check_p.add_argument(
        "--seed", type=int, default=0, help="harness seed (default: 0)"
    )
    check_p.add_argument(
        "--queries", type=int, default=45,
        help="queries in the fault-free differential replay",
    )
    check_p.add_argument(
        "--churn-events", type=int, default=40,
        help="events in the guarded churn storm",
    )
    return parser


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--scale",
        choices=sorted(_SCALES),
        default="smoke",
        help="paper = Section V parameters (n=2048, m=200, k=500); "
        "smoke = same shape, laptop-fast (default)",
    )
    p.add_argument("--seed", type=int, default=None, help="override the master seed")
    p.add_argument("--out", default=None, help="directory for CSV/text output")
    p.add_argument(
        "--lph",
        choices=["cdf", "linear"],
        default=None,
        help="override the locality-preserving hash flavour",
    )
    p.add_argument(
        "--invariants",
        action="store_true",
        help="validate overlay invariants and directory conservation after "
        "every churn event (aborts at the first violation)",
    )


def _add_parallel(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--parallel",
        nargs="?",
        type=int,
        const=0,
        default=None,
        metavar="WORKERS",
        help="fan figures out over worker processes (opt-in; figures no "
        "longer share service bundles, so total CPU rises while "
        "wall-clock drops; WORKERS defaults to the CPU count)",
    )


def _config_from(args: argparse.Namespace) -> ExperimentConfig:
    config = _SCALES[args.scale]
    overrides = {}
    if args.seed is not None:
        overrides["seed"] = args.seed
    if args.lph is not None:
        overrides["lph_kind"] = args.lph
    if getattr(args, "invariants", False):
        overrides["validate_invariants"] = True
    return config.scaled(**overrides) if overrides else config


def _resolve_systems_arg(parser: argparse.ArgumentParser, names):
    """Canonical system names, or a clean ``parser.error`` (exit 2,
    valid choices listed) instead of an unhandled traceback."""
    from repro.experiments.common import resolve_systems

    try:
        return resolve_systems(names)
    except ValueError as exc:
        parser.error(str(exc))


def _resolve_overlay_arg(parser: argparse.ArgumentParser, name):
    """Canonical overlay name, or a clean ``parser.error`` (exit 2, valid
    choices listed) — the ``--systems`` contract, for ``--overlay``."""
    from repro.experiments.common import resolve_overlay

    try:
        return resolve_overlay(name)
    except ValueError as exc:
        parser.error(str(exc))


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command == "list":
        for figure_id in sorted(FIGURES):
            doc = (FIGURES[figure_id].__doc__ or "").strip().splitlines()[0]
            print(f"{figure_id:7s} {doc}")
        return 0

    if args.command == "bench":
        if getattr(args, "bench_command", None) == "compare":
            from repro.bench import compare_reports
            from repro.bench.report import BenchReport

            result = compare_reports(
                BenchReport.load(args.baseline),
                BenchReport.load(args.current),
                threshold=args.threshold,
            )
            print(result.render())
            return 0 if result.ok else 1

        from repro.bench import run_bench

        if args.smoke:
            args.scale = "smoke"
        config = _SCALES[args.scale]
        if args.seed is not None:
            config = config.scaled(seed=args.seed)
        started = time.perf_counter()
        bench_report = run_bench(
            config,
            scale=args.scale,
            profile=args.profile,
            repeats=args.repeats,
            progress=lambda msg: print(msg, file=sys.stderr),
        )
        print(bench_report.render())
        path = bench_report.save(args.out)
        elapsed = time.perf_counter() - started
        print(
            f"[{args.scale} scale, seed {config.seed}] benched in "
            f"{elapsed:.1f}s -> {path}",
            file=sys.stderr,
        )
        return 0

    if args.command == "scale":
        from repro.experiments.scale import run_scale

        if args.smoke:
            args.scale = "smoke"
        config = _SCALES[args.scale]
        overrides = {}
        if args.seed is not None:
            overrides["seed"] = args.seed
        if args.sizes is not None:
            overrides["scale_sizes"] = tuple(args.sizes)
        if args.queries is not None:
            overrides["scale_queries"] = args.queries
        if args.churn_events is not None:
            overrides["scale_churn_events"] = args.churn_events
        if overrides:
            config = config.scaled(**overrides)
        started = time.perf_counter()
        result = run_scale(
            config,
            parallel=args.parallel is not None,
            max_workers=(args.parallel or None) if args.parallel else None,
        )
        elapsed = time.perf_counter() - started
        print(result.render())
        if args.out:
            result.save(args.out)
            print(f"results written to {args.out}/", file=sys.stderr)
        ok = True
        if args.budget_seconds is not None and elapsed > args.budget_seconds:
            ok = False
            print(
                f"BUDGET EXCEEDED: sweep took {elapsed:.1f}s "
                f"(budget {args.budget_seconds:.1f}s)",
                file=sys.stderr,
            )
        if args.budget_mb is not None:
            worst = max(result.points, key=lambda p: p.peak_tracemalloc_mb)
            if worst.peak_tracemalloc_mb > args.budget_mb:
                ok = False
                print(
                    f"BUDGET EXCEEDED: n={worst.num_nodes} peaked at "
                    f"{worst.peak_tracemalloc_mb:.1f} MB traced "
                    f"(budget {args.budget_mb:.1f} MB)",
                    file=sys.stderr,
                )
        print(
            f"[{args.scale} scale, seed {config.seed}] "
            f"{len(result.points)} point(s) in {elapsed:.1f}s",
            file=sys.stderr,
        )
        return 0 if ok else 1

    if args.command == "trace":
        from repro.obs.export import render_tree, traces_to_chrome, traces_to_jsonl
        from repro.obs.replay import replay_queries
        from repro.workloads.generator import QueryKind

        overlay = (
            _resolve_overlay_arg(parser, args.overlay)
            if args.overlay is not None else None
        )
        started = time.perf_counter()
        _, traces = replay_queries(
            args.system,
            seed=args.seed,
            num_queries=args.queries,
            num_attributes=args.attributes,
            kind=QueryKind(args.kind),
            loss=args.loss,
            overlay=overlay,
            fanout=args.fanout,
        )
        if args.format == "jsonl":
            text = traces_to_jsonl(traces)
        elif args.format == "chrome":
            text = traces_to_chrome(traces)
        else:
            text = "\n".join(render_tree(t) for t in traces)
            if text:
                text += "\n"
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text)
            print(f"wrote {args.out}", file=sys.stderr)
        else:
            sys.stdout.write(text)
        elapsed = time.perf_counter() - started
        hops = sum(t.hop_count() for t in traces)
        print(
            f"[{args.system}, seed {args.seed}] {len(traces)} trace(s), "
            f"{hops} hops in {elapsed:.1f}s",
            file=sys.stderr,
        )
        return 0

    if args.command == "report":
        from repro.experiments.consolidate import write_report

        path = write_report(args.out)
        print(f"wrote {path}")
        return 0

    if args.command == "check":
        from repro.testing.differential import ALL_SYSTEMS, run_check

        systems = (
            ALL_SYSTEMS
            if "all" in args.systems
            else _resolve_systems_arg(parser, args.systems)
        )
        started = time.perf_counter()
        report = run_check(
            systems=systems,
            seed=args.seed,
            num_queries=args.queries,
            churn_events=args.churn_events,
        )
        print(report.render())
        elapsed = time.perf_counter() - started
        print(f"[seed {args.seed}] checked in {elapsed:.1f}s", file=sys.stderr)
        return 0 if report.ok else 1

    if args.command == "chaos":
        from repro.experiments.recovery import run_chaos_demo

        if args.smoke:
            args.scale = "smoke"
        config = _config_from(args)
        started = time.perf_counter()
        result = run_chaos_demo(config)
        print(result.render())
        elapsed = time.perf_counter() - started
        verdict = "RECONVERGED" if result.ok else "FAILED TO RECONVERGE"
        print(
            f"[{args.scale} scale, seed {config.seed}] {verdict} in {elapsed:.1f}s",
            file=sys.stderr,
        )
        if args.out:
            result.save(args.out)
            print(f"results written to {args.out}/", file=sys.stderr)
        return 0 if result.ok else 1

    if args.command == "hotspot":
        from repro.experiments.hotspot import run_hotspot

        if args.smoke:
            args.scale = "smoke"
        config = _config_from(args)
        overrides = {}
        if args.zipf_s is not None:
            overrides["hotspot_zipf_s"] = tuple(args.zipf_s)
        if args.queries is not None:
            overrides["hotspot_queries"] = args.queries
        if args.salts is not None:
            overrides["hotspot_salts"] = args.salts
        if overrides:
            config = config.scaled(**overrides)
        systems = (
            _resolve_systems_arg(parser, args.systems)
            if args.systems is not None else None
        )
        started = time.perf_counter()
        result = run_hotspot(config, systems=systems)
        print(result.render())
        elapsed = time.perf_counter() - started
        verdict = "BALANCED" if result.ok else "GATE MISS"
        print(
            f"[{args.scale} scale, seed {config.seed}] {verdict} in {elapsed:.1f}s",
            file=sys.stderr,
        )
        if args.out:
            result.save(args.out)
            print(f"results written to {args.out}/", file=sys.stderr)
        return 0 if result.ok else 1

    if args.command == "tradeoff":
        from repro.experiments.tradeoff import run_tradeoff

        if args.smoke:
            args.scale = "smoke"
        config = _config_from(args)
        overrides = {}
        if args.queries is not None:
            overrides["tradeoff_queries"] = args.queries
        if args.churn_events is not None:
            overrides["tradeoff_churn_events"] = args.churn_events
        if args.fanouts is not None:
            overrides["tradeoff_fanouts"] = tuple(args.fanouts)
        if overrides:
            config = config.scaled(**overrides)
        systems = (
            _resolve_systems_arg(parser, args.systems)
            if args.systems is not None else None
        )
        started = time.perf_counter()
        try:
            result = run_tradeoff(
                config,
                systems=systems,
                overlays=tuple(args.overlays) if args.overlays else None,
            )
        except ValueError as exc:
            parser.error(str(exc))
        print(result.render())
        elapsed = time.perf_counter() - started
        verdict = "CURVE OK" if result.ok else "GATE MISS"
        print(
            f"[{args.scale} scale, seed {config.seed}] {verdict} in {elapsed:.1f}s",
            file=sys.stderr,
        )
        if args.out:
            result.save(args.out)
            print(f"results written to {args.out}/", file=sys.stderr)
        return 0 if result.ok else 1

    if args.command == "tail":
        from repro.experiments.tail import run_tail

        if args.smoke:
            args.scale = "smoke"
        config = _config_from(args)
        overrides = {}
        if args.fractions is not None:
            overrides["tail_slow_fractions"] = tuple(args.fractions)
        if args.queries is not None:
            overrides["tail_queries"] = args.queries
        if args.slo_p99 is not None:
            overrides["tail_slo_p99"] = args.slo_p99
        if overrides:
            config = config.scaled(**overrides)
        started = time.perf_counter()
        result = run_tail(config)
        print(result.render())
        elapsed = time.perf_counter() - started
        verdict = "SLO MET" if result.ok else "SLO MISSED"
        print(
            f"[{args.scale} scale, seed {config.seed}] {verdict} in {elapsed:.1f}s",
            file=sys.stderr,
        )
        if args.out:
            result.save(args.out)
            print(f"results written to {args.out}/", file=sys.stderr)
        return 0 if result.ok else 1

    if args.command == "durability":
        from repro.experiments.durability import (
            DEFAULT_SCENARIOS,
            DEFAULT_SYSTEMS,
            run_durability,
        )
        from repro.sim.durability import parse_policy

        if args.smoke:
            args.scale = "smoke"
        config = _config_from(args)
        try:
            policies = (
                tuple(parse_policy(spec) for spec in args.policies)
                if args.policies else None
            )
        except ValueError as exc:
            parser.error(str(exc))
        scenarios = (
            tuple(s for s in DEFAULT_SCENARIOS if s.name in args.scenarios)
            if args.scenarios else DEFAULT_SCENARIOS
        )
        systems = (
            _resolve_systems_arg(parser, args.systems)
            if args.systems else DEFAULT_SYSTEMS
        )
        started = time.perf_counter()
        result = run_durability(
            config, policies=policies, scenarios=scenarios, systems=systems
        )
        print(result.render())
        elapsed = time.perf_counter() - started
        verdict = "RECOVERED" if result.ok else "FAILED TO RECOVER"
        print(
            f"[{args.scale} scale, seed {config.seed}] {verdict} in {elapsed:.1f}s",
            file=sys.stderr,
        )
        if args.out:
            result.save(args.out)
            print(f"results written to {args.out}/", file=sys.stderr)
        return 0 if result.ok else 1

    config = _config_from(args)
    started = time.perf_counter()
    if args.command == "availability":
        overrides = {}
        if args.loss is not None:
            overrides["loss_rates"] = tuple(args.loss)
        if args.replication is not None:
            overrides["availability_replications"] = tuple(args.replication)
        if args.queries is not None:
            overrides["num_availability_queries"] = args.queries
        if overrides:
            config = config.scaled(**overrides)
        result = run_figure("availability", config, save_dir=args.out)
        print(result.render())
        print()
    elif args.command == "all":
        if args.parallel is not None:
            from repro.experiments.runner import run_figures_parallel

            results = run_figures_parallel(
                sorted(FIGURES), config, save_dir=args.out,
                max_workers=args.parallel or None,
            )
        else:
            results = run_all_figures(config, save_dir=args.out)
        for figure_id in sorted(results):
            print(results[figure_id].render())  # type: ignore[attr-defined]
            print()
    else:
        if args.parallel is not None:
            from repro.experiments.runner import run_figures_parallel

            results = run_figures_parallel(
                args.figures, config, save_dir=args.out,
                max_workers=args.parallel or None,
            )
            for figure_id in args.figures:
                print(results[figure_id].render())  # type: ignore[attr-defined]
                print()
        else:
            for figure_id in args.figures:
                result = run_figure(figure_id, config, save_dir=args.out)
                print(result.render())
                print()
    elapsed = time.perf_counter() - started
    print(f"[{args.scale} scale, seed {config.seed}] done in {elapsed:.1f}s", file=sys.stderr)
    if args.out:
        print(f"results written to {args.out}/", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
