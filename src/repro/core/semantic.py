"""Semantic resource discovery (the paper's stated future work).

The conclusion of the paper: "We plan to further explore and elaborate upon
the LORM design to discover resources based on semantic information."  This
module provides that elaboration as an optional layer over *any*
:class:`~repro.baselines.base.DiscoveryService`:

* an :class:`Ontology` declares, for the globally-known schema,

  - **synonyms** — alternative names requesters may use
    (``"clock-speed"`` → ``"cpu-mhz"``),
  - **unit conversions** — affine transforms from requester units to the
    canonical unit (``"free-memory-gb"`` is ``free-memory-mb`` × 1024),
  - **broader terms** — one name covering several concrete attributes
    (``"storage"`` → any of ``disk-gb``/``tape-gb``), resolved as a union;

* :class:`SemanticResolver` rewrites a semantic multi-attribute query into
  canonical sub-queries, executes them through the underlying service, and
  combines the results (union within a broader term, join across terms),
  preserving the hop / visited-node accounting.

The layer is deliberately service-agnostic so the semantic elaboration
composes with LORM and with all three comparators.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.base import DiscoveryService
from repro.core.resource import (
    AttributeConstraint,
    MultiAttributeQuery,
    MultiQueryResult,
    Query,
    QueryResult,
)
from repro.utils.validation import require

__all__ = ["Ontology", "SemanticResolver", "UnitConversion"]


@dataclass(frozen=True)
class UnitConversion:
    """Affine map from a requester-facing unit to the canonical one.

    ``canonical_value = scale * value + offset``.

    Examples
    --------
    >>> gb = UnitConversion("free-memory-mb", scale=1024.0)
    >>> gb.to_canonical(2.0)
    2048.0
    """

    canonical: str
    scale: float = 1.0
    offset: float = 0.0

    def to_canonical(self, value: float) -> float:
        """Convert one requester-unit value to the canonical unit."""
        return self.scale * value + self.offset


@dataclass
class Ontology:
    """Semantic vocabulary over a canonical attribute schema."""

    #: alias -> canonical attribute name (pure renaming).
    synonyms: dict[str, str] = field(default_factory=dict)
    #: alias -> affine conversion into a canonical attribute.
    conversions: dict[str, UnitConversion] = field(default_factory=dict)
    #: broader term -> canonical attributes it covers (union semantics).
    broader: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def add_synonym(self, alias: str, canonical: str) -> "Ontology":
        """Register ``alias`` as a plain rename of ``canonical``."""
        self._require_fresh(alias)
        self.synonyms[alias] = canonical
        return self

    def add_conversion(
        self, alias: str, canonical: str, *, scale: float = 1.0, offset: float = 0.0
    ) -> "Ontology":
        """Register ``alias`` as ``canonical`` in different units."""
        self._require_fresh(alias)
        self.conversions[alias] = UnitConversion(canonical, scale, offset)
        return self

    def add_broader(self, term: str, covers: tuple[str, ...]) -> "Ontology":
        """Register ``term`` as the union of several canonical attributes."""
        self._require_fresh(term)
        require(len(covers) >= 1, f"broader term {term!r} must cover something")
        self.broader[term] = tuple(covers)
        return self

    def _require_fresh(self, alias: str) -> None:
        require(
            alias not in self.synonyms
            and alias not in self.conversions
            and alias not in self.broader,
            f"semantic term {alias!r} already defined",
        )

    def resolve(self, constraint: AttributeConstraint) -> list[AttributeConstraint]:
        """Rewrite one (possibly semantic) constraint to canonical ones.

        Returns one constraint for synonyms/conversions/canonical names, or
        several (union semantics) for a broader term.
        """
        name = constraint.attribute
        if name in self.synonyms:
            return [
                AttributeConstraint(self.synonyms[name], constraint.low, constraint.high)
            ]
        if name in self.conversions:
            conv = self.conversions[name]
            low = None if constraint.low is None else conv.to_canonical(constraint.low)
            high = None if constraint.high is None else conv.to_canonical(constraint.high)
            if conv.scale < 0:  # an inverting conversion flips the bounds
                low, high = high, low
            return [AttributeConstraint(conv.canonical, low, high)]
        if name in self.broader:
            return [
                AttributeConstraint(canonical, constraint.low, constraint.high)
                for canonical in self.broader[name]
            ]
        return [constraint]  # already canonical


class SemanticResolver:
    """Executes semantic queries through an underlying discovery service."""

    def __init__(self, service: DiscoveryService, ontology: Ontology) -> None:
        self.service = service
        self.ontology = ontology

    def query(self, q: Query, start=None) -> QueryResult:
        """Resolve one (possibly semantic) single-attribute query.

        A broader term fans out to its covered attributes — resolved in
        parallel like any multi-attribute request — and the results are
        *unioned* (a provider offering any covered resource qualifies).
        """
        canonical = self.ontology.resolve(q.constraint)
        if start is None:
            start = self.service.random_node()
        sub_results = [
            self.service.query(Query(c, q.requester), start) for c in canonical
        ]
        matches = tuple(
            info for result in sub_results for info in result.matches
        )
        return QueryResult(
            matches=matches,
            hops=sum(r.hops for r in sub_results),
            visited_nodes=sum(r.visited_nodes for r in sub_results),
        )

    def multi_query(self, mq: MultiAttributeQuery, start=None) -> MultiQueryResult:
        """Resolve a semantic multi-attribute request.

        Union within each term (broader terms), join across terms — so
        "storage >= 100 AND clock-speed >= 2000" means *some* storage
        attribute qualifies and the CPU constraint holds.
        """
        if start is None:
            start = self.service.random_node()
        term_results: list[QueryResult] = [
            self.query(Query(constraint, mq.requester), start)
            for constraint in mq.constraints
        ]
        providers: frozenset[str] | None = None
        for result in term_results:
            term_providers = result.providers
            providers = (
                term_providers if providers is None else providers & term_providers
            )
        return MultiQueryResult(
            providers=providers if providers is not None else frozenset(),
            sub_results=tuple(term_results),
        )
