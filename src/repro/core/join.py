"""The requester-side database-like join (Section III).

After the parallel per-attribute sub-queries return, "the requester node
then concatenates the results in a database-like 'join' operation based on
ip_addr" — i.e. the answer to an m-attribute request is the set of
providers appearing in *every* sub-query's result.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.core.resource import ResourceInfo

__all__ = ["join_on_provider"]


def join_on_provider(
    per_attribute_matches: Sequence[Iterable[ResourceInfo]],
) -> frozenset[str]:
    """Providers present in every per-attribute result set.

    Parameters
    ----------
    per_attribute_matches:
        One iterable of :class:`ResourceInfo` per queried attribute.

    Returns
    -------
    frozenset[str]
        The provider addresses satisfying all attributes; empty when any
        sub-query returned nothing.

    Examples
    --------
    >>> a = [ResourceInfo("cpu", 2000, "n1"), ResourceInfo("cpu", 1500, "n2")]
    >>> b = [ResourceInfo("mem", 4096, "n2")]
    >>> sorted(join_on_provider([a, b]))
    ['n2']
    """
    if not per_attribute_matches:
        return frozenset()
    provider_sets = [
        frozenset(info.provider for info in matches)
        for matches in per_attribute_matches
    ]
    result = provider_sets[0]
    for providers in provider_sets[1:]:
        result &= providers
        if not result:
            break
    return frozenset(result)
