"""Hotspot mitigation for attribute-rooted directories.

SWORD (and MAAN's attribute map) hash every query for attribute ``a`` to
the single node ``successor(H(a))``.  Under Zipf-skewed popularity that
node serves a constant fraction of *all* queries — the per-node serve
load measured by :mod:`repro.sim.loadstats` grows like ``n * p(a)``
while the mean stays at ``total / n``.  Two standard mitigations:

**Key salting** (:class:`SaltPlan`) — static.  Attribute ``a`` gets ``S``
salted roots ``successor(H(f"{a}#s{j}"))``; registration writes the full
directory to *all* of them, and each query reads exactly **one**, chosen
by a stable hash of ``(attribute, requester)``.  Every root holds the
complete directory, so any single read returns the byte-identical answer
of the unmitigated system while the per-root serve load drops by ``S``.
(The write-sharding variant — partition registrations across roots and
fan each query over all of them — keeps queries hitting every root and
therefore does *not* reduce per-node serve counts; it trades load for
hops.  We implement the read-spreading form.)

**Dynamic replication** (:class:`DynamicReplicator`) — reactive.  An
observer watches the per-attribute serve counts of each harvested
:class:`~repro.sim.loadstats.LoadWindow`; an attribute whose window load
exceeds ``trigger_ratio`` times the population-mean node load is *hot*
and gets its directory copied to the next ``max_replicas`` ring
successors of its root.  Copies are charged as maintenance messages and
capped per tick by the existing :class:`~repro.sim.maintenance.
MaintenanceBudget` (``repair_keys``); an attribute that stays cold for
``decay_windows`` consecutive windows has its replicas dropped.  Queries
then spread reads over the root plus its live replicas with the same
stable ``(attribute, requester)`` hash.
"""

from __future__ import annotations

from typing import Any

from repro.utils.validation import require
from repro.workloads.popularity import stable_seed

__all__ = ["SaltPlan", "DynamicReplicator"]


def route_choice(attribute: str, requester: str, fanout: int) -> int:
    """The replica index in ``[0, fanout)`` this requester reads for
    ``attribute`` — a pure function, so repeated queries by the same
    requester stay on one replica (cache-friendly) while distinct
    requesters spread uniformly."""
    require(fanout >= 1, "fanout must be >= 1")
    return stable_seed("hotspot-route", attribute, requester) % fanout


class SaltPlan:
    """Static key salting of attribute roots.

    Parameters
    ----------
    salts:
        ``S`` — salted roots per attribute.
    attributes:
        Restrict salting to these attribute names (``None`` salts every
        attribute).  Salting only the known-hot attributes keeps the
        registration amplification (``S`` stored copies per info piece)
        confined to where it pays.
    """

    def __init__(self, salts: int = 4, attributes: Any = None) -> None:
        require(salts >= 1, f"salts must be >= 1, got {salts}")
        self.salts = salts
        self.attributes = None if attributes is None else frozenset(attributes)

    def applies_to(self, attribute: str) -> bool:
        """Whether ``attribute``'s root is salted under this plan."""
        return self.attributes is None or attribute in self.attributes

    def salted_names(self, attribute: str) -> tuple[str, ...]:
        """The ``S`` salted directory names of ``attribute``."""
        return tuple(f"{attribute}#s{j}" for j in range(self.salts))

    def choose(self, attribute: str, requester: str) -> int:
        """Which salted root this requester reads (stable per requester)."""
        return route_choice(attribute, requester, self.salts)

    def describe(self) -> str:
        scope = "all" if self.attributes is None else f"{len(self.attributes)} attrs"
        return f"salt(S={self.salts}, {scope})"


class DynamicReplicator:
    """Load-driven replication of hot attribute directories.

    Owned by one :class:`~repro.baselines.base.ChordBackedService`; the
    experiment loop calls :meth:`observe` with each harvested load window
    and :meth:`tick` with a maintenance budget to apply the pending
    copies.  The service consults :meth:`route_for` on every attribute
    root read and :meth:`on_register` after every registration so replica
    directories never go stale.
    """

    def __init__(
        self,
        service: Any,
        namespace: str,
        *,
        trigger_ratio: float = 4.0,
        max_replicas: int = 3,
        decay_windows: int = 2,
    ) -> None:
        require(trigger_ratio > 1.0, "trigger_ratio must exceed 1 (the mean)")
        require(max_replicas >= 1, "max_replicas must be >= 1")
        require(decay_windows >= 1, "decay_windows must be >= 1")
        self.service = service
        self.namespace = namespace
        self.replica_namespace = f"{namespace}:hot"
        self.trigger_ratio = trigger_ratio
        self.max_replicas = max_replicas
        self.decay_windows = decay_windows
        #: Attributes currently marked hot (replicas wanted).
        self._desired: set[str] = set()
        #: Placed replicas: attribute -> node ids holding a directory copy.
        self._replicas: dict[str, list[int]] = {}
        #: Consecutive cold windows per replicated attribute.
        self._cold: dict[str, int] = {}
        #: Last observed per-attribute serve counts (placement priority).
        self._loads: dict[str, float] = {}
        #: Lifetime counters (reported by the experiment).
        self.copies_sent = 0
        self.replicas_created = 0
        self.replicas_dropped = 0

    # ------------------------------------------------------------------
    # Observation and placement
    # ------------------------------------------------------------------
    def observe(self, window: Any, population: int) -> set[str]:
        """Digest one load window; returns the attributes marked hot.

        An attribute is hot when its serve count exceeds
        ``trigger_ratio`` times the mean per-node load — i.e. its single
        root is demonstrably an outlier against the balance target.
        """
        require(population >= 1, "population must be >= 1")
        total = window.total_serves
        self._loads = dict(window.by_attribute)
        hot: set[str] = set()
        if total > 0.0:
            threshold = self.trigger_ratio * total / population
            hot = {attr for attr, count in window.by_attribute.items() if count > threshold}
        self._desired |= hot
        for attr in hot:
            self._cold[attr] = 0
        for attr in list(self._desired - hot):
            self._cold[attr] = self._cold.get(attr, 0) + 1
            if self._cold[attr] >= self.decay_windows:
                self._desired.discard(attr)
        return hot

    def tick(self, budget: Any) -> dict[str, int]:
        """Apply pending placements/removals under ``budget``.

        At most ``budget.repair_keys`` directory copies are sent per tick
        (a directory that alone exceeds the cap still replicates — being
        first in line — so huge directories are not starved); every copy
        is charged as one maintenance message.  Replicas of attributes
        that decayed out of the desired set are dropped.
        """
        ring = self.service.ring
        cap = budget.repair_keys
        sent = 0
        created = 0
        # Hottest first: the per-tick copy cap typically covers only one
        # or two directories, and replicating a lukewarm attribute before
        # the melting one would leave the gate metric untouched.
        pending = sorted(
            self._desired - self._replicas.keys(),
            key=lambda attr: (-self._loads.get(attr, 0.0), attr),
        )
        for attr in pending:
            if sent >= cap:
                break
            key = self.service.attr_key(attr)
            root = ring.successor_of(key)
            items = root.items_at(self.namespace, key)
            targets = ring.native_holders(key, 1 + self.max_replicas)[1:]
            targets = [t for t in targets if t.node_id != root.node_id]
            if not targets:
                continue
            for target in targets:
                for item in items:
                    target.store(self.replica_namespace, key, item)
            copies = len(items) * len(targets)
            if copies:
                ring.network.count_maintenance(copies)
            sent += copies
            created += 1
            self._replicas[attr] = [t.node_id for t in targets]
        dropped = self._drop_decayed()
        self.copies_sent += sent
        self.replicas_created += created
        self.replicas_dropped += dropped
        return {"copies": sent, "created": created, "dropped": dropped}

    def _drop_decayed(self) -> int:
        ring = self.service.ring
        dropped = 0
        for attr in list(self._replicas.keys() - self._desired):
            key = self.service.attr_key(attr)
            for node_id in self._replicas.pop(attr):
                if node_id not in ring.node_ids:
                    continue
                node = ring.node(node_id)
                for item in node.items_at(self.replica_namespace, key):
                    node.remove_item(self.replica_namespace, key, item)
            self._cold.pop(attr, None)
            dropped += 1
        return dropped

    def clear(self) -> None:
        """Drop every replica and reset all observer state (used between
        common-random-number experiment cells sharing one service)."""
        self._desired.clear()
        self._drop_decayed()
        self._cold.clear()

    # ------------------------------------------------------------------
    # Query/registration hooks (hot paths while attached)
    # ------------------------------------------------------------------
    def holders(self, attribute: str) -> list[int]:
        """Live replica node ids of ``attribute`` (empty if none)."""
        placed = self._replicas.get(attribute)
        if not placed:
            return []
        ring = self.service.ring
        return [nid for nid in placed if nid in ring.node_ids]

    def route_for(self, attribute: str, requester: str) -> int | None:
        """The replica node id this requester should read — ``None`` for
        the native root (no replicas, or the stable hash picked it)."""
        holders = self.holders(attribute)
        if not holders:
            return None
        pick = route_choice(attribute, requester, len(holders) + 1)
        if pick == 0:
            return None
        return holders[pick - 1]

    def on_register(self, info: Any, key: int) -> None:
        """Mirror a fresh registration onto the attribute's replicas."""
        holders = self.holders(info.attribute)
        if not holders:
            return
        ring = self.service.ring
        for node_id in holders:
            ring.node(node_id).store(self.replica_namespace, key, info)
        ring.network.count_maintenance(len(holders))

    def describe(self) -> str:
        return (
            f"dynamic(trigger={self.trigger_ratio:g}x, "
            f"replicas={self.max_replicas}, decay={self.decay_windows})"
        )
