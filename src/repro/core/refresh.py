"""Periodic resource reporting with leases (Section III's refresh model).

The paper: "A node reports its available resources to the system
periodically via interface Insert(rescID, rescInfo)."  Periodic reporting
implies the dual: reports that stop being renewed must age out, or the
directories fill with the availability of machines that changed or left.

:class:`RefreshManager` implements that contract over any
:class:`~repro.baselines.base.DiscoveryService`:

* ``report(info, now)`` registers (or renews) an info piece with a lease
  of ``ttl`` seconds;
* a *changed* value for the same (provider, attribute) atomically replaces
  the old report (deregister + register), so directories always describe
  current availability;
* ``expire(now)`` withdraws every lease that has lapsed;
* ``install_periodic_expiry`` schedules the expiry sweep on a simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.base import DiscoveryService
from repro.core.resource import ResourceInfo
from repro.sim.engine import Simulator
from repro.utils.validation import require_positive

__all__ = ["Lease", "RefreshManager"]


@dataclass(frozen=True)
class Lease:
    """One live report: the stored info and when its lease lapses."""

    info: ResourceInfo
    expires_at: float


@dataclass
class RefreshManager:
    """Lease-tracked registration over a discovery service.

    Parameters
    ----------
    service:
        Any of the four discovery services.
    ttl:
        Lease duration in simulated seconds; providers are expected to
        re-report more often than this.
    """

    service: DiscoveryService
    ttl: float
    #: (provider, attribute) -> current lease.
    _leases: dict[tuple[str, str], Lease] = field(default_factory=dict, repr=False)
    #: Monotone counters for tests/telemetry.
    renewals: int = 0
    replacements: int = 0
    expirations: int = 0

    def __post_init__(self) -> None:
        require_positive(self.ttl, "ttl")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self, info: ResourceInfo, now: float, *, routed: bool = False) -> int:
        """Register or renew ``info``; returns routing hops spent.

        A renewal with an unchanged value only extends the lease; a changed
        value withdraws the stale report and registers the new one.
        """
        key = (info.provider, info.attribute)
        existing = self._leases.get(key)
        hops = 0
        if existing is None:
            hops = self.service.register(info, routed=routed)
        elif existing.info.value != info.value:
            self.service.deregister(existing.info)
            hops = self.service.register(info, routed=routed)
            self.replacements += 1
        else:
            self.renewals += 1
        self._leases[key] = Lease(info=info, expires_at=now + self.ttl)
        return hops

    def withdraw(self, provider: str, attribute: str) -> bool:
        """Explicitly withdraw one report; True if it existed."""
        lease = self._leases.pop((provider, attribute), None)
        if lease is None:
            return False
        self.service.deregister(lease.info)
        return True

    # ------------------------------------------------------------------
    # Expiry
    # ------------------------------------------------------------------
    def expire(self, now: float) -> int:
        """Withdraw every lease lapsed at time ``now``; returns the count."""
        lapsed = [
            key for key, lease in self._leases.items() if lease.expires_at <= now
        ]
        for key in lapsed:
            lease = self._leases.pop(key)
            self.service.deregister(lease.info)
        self.expirations += len(lapsed)
        return len(lapsed)

    def install_periodic_expiry(
        self, sim: Simulator, period: float, horizon: float
    ) -> int:
        """Schedule ``expire`` every ``period`` seconds until ``horizon``."""
        require_positive(period, "period")
        count = 0
        t = period
        while t < horizon:
            sim.schedule_at(t, lambda t=t: self.expire(t), name="lease-expiry")
            t += period
            count += 1
        return count

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def live_leases(self) -> int:
        """Number of currently tracked reports."""
        return len(self._leases)

    def lease_of(self, provider: str, attribute: str) -> Lease | None:
        """The current lease for (provider, attribute), if any."""
        return self._leases.get((provider, attribute))
