"""Resource-information and query vocabulary (Section III of the paper).

The paper represents the available resource information of node ``i`` as a
3-tuple ``⟨a, δπ_a, ip_addr(i)⟩`` — attribute type, value, provider address
— and a resource request of node ``j`` as ``⟨a, π_a, ip_addr(j)⟩`` where
``π_a`` is a value or range.  These classes are that vocabulary, shared by
LORM and all three comparator approaches so the equivalence tests can run
identical workloads through each.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.validation import require

__all__ = [
    "ResourceInfo",
    "AttributeConstraint",
    "Query",
    "MultiAttributeQuery",
    "QueryResult",
    "MultiQueryResult",
]


@dataclass(frozen=True)
class ResourceInfo:
    """One piece of available-resource information, ``⟨a, δπ_a, ip_addr⟩``.

    Attributes
    ----------
    attribute:
        Globally-known attribute type ``a`` (e.g. ``"cpu-mhz"``).
    value:
        The provider's available value ``δπ_a``.  String-valued attributes
        (e.g. ``OS=Linux``) are encoded to numeric codes by the workload
        layer, mirroring the paper's use of a locality-preserving hash over
        "value or string description".
    provider:
        ``ip_addr(i)`` — opaque provider address used as the join key.
    """

    attribute: str
    value: float
    provider: str


@dataclass(frozen=True)
class AttributeConstraint:
    """A sub-query ``π_a`` on one attribute: a point or a (half-)range.

    ``low``/``high`` are inclusive bounds; ``None`` means unbounded on that
    side, giving the paper's ``CPU >= 1.8GHz`` style half-ranges.

    Examples
    --------
    >>> c = AttributeConstraint.between("cpu-mhz", 1000, 1800)
    >>> c.matches(1500), c.matches(2000)
    (True, False)
    >>> AttributeConstraint.point("mem-mb", 2048).is_range
    False
    """

    attribute: str
    low: float | None = None
    high: float | None = None

    def __post_init__(self) -> None:
        if self.low is not None and self.high is not None:
            require(
                self.low <= self.high,
                f"inverted range for {self.attribute}: [{self.low}, {self.high}]",
            )

    # Constructors -----------------------------------------------------
    @classmethod
    def point(cls, attribute: str, value: float) -> "AttributeConstraint":
        """Exact-value constraint (a non-range query)."""
        return cls(attribute, value, value)

    @classmethod
    def at_least(cls, attribute: str, value: float) -> "AttributeConstraint":
        """Lower-bounded half-range, e.g. ``Free memory >= 2GB``."""
        return cls(attribute, value, None)

    @classmethod
    def at_most(cls, attribute: str, value: float) -> "AttributeConstraint":
        """Upper-bounded half-range."""
        return cls(attribute, None, value)

    @classmethod
    def between(cls, attribute: str, low: float, high: float) -> "AttributeConstraint":
        """Doubly-bounded range, e.g. ``1GHz <= CPU <= 1.8GHz``."""
        return cls(attribute, low, high)

    # Semantics ---------------------------------------------------------
    @property
    def is_range(self) -> bool:
        """True unless this is an exact-value (point) constraint."""
        return self.low is None or self.high is None or self.low != self.high

    def matches(self, value: float) -> bool:
        """Whether a provider's ``value`` satisfies this constraint."""
        if self.low is not None and value < self.low:
            return False
        if self.high is not None and value > self.high:
            return False
        return True

    def bounds_within(self, lo: float, hi: float) -> tuple[float, float]:
        """Concrete inclusive bounds, substituting the attribute domain
        ``[lo, hi]`` for unbounded sides."""
        low = lo if self.low is None else self.low
        high = hi if self.high is None else self.high
        return low, high


@dataclass(frozen=True)
class Query:
    """A single-attribute resource request, ``⟨a, π_a, ip_addr(j)⟩``."""

    constraint: AttributeConstraint
    requester: str = "requester"

    @property
    def attribute(self) -> str:
        """The queried attribute type."""
        return self.constraint.attribute

    @property
    def is_range(self) -> bool:
        """Whether this is a range query (vs. non-range/point)."""
        return self.constraint.is_range


@dataclass(frozen=True)
class MultiAttributeQuery:
    """An m-attribute request: one constraint per attribute, resolved as
    parallel sub-queries whose results are joined on provider address."""

    constraints: tuple[AttributeConstraint, ...]
    requester: str = "requester"

    def __post_init__(self) -> None:
        require(len(self.constraints) >= 1, "need at least one constraint")
        attrs = [c.attribute for c in self.constraints]
        require(len(set(attrs)) == len(attrs), f"duplicate attributes in query: {attrs}")

    @property
    def num_attributes(self) -> int:
        """``m`` — the number of attributes in the request."""
        return len(self.constraints)

    @property
    def is_range(self) -> bool:
        """True if any sub-query is a range query."""
        return any(c.is_range for c in self.constraints)

    def sub_queries(self) -> tuple[Query, ...]:
        """The per-attribute sub-queries, in constraint order."""
        return tuple(Query(c, self.requester) for c in self.constraints)


@dataclass(frozen=True)
class QueryResult:
    """Outcome and accounting of one single-attribute query.

    ``hops`` is the paper's logical-hop metric (routing messages);
    ``visited_nodes`` counts nodes that received the query and checked
    their directory (the Figure 5/6b metric).

    Under fault injection a query can come back *degraded*:
    ``complete=False`` flags that the lookup failed or the range walk was
    truncated, so ``matches`` is an honest partial answer rather than the
    full result set.  ``retries`` counts retransmission rounds spent and
    ``timed_out`` whether the route died waiting on unreachable nodes.

    ``latency`` is the requester-observed response time in seconds —
    populated only while a :class:`~repro.sim.latency.LatencyModel` is
    attached to the service's network (0.0 otherwise, keeping the
    constant-``hop_latency`` world's accounting untouched).
    """

    matches: tuple[ResourceInfo, ...]
    hops: int
    visited_nodes: int
    complete: bool = True
    retries: int = 0
    timed_out: bool = False
    latency: float = 0.0

    @property
    def providers(self) -> frozenset[str]:
        """Distinct providers among the matches."""
        return frozenset(info.provider for info in self.matches)


@dataclass(frozen=True)
class MultiQueryResult:
    """Joined outcome of an m-attribute query.

    ``providers`` holds the requesters' answer: nodes offering *all*
    requested attributes within the requested ranges, obtained by the
    database-like join on ``ip_addr``.
    """

    providers: frozenset[str]
    sub_results: tuple[QueryResult, ...]

    @property
    def total_hops(self) -> int:
        """Sum of routing hops across the parallel sub-queries."""
        return sum(r.hops for r in self.sub_results)

    @property
    def total_visited(self) -> int:
        """Sum of visited (directory-checking) nodes across sub-queries."""
        return sum(r.visited_nodes for r in self.sub_results)

    @property
    def latency_hops(self) -> int:
        """Hops on the critical path: sub-queries resolve in parallel, so
        the slowest one bounds response time."""
        return max((r.hops for r in self.sub_results), default=0)

    @property
    def latency(self) -> float:
        """Measured response time in seconds: sub-queries resolve in
        parallel, so the slowest one's requester-observed latency bounds
        the answer (0.0 when no latency model was attached)."""
        return max((r.latency for r in self.sub_results), default=0.0)

    @property
    def num_matches(self) -> int:
        """Number of providers satisfying every constraint."""
        return len(self.providers)

    @property
    def complete(self) -> bool:
        """Whether every sub-query came back complete.

        An incomplete sub-result makes the join an *under*-approximation
        (providers may be missing, never spurious), so requesters can
        decide whether a partial answer is acceptable.
        """
        return all(r.complete for r in self.sub_results)

    @property
    def retries(self) -> int:
        """Total retransmission rounds spent across sub-queries."""
        return sum(r.retries for r in self.sub_results)

    @property
    def timed_out(self) -> bool:
        """Whether any sub-query died waiting on unreachable nodes."""
        return any(r.timed_out for r in self.sub_results)


def effective_span_fraction(
    constraint: AttributeConstraint, lo: float, hi: float, cdf=None
) -> float:
    """Fraction of the (hashed) value space a constraint covers.

    With a CDF-calibrated LPH the covered ID-space fraction equals
    ``F(high) - F(low)``; without a CDF the linear fraction is returned.
    Used by tests and the span ablation to verify the workload generator
    produces the paper's average-case regime (spans averaging 1/4).
    """
    low, high = constraint.bounds_within(lo, hi)
    if cdf is not None:
        return max(0.0, min(1.0, cdf(high) - cdf(low)))
    if math.isclose(hi, lo):
        return 0.0
    return max(0.0, min(1.0, (high - low) / (hi - lo)))
