"""The paper's primary contribution: LORM and its resource model.

:mod:`repro.core.resource` defines the ⟨a, π_a, ip_addr⟩ vocabulary shared
by every discovery approach; :mod:`repro.core.lorm` implements LORM on
Cycloid; :mod:`repro.core.join` is the database-like join the requester
performs over per-attribute sub-query results.
"""

from repro.core.join import join_on_provider
from repro.core.resource import (
    AttributeConstraint,
    MultiAttributeQuery,
    MultiQueryResult,
    Query,
    QueryResult,
    ResourceInfo,
)

__all__ = [
    "AttributeConstraint",
    "join_on_provider",
    "LormService",
    "MultiAttributeQuery",
    "MultiQueryResult",
    "Query",
    "QueryResult",
    "ResourceInfo",
]


#: Lazily imported members: these modules depend on repro.baselines.base
#: (for the DiscoveryService ABC), which itself uses the resource/join
#: modules of this package — a cycle if resolved at package-import time.
_LAZY = {
    "LormService": ("repro.core.lorm", "LormService"),
    "Ontology": ("repro.core.semantic", "Ontology"),
    "SemanticResolver": ("repro.core.semantic", "SemanticResolver"),
    "RefreshManager": ("repro.core.refresh", "RefreshManager"),
    "Lease": ("repro.core.refresh", "Lease"),
}

__all__ += ["Lease", "Ontology", "RefreshManager", "SemanticResolver"]


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
