"""LORM — Low-Overhead Range-query Multi-attribute resource discovery.

The paper's contribution (Section III): a single hierarchical Cycloid DHT
in which

* the **cubical index** of a resource ID is the consistent hash of the
  attribute name — so each *cluster* is responsible for one attribute;
* the **cyclic index** is the locality-preserving hash of the attribute
  value — so within a cluster, nodes partition the value range in order.

A resource ID is therefore ``rescID = (ℋ(π_a), H(a))`` and is stored at
its root via Cycloid's ``Insert``.  A non-range query is one Cycloid
lookup; a range query ``[π1, π2]`` routes to ``root(ℋ(π1), H(a))`` and
forwards along cluster successors until the node owning ``ℋ(π2)`` — by
Proposition 3.1 every node holding values in range lies between the two
roots, so the walk (at most ``d`` nodes, on average ``1 + d/4``) is
complete.  Multi-attribute queries resolve the per-attribute sub-queries
in parallel and join on provider address.
"""

from __future__ import annotations

from typing import Any, ClassVar

import numpy as np

from repro.baselines.base import DiscoveryService
from repro.core.resource import Query, QueryResult, ResourceInfo
from repro.hashing.consistent import ConsistentHash
from repro.hashing.locality import LocalityPreservingHash
from repro.hashing.spread import spread_attribute_ids
from repro.overlay.cycloid import CycloidId, CycloidNode, CycloidOverlay
from repro.sim.metrics import MetricsRegistry
from repro.utils.seeding import SeedFactory
from repro.workloads.attributes import AttributeSchema

__all__ = ["LormService"]

_NAMESPACE = "lorm"


class LormService(DiscoveryService):
    """LORM resource discovery on a Cycloid overlay.

    LORM also runs in a *flat* mode over any Chord-family ring substrate
    (plain Chord, single-hop, ReCord): the two-level resource ID
    ``(ℋ(value), H(attribute))`` is linearized onto the ring exactly the
    way Cycloid linearizes it (``cluster * d + cyclic``), so each
    attribute owns a contiguous ID arc and range queries become successor
    walks over that arc.  The mode is selected automatically from the
    substrate (anything without ``walk_cluster``); placement, oracle
    exactness and the per-cluster visit bound carry over unchanged.

    Examples
    --------
    >>> from repro.workloads.attributes import AttributeSchema
    >>> schema = AttributeSchema.synthetic(4)
    >>> service = LormService.build_full(dimension=4, schema=schema, seed=7)
    >>> info = ResourceInfo("cpu-mhz", 2400.0, "grid-node-00001")
    >>> _ = service.register(info)
    >>> from repro.core.resource import AttributeConstraint, Query
    >>> q = Query(AttributeConstraint.at_least("cpu-mhz", 2000.0))
    >>> service.query(q).providers
    frozenset({'grid-node-00001'})
    """

    name: ClassVar[str] = "LORM"

    def __init__(
        self,
        overlay: CycloidOverlay,
        schema: AttributeSchema,
        *,
        seed: int = 0,
        lph_kind: str = "cdf",
        attr_placement: str = "spread",
        dimension: int | None = None,
    ) -> None:
        self.overlay = overlay
        #: Flat mode: the substrate is a Chord-family ring, not Cycloid —
        #: resource IDs are linearized onto the ring (see class docstring).
        self._flat = not hasattr(overlay, "walk_cluster")
        if self._flat:
            if dimension is None:
                raise ValueError("flat-substrate LORM needs an explicit dimension")
            self.dimension = dimension
        else:
            self.dimension = overlay.dimension
        self.schema = schema
        self.lph_kind = lph_kind
        #: See ChordBackedService.collect_matches — same accounting-only mode.
        self.collect_matches = True
        self.metrics = MetricsRegistry()
        self._seeds = SeedFactory(seed).fork("service:LORM")
        self._rng: np.random.Generator = self._seeds.numpy("queries")
        self._churn_rng: np.random.Generator = self._seeds.numpy("churn")
        #: H — consistent hash of attribute names onto the 2**d clusters.
        self.attr_hash = ConsistentHash(bits=self.dimension)
        #: "spread" assigns each attribute its own cluster (the paper's
        #: "each cluster is responsible for one attribute" model; requires
        #: m <= 2**d); "hash" is plain consistent hashing with collisions.
        self.attr_placement = attr_placement
        self._attr_ids: dict[str, int] | None = None
        self._value_hashes: dict[str, LocalityPreservingHash] = {}
        self._departed: list[CycloidId] = []

    @classmethod
    def build_full(
        cls,
        dimension: int,
        schema: AttributeSchema,
        *,
        seed: int = 0,
        replication: int = 1,
        durability: Any | None = None,
        **kwargs: Any,
    ) -> "LormService":
        """LORM over a fully populated ``d * 2**d``-node Cycloid."""
        overlay = CycloidOverlay(dimension, replication=replication, durability=durability)
        overlay.build_full()
        return cls(overlay, schema, seed=seed, **kwargs)

    @classmethod
    def build_flat(
        cls,
        dimension: int,
        schema: AttributeSchema,
        *,
        seed: int = 0,
        replication: int = 1,
        durability: Any | None = None,
        ring_factory: Any | None = None,
        population: int | None = None,
        **kwargs: Any,
    ) -> "LormService":
        """LORM over a flat ring substrate at the Cycloid population.

        The ring is just wide enough to host the ``d * 2**d`` linearized
        resource IDs; ``ring_factory`` picks the routing tier (defaults to
        plain :class:`~repro.overlay.chord.ChordRing`) and membership is
        sampled from the same seeded stream Chord-backed services use.
        """
        from repro.overlay.chord import ChordRing

        capacity = dimension * (1 << dimension)
        bits = max(2, (capacity - 1).bit_length())
        make = ring_factory if ring_factory is not None else ChordRing
        ring = make(bits, replication=replication, durability=durability)
        population = capacity if population is None else population
        if population >= ring.space.size:
            ring.build_full()
        else:
            rng = SeedFactory(seed).numpy(f"{cls.name}-membership")
            ids = rng.choice(ring.space.size, size=population, replace=False)
            ring.build(int(i) for i in ids)
        return cls(ring, schema, seed=seed, dimension=dimension, **kwargs)

    # ------------------------------------------------------------------
    # ID mapping
    # ------------------------------------------------------------------
    def value_hash(self, attribute: str) -> LocalityPreservingHash:
        """ℋ for ``attribute`` — onto the cyclic-index space ``[0, d)``."""
        vh = self._value_hashes.get(attribute)
        if vh is None:
            vh = self.schema.spec(attribute).value_hash(
                size=self.dimension, kind=self.lph_kind
            )
            self._value_hashes[attribute] = vh
        return vh

    def attr_key(self, attribute: str) -> int:
        """The cubical (cluster) index of ``attribute``."""
        if self.attr_placement == "hash":
            return self.attr_hash(attribute)
        if self._attr_ids is None:
            self._attr_ids = spread_attribute_ids(self.schema.names, self.attr_hash)
        try:
            return self._attr_ids[attribute]
        except KeyError:
            raise KeyError(
                f"attribute {attribute!r} is not in the globally-known schema "
                f"({len(self.schema)} attributes)"
            ) from None

    def resc_id(self, attribute: str, value: float) -> CycloidId:
        """``rescID = (ℋ(value), H(attribute))`` (Section III)."""
        return CycloidId(self.value_hash(attribute)(value), self.attr_key(attribute))

    def _store_key(self, attribute: str, value: float) -> Any:
        """The substrate-native storage key for ``(attribute, value)``.

        Native Cycloid uses the two-level rescID; a flat ring gets the
        same ID linearized the way Cycloid itself would
        (``cluster * d + cyclic``), so each attribute owns a contiguous
        arc of ``d`` ring IDs.
        """
        cyclic = self.value_hash(attribute)(value)
        cluster = self.attr_key(attribute)
        if self._flat:
            return cluster * self.dimension + cyclic
        return CycloidId(cyclic, cluster)

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def _register_impl(self, info: ResourceInfo, *, routed: bool = True) -> int:
        """``Insert(rescID, rescInfo)`` — one Cycloid insertion."""
        key = self._store_key(info.attribute, info.value)
        if not routed:
            self.overlay.store(_NAMESPACE, key, info)
            return 0
        result = self.overlay.routed_store(self.random_node(), _NAMESPACE, key, info)
        self.metrics.record("register.hops", result.hops)
        return result.hops

    def deregister(self, info: ResourceInfo) -> int:
        """Withdraw the info from its rescID root (and replicas)."""
        key = self._store_key(info.attribute, info.value)
        return self.overlay.discard(_NAMESPACE, key, info)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _query_impl(self, q: Query, start: Any | None = None) -> QueryResult:
        """One Cycloid lookup; range queries walk the attribute's cluster."""
        start = self._resolve_start(start)
        constraint = q.constraint
        spec = self.schema.spec(q.attribute)
        vh = self.value_hash(q.attribute)
        cluster = self.attr_key(q.attribute)

        if not q.is_range:
            if self._flat:
                key = cluster * self.dimension + vh(constraint.low)
                stored_at = key
            else:
                key = CycloidId(vh(constraint.low), cluster)
                stored_at = self.overlay.linearize(key)
            lookup = self.overlay.lookup(start, key)
            if not lookup.complete:
                return self._failed_result(lookup)
            matches = tuple(
                info
                for info in lookup.owner.items_at(_NAMESPACE, stored_at)
                if info.attribute == q.attribute and constraint.matches(info.value)
            )
            self.overlay.network.count_directory_check(1)
            if self.load_stats is not None:
                self.load_stats.record_serve(lookup.owner.uid, q.attribute)
                self.load_stats.record_route_path(lookup.path)
            self._record(lookup.hops, 1)
            return QueryResult(
                matches=matches, hops=lookup.hops, visited_nodes=1,
                retries=lookup.retries,
            )

        low, high = constraint.bounds_within(spec.lo, spec.hi)
        k1, k2 = vh.hash_range(low, high)
        if self._flat:
            # The attribute's cyclic range is a contiguous ring arc under
            # the linearized ID — a successor walk covers it completely.
            key1 = cluster * self.dimension + k1
            key2 = cluster * self.dimension + k2
            lookup = self.overlay.lookup(start, key1)
            if not lookup.complete:
                return self._failed_result(lookup)
            walk = self.overlay.walk_arc(lookup.owner, key1, key2)
        else:
            lookup = self.overlay.lookup(start, CycloidId(k1, cluster))
            if not lookup.complete:
                return self._failed_result(lookup)
            walk = self.overlay.walk_cluster(lookup.owner, k1, k2)
        matches: tuple = ()
        if self.collect_matches:
            matches = tuple(
                info
                for node in walk
                for info in node.items_in(_NAMESPACE)
                if info.attribute == q.attribute and constraint.matches(info.value)
            )
        hops = lookup.hops + (len(walk) - 1)
        self.overlay.network.count_hop(len(walk) - 1)
        self.overlay.network.count_directory_check(len(walk))
        if self.load_stats is not None:
            self.load_stats.record_serves((node.uid for node in walk), q.attribute)
            self.load_stats.record_route_path(lookup.path)
        self._record(hops, len(walk))
        return QueryResult(
            matches=matches, hops=hops, visited_nodes=len(walk),
            complete=not walk.truncated,
            retries=lookup.retries + walk.retries,
            timed_out=walk.timed_out,
        )

    def _failed_result(self, lookup: Any) -> QueryResult:
        """A lookup that never reached an owner: honest empty partial."""
        self._record(lookup.hops, 0)
        return QueryResult(
            matches=(), hops=lookup.hops, visited_nodes=0,
            complete=False, retries=lookup.retries, timed_out=lookup.timed_out,
        )

    def _record(self, hops: int, visited: int) -> None:
        self.metrics.record_pair("query.hops", hops, "query.visited", visited)

    # ------------------------------------------------------------------
    # Structure metrics
    # ------------------------------------------------------------------
    def random_node(self) -> CycloidNode:
        ids = self.overlay.node_ids
        return self.overlay.node(ids[int(self._rng.integers(len(ids)))])

    def directory_sizes(self) -> list[int]:
        return self.overlay.directory_sizes()

    def outlink_counts(self) -> list[int]:
        return self.overlay.outlink_counts()

    def num_nodes(self) -> int:
        return self.overlay.num_nodes

    def structural_hop_bound(self) -> int:
        if self._flat:
            # Chord-family substrate: the classic halving ceiling.
            return self.overlay.bits + 1
        # Cycloid's lookup termination ceiling: the adaptive descend plus
        # the deterministic fallback sweep never exceed this on a live,
        # stabilized overlay.
        return 10 * self.overlay.dimension + 3 * self.overlay.num_clusters + 4

    def max_visited_per_subquery(self) -> int:
        # A range walk stays inside one cluster (Proposition 3.1), and a
        # cluster holds at most ``d`` nodes; the linearized arc on a flat
        # ring spans at most ``d`` IDs, so the same bound carries over.
        return self.dimension

    def _resolve_start(self, start: CycloidNode | None) -> CycloidNode:
        return start if start is not None else self.random_node()

    def configure_faults(self, injector: Any, policy: Any | None = None) -> None:
        self.overlay.network.faults = injector
        if policy is not None:
            self.overlay.lookup_policy = policy

    # ------------------------------------------------------------------
    # Churn
    # ------------------------------------------------------------------
    def churn_leave(self) -> bool:
        if self.overlay.num_nodes <= 2:
            return False
        ids = self.overlay.node_ids
        victim = ids[int(self._churn_rng.integers(len(ids)))]
        self.overlay.leave(victim)
        self._departed.append(victim)
        return True

    def churn_join(self) -> bool:
        if not self._departed:
            return False
        idx = int(self._churn_rng.integers(len(self._departed)))
        cid = self._departed.pop(idx)
        self.overlay.join(cid)
        return True

    def churn_fail(self) -> bool:
        if self.overlay.num_nodes <= 2:
            return False
        ids = self.overlay.node_ids
        victim = ids[int(self._churn_rng.integers(len(ids)))]
        self.overlay.fail(victim)
        self._departed.append(victim)
        return True

    def stabilize(self, budget: Any | None = None) -> Any:
        if budget is None:
            self.overlay.stabilize_all()
            return None
        return self.maintenance_round().run(budget)
