"""Theorems 4.1–4.10: the paper's closed-form performance analysis.

Every function mirrors one theorem (or the hop-count primitives its proofs
rest on) with the paper's own symbols:

``n`` — number of grid nodes; ``m`` — number of resource attributes;
``k`` — resource-information pieces per attribute; ``d`` — Cycloid
dimension; ``log n`` is base-2 throughout, as in Chord's analysis.

The test-suite checks these formulas against simulation; the experiment
harness uses them to draw the "Analysis-…" curves of Figures 3–6.
"""

from __future__ import annotations

import math

from repro.utils.validation import require_positive

__all__ = [
    "chord_expected_lookup_hops",
    "cycloid_expected_lookup_hops",
    "thm41_structure_overhead_ratio",
    "thm42_total_info_ratio_maan",
    "thm43_directory_reduction_vs_maan",
    "thm44_directory_reduction_vs_sword",
    "thm45_balance_ratio_mercury_vs_lorm",
    "thm47_contacted_reduction_vs_maan",
    "thm48_contacted_reduction_mercury_sword_vs_maan",
    "thm49_visited_nodes_avg",
    "thm410_visited_nodes_worst",
    "nonrange_query_hops_avg",
]


# ---------------------------------------------------------------------------
# Hop-count primitives (used by the proofs of Theorems 4.7–4.10)
# ---------------------------------------------------------------------------
def chord_expected_lookup_hops(n: int) -> float:
    """Average hops of one Chord lookup: ``log2(n) / 2`` (Stoica et al.)."""
    require_positive(n, "n")
    return math.log2(n) / 2.0


def cycloid_expected_lookup_hops(d: int) -> float:
    """Average hops of one Cycloid lookup: ``d`` (Shen, Xu & Chen)."""
    require_positive(d, "d")
    return float(d)


# ---------------------------------------------------------------------------
# Maintenance overhead (Section IV-A)
# ---------------------------------------------------------------------------
def thm41_structure_overhead_ratio(n: int, m: int, d: int) -> float:
    """Theorem 4.1 — LORM improves Mercury's structure maintenance by
    ``m * log2(n) / d`` times (≥ m, since d ≤ log2 n)."""
    require_positive(d, "d")
    return m * math.log2(n) / d


def thm42_total_info_ratio_maan() -> float:
    """Theorem 4.2 — MAAN stores twice the total resource information of
    LORM / SWORD / Mercury (it splits attribute and value)."""
    return 2.0


def thm43_directory_reduction_vs_maan(n: int, m: int, d: int) -> float:
    """Theorem 4.3 — LORM reduces a MAAN directory node's piece count by
    ``d * (1 + m/n)`` times (the paper's 8.78 for d=8, m=200, n=2048)."""
    require_positive(n, "n")
    return d * (1.0 + m / n)


def thm44_directory_reduction_vs_sword(d: int) -> float:
    """Theorem 4.4 — LORM reduces SWORD's directory size by ``d`` times."""
    require_positive(d, "d")
    return float(d)


def thm45_balance_ratio_mercury_vs_lorm(n: int, m: int, d: int) -> float:
    """Theorem 4.5 — Mercury is more balanced than LORM by ``n / (d m)``
    times (the paper's 1.28 for n=2048, d=8, m=200)."""
    require_positive(d * m, "d*m")
    return n / (d * m)


# ---------------------------------------------------------------------------
# Resource-discovery efficiency (Section IV-B)
# ---------------------------------------------------------------------------
def thm47_contacted_reduction_vs_maan(n: int, d: int) -> float:
    """Theorem 4.7 — for non-range queries LORM contacts ``log2(n)/d``
    times fewer nodes than MAAN (the paper's 11/8)."""
    require_positive(d, "d")
    return math.log2(n) / d


def thm48_contacted_reduction_mercury_sword_vs_maan() -> float:
    """Theorem 4.8 — Mercury and SWORD halve MAAN's contacted nodes for
    non-range queries (one lookup instead of two per attribute)."""
    return 2.0


def nonrange_query_hops_avg(approach: str, n: int, d: int, m_query: int) -> float:
    """Expected total hops of an ``m_query``-attribute non-range query.

    Derived from the proofs of Theorems 4.7/4.8: one Chord lookup per
    attribute for Mercury/SWORD, two for MAAN, one Cycloid lookup for LORM.
    """
    per_attr = {
        "LORM": cycloid_expected_lookup_hops(d),
        "Mercury": chord_expected_lookup_hops(n),
        "SWORD": chord_expected_lookup_hops(n),
        "MAAN": 2.0 * chord_expected_lookup_hops(n),
    }
    return m_query * per_attr[approach]


def thm49_visited_nodes_avg(approach: str, n: int, d: int, m_query: int) -> float:
    """Theorem 4.9 (proof) — average-case visited nodes of an
    ``m_query``-attribute *range* query:

    ========  ==================
    Mercury   ``m (1 + n/4)``
    MAAN      ``m (2 + n/4)``
    LORM      ``m (1 + d/4)``
    SWORD     ``m``
    ========  ==================
    """
    per_attr = {
        "Mercury": 1.0 + n / 4.0,
        "MAAN": 2.0 + n / 4.0,
        "LORM": 1.0 + d / 4.0,
        "SWORD": 1.0,
    }
    return m_query * per_attr[approach]


def thm410_visited_nodes_worst(approach: str, n: int, d: int, m_query: int) -> float:
    """Theorem 4.10 (proof) — worst-case contacted nodes of a range query:
    ``m (log n + n)`` for Mercury, ``m (2 log n + n)`` for MAAN, ``m d``
    for LORM (and ``m log n`` for SWORD's single lookups)."""
    log_n = math.log2(n)
    per_attr = {
        "Mercury": log_n + n,
        "MAAN": 2.0 * log_n + n,
        "LORM": float(d),
        "SWORD": log_n,
    }
    return m_query * per_attr[approach]
