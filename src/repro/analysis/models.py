"""Derivation of the paper's "Analysis-X" curves.

Section V never re-simulates the analytical predictions; it takes the
*measured* curve of a reference system and scales it by the theorem's
factor — e.g. "Analysis>LORM" in Figure 3(a) is Mercury's measured outlink
curve divided by m, and "Analysis-LORM" in Figure 4 is MAAN's measured hop
curve divided by log(n)/d.  :func:`derive_curve` reproduces exactly that
construction so the harness emits analysis series the same way the paper
does.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.utils.validation import require

__all__ = ["AnalysisCurve", "curve_from_points", "derive_curve"]


@dataclass(frozen=True)
class AnalysisCurve:
    """A named (x, y) series, measured or analysis-derived."""

    name: str
    x: tuple[float, ...]
    y: tuple[float, ...]
    derived_from: str | None = None
    factor: float | None = None

    def __post_init__(self) -> None:
        require(len(self.x) == len(self.y), f"{self.name}: x/y length mismatch")

    def as_rows(self) -> list[tuple[float, float]]:
        """The series as (x, y) row pairs for CSV emission."""
        return list(zip(self.x, self.y))


def derive_curve(
    name: str,
    reference: AnalysisCurve,
    *,
    divide_by: float | None = None,
    multiply_by: float | None = None,
) -> AnalysisCurve:
    """Scale a measured reference series by a theorem's factor.

    Exactly one of ``divide_by`` / ``multiply_by`` must be given.

    Examples
    --------
    >>> mercury = AnalysisCurve("Mercury", (1.0, 2.0), (200.0, 400.0))
    >>> derive_curve("Analysis>LORM", mercury, divide_by=200.0).y
    (1.0, 2.0)
    """
    require(
        (divide_by is None) != (multiply_by is None),
        "give exactly one of divide_by / multiply_by",
    )
    if divide_by is not None:
        require(divide_by != 0, "cannot divide by zero")
        factor = 1.0 / divide_by
    else:
        assert multiply_by is not None
        factor = multiply_by
    return AnalysisCurve(
        name=name,
        x=reference.x,
        y=tuple(v * factor for v in reference.y),
        derived_from=reference.name,
        factor=factor,
    )


def curve_from_points(name: str, points: Sequence[tuple[float, float]]) -> AnalysisCurve:
    """Build a curve from (x, y) pairs."""
    xs, ys = zip(*points) if points else ((), ())
    return AnalysisCurve(name=name, x=tuple(xs), y=tuple(ys))
