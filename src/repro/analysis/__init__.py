"""Closed-form analytical models (Section IV of the paper).

:mod:`repro.analysis.theorems` encodes Theorems 4.1–4.10 and the expected
hop counts; :mod:`repro.analysis.models` derives the paper's "Analysis-X"
curves from measured reference series exactly the way Section V does
(measured curve of the reference system scaled by the theorem's factor).
"""

from repro.analysis import theorems
from repro.analysis.models import AnalysisCurve, curve_from_points, derive_curve

__all__ = ["AnalysisCurve", "curve_from_points", "derive_curve", "theorems"]
