"""Trace-based test oracles: structural checks over query span trees.

:func:`assert_trace_bounds` turns one traced query into a battery of
assertions against the Section-IV hop-bound theorems *hop by hop*: every
routed lookup's hop chain must be contiguous (each message departs from
the node the previous one reached), its span must account for exactly the
hops it recorded, and — on a fault-free run — every level must respect the
service's structural ceilings (:meth:`structural_hop_bound`,
:meth:`subquery_hop_bound`, :meth:`max_visited_per_subquery`).

The differential harness checks *end states*; these oracles check the
*journey*, so a routing bug that reaches the right owner through an
impossible path fails here even though every result looks correct.
"""

from __future__ import annotations

from typing import Any

from repro.obs.spans import QueryTrace, Span, SpanKind

__all__ = ["TraceBoundViolation", "assert_trace_bounds"]


class TraceBoundViolation(AssertionError):
    """A traced query violated a structural hop-bound or accounting law."""


def _fail(message: str) -> None:
    raise TraceBoundViolation(message)


def _check_hop_chain(span: Span) -> None:
    """Direct hop children must form one contiguous chain from ``origin``."""
    hops = span.hop_spans()
    if not hops:
        return
    expected_src = span.attrs.get("origin")
    for i, hop in enumerate(hops):
        src, dst = hop.attrs.get("src"), hop.attrs.get("dst")
        if expected_src is not None and src != expected_src:
            _fail(
                f"{span.name} span {span.span_id}: hop {i} departs from "
                f"{src!r}, expected {expected_src!r} (broken hop chain)"
            )
        expected_src = dst


def _check_lookup(span: Span, service: Any, faulted: bool) -> None:
    hops = len(span.hop_spans())
    claimed = span.attrs.get("hops")
    if claimed is not None and hops != claimed:
        _fail(
            f"{span.name} span {span.span_id}: {hops} hop spans but "
            f"attrs claim hops={claimed}"
        )
    _check_hop_chain(span)
    if not faulted and span.attrs.get("complete", True):
        bound = service.structural_hop_bound()
        if hops > bound:
            _fail(
                f"{span.name} span {span.span_id}: {hops} hops exceed the "
                f"structural bound {bound} on a fault-free lookup"
            )


def _check_walk(span: Span) -> None:
    hops = len(span.hop_spans())
    visited = span.attrs.get("visited")
    if visited is not None and hops != visited - 1:
        _fail(
            f"{span.name} span {span.span_id}: {hops} hop spans but "
            f"visited={visited} (a walk of v nodes takes v-1 hops)"
        )
    _check_hop_chain(span)


def _check_subquery(span: Span, service: Any, faulted: bool) -> None:
    hops = len(span.find(SpanKind.HOP))
    claimed = span.attrs.get("hops")
    if claimed is not None and hops != claimed:
        _fail(
            f"subquery span {span.span_id} ({span.attrs.get('attribute')}): "
            f"{hops} descendant hop spans but attrs claim hops={claimed}"
        )
    if not faulted and span.attrs.get("complete", True):
        hop_bound = service.subquery_hop_bound()
        if hops > hop_bound:
            _fail(
                f"subquery span {span.span_id}: {hops} hops exceed the "
                f"sub-query bound {hop_bound} on a fault-free run"
            )
        visited = span.attrs.get("visited")
        visited_bound = service.max_visited_per_subquery()
        if visited is not None and visited > visited_bound:
            _fail(
                f"subquery span {span.span_id}: visited {visited} nodes, "
                f"bound is {visited_bound}"
            )


def _check_root(root: Span) -> None:
    subs = [c for c in root.children if c.kind is SpanKind.SUBQUERY]
    if not subs:
        return
    total_hops = sum(s.attrs.get("hops", 0) for s in subs)
    total_visited = sum(s.attrs.get("visited", 0) for s in subs)
    if root.attrs.get("total_hops", total_hops) != total_hops:
        _fail(
            f"query span {root.span_id}: total_hops="
            f"{root.attrs['total_hops']} but sub-queries sum to {total_hops}"
        )
    if root.attrs.get("total_visited", total_visited) != total_visited:
        _fail(
            f"query span {root.span_id}: total_visited="
            f"{root.attrs['total_visited']} but sub-queries sum to "
            f"{total_visited}"
        )


def assert_trace_bounds(trace: QueryTrace, service: Any) -> None:
    """Assert ``trace`` obeys the hop-accounting and theorem bounds of
    ``service``.

    Checks, from the leaves up:

    * every LOOKUP/WALK span has exactly as many hop children as its
      ``hops`` / ``visited - 1`` attributes claim, chained contiguously
      from its ``origin``;
    * fault-free complete lookups stay within
      ``service.structural_hop_bound()``;
    * every SUBQUERY's descendant hop count equals its recorded ``hops``
      and — fault-free — stays within ``service.subquery_hop_bound()``
      and ``service.max_visited_per_subquery()``;
    * the QUERY root's ``total_hops`` / ``total_visited`` equal the sums
      over its sub-queries.

    Spans on faulted traces keep the accounting checks but skip the
    theorem ceilings (retries legitimately exceed them).

    Raises :class:`TraceBoundViolation` (an ``AssertionError``) naming the
    offending span.
    """
    faulted = trace.faulted
    for span in trace.root.walk():
        if span.kind is SpanKind.LOOKUP:
            _check_lookup(span, service, faulted)
        elif span.kind is SpanKind.WALK:
            _check_walk(span)
        elif span.kind is SpanKind.SUBQUERY:
            _check_subquery(span, service, faulted)
    if trace.root.kind is SpanKind.QUERY:
        _check_root(trace.root)
