"""Correctness-harness utilities shared by the CLI, CI and the test tree.

:mod:`repro.testing.differential` replays one seeded workload through all
four discovery systems against the brute-force oracle;
:mod:`repro.sim.invariants` supplies the per-event overlay checks it (and
the experiment runner's ``--invariants`` flag) relies on.
"""

from repro.testing.differential import (
    ALL_SYSTEMS,
    CHECK_CONFIG,
    CheckReport,
    DifferentialReport,
    Divergence,
    run_check,
    run_differential,
)
from repro.testing.traces import TraceBoundViolation, assert_trace_bounds

__all__ = [
    "ALL_SYSTEMS",
    "CHECK_CONFIG",
    "CheckReport",
    "DifferentialReport",
    "Divergence",
    "TraceBoundViolation",
    "assert_trace_bounds",
    "run_check",
    "run_differential",
]
