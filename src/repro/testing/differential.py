"""Differential correctness harness over the four discovery systems.

One seeded workload is replayed through LORM, Mercury, SWORD and MAAN and
every answer is compared against the brute-force oracle
(:meth:`~repro.workloads.generator.GridWorkload.matching_providers_bruteforce`):

* **exactness** — fault-free, every routed point / range /
  multi-attribute query must return exactly the oracle's provider set
  (after graceful churn too); under crashes answers may only
  *under*-approximate, never invent providers;
* **hop/visited bounds** — every sub-query stays within the service's
  structural ceilings (:meth:`DiscoveryService.subquery_hop_bound`), and
  the mean point-query hop count stays within 2x the theorem average
  (Theorems 4.7/4.8 closed forms);
* **invariants** — churn runs under :class:`~repro.sim.invariants.ChurnGuard`,
  so ring/link state, directory conservation and replica placement are
  validated at every event.

:func:`run_check` is the ``repro check`` CLI entry point: a fault-free
differential replay, a graceful-churn replay, and guarded churn storms
(leave/join/fail/stabilize plus replica repair at replication 2, with a
deliberately duplicated piece so multiplicity handling is exercised) —
one under the default successor replication, then one per non-default
durability policy (symmetric placement and a (2, 1) erasure code), so
placement and census validation covers every policy kind.  The same
fault-free replay + guarded storm then repeats per alternative routing
tier (single-hop and ReCord), so the new overlays get the identical
oracle-exact replay guarantees as Chord/Cycloid.  Any divergence makes
the report ``not ok`` and the CLI exit non-zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.theorems import nonrange_query_hops_avg
from repro.core.resource import ResourceInfo
from repro.experiments.common import ServiceBundle, build_services
from repro.experiments.config import ExperimentConfig, SMOKE_CONFIG
from repro.sim.durability import parse_policy
from repro.sim.invariants import (
    InvariantViolation,
    check_overlay,
    install_churn_guards,
    overlay_of,
)
from repro.workloads.generator import QueryKind

__all__ = [
    "ALL_SYSTEMS",
    "CHECK_CONFIG",
    "OVERLAY_LEGS",
    "CheckReport",
    "DifferentialReport",
    "Divergence",
    "run_check",
    "run_differential",
]

#: Report order, matching the rest of the harness.
ALL_SYSTEMS = ("LORM", "Mercury", "SWORD", "MAAN")

#: Scale for ``repro check``: big enough to exercise a sparse ring, range
#: walks and replica repair; small enough for a few seconds in CI.
CHECK_CONFIG = SMOKE_CONFIG.scaled(
    dimension=4,
    chord_bits=7,
    num_attributes=8,
    infos_per_attribute=25,
    max_query_attributes=3,
)

#: Mean point-query hops may exceed the theorem average by this factor
#: before the harness flags it (small populations are noisy).
MEAN_HOPS_SLACK = 2.0

_GRACEFUL_OPS = ("leave", "join", "stabilize")
_ALL_OPS = ("leave", "join", "fail", "stabilize")

#: Alternative routing tiers ``run_check`` re-validates end to end
#: (fault-free oracle replay + guarded churn storm per tier).
OVERLAY_LEGS = ("singlehop", "record")


@dataclass(frozen=True)
class Divergence:
    """One observed disagreement between a system and the oracle/bounds."""

    system: str
    kind: str  # result-set | spurious-provider | incomplete | hop-bound |
    #            visited-bound | mean-hops | invariant
    detail: str
    query_index: int = -1

    def render(self) -> str:
        where = f" (query #{self.query_index})" if self.query_index >= 0 else ""
        return f"{self.system}: [{self.kind}]{where} {self.detail}"


@dataclass
class _SystemStats:
    queries: int = 0
    point_queries: int = 0
    point_hops: float = 0.0
    point_hops_expected: float = 0.0


@dataclass
class DifferentialReport:
    """Outcome of one differential replay."""

    systems: tuple[str, ...]
    num_queries: int
    churn_ops: tuple[str, ...]
    replication: int
    overlay: str | None = None
    divergences: list[Divergence] = field(default_factory=list)
    stats: dict[str, _SystemStats] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.divergences

    def render(self) -> str:
        substrate = f", overlay {self.overlay}" if self.overlay else ""
        lines = [
            f"differential replay: {self.num_queries} queries x "
            f"{len(self.systems)} systems, {len(self.churn_ops)} churn ops, "
            f"replication {self.replication}{substrate}"
        ]
        for name in self.systems:
            st = self.stats.get(name, _SystemStats())
            mean = st.point_hops / st.point_queries if st.point_queries else 0.0
            expected = (
                st.point_hops_expected / st.point_queries if st.point_queries else 0.0
            )
            bad = sum(1 for d in self.divergences if d.system == name)
            verdict = "ok" if not bad else f"{bad} divergence(s)"
            lines.append(
                f"  {name:8s} {st.queries:4d} queries  "
                f"mean point hops {mean:5.2f} (theorem avg {expected:5.2f})  "
                f"{verdict}"
            )
        for d in self.divergences:
            lines.append(f"  !! {d.render()}")
        return "\n".join(lines)


def _apply_op(service, op: str) -> None:
    if op == "leave":
        service.churn_leave()
    elif op == "join":
        service.churn_join()
    elif op == "fail":
        service.churn_fail()
    elif op == "stabilize":
        service.stabilize()
    else:
        raise ValueError(f"unknown churn op {op!r}")


def _query_mix(workload, num_queries: int, config: ExperimentConfig, label: str):
    """A deterministic mix of point / range / at-least multi-queries."""
    kinds = (QueryKind.POINT, QueryKind.RANGE, QueryKind.AT_LEAST)
    max_m = min(config.max_query_attributes, len(workload.schema))
    queries = []
    per_cell = num_queries // (len(kinds) * max_m) + 1
    for kind in kinds:
        for m in range(1, max_m + 1):
            queries.extend(
                workload.query_stream(per_cell, m, kind, label=f"{label}:{kind.value}")
            )
    # Interleave kinds/widths instead of running them in blocks.
    queries.sort(key=lambda q: q.requester)
    return queries[:num_queries]


def run_differential(
    config: ExperimentConfig | None = None,
    *,
    systems: tuple[str, ...] = ALL_SYSTEMS,
    seed: int | None = None,
    num_queries: int = 60,
    churn_ops: tuple[str, ...] = (),
    replication: int = 1,
    expect: str = "exact",
    guard: bool = True,
    label: str = "differential",
    overlay: str | None = None,
) -> DifferentialReport:
    """Replay one seeded workload through ``systems`` against the oracle.

    ``churn_ops`` (names from leave/join/fail/stabilize) run before the
    replay, followed by a stabilization round (plus replica repair when
    ``replication > 1``).  ``expect='exact'`` requires every answer to
    equal the oracle set — correct for fault-free runs and graceful churn;
    ``expect='subset'`` (for runs including crashes) only forbids spurious
    providers.  With ``guard=True`` every churn event is validated by a
    :class:`~repro.sim.invariants.ChurnGuard`.  ``overlay`` runs every
    system on an alternative routing tier (``None`` = native substrates).
    """
    if expect not in ("exact", "subset"):
        raise ValueError(f"expect must be 'exact' or 'subset', got {expect!r}")
    config = config if config is not None else CHECK_CONFIG
    if seed is not None:
        config = config.scaled(seed=seed)
    bundle: ServiceBundle = build_services(
        config, replication=replication, overlay=overlay
    )
    services = [bundle.by_name(name) for name in systems]
    if guard:
        for service in services:
            install_churn_guards(service)

    report = DifferentialReport(
        systems=tuple(systems),
        num_queries=num_queries,
        churn_ops=tuple(churn_ops),
        replication=replication,
        overlay=overlay,
        stats={name: _SystemStats() for name in systems},
    )
    dead: set[str] = set()

    def invariant_divergence(service, exc: InvariantViolation) -> None:
        report.divergences.append(
            Divergence(system=service.name, kind="invariant", detail=str(exc))
        )
        dead.add(service.name)

    for op in churn_ops:
        for service in services:
            if service.name in dead:
                continue
            try:
                _apply_op(service, op)
            except InvariantViolation as exc:
                invariant_divergence(service, exc)
    for service in services:
        if service.name in dead:
            continue
        try:
            service.stabilize()
            if replication > 1:
                overlay_of(service).repair_replication()
        except InvariantViolation as exc:
            invariant_divergence(service, exc)

    queries = _query_mix(bundle.workload, num_queries, config, label=label)
    for qi, query in enumerate(queries):
        truth = bundle.workload.matching_providers_bruteforce(query)
        is_point = not query.is_range
        for service in services:
            if service.name in dead:
                continue
            st = report.stats[service.name]
            result = service.multi_query(query)
            st.queries += 1
            if not result.complete:
                report.divergences.append(
                    Divergence(
                        system=service.name, kind="incomplete", query_index=qi,
                        detail="fault-free query reported complete=False",
                    )
                )
                continue
            if expect == "exact" and result.providers != truth:
                missing = sorted(truth - result.providers)[:3]
                spurious = sorted(result.providers - truth)[:3]
                report.divergences.append(
                    Divergence(
                        system=service.name, kind="result-set", query_index=qi,
                        detail=f"missing {missing}, spurious {spurious}",
                    )
                )
            elif expect == "subset" and not result.providers <= truth:
                report.divergences.append(
                    Divergence(
                        system=service.name, kind="spurious-provider",
                        query_index=qi,
                        detail=f"invented {sorted(result.providers - truth)[:3]}",
                    )
                )
            hop_bound = service.subquery_hop_bound()
            visited_bound = service.max_visited_per_subquery()
            for sub in result.sub_results:
                if sub.hops > hop_bound:
                    report.divergences.append(
                        Divergence(
                            system=service.name, kind="hop-bound", query_index=qi,
                            detail=f"sub-query took {sub.hops} hops, "
                            f"structural bound is {hop_bound}",
                        )
                    )
                if sub.visited_nodes > visited_bound:
                    report.divergences.append(
                        Divergence(
                            system=service.name, kind="visited-bound",
                            query_index=qi,
                            detail=f"sub-query visited {sub.visited_nodes} nodes, "
                            f"bound is {visited_bound}",
                        )
                    )
            if is_point:
                st.point_queries += 1
                st.point_hops += sum(s.hops for s in result.sub_results)
                st.point_hops_expected += nonrange_query_hops_avg(
                    service.name,
                    service.num_nodes(),
                    config.dimension,
                    len(query.constraints),
                )

    for service in services:
        if service.name in dead:
            continue
        st = report.stats[service.name]
        if st.point_queries >= 5:
            mean = st.point_hops / st.point_queries
            expected = st.point_hops_expected / st.point_queries
            if mean > MEAN_HOPS_SLACK * expected + MEAN_HOPS_SLACK:
                report.divergences.append(
                    Divergence(
                        system=service.name, kind="mean-hops",
                        detail=f"mean point-query hops {mean:.2f} exceeds "
                        f"{MEAN_HOPS_SLACK}x the theorem average {expected:.2f}",
                    )
                )
        try:
            check_overlay(overlay_of(service))
        except InvariantViolation as exc:
            invariant_divergence(service, exc)
    return report


def _churn_storm(
    config: ExperimentConfig,
    systems: tuple[str, ...],
    num_events: int,
    seed: int,
    durability=None,
    overlay: str | None = None,
) -> tuple[list[Divergence], int]:
    """A guarded leave/join/fail/stabilize storm at replication 2.

    Every service additionally carries one deliberately *duplicated*
    piece (the same info registered twice — two distinct pieces under one
    key), so directory conservation catches any multiplicity collapse in
    the churn or repair paths.  ``durability`` swaps in a non-default
    :class:`~repro.sim.durability.DurabilityPolicy` (the guard then
    validates the policy's census and placement — ``repro check`` runs
    extra storms under symmetric placement and erasure coding this way).
    Returns (divergences, events validated).
    """
    bundle = build_services(
        config, replication=2, durability=durability, overlay=overlay
    )
    services = [bundle.by_name(name) for name in systems]
    guards = {s.name: install_churn_guards(s) for s in services}
    spec = bundle.workload.schema.specs[0]
    dup = ResourceInfo(spec.name, (spec.lo + spec.hi) / 2.0, "dup-provider")
    for service in services:
        service.register(dup, routed=False)
        service.register(dup, routed=False)

    rng = np.random.default_rng(seed)
    ops = [_ALL_OPS[int(i)] for i in rng.integers(0, len(_ALL_OPS), size=num_events)]
    divergences: list[Divergence] = []
    dead: set[str] = set()
    for op in ops:
        for service in services:
            if service.name in dead:
                continue
            try:
                _apply_op(service, op)
            except InvariantViolation as exc:
                divergences.append(
                    Divergence(system=service.name, kind="invariant", detail=str(exc))
                )
                dead.add(service.name)
    for service in services:
        if service.name in dead:
            continue
        try:
            service.stabilize()
            overlay_of(service).repair_replication()
        except InvariantViolation as exc:
            divergences.append(
                Divergence(system=service.name, kind="invariant", detail=str(exc))
            )
    events = sum(guards[s.name].events for s in services)
    return divergences, events


@dataclass
class CheckReport:
    """Outcome of ``repro check``: replay + graceful churn + churn storms
    (the default successor-replication storm plus one per non-default
    durability policy)."""

    fault_free: DifferentialReport
    graceful: DifferentialReport
    storm_divergences: list[Divergence]
    storm_events: int
    #: (policy name, divergences, guarded events) per extra policy storm.
    policy_storms: list[tuple[str, list[Divergence], int]] = field(
        default_factory=list
    )
    #: Per alternative routing tier: its fault-free differential replay.
    overlay_replays: list[tuple[str, DifferentialReport]] = field(
        default_factory=list
    )
    #: (overlay name, divergences, guarded events) per overlay storm.
    overlay_storms: list[tuple[str, list[Divergence], int]] = field(
        default_factory=list
    )

    @property
    def ok(self) -> bool:
        return (
            self.fault_free.ok
            and self.graceful.ok
            and not self.storm_divergences
            and all(not divs for _, divs, _ in self.policy_storms)
            and all(report.ok for _, report in self.overlay_replays)
            and all(not divs for _, divs, _ in self.overlay_storms)
        )

    @property
    def divergences(self) -> list[Divergence]:
        return (
            list(self.fault_free.divergences)
            + list(self.graceful.divergences)
            + list(self.storm_divergences)
            + [d for _, divs, _ in self.policy_storms for d in divs]
            + [d for _, report in self.overlay_replays for d in report.divergences]
            + [d for _, divs, _ in self.overlay_storms for d in divs]
        )

    def render(self) -> str:
        lines = ["== fault-free differential replay =="]
        lines.append(self.fault_free.render())
        lines.append("== graceful-churn differential replay ==")
        lines.append(self.graceful.render())
        lines.append(
            f"== churn storm (replication 2): {self.storm_events} guarded "
            f"events =="
        )
        if self.storm_divergences:
            lines.extend(f"  !! {d.render()}" for d in self.storm_divergences)
        else:
            lines.append("  all invariants held")
        for name, divs, events in self.policy_storms:
            lines.append(f"== churn storm ({name}): {events} guarded events ==")
            if divs:
                lines.extend(f"  !! {d.render()}" for d in divs)
            else:
                lines.append("  all invariants held")
        for name, report in self.overlay_replays:
            lines.append(f"== fault-free differential replay (overlay {name}) ==")
            lines.append(report.render())
        for name, divs, events in self.overlay_storms:
            lines.append(
                f"== churn storm (overlay {name}): {events} guarded events =="
            )
            if divs:
                lines.extend(f"  !! {d.render()}" for d in divs)
            else:
                lines.append("  all invariants held")
        lines.append(f"result: {'OK' if self.ok else 'DIVERGED'}")
        return "\n".join(lines)


def run_check(
    config: ExperimentConfig | None = None,
    *,
    systems: tuple[str, ...] = ALL_SYSTEMS,
    seed: int = 0,
    num_queries: int = 45,
    churn_events: int = 40,
) -> CheckReport:
    """The full correctness check behind ``repro check``."""
    config = config if config is not None else CHECK_CONFIG
    fault_free = run_differential(
        config, systems=systems, seed=seed, num_queries=num_queries,
        label="check-fault-free",
    )
    rng = np.random.default_rng(seed + 1)
    graceful_ops = tuple(
        _GRACEFUL_OPS[int(i)]
        for i in rng.integers(0, len(_GRACEFUL_OPS), size=max(1, churn_events // 2))
    )
    graceful = run_differential(
        config, systems=systems, seed=seed, num_queries=max(1, num_queries // 3),
        churn_ops=graceful_ops, label="check-graceful",
    )
    storm_divergences, storm_events = _churn_storm(
        config.scaled(seed=config.seed + seed), systems, churn_events, seed
    )
    policy_storms = []
    for spec in ("symmetric:2", "erasure:2+1"):
        divs, events = _churn_storm(
            config.scaled(seed=config.seed + seed), systems, churn_events, seed,
            durability=parse_policy(spec),
        )
        policy_storms.append((spec, divs, events))
    overlay_replays = []
    overlay_storms = []
    for overlay in OVERLAY_LEGS:
        overlay_replays.append(
            (
                overlay,
                run_differential(
                    config, systems=systems, seed=seed,
                    num_queries=max(1, num_queries // 3),
                    label=f"check-{overlay}", overlay=overlay,
                ),
            )
        )
        divs, events = _churn_storm(
            config.scaled(seed=config.seed + seed), systems, churn_events, seed,
            overlay=overlay,
        )
        overlay_storms.append((overlay, divs, events))
    return CheckReport(
        fault_free=fault_free,
        graceful=graceful,
        storm_divergences=storm_divergences,
        storm_events=storm_events,
        policy_storms=policy_storms,
        overlay_replays=overlay_replays,
        overlay_storms=overlay_storms,
    )
