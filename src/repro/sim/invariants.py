"""Simulation-wide correctness invariants for the DHT overlays.

The paper's efficiency and availability numbers are only meaningful while
the simulator's bookkeeping is exact, so this module centralises the
checkable invariants and makes them cheap to run after every churn event:

* **structural** — membership indexes agree with the node objects, and the
  successor/predecessor (Chord) or leaf-set (Cycloid) links form the
  unique ring over the live population;
* **directory conservation** — a *census* of every stored
  ``(namespace, key, item)`` piece, taken before and after a churn event:
  joins, graceful leaves, stabilization rounds and replica repair must
  conserve every piece exactly, while a crash may only lose pieces, never
  invent them;
* **replica placement** — immediately after ``repair_replication`` every
  piece sits on exactly its replica set, with identical per-key contents
  on every holder.

Census semantics: the multiplicity of a piece is the *maximum* per-node
copy count.  Replicas of one piece therefore count once, while genuinely
distinct identical pieces stored under the same key (``leave``'s
"identical items are distinct pieces" contract) keep their multiplicity.

:class:`ChurnGuard` wires the checks into a service: it wraps the
service's churn entry points (``churn_join`` / ``churn_leave`` /
``churn_fail`` / ``stabilize``) and the overlay's ``repair_replication``
so every event is validated as it happens.  The experiment runner's
``--invariants`` flag and the ``repro check`` CLI subcommand both install
guards this way.

The checkers deliberately duck-type the two overlays (anything with
``check_ring_invariants`` is treated as a Chord ring, anything with
``delinearize`` as a Cycloid overlay) so this module imports nothing from
:mod:`repro.overlay` and stays cycle-free.
"""

from __future__ import annotations

import functools
from collections import Counter
from typing import Any, Callable

from repro.sim.durability import decodable_level

__all__ = [
    "InvariantViolation",
    "ChurnGuard",
    "check_chord_ring",
    "check_cycloid_overlay",
    "check_overlay",
    "check_replica_placement",
    "directory_census",
    "install_churn_guards",
    "overlay_of",
]


class InvariantViolation(AssertionError):
    """A structural or accounting invariant of the simulation failed."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise InvariantViolation(message)


def _describe(diff: Counter, limit: int = 4) -> str:
    """A short human-readable sample of a census difference."""
    shown = ", ".join(
        f"{ns}:{key}:{item!r}×{count}"
        for (ns, key, item), count in list(diff.items())[:limit]
    )
    more = len(diff) - limit
    return shown + (f" (+{more} more)" if more > 0 else "")


# ----------------------------------------------------------------------
# Directory census
# ----------------------------------------------------------------------
def directory_census(overlay: Any, policy: Any = None) -> Counter:
    """Logical directory contents: ``(namespace, key, item) -> multiplicity``.

    Multiplicity is the maximum per-node copy count, so the replicas of a
    piece count once while distinct identical pieces stored under the same
    key keep their count.  Conserved exactly by joins, graceful leaves,
    stabilization and replica repair; crashes may only decrease it.

    With a :class:`~repro.sim.durability.DurabilityPolicy` whose decode
    threshold exceeds 1 (erasure coding), the census counts *decodable*
    multiplicity instead: level ``j`` of a piece exists only while at
    least ``k`` distinct holders carry ``>= j`` copies (fragments).  At
    threshold 1 — every replication policy, and the ``policy=None``
    default — the two definitions coincide exactly.
    """
    threshold = 1 if policy is None else policy.threshold
    if threshold == 1:
        census: Counter = Counter()
        for node in list(overlay.nodes()):
            per_node: Counter = Counter(node.stored_entries())
            for entry, count in per_node.items():
                if count > census[entry]:
                    census[entry] = count
        return census
    counts: dict[tuple, list[int]] = {}
    for node in list(overlay.nodes()):
        for entry, count in Counter(node.stored_entries()).items():
            counts.setdefault(entry, []).append(count)
    decodable: Counter = Counter()
    for entry, per_holder in counts.items():
        level = decodable_level(per_holder, threshold)
        if level:
            decodable[entry] = level
    return decodable


# ----------------------------------------------------------------------
# Structural checks
# ----------------------------------------------------------------------
def check_chord_ring(ring: Any) -> None:
    """Membership-index consistency plus successor/predecessor ring links."""
    ids = ring.node_ids
    _check(bool(ids), "chord: ring has no members")
    _check(ids == sorted(ids), f"chord: node index not sorted: {ids}")
    _check(len(ids) == len(set(ids)), f"chord: duplicate node IDs: {ids}")
    _check(
        ring.num_nodes == len(ids),
        f"chord: num_nodes {ring.num_nodes} != index size {len(ids)}",
    )
    for nid in ids:
        try:
            node = ring.node(nid)
        except KeyError:
            raise InvariantViolation(
                f"chord: id {nid} indexed but absent from the node map"
            ) from None
        _check(node.alive, f"chord: dead node {nid} still indexed as live")
        _check(
            node.node_id == nid,
            f"chord: node map inconsistent at {nid} (object says {node.node_id})",
        )
    try:
        ring.check_ring_invariants()
    except InvariantViolation:
        raise
    except AssertionError as exc:
        raise InvariantViolation(f"chord ring links: {exc}") from exc


def check_cycloid_overlay(overlay: Any) -> None:
    """Cluster-index consistency plus Cycloid leaf-set mutuality."""
    ids = overlay.node_ids
    _check(bool(ids), "cycloid: overlay has no members")
    _check(len(ids) == len(set(ids)), f"cycloid: duplicate node IDs: {ids}")
    _check(
        overlay.num_nodes == len(ids),
        f"cycloid: num_nodes {overlay.num_nodes} != index size {len(ids)}",
    )
    clusters = sorted({cid.a for cid in ids})
    _check(
        overlay.num_clusters == len(clusters),
        f"cycloid: num_clusters {overlay.num_clusters} != {len(clusters)} "
        "non-empty clusters in the index",
    )
    for cid in ids:
        try:
            node = overlay.node(cid)
        except KeyError:
            raise InvariantViolation(
                f"cycloid: id {cid} indexed but absent from the node map"
            ) from None
        _check(node.alive, f"cycloid: dead node {cid} still indexed as live")
        _check(
            node.cid == cid,
            f"cycloid: node map inconsistent at {cid} (object says {node.cid})",
        )
    try:
        overlay.check_invariants()
    except InvariantViolation:
        raise
    except AssertionError as exc:
        raise InvariantViolation(f"cycloid leaf sets: {exc}") from exc


def check_overlay(overlay: Any) -> None:
    """Dispatch to the overlay-appropriate structural check."""
    if hasattr(overlay, "check_ring_invariants"):
        check_chord_ring(overlay)
    else:
        check_cycloid_overlay(overlay)


def overlay_of(service: Any) -> Any:
    """The overlay substrate behind a discovery service (ring or Cycloid)."""
    overlay = getattr(service, "overlay", None)
    if overlay is None:
        overlay = getattr(service, "ring", None)
    if overlay is None:
        raise TypeError(f"{type(service).__name__} exposes no overlay substrate")
    return overlay


# ----------------------------------------------------------------------
# Replica placement (strict; valid immediately after repair_replication)
# ----------------------------------------------------------------------
def _replicas_for(overlay: Any, key_id: int) -> list:
    if hasattr(overlay, "delinearize"):
        return overlay.replica_set(overlay.delinearize(key_id))
    return overlay.replica_set(key_id)


def check_replica_placement(overlay: Any) -> None:
    """Every stored key sits on exactly its replica set, identically.

    Only guaranteed immediately after ``repair_replication`` — between
    repairs, churn legitimately leaves copies on stale holders.
    """
    holders: dict[tuple[str, int], dict[Any, Counter]] = {}
    for node in list(overlay.nodes()):
        for namespace, key_id, item in node.stored_entries():
            per_key = holders.setdefault((namespace, key_id), {})
            per_key.setdefault(node.uid, Counter())[item] += 1
    for (namespace, key_id), per_key in holders.items():
        expected = {n.uid for n in _replicas_for(overlay, key_id)}
        actual = set(per_key)
        _check(
            actual == expected,
            f"replica drift at {namespace}:{key_id}: held by {sorted(map(str, actual))}, "
            f"replica set is {sorted(map(str, expected))}",
        )
        contents = list(per_key.values())
        _check(
            all(c == contents[0] for c in contents[1:]),
            f"replica divergence at {namespace}:{key_id}: holders disagree "
            "on the key's contents",
        )


# ----------------------------------------------------------------------
# Churn guard
# ----------------------------------------------------------------------
class ChurnGuard:
    """Validates a service's overlay after every churn event.

    Wraps ``churn_join`` / ``churn_leave`` / ``churn_fail`` / ``stabilize``
    on the service and ``repair_replication`` / ``repair_replication_step``
    on its overlay (as instance attributes, so later callers — including
    the event-driven churn harness, which captures the bound methods — go
    through the guard).  ``stabilize`` covers both the seed's global sweep
    and the budgeted maintenance rounds, which pass through it.

    Each wrapped call re-runs the structural checks and compares the
    directory census across the event: joins, leaves, stabilization and
    repair must conserve it exactly; a crash may only lose pieces.  Repair
    additionally asserts strict replica placement.  Violations raise
    :class:`InvariantViolation` at the offending event.

    The census is taken under the overlay's durability policy, so for an
    erasure-coded configuration it counts *decodable* pieces.  One
    contract is weaker there: graceful joins and leaves merge the moving
    node's fragments onto the new owner, so previously distinct holders
    fate-share and decodability may legitimately drop until the next
    repair re-spreads the fragments — under a decode threshold > 1 those
    events are guarded as "may only lose" (like crashes) instead of
    exact-conserving.  Repair and stabilization stay exact for every
    policy.
    """

    #: Events that must conserve the directory census exactly.
    _CONSERVING = ("churn_join", "churn_leave", "stabilize")

    def __init__(self, service: Any) -> None:
        self.service = service
        self.overlay = overlay_of(service)
        self.policy = getattr(self.overlay, "durability", None)
        #: Number of churn events validated so far.
        self.events = 0
        fragments_fate_share = self.policy is not None and self.policy.is_erasure
        for name in self._CONSERVING:
            exact = name == "stabilize" or not fragments_fate_share
            setattr(service, name, self._guarded(getattr(service, name), exact=exact))
        service.churn_fail = self._guarded(service.churn_fail, exact=False)
        self.overlay.repair_replication = self._guarded(
            self.overlay.repair_replication, exact=True, placement=True
        )
        if hasattr(self.overlay, "repair_replication_step"):
            # Incremental anti-entropy must conserve the census exactly,
            # but a partial pass legitimately leaves unvisited keys
            # misplaced — no placement assertion here.
            self.overlay.repair_replication_step = self._guarded(
                self.overlay.repair_replication_step, exact=True
            )

    def _guarded(
        self, fn: Callable, *, exact: bool, placement: bool = False
    ) -> Callable:
        @functools.wraps(fn)
        def checked(*args: Any, **kwargs: Any) -> Any:
            before = directory_census(self.overlay, self.policy)
            out = fn(*args, **kwargs)
            self.events += 1
            check_overlay(self.overlay)
            after = directory_census(self.overlay, self.policy)
            if exact:
                _check(
                    after == before,
                    f"{fn.__name__} did not conserve the directory: "
                    f"lost [{_describe(before - after)}], "
                    f"invented [{_describe(after - before)}]",
                )
            else:
                invented = after - before
                _check(
                    not invented,
                    f"{fn.__name__} invented directory entries: "
                    f"[{_describe(invented)}]",
                )
            if placement:
                check_replica_placement(self.overlay)
            return out

        return checked


def install_churn_guards(service: Any) -> ChurnGuard:
    """Attach a :class:`ChurnGuard` to ``service``; returns the guard."""
    return ChurnGuard(service)
