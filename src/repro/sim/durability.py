"""Pluggable durability policies: placement × redundancy for stored pieces.

The seed hard-codes one redundancy scheme — successor-list replication,
``replica_set(key) = owner + next (r-1) successors`` — inside
``ChordRing``/``CycloidOverlay``.  Leslie's *Reliable Data Storage in
Distributed Hash Tables* shows that the replication-vs-erasure-coding
choice (and *where* the copies live) dominates durability and repair
bandwidth under exactly the churn regimes our chaos timelines generate,
so this module factors the scheme out into policy objects:

* :class:`PlacementPolicy` — *where* a key's fragments live.
  :class:`SuccessorPlacement` is the seed's scheme (byte-identical when
  used with plain replication); :class:`SymmetricPlacement` spreads the
  holders at equidistant offsets around the identifier space, so a
  correlated crash of ring-adjacent nodes cannot take out a whole
  replica set.
* :class:`DurabilityPolicy` — placement plus *redundancy semantics*:
  ``fragments`` total holders and a decode ``threshold`` (the ``k`` of a
  ``(k, m)`` erasure code; 1 for plain replication).  A piece is *alive*
  iff at least ``threshold`` distinct holders still carry it.

Fragments are not modelled as wrapper objects: items are stored plainly
(so the query paths read real directory entries — the simulated read of
an erasure-coded piece *is* the decode) and redundancy is interpreted at
the accounting layer through :func:`decodable_level`.  With
``threshold=1`` every formula in this module reduces exactly to the
seed's max-merge census convention, which is what keeps the default
policy byte-identical to the pre-policy code.

Import discipline: this module is imported by ``repro.overlay`` (the
overlays carry their policy) and by the invariant/maintenance layers, so
it must not import anything from ``repro.overlay`` or
``repro.baselines``; overlays are duck-typed via ``native_holders`` /
``successor_of`` / ``closest_node`` / ``linearize``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.utils.validation import require

__all__ = [
    "PlacementPolicy",
    "SuccessorPlacement",
    "SymmetricPlacement",
    "DurabilityPolicy",
    "successor_replication",
    "symmetric_replication",
    "erasure_code",
    "decodable_level",
    "parse_policy",
    "DEFAULT_POLICY_SPECS",
]


def decodable_level(counts: Sequence[int], threshold: int) -> int:
    """How many *decodable* instances of a piece the holder counts witness.

    ``counts`` are one piece's per-holder copy counts; level ``j`` is
    decodable when at least ``threshold`` distinct holders carry ``>= j``
    copies, so the level is the ``threshold``-th largest count (0 when
    fewer than ``threshold`` holders survive — the piece is lost).

    With ``threshold=1`` this is ``max(counts)``: exactly the seed's
    census convention (replica copies count once, genuinely distinct
    identical pieces keep their multiplicity).
    """
    if threshold == 1:
        return max(counts, default=0)
    if len(counts) < threshold:
        return 0
    return sorted(counts, reverse=True)[threshold - 1]


def _id_space_of(overlay: Any) -> int:
    """Linearized identifier-space size (``2**bits``, or ``d * 2**d``).

    Mirrors :func:`repro.sim.chaos.id_space_of`; duplicated here because
    importing :mod:`repro.sim.chaos` from this module would close an
    import cycle through the :mod:`repro.sim` package init (this module
    is imported by ``repro.sim.maintenance`` and ``repro.overlay``).
    """
    space = getattr(overlay, "space", None)
    if space is not None:
        return space.size
    return overlay.capacity


def _linear_owner(overlay: Any, key_id: int) -> Any:
    """The node owning linearized key ``key_id`` (either overlay kind)."""
    if hasattr(overlay, "delinearize"):
        return overlay.closest_node(overlay.delinearize(key_id))
    return overlay.successor_of(key_id)


def _linear_uid(overlay: Any, node: Any) -> int:
    """A node's position in the linearized identifier space."""
    if hasattr(overlay, "delinearize"):
        return overlay.linearize(node.cid)
    return node.node_id


# ----------------------------------------------------------------------
# Placement
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlacementPolicy:
    """Where a key's ``count`` fragment holders live on an overlay.

    Concrete placements implement :meth:`holders` over the *linearized*
    key space (Chord ring IDs, or ``a*d + k`` for Cycloid) so one policy
    object serves both overlay kinds.  ``holders[0]`` must be the key's
    owner — the node the query paths read from.
    """

    kind = "abstract"

    def holders(self, overlay: Any, key_id: int, count: int) -> list:
        raise NotImplementedError

    def validate(self, overlay: Any, count: int) -> None:
        """Reject configurations the overlay cannot host (ctor-time)."""


@dataclass(frozen=True)
class SuccessorPlacement(PlacementPolicy):
    """The seed's scheme: the owner plus the next ``count - 1`` native
    successors (Chord: successor-list entries; Cycloid: clockwise members
    of the owner's cluster).  Byte-identical to the pre-policy
    ``replica_set`` implementations.
    """

    kind = "successor"

    def holders(self, overlay: Any, key_id: int, count: int) -> list:
        return overlay.native_holders(key_id, count)

    def validate(self, overlay: Any, count: int) -> None:
        limit = getattr(overlay, "successor_list_len", None)
        if limit is not None:
            require(
                count <= limit + 1,
                "replication cannot exceed successor_list_len + 1 "
                "(replicas live on the successor list)",
            )
        else:
            require(count <= overlay.dimension, "replication must be in [1, d]")


@dataclass(frozen=True)
class SymmetricPlacement(PlacementPolicy):
    """Holders at equidistant offsets around the identifier space.

    Holder ``i`` owns ``key + i * space // count``; when two offsets
    resolve to the same node (sparse rings) the set is padded with the
    key's clockwise successors, so the placement yields ``count``
    distinct holders whenever the population allows.  Spreading the
    holders decorrelates them from ring-adjacent crash bursts — the
    failure mode successor placement is maximally exposed to.
    """

    kind = "symmetric"

    def holders(self, overlay: Any, key_id: int, count: int) -> list:
        space = _id_space_of(overlay)
        out: list = []
        seen: set[int] = set()
        for i in range(count):
            node = _linear_owner(overlay, (key_id + i * space // count) % space)
            uid = _linear_uid(overlay, node)
            if uid not in seen:
                seen.add(uid)
                out.append(node)
        # Pad collisions with clockwise successors of the key itself.
        cursor = key_id
        for _ in range(overlay.num_nodes):
            if len(out) >= count or len(out) >= overlay.num_nodes:
                break
            node = _linear_owner(overlay, cursor)
            uid = _linear_uid(overlay, node)
            if uid not in seen:
                seen.add(uid)
                out.append(node)
            cursor = (uid + 1) % space
        return out

    def validate(self, overlay: Any, count: int) -> None:
        # Nothing structural to reject: the overlay is typically empty at
        # construction time, and a population that later shrinks below
        # ``count`` simply yields fewer holders (a degraded placement the
        # deficit accounting reports rather than an error).
        return None


# ----------------------------------------------------------------------
# The policy: placement × redundancy
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DurabilityPolicy:
    """How a stored piece survives node death.

    ``fragments`` holders carry the piece; it decodes while at least
    ``threshold`` distinct holders survive.  Plain replication is
    ``threshold=1`` (any surviving copy is the piece); a ``(k, m)``
    erasure code is ``fragments=k+m, threshold=k``.  Each fragment costs
    ``1/threshold`` of the piece's size (:attr:`fragment_weight`), which
    is what makes erasure coding cheaper per unit of loss tolerance —
    and what the repair-bandwidth accounting of the durability
    experiment multiplies copies-moved by.
    """

    name: str
    placement: PlacementPolicy = field(default_factory=SuccessorPlacement)
    fragments: int = 1
    threshold: int = 1

    def __post_init__(self) -> None:
        require(self.fragments >= 1, "replication must be >= 1")
        require(
            1 <= self.threshold <= self.fragments,
            "decode threshold must be in [1, fragments]",
        )

    @property
    def fragment_weight(self) -> float:
        """Transfer/storage cost of one fragment, in units of one piece."""
        return 1.0 / self.threshold

    @property
    def storage_overhead(self) -> float:
        """Bytes stored per byte of data when fully placed (r, or (k+m)/k)."""
        return self.fragments / self.threshold

    @property
    def is_erasure(self) -> bool:
        return self.threshold > 1

    def holders(self, overlay: Any, key_id: int) -> list:
        """The nodes that should hold ``key_id``'s fragments, owner first."""
        return self.placement.holders(overlay, key_id, self.fragments)

    def validate(self, overlay: Any) -> None:
        """Ctor-time check that ``overlay`` can host this policy."""
        self.placement.validate(overlay, self.fragments)


def successor_replication(copies: int) -> DurabilityPolicy:
    """The seed's scheme: ``copies`` replicas on the native successors."""
    return DurabilityPolicy(
        name=f"replication:{copies}",
        placement=SuccessorPlacement(),
        fragments=copies,
        threshold=1,
    )


def symmetric_replication(copies: int) -> DurabilityPolicy:
    """``copies`` replicas spread at equidistant identifier offsets."""
    return DurabilityPolicy(
        name=f"symmetric:{copies}",
        placement=SymmetricPlacement(),
        fragments=copies,
        threshold=1,
    )


def erasure_code(
    k: int, m: int, placement: str = "symmetric"
) -> DurabilityPolicy:
    """A ``(k, m)`` erasure code: ``k + m`` fragments, any ``k`` decode.

    Fragments default to symmetric placement (spreading them is what
    buys the durability); ``placement="successor"`` keeps them on the
    native successor chain for comparison.  ``k=1`` degenerates to plain
    ``m + 1``-way replication.
    """
    require(m >= 1, "an erasure code needs at least one parity fragment")
    suffix = "" if placement == "symmetric" else f"@{placement}"
    return DurabilityPolicy(
        name=f"erasure:{k}+{m}{suffix}",
        placement=_PLACEMENTS[placement](),
        fragments=k + m,
        threshold=k,
    )


_PLACEMENTS = {
    "successor": SuccessorPlacement,
    "symmetric": SymmetricPlacement,
}

#: The sweep the ``repro durability`` experiment runs by default.
DEFAULT_POLICY_SPECS = ("replication:2", "symmetric:2", "erasure:2+1")


def parse_policy(spec: str) -> DurabilityPolicy:
    """Parse a CLI policy spec into a :class:`DurabilityPolicy`.

    Grammar: ``replication:R`` | ``symmetric:R`` | ``erasure:K+M`` —
    each optionally suffixed ``@successor`` / ``@symmetric`` to override
    the placement (e.g. ``erasure:2+1@successor``).
    """
    body, sep, where = spec.partition("@")
    kind, _, params = body.partition(":")
    require(bool(params), f"policy spec {spec!r} is missing parameters")
    require(
        not sep or where in _PLACEMENTS,
        f"unknown placement {where!r} in policy spec {spec!r}",
    )
    try:
        if kind == "erasure":
            k_text, _, m_text = params.partition("+")
            k, m = int(k_text), int(m_text)
            return erasure_code(k, m, placement=where or "symmetric")
        if kind in ("replication", "symmetric"):
            copies = int(params)
            default_placement = "successor" if kind == "replication" else "symmetric"
            placement = where or default_placement
            name = spec if sep else f"{kind}:{copies}"
            return DurabilityPolicy(
                name=name,
                placement=_PLACEMENTS[placement](),
                fragments=copies,
                threshold=1,
            )
    except ValueError as exc:
        raise ValueError(f"bad policy spec {spec!r}: {exc}") from None
    raise ValueError(
        f"unknown policy kind {kind!r} in {spec!r} "
        "(expected replication / symmetric / erasure)"
    )
