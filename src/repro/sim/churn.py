"""Poisson churn process (Section V-C of the paper).

The paper models the node join/departure rate ``R`` as a Poisson process,
"one resource join and one resource departure every 2.5 seconds with
R = 0.4" — i.e. joins arrive as a Poisson process of rate ``R`` per second
and departures as an independent Poisson process of the same rate, so the
population stays balanced around its initial size.

:class:`ChurnProcess` generates the event stream; the experiment harness
binds each event to the overlay's ``join``/``leave`` operations.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.sim.engine import Simulator
from repro.utils.validation import require_positive

__all__ = ["ChurnEvent", "ChurnEventKind", "ChurnProcess"]


class ChurnEventKind(str, Enum):
    """Whether a churn event adds or removes a node."""

    JOIN = "join"
    LEAVE = "leave"


@dataclass(frozen=True)
class ChurnEvent:
    """One churn event: a node joins or leaves at simulated ``time``."""

    time: float
    kind: ChurnEventKind


@dataclass
class ChurnProcess:
    """Two independent Poisson streams (joins, departures) of rate ``rate``.

    Parameters
    ----------
    rate:
        Events per second *per stream*; ``rate=0.4`` reproduces the paper's
        example of one join and one departure every 2.5 s on average.
    rng:
        NumPy generator supplying the exponential inter-arrival times.
    """

    rate: float
    rng: np.random.Generator

    def __post_init__(self) -> None:
        require_positive(self.rate, "rate")

    def events_until(self, horizon: float) -> list[ChurnEvent]:
        """All churn events in ``[0, horizon)``, time-ordered.

        Implemented as a bounded prefix of :meth:`stream`, so both entry
        points consume the RNG identically and produce the *same* event
        sequence for the same seed — a batch caller and a streaming caller
        of one seeded process see one reality.
        """
        events: list[ChurnEvent] = []
        for event in self.stream():
            if event.time >= horizon:
                break
            events.append(event)
        return events

    def stream(self) -> Iterator[ChurnEvent]:
        """Unbounded time-ordered stream of churn events."""
        next_join = self._expovariate()
        next_leave = self._expovariate()
        while True:
            if next_join <= next_leave:
                yield ChurnEvent(next_join, ChurnEventKind.JOIN)
                next_join += self._expovariate()
            else:
                yield ChurnEvent(next_leave, ChurnEventKind.LEAVE)
                next_leave += self._expovariate()

    def install(
        self,
        sim: Simulator,
        horizon: float,
        on_join: Callable[[], None],
        on_leave: Callable[[], None],
    ) -> int:
        """Schedule every churn event up to ``horizon`` on ``sim``.

        Returns the number of events installed.
        """
        events = self.events_until(horizon)
        for event in events:
            action = on_join if event.kind is ChurnEventKind.JOIN else on_leave
            sim.schedule_at(event.time, action, name=f"churn-{event.kind.value}")
        return len(events)

    def _expovariate(self) -> float:
        return float(self.rng.exponential(1.0 / self.rate))
