"""Deterministic discrete-event engine.

A minimal but complete event-queue simulator: events are ``(time, seq)``
ordered (the monotonically increasing sequence number breaks ties so that
same-timestamp events fire in scheduling order, keeping runs deterministic),
actions are arbitrary callables, and the clock only moves when events fire.

The churn experiments (Figure 6) drive node joins/departures and query
arrivals through one :class:`Simulator`; the static experiments do not need
an engine at all and call the overlays directly.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.utils.validation import require

__all__ = ["Event", "Simulator"]


@dataclass(order=True, frozen=True)
class Event:
    """A scheduled action.  Ordered by ``(time, seq)``."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    name: str = field(compare=False, default="")


class Simulator:
    """Binary-heap discrete-event scheduler with a monotonic clock.

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(2.0, lambda: fired.append("b"))
    >>> _ = sim.schedule(1.0, lambda: fired.append("a"))
    >>> sim.run()
    2
    >>> fired
    ['a', 'b']
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self._cancelled: set[int] = set()
        self._pending: set[int] = set()
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled tombstones)."""
        return len(self._queue)

    def schedule(self, delay: float, action: Callable[[], None], name: str = "") -> Event:
        """Schedule ``action`` to fire ``delay`` time units from now."""
        require(delay >= 0, f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, action, name)

    def schedule_at(self, time: float, action: Callable[[], None], name: str = "") -> Event:
        """Schedule ``action`` at absolute simulation time ``time``.

        ``time`` strictly before the current clock is rejected (scheduling
        *at* the current instant is allowed and fires after every earlier-
        scheduled event of the same timestamp).  NaN is rejected too — a
        NaN timestamp would silently corrupt the heap ordering.
        """
        require(
            time >= self._now,
            f"cannot schedule into the past (t={time}, now={self._now})",
        )
        event = Event(time=time, seq=next(self._seq), action=action, name=name)
        heapq.heappush(self._queue, event)
        self._pending.add(event.seq)
        return event

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (lazy removal).

        Cancelling an event that already fired — or was already cancelled —
        is a no-op: tombstones are only kept for events still in the queue,
        so they cannot accumulate across a long run.
        """
        if event.seq in self._pending:
            self._pending.discard(event.seq)
            self._cancelled.add(event.seq)

    def step(self) -> Event | None:
        """Fire the next event; returns it, or ``None`` if queue is empty.

        Cancelled events are skipped silently: they advance neither the
        clock nor ``events_processed``.
        """
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.seq in self._cancelled:
                self._cancelled.discard(event.seq)
                continue
            self._pending.discard(event.seq)
            self._now = event.time
            event.action()
            self.events_processed += 1
            return event
        return None

    def run(self, max_events: int | None = None) -> int:
        """Run until the queue drains (or ``max_events`` fire); returns count."""
        fired = 0
        while self._queue and (max_events is None or fired < max_events):
            if self.step() is not None:
                fired += 1
        return fired

    def run_until(self, time: float) -> int:
        """Fire all events with timestamp ≤ ``time``; advance clock to ``time``."""
        fired = 0
        while self._queue:
            head = self._queue[0]
            if head.seq in self._cancelled:
                heapq.heappop(self._queue)
                self._cancelled.discard(head.seq)
                continue
            if head.time > time:
                break
            if self.step() is not None:
                fired += 1
        self._now = max(self._now, time)
        return fired
