"""Budgeted self-healing maintenance for the overlay substrates.

The seed repo heals churn damage with *global* sweeps —
``stabilize_all()`` re-derives every node's routing state and
``repair_replication()`` restores every key to its replica set in one
call.  Real DHT maintenance is neither free nor instantaneous: each
periodic round touches a bounded number of neighbours and keys, so
recovery time after a fault is governed by the *maintenance budget* and
the round interval.  This module adds that cost model:

* :class:`MaintenanceBudget` — per-round work caps (stabilize steps,
  routing-refresh steps, replica-repair key buckets).  ``None`` fields
  mean unbounded; the all-``None`` :data:`UNLIMITED_BUDGET` reduces a
  round to the seed's global sweeps, so existing figures reproduce
  exactly.
* :class:`MaintenanceRound` — round-robin cursors over one overlay's
  nodes and key buckets, spending a budget per call.
* :class:`MaintenanceScheduler` — schedules periodic rounds on a
  :class:`~repro.sim.engine.Simulator` through a service's
  ``stabilize(budget)`` entry point (keeping churn-guard wrappers and
  accounting in the loop).
* :func:`repair_buckets` — the shared incremental anti-entropy pass
  both overlays' ``repair_replication_step`` delegates to.

Import discipline: this module is imported *by* ``repro.overlay`` (for
:class:`RepairProgress` / :func:`repair_buckets`), so it must not import
anything from ``repro.overlay`` or ``repro.baselines``; overlays and
services are duck-typed.
"""

from __future__ import annotations

import bisect
from collections import Counter
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.sim.durability import decodable_level
from repro.utils.validation import require

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.sim.engine import Event, Simulator

__all__ = [
    "RepairProgress",
    "repair_buckets",
    "MaintenanceBudget",
    "DEFAULT_BUDGET",
    "ZERO_BUDGET",
    "UNLIMITED_BUDGET",
    "MaintenanceReport",
    "MaintenanceRound",
    "MaintenanceScheduler",
]


# ----------------------------------------------------------------------
# Incremental replica repair (shared by ChordRing and CycloidOverlay)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RepairProgress:
    """Outcome of one incremental replica-repair pass.

    ``next_after`` is the resume cursor — the last bucket processed, to
    be passed back as ``after`` on the next call — or ``None`` when the
    pass reached the end of the key space (the next call starts over).
    """

    keys_repaired: int
    copies_moved: int
    next_after: tuple[str, int] | None

    @property
    def done(self) -> bool:
        """Whether the scan completed a full sweep of the key space."""
        return self.next_after is None


def repair_buckets(
    overlay: Any,
    replica_set_of: Callable[[int], Sequence[Any]],
    budget: int | None = None,
    after: tuple[str, int] | None = None,
    *,
    policy: Any = None,
) -> RepairProgress:
    """Anti-entropy repair of up to ``budget`` key buckets.

    A *bucket* is one ``(namespace, key_id)`` pair.  Buckets are visited
    in sorted order starting strictly after the ``after`` cursor.  For
    each visited bucket the surviving per-node copy counts reduce to the
    piece's decodable level under ``policy`` (a
    :class:`~repro.sim.durability.DurabilityPolicy`; ``None`` or a
    decode threshold of 1 is the seed's ``max`` merge — replica copies
    count once, genuinely distinct identical pieces keep their
    multiplicity, the census convention of ``repair_replication``),
    stray copies on nodes outside the current replica set are dropped,
    and every replica-set member is set to exactly that level.  Under an
    erasure policy (threshold > 1) that also means *purging* pieces with
    fewer than ``k`` surviving fragments — repair never silently
    resurrects undecodable data — and trimming members that hold more
    fragments than the decodable level.  Copies actually added or
    removed count as maintenance messages; a bucket already in its
    repaired state costs nothing.

    ``budget=None`` sweeps every bucket from the cursor to the end of
    the key space in one call; ``budget=0`` is a no-op that keeps the
    cursor where it was.
    """
    require(budget is None or budget >= 0, "repair budget must be >= 0")
    if budget == 0:
        return RepairProgress(0, 0, after)
    threshold = 1 if policy is None else policy.threshold

    # Scan surviving copies, bucketed by (namespace, key_id).
    holders: dict[tuple[str, int], list[tuple[Any, Counter]]] = {}
    for node in list(overlay.nodes()):
        per_bucket: dict[tuple[str, int], Counter] = {}
        for namespace, key_id, item in node.stored_entries():
            per_bucket.setdefault((namespace, key_id), Counter())[item] += 1
        for bucket_key, pieces in per_bucket.items():
            holders.setdefault(bucket_key, []).append((node, pieces))

    ordered = sorted(holders)
    start = 0 if after is None else bisect.bisect_right(ordered, after)
    selected = ordered[start:] if budget is None else ordered[start:start + budget]

    moved = 0
    for namespace, key_id in selected:
        bucket_holders = holders[(namespace, key_id)]
        # Per item, the decodable level given all surviving holders (for
        # threshold 1 exactly the max-merge; level 0 marks a dead piece
        # whose remaining fragments must be purged).
        counts: dict[Any, list[int]] = {}
        for _node, pieces in bucket_holders:
            for item, count in pieces.items():
                counts.setdefault(item, []).append(count)
        merged = {
            item: decodable_level(cs, threshold) for item, cs in counts.items()
        }
        replicas = list(replica_set_of(key_id))
        replica_ids = {id(r) for r in replicas}
        # Drop stray copies that live outside the current replica set.
        for node, pieces in bucket_holders:
            if id(node) in replica_ids:
                continue
            for item, count in pieces.items():
                for _ in range(count):
                    node.remove_item(namespace, key_id, item)
                moved += count
        # Set every replica member to exactly the decodable level (a top
        # up at threshold 1, where no holder can exceed the max; possibly
        # a trim or purge under an erasure policy).
        held_by = {id(node): pieces for node, pieces in bucket_holders}
        for holder in replicas:
            current = held_by.get(id(holder), Counter())
            for item, target in merged.items():
                delta = target - current[item]
                for _ in range(delta):
                    holder.store(namespace, key_id, item)
                for _ in range(-delta):
                    holder.remove_item(namespace, key_id, item)
                moved += abs(delta)
    if moved:
        overlay.network.count_maintenance(moved)

    exhausted = start + len(selected) >= len(ordered)
    next_after = None if exhausted else selected[-1]
    return RepairProgress(len(selected), moved, next_after)


# ----------------------------------------------------------------------
# Budgets
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MaintenanceBudget:
    """Per-round work caps for one maintenance round.

    ``stabilize_nodes`` — successor-list / leaf-set stabilization steps
    (one node each); ``refresh_nodes`` — finger / long-range routing
    refresh steps; ``repair_keys`` — replica-repair key buckets.  A
    ``None`` field is unbounded; all-``None`` delegates the round to the
    seed's global sweeps (identical accounting and semantics).
    """

    stabilize_nodes: int | None = 16
    refresh_nodes: int | None = 16
    repair_keys: int | None = 128

    def __post_init__(self) -> None:
        for name in ("stabilize_nodes", "refresh_nodes", "repair_keys"):
            value = getattr(self, name)
            require(value is None or value >= 0, f"{name} must be >= 0 or None")

    @property
    def unbounded(self) -> bool:
        """Whether every cap is ``None`` (the seed's global-sweep case)."""
        return (
            self.stabilize_nodes is None
            and self.refresh_nodes is None
            and self.repair_keys is None
        )

    @property
    def is_zero(self) -> bool:
        """Whether the round can do no work at all (maintenance disabled)."""
        return self.stabilize_nodes == 0 and self.refresh_nodes == 0 and self.repair_keys == 0


#: Sensible per-round caps for the recovery experiments.
DEFAULT_BUDGET = MaintenanceBudget()

#: Maintenance disabled — the ablation showing faults never heal.
ZERO_BUDGET = MaintenanceBudget(stabilize_nodes=0, refresh_nodes=0, repair_keys=0)

#: No caps: one round == the seed's ``stabilize_all`` + ``repair_replication``.
UNLIMITED_BUDGET = MaintenanceBudget(
    stabilize_nodes=None, refresh_nodes=None, repair_keys=None
)


@dataclass(frozen=True)
class MaintenanceReport:
    """What one maintenance round actually did."""

    stabilized: int = 0
    refreshed: int = 0
    keys_repaired: int = 0
    copies_moved: int = 0
    #: True when the round ran as an unbounded global sweep (the seed
    #: path), where per-bucket counts are not individually tracked.
    full_sweep: bool = False


# ----------------------------------------------------------------------
# The round and its scheduler
# ----------------------------------------------------------------------
class MaintenanceRound:
    """Round-robin budget spender over one overlay.

    Keeps three independent cursors — stabilize position, refresh
    position, replica-repair bucket — so successive bounded rounds cover
    the whole overlay fairly.  Cursors are positional and deterministic:
    the same scenario with the same seed spends its budget on the same
    nodes every run.

    The overlay is duck-typed; it must provide ``nodes()``,
    ``stabilize_step(node)``, ``refresh_routing_step(node)``,
    ``repair_replication_step(budget, after)``, ``stabilize_all()`` and
    ``repair_replication()``.
    """

    def __init__(self, overlay: Any) -> None:
        self.overlay = overlay
        #: Simulated time of the last round (set by the scheduler before
        #: each tick; informational — staleness accounting).
        self.clock = 0.0
        self._stab_pos = 0
        self._refresh_pos = 0
        self._repair_after: tuple[str, int] | None = None
        #: node uid → clock at its last routing refresh (staleness metric).
        self._last_refresh: dict[Any, float] = {}
        self.rounds_run = 0

    # -- helpers -------------------------------------------------------
    def _take(self, nodes: list[Any], pos: int, count: int | None) -> tuple[list[Any], int]:
        """Up to ``count`` nodes round-robin from position ``pos``."""
        if not nodes or count == 0:
            return [], pos
        if count is None or count >= len(nodes):
            return nodes, pos
        start = pos % len(nodes)
        picked = [nodes[(start + i) % len(nodes)] for i in range(count)]
        return picked, start + count

    def max_staleness(self) -> float:
        """Longest time (vs. :attr:`clock`) any live node has gone without
        a routing refresh.  Nodes never refreshed since tracking began
        count from t=0."""
        ages = [
            self.clock - self._last_refresh.get(node.uid, 0.0)
            for node in self.overlay.nodes()
        ]
        return max(ages, default=0.0)

    # -- the round -----------------------------------------------------
    def run(self, budget: MaintenanceBudget = DEFAULT_BUDGET) -> MaintenanceReport:
        """Spend one round's budget; returns what was done.

        With :data:`UNLIMITED_BUDGET` this is *literally* the seed's
        global sweeps (``stabilize_all`` + ``repair_replication``), so
        accounting, churn-guard checks and placement semantics are
        byte-identical to the pre-budget code path.
        """
        self.rounds_run += 1
        if budget.unbounded:
            self.overlay.stabilize_all()
            moved = self.overlay.repair_replication()
            for node in self.overlay.nodes():
                self._last_refresh[node.uid] = self.clock
            n = sum(1 for _ in self.overlay.nodes())
            return MaintenanceReport(
                stabilized=n, refreshed=n, copies_moved=moved, full_sweep=True
            )

        nodes = list(self.overlay.nodes())
        to_stabilize, self._stab_pos = self._take(
            nodes, self._stab_pos, budget.stabilize_nodes
        )
        for node in to_stabilize:
            self.overlay.stabilize_step(node)
        to_refresh, self._refresh_pos = self._take(
            nodes, self._refresh_pos, budget.refresh_nodes
        )
        for node in to_refresh:
            self.overlay.refresh_routing_step(node)
            self._last_refresh[node.uid] = self.clock

        progress = self.overlay.repair_replication_step(
            budget.repair_keys, self._repair_after
        )
        self._repair_after = progress.next_after
        return MaintenanceReport(
            stabilized=len(to_stabilize),
            refreshed=len(to_refresh),
            keys_repaired=progress.keys_repaired,
            copies_moved=progress.copies_moved,
        )


class MaintenanceScheduler:
    """Periodic budgeted maintenance on a discovery service.

    Every ``interval`` simulated seconds the scheduler calls
    ``service.stabilize(budget)`` — the service routes bounded budgets
    through its :class:`MaintenanceRound` and unbounded ones through the
    seed's global sweep, and any installed churn-guard wrappers stay in
    the loop.  Reports are retained for inspection.
    """

    def __init__(
        self,
        service: Any,
        budget: MaintenanceBudget = DEFAULT_BUDGET,
        interval: float = 30.0,
    ) -> None:
        require(interval > 0, "maintenance interval must be positive")
        self.service = service
        self.budget = budget
        self.interval = interval
        self.reports: list[tuple[float, MaintenanceReport]] = []
        self._events: list["Event"] = []

    def tick(self, now: float) -> MaintenanceReport:
        """Run one maintenance round at simulated time ``now``."""
        round_ = getattr(self.service, "maintenance_round", None)
        if callable(round_):
            round_().clock = now
        report = self.service.stabilize(self.budget)
        if report is None:  # a service that predates budgeted rounds
            report = MaintenanceReport(full_sweep=True)
        self.reports.append((now, report))
        return report

    def install(self, sim: "Simulator", horizon: float) -> int:
        """Schedule rounds every :attr:`interval` up to ``horizon``.

        The first round fires one full interval after the current clock
        (faults striking at t=0 are not healed for free).  Returns the
        number of rounds scheduled.
        """
        self._events = []
        t = sim.now + self.interval
        while t <= horizon:
            event = sim.schedule_at(
                t, (lambda at=t: self.tick(at)), name="maintenance"
            )
            self._events.append(event)
            t += self.interval
        return len(self._events)

    def uninstall(self, sim: "Simulator") -> None:
        """Cancel any rounds still pending on ``sim``."""
        for event in self._events:
            sim.cancel(event)
        self._events = []
