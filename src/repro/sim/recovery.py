"""Recovery-time metrics: how fast an overlay heals after injected chaos.

The availability experiment answers *whether* queries survive a static
fault level; this module answers the time-domain question the chaos
timelines pose — after a partition heals or a crash burst strikes, how
long until the system is whole again, and does it get there at all under
a bounded maintenance budget?

* :func:`replica_deficit` — redundancy missing from surviving pieces
  under the overlay's durability policy, measured from surviving
  evidence (a key whose every copy died is invisible; with replication
  ≥ 2 a crash leaves survivors whose under-replication is countable).
* :class:`RecoverySample` — one timeline point: lookup availability,
  replica deficit, structural cleanliness, the requester-side fault
  accounting spent since the previous sample, and routing staleness.
* :class:`RecoveryTracker` — periodic sampler + fault log, reduced to
  the SLO metrics: per-fault time-to-reconverge, overall reconvergence,
  and replica-deficit area (deficit integrated over time — the "damage ×
  exposure" of a fault).

Availability is probed through an injected callable so this module stays
independent of the experiment harness (and of what "a query" means).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.sim.durability import decodable_level
from repro.sim.invariants import InvariantViolation, check_overlay, overlay_of
from repro.utils.validation import require

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.sim.engine import Simulator
    from repro.sim.maintenance import MaintenanceRound

__all__ = ["replica_deficit", "RecoverySample", "RecoveryTracker"]


def replica_deficit(overlay: Any, policy: Any = None) -> int:
    """Redundancy missing from surviving pieces, by surviving evidence.

    For every decodable level of every surviving piece, the policy's
    target is ``fragments`` *distinct* holders; the deficit sums, over
    all pieces and levels, how many holders short of that target the
    overlay currently is.  It is zero exactly when every surviving piece
    is fully redundant — the quantity budgeted anti-entropy repair
    drives back to zero and ``budget=0`` leaves stuck.

    Counting *any* surviving holder (not just current replica-set
    members) is deliberate: a node that crashed and already rejoined is
    not missing redundancy — after the rejoin each piece still has the
    same number of distinct live holders, merely misplaced ones, and
    misplacement is repair traffic, not lost durability.  Conversely a
    crash genuinely removes a holder and shows up here immediately.
    Pieces that lost decodability entirely (fewer than ``threshold``
    surviving holders) contribute nothing — nothing survives to witness
    them, and repair purges rather than resurrects them.

    ``policy=None`` uses the overlay's own durability policy (always
    present); the default successor replication has ``threshold=1`` and
    a target of ``replication`` holders per piece.
    """
    if policy is None:
        policy = getattr(overlay, "durability", None)
    threshold = 1 if policy is None else policy.threshold
    holders: dict[tuple[str, int], dict[Any, list[int]]] = {}
    for node in list(overlay.nodes()):
        per_node: dict[tuple[str, int], dict[Any, int]] = {}
        for namespace, key_id, item in node.stored_entries():
            per_item = per_node.setdefault((namespace, key_id), {})
            per_item[item] = per_item.get(item, 0) + 1
        for bucket_key, pieces in per_node.items():
            bucket = holders.setdefault(bucket_key, {})
            for item, count in pieces.items():
                bucket.setdefault(item, []).append(count)

    if hasattr(overlay, "delinearize"):
        def replicas_for(key_id: int):
            return overlay.replica_set(overlay.delinearize(key_id))
    else:
        replicas_for = overlay.replica_set

    deficit = 0
    for (namespace, key_id), pieces in holders.items():
        target_holders = len(replicas_for(key_id))
        for item, counts in pieces.items():
            level = decodable_level(counts, threshold)
            for j in range(1, level + 1):
                holders_at_j = sum(1 for c in counts if c >= j)
                deficit += max(0, target_holders - holders_at_j)
    return deficit


@dataclass(frozen=True)
class RecoverySample:
    """One point on the recovery timeline."""

    time: float
    #: Fraction of probe queries answered exactly right under the faults
    #: active at sample time.
    availability: float
    #: Copies missing from current replica sets (see :func:`replica_deficit`).
    replica_deficit: int
    #: Whether the overlay passed its structural invariants.
    structurally_clean: bool
    #: Requester-side retransmissions spent since the previous sample.
    retries: int = 0
    #: Requester-observed timeouts since the previous sample.
    timeouts: int = 0
    #: Longest time any node has gone without a routing refresh.
    max_staleness: float = 0.0

    def recovered(self, availability_floor: float = 1.0) -> bool:
        """Whether this sample shows a fully healed system."""
        return (
            self.structurally_clean
            and self.replica_deficit == 0
            and self.availability >= availability_floor
        )


class RecoveryTracker:
    """Samples a service's health on a fixed cadence and reduces the
    timeline to recovery SLO metrics.

    ``availability_probe`` runs the probe workload under whatever faults
    are live *now* and returns the exactly-answered fraction; the tracker
    adds replica deficit, structural checks, staleness (when given a
    :class:`~repro.sim.maintenance.MaintenanceRound`) and the
    requester-side retry/timeout spend between samples.
    """

    def __init__(
        self,
        service: Any,
        availability_probe: Callable[[], float],
        *,
        maintenance_round: "MaintenanceRound | None" = None,
        availability_floor: float = 1.0,
    ) -> None:
        # floor 0.0 tracks *data* recovery alone (deficit + structure):
        # the durability experiment uses it because a policy that
        # genuinely lost pieces can heal its redundancy without exact
        # availability ever returning to 1.0.
        require(0.0 <= availability_floor <= 1.0, "availability_floor must be in [0, 1]")
        self.service = service
        self.overlay = overlay_of(service)
        self.availability_probe = availability_probe
        self.maintenance_round = maintenance_round
        self.availability_floor = availability_floor
        self.samples: list[RecoverySample] = []
        self.fault_times: list[float] = []
        self._last_stats = self.overlay.network.stats.snapshot()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def note_fault(self, at: float) -> None:
        """Log a fault onset; each onset gets its own recovery clock."""
        self.fault_times.append(at)
        self.fault_times.sort()

    def sample(self, now: float) -> RecoverySample:
        """Take one timeline sample at simulated time ``now``."""
        try:
            check_overlay(self.overlay)
            clean = True
        except InvariantViolation:
            clean = False
        stats = self.overlay.network.stats
        before = self._last_stats
        availability = self.availability_probe()
        after = stats.snapshot()
        staleness = (
            self.maintenance_round.max_staleness()
            if self.maintenance_round is not None
            else 0.0
        )
        point = RecoverySample(
            time=now,
            availability=availability,
            replica_deficit=replica_deficit(self.overlay),
            structurally_clean=clean,
            retries=after.retries - before.retries,
            timeouts=after.timeouts - before.timeouts,
            max_staleness=staleness,
        )
        self._last_stats = after
        self.samples.append(point)
        return point

    def install(self, sim: "Simulator", horizon: float, interval: float) -> int:
        """Schedule sampling every ``interval`` up to ``horizon`` inclusive.

        Samples are scheduled from the current clock onward, so the t=0
        baseline sample is included.  Returns the number scheduled.
        """
        require(interval > 0, "sample interval must be positive")
        scheduled = 0
        t = sim.now
        while t <= horizon + 1e-9:
            sim.schedule_at(t, (lambda at=t: self.sample(at)), name="recovery-sample")
            scheduled += 1
            t += interval
        return scheduled

    # ------------------------------------------------------------------
    # SLO reductions
    # ------------------------------------------------------------------
    def recovery_times(self) -> list[float]:
        """Per fault onset: time until the first *subsequent* recovered
        sample, or ``inf`` when the timeline never heals after it."""
        times: list[float] = []
        for onset in self.fault_times:
            healed = math.inf
            for point in self.samples:
                if point.time <= onset:
                    continue
                if point.recovered(self.availability_floor):
                    healed = point.time - onset
                    break
            times.append(healed)
        return times

    @property
    def reconverged(self) -> bool:
        """Whether every logged fault eventually healed (finite TTR) and
        the final sample is itself healthy."""
        if not self.samples:
            return False
        if not self.samples[-1].recovered(self.availability_floor):
            return False
        return all(math.isfinite(t) for t in self.recovery_times())

    def time_to_reconverge(self) -> float:
        """The worst per-fault recovery time (``inf`` if any never heals)."""
        times = self.recovery_times()
        return max(times) if times else 0.0

    def deficit_area(self) -> float:
        """Replica deficit integrated over the sampled timeline
        (left-rectangle rule): persistent damage accumulates, transient
        damage that heals fast contributes little."""
        area = 0.0
        for prev, cur in zip(self.samples, self.samples[1:]):
            area += prev.replica_deficit * (cur.time - prev.time)
        return area

    def availability_timeline(self) -> list[tuple[float, float]]:
        """The ``(time, availability)`` curve (plot-ready)."""
        return [(p.time, p.availability) for p in self.samples]
