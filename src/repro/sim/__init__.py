"""Discrete-event simulation substrate.

The paper's evaluation is a discrete-event simulation of DHT overlays; this
package rebuilds that substrate: a deterministic event engine
(:mod:`~repro.sim.engine`), message/hop accounting
(:mod:`~repro.sim.network`), the Poisson churn process of Section V-C
(:mod:`~repro.sim.churn`) and metric collection with the 1st/99th-percentile
summaries used throughout Figure 3 (:mod:`~repro.sim.metrics`).
"""

from repro.sim.churn import ChurnEvent, ChurnProcess
from repro.sim.engine import Event, Simulator
from repro.sim.faults import (
    DEFAULT_POLICY,
    NO_RETRY_POLICY,
    ArcPartition,
    CrashStorm,
    FaultInjector,
    FaultPlan,
    LookupPolicy,
)
from repro.sim.invariants import (
    ChurnGuard,
    InvariantViolation,
    check_overlay,
    check_replica_placement,
    directory_census,
    install_churn_guards,
)
from repro.sim.metrics import MetricsRegistry, SummaryStats, summarize
from repro.sim.network import MessageStats, SimulatedNetwork
from repro.sim.trace import TraceEvent, TraceEventKind, TraceRecorder

__all__ = [
    "ArcPartition",
    "ChurnEvent",
    "ChurnGuard",
    "ChurnProcess",
    "CrashStorm",
    "check_overlay",
    "check_replica_placement",
    "DEFAULT_POLICY",
    "directory_census",
    "Event",
    "FaultInjector",
    "FaultPlan",
    "install_churn_guards",
    "InvariantViolation",
    "LookupPolicy",
    "MessageStats",
    "MetricsRegistry",
    "NO_RETRY_POLICY",
    "SimulatedNetwork",
    "Simulator",
    "SummaryStats",
    "summarize",
    "TraceEvent",
    "TraceEventKind",
    "TraceRecorder",
]
