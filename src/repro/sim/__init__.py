"""Discrete-event simulation substrate.

The paper's evaluation is a discrete-event simulation of DHT overlays; this
package rebuilds that substrate: a deterministic event engine
(:mod:`~repro.sim.engine`), message/hop accounting
(:mod:`~repro.sim.network`), the Poisson churn process of Section V-C
(:mod:`~repro.sim.churn`) and metric collection with the 1st/99th-percentile
summaries used throughout Figure 3 (:mod:`~repro.sim.metrics`).

Robustness extensions past the paper: fault injection
(:mod:`~repro.sim.faults`), declarative chaos timelines
(:mod:`~repro.sim.chaos`), budgeted self-healing maintenance
(:mod:`~repro.sim.maintenance`), recovery-time SLO metrics
(:mod:`~repro.sim.recovery`) and pluggable durability policies —
placement × replication/erasure redundancy (:mod:`~repro.sim.durability`).
"""

from repro.sim.chaos import (
    CRASH_STORM_SCENARIO,
    DEMO_SCENARIO,
    GRAY_FAILURE_SCENARIO,
    ChaosScenario,
    CrashBurst,
    GrayFailureWindow,
    LossRamp,
    NodeFlap,
    PartitionWindow,
    SlowBurst,
)
from repro.sim.churn import ChurnEvent, ChurnProcess
from repro.sim.durability import (
    DEFAULT_POLICY_SPECS,
    DurabilityPolicy,
    PlacementPolicy,
    SuccessorPlacement,
    SymmetricPlacement,
    decodable_level,
    erasure_code,
    parse_policy,
    successor_replication,
    symmetric_replication,
)
from repro.sim.engine import Event, Simulator
from repro.sim.faults import (
    ADAPTIVE_POLICY,
    DEFAULT_POLICY,
    HEDGED_POLICY,
    NO_RETRY_POLICY,
    ArcPartition,
    CrashStorm,
    DegradedLink,
    FaultInjector,
    FaultPlan,
    LookupPolicy,
    SlowNode,
)
from repro.sim.latency import (
    BoundedParetoLatency,
    ConstantLatency,
    LatencyModel,
    LognormalLatency,
    RttBook,
    RttEstimator,
    critical_path_latency,
)
from repro.sim.invariants import (
    ChurnGuard,
    InvariantViolation,
    check_overlay,
    check_replica_placement,
    directory_census,
    install_churn_guards,
)
from repro.sim.loadstats import (
    LoadStats,
    LoadWindow,
    gini,
    load_histogram,
    max_mean_ratio,
    top_share,
)
from repro.sim.maintenance import (
    DEFAULT_BUDGET,
    UNLIMITED_BUDGET,
    ZERO_BUDGET,
    MaintenanceBudget,
    MaintenanceReport,
    MaintenanceRound,
    MaintenanceScheduler,
    RepairProgress,
)
from repro.sim.metrics import MetricsRegistry, SummaryStats, summarize
from repro.sim.network import MessageStats, SimulatedNetwork, publish_stats
from repro.sim.recovery import RecoverySample, RecoveryTracker, replica_deficit
from repro.sim.trace import TraceEvent, TraceEventKind, TraceRecorder

__all__ = [
    "ADAPTIVE_POLICY",
    "ArcPartition",
    "BoundedParetoLatency",
    "ChaosScenario",
    "ChurnEvent",
    "ChurnGuard",
    "ChurnProcess",
    "ConstantLatency",
    "CrashBurst",
    "CrashStorm",
    "check_overlay",
    "check_replica_placement",
    "critical_path_latency",
    "CRASH_STORM_SCENARIO",
    "DEFAULT_BUDGET",
    "DEFAULT_POLICY",
    "DEFAULT_POLICY_SPECS",
    "DegradedLink",
    "DEMO_SCENARIO",
    "decodable_level",
    "directory_census",
    "DurabilityPolicy",
    "erasure_code",
    "Event",
    "FaultInjector",
    "FaultPlan",
    "GRAY_FAILURE_SCENARIO",
    "GrayFailureWindow",
    "HEDGED_POLICY",
    "install_churn_guards",
    "InvariantViolation",
    "gini",
    "LatencyModel",
    "load_histogram",
    "LoadStats",
    "LoadWindow",
    "LognormalLatency",
    "LookupPolicy",
    "LossRamp",
    "max_mean_ratio",
    "MaintenanceBudget",
    "MaintenanceReport",
    "MaintenanceRound",
    "MaintenanceScheduler",
    "MessageStats",
    "MetricsRegistry",
    "NO_RETRY_POLICY",
    "NodeFlap",
    "parse_policy",
    "PartitionWindow",
    "PlacementPolicy",
    "publish_stats",
    "RecoverySample",
    "RecoveryTracker",
    "RepairProgress",
    "replica_deficit",
    "RttBook",
    "RttEstimator",
    "SimulatedNetwork",
    "Simulator",
    "SlowBurst",
    "SlowNode",
    "SuccessorPlacement",
    "successor_replication",
    "SummaryStats",
    "summarize",
    "SymmetricPlacement",
    "symmetric_replication",
    "top_share",
    "TraceEvent",
    "TraceEventKind",
    "TraceRecorder",
    "UNLIMITED_BUDGET",
    "ZERO_BUDGET",
]
