"""Discrete-event simulation substrate.

The paper's evaluation is a discrete-event simulation of DHT overlays; this
package rebuilds that substrate: a deterministic event engine
(:mod:`~repro.sim.engine`), message/hop accounting
(:mod:`~repro.sim.network`), the Poisson churn process of Section V-C
(:mod:`~repro.sim.churn`) and metric collection with the 1st/99th-percentile
summaries used throughout Figure 3 (:mod:`~repro.sim.metrics`).
"""

from repro.sim.churn import ChurnEvent, ChurnProcess
from repro.sim.engine import Event, Simulator
from repro.sim.metrics import MetricsRegistry, SummaryStats, summarize
from repro.sim.network import MessageStats, SimulatedNetwork
from repro.sim.trace import TraceEvent, TraceEventKind, TraceRecorder

__all__ = [
    "ChurnEvent",
    "ChurnProcess",
    "Event",
    "MessageStats",
    "MetricsRegistry",
    "SimulatedNetwork",
    "Simulator",
    "SummaryStats",
    "summarize",
    "TraceEvent",
    "TraceEventKind",
    "TraceRecorder",
]
