"""Per-node load accounting and imbalance reducers.

The paper's metrics (hops, visited nodes, directory sizes) average over
the whole system and so cannot see *who* does the work.  Under skewed
popularity that is the whole story: SWORD's attribute-rooted directories
put a constant fraction of all queries on a handful of nodes.  This
module measures that concentration:

* :class:`LoadStats` — a per-node counter sink services write into while
  attached (mirroring the tracing switch: detached, the hot paths pay a
  single ``is None`` check and draw nothing);
* :class:`LoadWindow` — a frozen snapshot of one query window (serve
  counts per node, routing counts per node, serve counts per attribute);
* reducers — :func:`max_mean_ratio`, :func:`gini`, :func:`top_share` and
  :func:`load_histogram` over a count mapping, always including the
  zero-load members of the population.

*Serve* load counts directory answers (the node resolved a sub-query
from its directory — one count per visited node); *route* load counts
forwarded messages (intermediate nodes on a lookup path).  The hotspot
gate is computed on serve load; route load is reported alongside.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import require

__all__ = [
    "LoadStats",
    "LoadWindow",
    "gini",
    "load_histogram",
    "max_mean_ratio",
    "top_share",
]


def _fill(counts: Mapping[object, float], population: int) -> np.ndarray:
    """The full per-member load vector, zero-load members included."""
    require(population >= 1, "population must be >= 1")
    require(
        len(counts) <= population,
        f"{len(counts)} loaded members exceed population {population}",
    )
    values = np.zeros(population)
    if counts:
        values[: len(counts)] = np.fromiter(counts.values(), dtype=float, count=len(counts))
    return values


def max_mean_ratio(counts: Mapping[object, float], population: int) -> float:
    """``max(load) / mean(load)`` over the whole population.

    1.0 is perfect balance; ``population`` is the worst case (one node
    does everything).  NaN when no load was recorded at all.
    """
    values = _fill(counts, population)
    total = values.sum()
    if total <= 0.0:
        return float("nan")
    return float(values.max() / (total / population))


def gini(counts: Mapping[object, float], population: int) -> float:
    """Gini coefficient of the load distribution (0 = equal, -> 1 = one
    node does everything), zero-load members included."""
    values = np.sort(_fill(counts, population))
    total = values.sum()
    if total <= 0.0:
        return float("nan")
    n = values.size
    # Standard rank formulation: G = (2 * sum(i * x_i) / (n * total)) - (n + 1) / n.
    ranks = np.arange(1, n + 1)
    return float(2.0 * (ranks * values).sum() / (n * total) - (n + 1) / n)


def top_share(counts: Mapping[object, float], k: int) -> float:
    """The fraction of total load carried by the ``k`` busiest members."""
    require(k >= 1, "k must be >= 1")
    if not counts:
        return float("nan")
    values = np.sort(np.fromiter(counts.values(), dtype=float, count=len(counts)))
    total = values.sum()
    if total <= 0.0:
        return float("nan")
    return float(values[-k:].sum() / total)


def load_histogram(
    counts: Mapping[object, float], population: int, bins: int = 10
) -> list[tuple[float, float, int]]:
    """``(lo, hi, members)`` buckets of the per-member load distribution."""
    values = _fill(counts, population)
    hist, edges = np.histogram(values, bins=bins)
    return [(float(edges[i]), float(edges[i + 1]), int(hist[i])) for i in range(len(hist))]


@dataclass(frozen=True)
class LoadWindow:
    """One sampled query window of per-node load."""

    #: Directory answers per node uid.
    serves: dict = field(default_factory=dict)
    #: Forwarded (intermediate-hop) messages per node uid.
    routes: dict = field(default_factory=dict)
    #: Directory answers per attribute name.
    by_attribute: dict = field(default_factory=dict)

    @property
    def total_serves(self) -> float:
        """All directory answers in the window."""
        return float(sum(self.serves.values()))

    def max_mean_ratio(self, population: int) -> float:
        """Serve-load max/mean over ``population`` nodes."""
        return max_mean_ratio(self.serves, population)

    def gini(self, population: int) -> float:
        """Serve-load Gini coefficient over ``population`` nodes."""
        return gini(self.serves, population)

    def top_share(self, k: int) -> float:
        """Serve-load share of the ``k`` busiest nodes."""
        return top_share(self.serves, k)

    def merged(self, other: "LoadWindow") -> "LoadWindow":
        """The element-wise sum of two windows."""
        serves = Counter(self.serves)
        serves.update(other.serves)
        routes = Counter(self.routes)
        routes.update(other.routes)
        attrs = Counter(self.by_attribute)
        attrs.update(other.by_attribute)
        return LoadWindow(dict(serves), dict(routes), dict(attrs))


class LoadStats:
    """Per-node load sink, sampled in windows.

    Services write through :meth:`record_serve` / :meth:`record_route`
    while attached via ``service.attach_load_stats``; an experiment calls
    :meth:`take_window` once per query window to harvest (and reset) the
    window counters.  Cumulative totals survive window harvesting.
    """

    def __init__(self) -> None:
        self._serves: Counter = Counter()
        self._routes: Counter = Counter()
        self._attrs: Counter = Counter()
        self._total = LoadWindow()

    # -- recording (hot path while attached) ---------------------------
    def record_serve(self, node_uid: object, attribute: str, count: int = 1) -> None:
        """Node ``node_uid`` answered a sub-query on ``attribute``."""
        self._serves[node_uid] += count
        self._attrs[attribute] += count

    def record_serves(self, node_uids: Iterable[object], attribute: str) -> None:
        """Every node of ``node_uids`` answered (a range walk's visits)."""
        serves = self._serves
        n = 0
        for uid in node_uids:
            serves[uid] += 1
            n += 1
        self._attrs[attribute] += n

    def record_route_path(self, path: Iterable[object]) -> None:
        """Count the intermediate nodes of a lookup ``path`` (requester
        first, owner last) as routing load."""
        nodes = list(path)
        routes = self._routes
        for uid in nodes[1:-1]:
            routes[uid] += 1

    # -- harvesting ----------------------------------------------------
    def take_window(self) -> LoadWindow:
        """The current window's counts; resets the window, keeps totals."""
        window = LoadWindow(dict(self._serves), dict(self._routes), dict(self._attrs))
        self._total = self._total.merged(window)
        self._serves.clear()
        self._routes.clear()
        self._attrs.clear()
        return window

    @property
    def total(self) -> LoadWindow:
        """All load recorded since construction (harvested windows plus
        the currently open one)."""
        open_window = LoadWindow(dict(self._serves), dict(self._routes), dict(self._attrs))
        return self._total.merged(open_window)
