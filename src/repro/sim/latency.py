"""Per-message latency models and requester-side RTT estimation.

The seed's latency story was a single constant: ``response time = hops ×
hop_latency``.  Real message latencies are distributions with heavy upper
tails, and the D1HT line of work (PAPERS.md) argues lookup *latency* — not
hop count — is the axis DHTs actually compete on.  This module supplies the
fail-slow substrate:

* :class:`LatencyModel` — a pluggable, seeded per-message latency source.
  :class:`ConstantLatency` reproduces the seed behaviour exactly;
  :class:`LognormalLatency` is the classic WAN RTT shape;
  :class:`BoundedParetoLatency` reuses the paper's own
  :class:`~repro.workloads.pareto.BoundedPareto` for a power-law tail.
* :class:`RttEstimator` / :class:`RttBook` — the requester-side defenses:
  an EWMA (Jacobson/Karels) smoothed-RTT tracker plus a sliding-window
  quantile tracker, from which :class:`~repro.sim.faults.LookupPolicy`
  derives adaptive timeouts and hedge-fire delays.
* :func:`critical_path_latency` — the response time of a multi-attribute
  query: sub-queries resolve in *parallel* (Section III), so the answer
  arrives when the slowest sub-query's serial hop chain completes.

A ``None`` latency model (the default everywhere) is a strict identity: no
randomness is drawn and no behaviour changes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque

import numpy as np

from repro.utils.validation import require, require_positive
from repro.workloads.pareto import BoundedPareto

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "LognormalLatency",
    "BoundedParetoLatency",
    "RttEstimator",
    "RttBook",
    "critical_path_latency",
]


class LatencyModel(ABC):
    """Seeded source of one-way message latencies (seconds).

    ``sample()`` draws the latency of one overlay message; ``route(hops)``
    draws a full serial hop chain.  Implementations own a
    ``numpy.random.Generator`` (exposed as :attr:`rng` so fail-slow
    intermittency draws share the latency stream, never the loss stream).
    """

    rng: np.random.Generator

    @abstractmethod
    def sample(self) -> float:
        """Latency of one message, in seconds."""

    @abstractmethod
    def route(self, hops: int) -> float:
        """Total latency of ``hops`` serial messages."""

    @abstractmethod
    def mean(self) -> float:
        """Analytic mean per-message latency (reporting/normalisation)."""


class ConstantLatency(LatencyModel):
    """The seed's model: every message takes exactly ``hop_latency`` seconds.

    ``route`` computes ``hops * hop_latency`` — the byte-identical
    expression the experiments used before latency models existed.

    Examples
    --------
    >>> ConstantLatency(0.05).route(7)
    0.35000000000000003
    """

    def __init__(self, hop_latency: float, seed: int = 0) -> None:
        require_positive(hop_latency, "hop_latency")
        self.hop_latency = float(hop_latency)
        self.rng = np.random.default_rng(seed)

    def sample(self) -> float:
        return self.hop_latency

    def route(self, hops: int) -> float:
        return hops * self.hop_latency

    def mean(self) -> float:
        return self.hop_latency

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConstantLatency({self.hop_latency})"


class LognormalLatency(LatencyModel):
    """Lognormal per-message latency: ``median * exp(sigma * N(0, 1))``.

    The standard model of WAN round-trip times: most messages land near
    the median, a long multiplicative upper tail supplies the stragglers
    that hedging is designed to absorb.
    """

    def __init__(self, median: float, sigma: float = 0.35, seed: int = 0) -> None:
        require_positive(median, "median")
        require(sigma >= 0.0, "sigma must be >= 0")
        self.median = float(median)
        self.sigma = float(sigma)
        self.rng = np.random.default_rng(seed)

    def sample(self) -> float:
        return self.median * float(np.exp(self.sigma * self.rng.standard_normal()))

    def route(self, hops: int) -> float:
        if hops <= 0:
            return 0.0
        draws = np.exp(self.sigma * self.rng.standard_normal(hops))
        return self.median * float(draws.sum())

    def mean(self) -> float:
        return self.median * float(np.exp(0.5 * self.sigma**2))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LognormalLatency(median={self.median}, sigma={self.sigma})"


class BoundedParetoLatency(LatencyModel):
    """Bounded-Pareto per-message latency on ``[low, high]`` seconds.

    Reuses the paper's :class:`~repro.workloads.pareto.BoundedPareto` —
    the same distribution that generates resource values generates the
    power-law latency tail, so its CDF/quantile machinery (and tests)
    carry over unchanged.
    """

    def __init__(
        self, alpha: float, low: float, high: float, seed: int = 0
    ) -> None:
        self.dist = BoundedPareto(alpha=alpha, low=low, high=high)
        self.rng = np.random.default_rng(seed)

    def sample(self) -> float:
        return float(self.dist.sample(self.rng))

    def route(self, hops: int) -> float:
        if hops <= 0:
            return 0.0
        return float(np.asarray(self.dist.sample(self.rng, hops)).sum())

    def mean(self) -> float:
        return self.dist.mean()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        d = self.dist
        return f"BoundedParetoLatency(alpha={d.alpha}, low={d.low}, high={d.high})"


class RttEstimator:
    """EWMA + sliding-window quantile tracker of observed response times.

    Two complementary views of the same sample stream:

    * Jacobson/Karels smoothing — ``srtt`` (EWMA, gain ``alpha``) and
      ``rttvar`` (mean absolute deviation, gain ``beta``), giving the
      classic retransmission timeout ``srtt + k * rttvar``;
    * a bounded window of raw samples, giving empirical quantiles — the
      p95 at which hedges fire, and a robust timeout ``margin * q`` that
      stays tight even when a few accepted stragglers inflate ``rttvar``.

    :meth:`timeout` takes the *tighter* of the two (never above the
    policy's fixed fallback, never below ``floor``), so a gray-failure
    burst cannot talk the estimator into waiting longer than a fixed
    timeout would have.
    """

    def __init__(
        self,
        *,
        alpha: float = 0.125,
        beta: float = 0.25,
        k: float = 4.0,
        margin: float = 1.5,
        window: int = 128,
        min_samples: int = 8,
        floor: float = 1e-3,
    ) -> None:
        require(0.0 < alpha <= 1.0, "alpha must be in (0, 1]")
        require(0.0 < beta <= 1.0, "beta must be in (0, 1]")
        require_positive(k, "k")
        require_positive(margin, "margin")
        require(window >= 2, "window must be >= 2")
        require(min_samples >= 1, "min_samples must be >= 1")
        require_positive(floor, "floor")
        self.alpha = alpha
        self.beta = beta
        self.k = k
        self.margin = margin
        self.min_samples = min_samples
        self.floor = floor
        self._srtt: float | None = None
        self._rttvar = 0.0
        self._window: deque[float] = deque(maxlen=window)

    @property
    def srtt(self) -> float | None:
        """Smoothed RTT (None before the first observation)."""
        return self._srtt

    @property
    def rttvar(self) -> float:
        """Smoothed mean absolute RTT deviation."""
        return self._rttvar

    @property
    def samples_seen(self) -> int:
        """Samples currently held in the quantile window."""
        return len(self._window)

    @property
    def ready(self) -> bool:
        """Whether the window holds enough samples to trust quantiles."""
        return len(self._window) >= self.min_samples

    def observe(self, rtt: float) -> None:
        """Fold one requester-observed response time into both trackers."""
        rtt = float(rtt)
        if self._srtt is None:
            self._srtt = rtt
            self._rttvar = rtt / 2.0
        else:
            err = rtt - self._srtt
            self._rttvar += self.beta * (abs(err) - self._rttvar)
            self._srtt += self.alpha * err
        self._window.append(rtt)

    def quantile_estimate(self, q: float) -> float | None:
        """Empirical ``q``-quantile of the window (None until warm)."""
        if not self.ready:
            return None
        return float(np.quantile(np.asarray(self._window), q))

    def timeout(self, fallback: float) -> float:
        """Adaptive timeout: tightest of EWMA, quantile and ``fallback``."""
        candidates = [fallback]
        if self._srtt is not None:
            candidates.append(self._srtt + self.k * self._rttvar)
        q95 = self.quantile_estimate(0.95)
        if q95 is not None:
            candidates.append(self.margin * q95)
        return max(self.floor, min(candidates))

    def reset(self) -> None:
        """Forget everything (fresh measurement window)."""
        self._srtt = None
        self._rttvar = 0.0
        self._window.clear()


class _RequesterRtt:
    """One requester's view into a :class:`RttBook`.

    Observations feed both the requester's own estimator and the book's
    aggregate; reads prefer the requester's estimator once it is warm and
    fall back to the aggregate before that — so sparse requesters defend
    themselves from the population-wide picture instead of flying blind.
    """

    __slots__ = ("_own", "_aggregate")

    def __init__(self, own: RttEstimator, aggregate: RttEstimator) -> None:
        self._own = own
        self._aggregate = aggregate

    def observe(self, rtt: float) -> None:
        self._own.observe(rtt)
        self._aggregate.observe(rtt)

    def _best(self) -> RttEstimator:
        return self._own if self._own.ready else self._aggregate

    def timeout(self, fallback: float) -> float:
        return self._best().timeout(fallback)

    def hedge_delay(self, quantile: float) -> float | None:
        return self._best().quantile_estimate(quantile)


class RttBook:
    """Per-requester :class:`RttEstimator` registry with a shared aggregate.

    ``for_requester(src_id)`` returns the requester's view (created on
    first use).  The aggregate estimator sees every observation, which is
    what lets adaptive timeouts and hedging engage after a handful of
    warmup queries instead of per-node sample counts.
    """

    def __init__(self, **estimator_kwargs) -> None:
        self._kwargs = dict(estimator_kwargs)
        self.aggregate = RttEstimator(**self._kwargs)
        self._per: dict = {}

    def for_requester(self, src_id) -> _RequesterRtt:
        own = self._per.get(src_id)
        if own is None:
            own = RttEstimator(**self._kwargs)
            self._per[src_id] = own
        return _RequesterRtt(own, self.aggregate)

    def estimator(self, src_id) -> RttEstimator:
        """The raw per-requester estimator (tests and reporting)."""
        own = self._per.get(src_id)
        if own is None:
            own = RttEstimator(**self._kwargs)
            self._per[src_id] = own
        return own

    @property
    def requesters(self) -> tuple:
        """Requester IDs with at least one dedicated estimator."""
        return tuple(self._per)

    def reset(self) -> None:
        """Drop every estimator (fresh measurement window)."""
        self.aggregate = RttEstimator(**self._kwargs)
        self._per.clear()


def critical_path_latency(result, model: LatencyModel) -> float:
    """Response time of a multi-attribute query under ``model``.

    Sub-queries of one request resolve in parallel (Section III), so the
    requester's response time is the *max* over sub-queries — each
    sub-query's own hop chain (routed lookup plus sequential range-walk
    forwarding) is serial.  Sub-results that already carry a measured
    ``latency`` (the fault-path requester clock) are used as-is; the rest
    are drawn from ``model`` over their recorded hop counts.

    Under :class:`ConstantLatency` this reproduces the seed's
    ``latency_hops × hop_latency`` byte-for-byte: every sub-query's
    latency is ``hops * rate`` and multiplication by a positive constant
    preserves the max.
    """
    latencies = [
        r.latency if r.latency > 0.0 else model.route(r.hops)
        for r in result.sub_results
    ]
    return max(latencies, default=0.0)
