"""Structured event tracing for simulations.

A bounded, filterable trace of what happened inside an experiment: routed
lookups with their paths, churn events, storage transfers.  Used for
debugging routing regressions ("why did this lookup take 14 hops?") and by
tests that assert *sequences* of behaviour rather than end states.

The tracer is deliberately decoupled from the overlays: callers attach it
where they need it (`TraceRecorder.record(...)`) and overlays stay free of
tracing branches on the hot path when no recorder is attached.
"""

from __future__ import annotations

import copy
from collections import Counter, deque
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.utils.validation import require

__all__ = ["TraceEvent", "TraceEventKind", "TraceRecorder"]


class TraceEventKind(str, Enum):
    """Categories of traced events."""

    LOOKUP = "lookup"
    RANGE_WALK = "range-walk"
    STORE = "store"
    TRANSFER = "transfer"
    JOIN = "join"
    LEAVE = "leave"
    FAIL = "fail"
    STABILIZE = "stabilize"
    QUERY = "query"
    HOP = "hop"


@dataclass(frozen=True)
class TraceEvent:
    """One traced occurrence."""

    kind: TraceEventKind
    time: float
    subject: str
    detail: dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        """One-line human-readable rendering."""
        details = " ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:10.3f}] {self.kind.value:<10} {self.subject} {details}".rstrip()


class TraceRecorder:
    """Bounded ring buffer of :class:`TraceEvent` with filtering.

    Parameters
    ----------
    capacity:
        Maximum retained events; older events are dropped FIFO, and
        :attr:`dropped` counts how many.
    clock:
        Callable returning the current simulation time (defaults to a
        zero clock for non-event-driven uses).
    """

    def __init__(
        self, capacity: int = 10_000, clock: Callable[[], float] | None = None
    ) -> None:
        require(capacity >= 1, "capacity must be >= 1")
        self.capacity = capacity
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        #: Events evicted because the buffer was full.
        self.dropped = 0
        self._counts: Counter[TraceEventKind] = Counter()

    def record(
        self, kind: TraceEventKind | str, subject: str, **detail: Any
    ) -> TraceEvent:
        """Append one event; returns it.

        The detail values are deep-copied: recorded history must stay
        frozen even when a caller keeps mutating a list/dict it passed in
        (mutate-after-record previously corrupted retained events).
        """
        kind = TraceEventKind(kind)
        event = TraceEvent(
            kind=kind, time=self._clock(), subject=subject,
            detail=copy.deepcopy(detail),
        )
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)
        self._counts[kind] += 1
        return event

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def events(
        self,
        kind: TraceEventKind | str | None = None,
        subject: str | None = None,
    ) -> list[TraceEvent]:
        """Retained events, optionally filtered by kind and/or subject."""
        if kind is not None:
            kind = TraceEventKind(kind)
        return [
            e
            for e in self._events
            if (kind is None or e.kind is kind)
            and (subject is None or e.subject == subject)
        ]

    def count(self, kind: TraceEventKind | str) -> int:
        """Total events of ``kind`` ever recorded (including dropped)."""
        return self._counts[TraceEventKind(kind)]

    def last(self, kind: TraceEventKind | str | None = None) -> TraceEvent | None:
        """The most recent (matching) event, or None."""
        matching = self.events(kind)
        return matching[-1] if matching else None

    def clear(self) -> None:
        """Drop all retained events (counters keep their totals)."""
        self._events.clear()

    def dump(self) -> str:
        """All retained events, one formatted line each."""
        return "\n".join(event.format() for event in self._events)
