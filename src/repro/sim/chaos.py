"""Declarative chaos-scenario timelines for the discovery services.

The seed's :class:`~repro.sim.faults.FaultPlan` is *static*: a loss rate
that holds for the whole run, partitions that never heal, crash storms
bound by hand.  A :class:`ChaosScenario` is the timeline form — faults
that switch on and off at declared simulated times, compiled onto a
:class:`~repro.sim.engine.Simulator` and driven through the runtime
switches of a :class:`~repro.sim.faults.FaultInjector`:

* :class:`PartitionWindow` — an identifier-arc partition armed at
  ``starts_at`` and disarmed (healed) at ``heals_at``.  Arcs are
  declared as *fractions* of the identifier space, so one scenario
  applies unchanged to a ``2**bits`` Chord ring and a ``d·2**d``
  linearized Cycloid overlay.
* :class:`CrashBurst` — a correlated batch of crash failures at one
  instant (the injector's storm, in timeline clothing).
* :class:`NodeFlap` — a node that repeatedly crashes and rejoins on a
  fixed cadence (down/up cycles).
* :class:`LossRamp` — the per-message loss rate climbs stepwise to a
  peak and resets when the ramp window closes.

Everything is deterministic given the service's seeds: the *times* are
declared, and *which* node crashes or flaps is drawn from the service's
own seeded churn stream.  Scenarios are frozen data — install them on
as many (simulator, injector, service) triples as needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.sim.faults import ArcPartition
from repro.utils.validation import require

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.sim.engine import Simulator
    from repro.sim.faults import FaultInjector

__all__ = [
    "PartitionWindow",
    "CrashBurst",
    "NodeFlap",
    "LossRamp",
    "SlowBurst",
    "GrayFailureWindow",
    "ChaosScenario",
    "id_space_of",
    "network_ids_of",
    "slow_victims",
    "DEMO_SCENARIO",
    "CRASH_STORM_SCENARIO",
    "GRAY_FAILURE_SCENARIO",
]


def id_space_of(overlay: Any) -> int:
    """The integer identifier-space size of an overlay substrate.

    Chord rings expose ``space.size`` (``2**bits``); Cycloid overlays
    expose ``capacity`` (``d * 2**d``, the linearized key space).
    """
    space = getattr(overlay, "space", None)
    if space is not None:
        return space.size
    return overlay.capacity


def network_ids_of(overlay: Any) -> list[int]:
    """Every live node's identifier in the *network's* integer space.

    Chord node IDs are already ring integers; Cycloid ``(k, a)`` IDs are
    linearized — the same mapping the fault path hands to
    ``deliver_first``, so fail-slow marks land on the IDs messages
    actually travel between.
    """
    linearize = getattr(overlay, "linearize", None)
    if linearize is not None:
        return sorted(linearize(cid) for cid in overlay.node_ids)
    return sorted(int(nid) for nid in overlay.node_ids)


def slow_victims(overlay: Any, fraction: float) -> list[int]:
    """The deterministic gray-failure victim set: ``fraction`` of the live
    population, evenly strided across the sorted identifier list.

    Deterministic (no RNG) so one scenario marks comparable victim sets
    on every overlay it is installed on — the times are declared, the
    victims are a pure function of membership.
    """
    require(0.0 <= fraction <= 1.0, "slow fraction must be in [0, 1]")
    ids = network_ids_of(overlay)
    count = round(fraction * len(ids))
    if count <= 0:
        return []
    stride = len(ids) / count
    return [ids[min(int(i * stride), len(ids) - 1)] for i in range(count)]


@dataclass(frozen=True)
class PartitionWindow:
    """An ID-arc partition active during ``[starts_at, heals_at)``.

    ``lo_frac``/``hi_frac`` locate the clockwise arc as fractions of the
    identifier space; the concrete :class:`ArcPartition` is materialised
    per overlay at install time.
    """

    lo_frac: float
    hi_frac: float
    starts_at: float
    heals_at: float

    def __post_init__(self) -> None:
        require(0.0 <= self.lo_frac <= 1.0, "lo_frac must be in [0, 1]")
        require(0.0 <= self.hi_frac <= 1.0, "hi_frac must be in [0, 1]")
        require(self.starts_at >= 0, "partitions cannot start before t=0")
        require(self.heals_at > self.starts_at, "heals_at must follow starts_at")

    def arc_for(self, space: int) -> ArcPartition:
        """The concrete arc on an identifier space of ``space`` ids."""
        return ArcPartition(
            lo=int(self.lo_frac * (space - 1)),
            hi=int(self.hi_frac * (space - 1)),
            space=space,
        )


@dataclass(frozen=True)
class CrashBurst:
    """``count`` correlated crash failures striking at time ``at``."""

    at: float
    count: int

    def __post_init__(self) -> None:
        require(self.at >= 0, "bursts cannot strike before t=0")
        require(self.count >= 1, "a burst needs at least one crash")


@dataclass(frozen=True)
class NodeFlap:
    """A flapping node: crash at ``first_down + i*period``, rejoin half a
    period later, for ``cycles`` cycles."""

    first_down: float
    period: float
    cycles: int = 2

    def __post_init__(self) -> None:
        require(self.first_down >= 0, "flaps cannot start before t=0")
        require(self.period > 0, "flap period must be positive")
        require(self.cycles >= 1, "a flap needs at least one cycle")

    def down_times(self) -> list[float]:
        return [self.first_down + i * self.period for i in range(self.cycles)]

    def up_times(self) -> list[float]:
        return [t + self.period / 2 for t in self.down_times()]


@dataclass(frozen=True)
class LossRamp:
    """Loss rate climbing stepwise to ``peak`` over ``[starts_at, ends_at)``.

    ``steps`` evenly spaced set-points reach the peak; at ``ends_at`` the
    injector's plan rate is restored.
    """

    starts_at: float
    ends_at: float
    peak: float
    steps: int = 4

    def __post_init__(self) -> None:
        require(self.starts_at >= 0, "ramps cannot start before t=0")
        require(self.ends_at > self.starts_at, "ends_at must follow starts_at")
        require(0.0 <= self.peak < 1.0, "peak loss rate must be in [0, 1)")
        require(self.steps >= 1, "a ramp needs at least one step")

    def set_points(self) -> list[tuple[float, float]]:
        """The ``(time, rate)`` set-points, ending with the plan reset."""
        span = self.ends_at - self.starts_at
        return [
            (self.starts_at + i * span / self.steps, self.peak * (i + 1) / self.steps)
            for i in range(self.steps)
        ]


@dataclass(frozen=True)
class SlowBurst:
    """A transient straggler spike: ``fraction`` of the live population
    turns gray (latency × ``multiplier``) at ``at`` and heals after
    ``duration`` seconds.  The short, severe form of fail-slow — think a
    co-located batch job or a network brown-out."""

    at: float
    duration: float
    fraction: float
    multiplier: float = 10.0
    intermittency: float = 1.0

    def __post_init__(self) -> None:
        require(self.at >= 0, "bursts cannot strike before t=0")
        require(self.duration > 0, "burst duration must be positive")
        require(0.0 < self.fraction <= 1.0, "fraction must be in (0, 1]")
        require(self.multiplier >= 1.0, "multiplier must be >= 1")
        require(0.0 < self.intermittency <= 1.0, "intermittency must be in (0, 1]")

    @property
    def heals_at(self) -> float:
        return self.at + self.duration


@dataclass(frozen=True)
class GrayFailureWindow:
    """A sustained gray failure: ``fraction`` of the population is
    *intermittently* degraded during ``[starts_at, heals_at)`` — each
    message to a victim is slowed with probability ``intermittency``.

    The long, sneaky form of fail-slow: victims pass health checks (most
    messages are fine) while the latency tail quietly grows — exactly the
    regime where fixed timeouts bleed and hedging pays.
    """

    starts_at: float
    heals_at: float
    fraction: float
    multiplier: float = 10.0
    intermittency: float = 0.6

    def __post_init__(self) -> None:
        require(self.starts_at >= 0, "windows cannot start before t=0")
        require(self.heals_at > self.starts_at, "heals_at must follow starts_at")
        require(0.0 < self.fraction <= 1.0, "fraction must be in (0, 1]")
        require(self.multiplier >= 1.0, "multiplier must be >= 1")
        require(0.0 < self.intermittency <= 1.0, "intermittency must be in (0, 1]")


@dataclass(frozen=True)
class ChaosScenario:
    """A seeded, declarative fault timeline.

    Frozen data: one scenario installs identically onto any number of
    (simulator, injector, service) triples — that is what lets the
    recovery experiment subject all four systems to the *same* chaos.
    """

    name: str = "chaos"
    partitions: tuple[PartitionWindow, ...] = ()
    bursts: tuple[CrashBurst, ...] = ()
    flaps: tuple[NodeFlap, ...] = ()
    ramps: tuple[LossRamp, ...] = field(default=())
    slow_bursts: tuple[SlowBurst, ...] = ()
    gray_windows: tuple[GrayFailureWindow, ...] = ()

    def fault_times(self) -> list[float]:
        """Every fault *onset* instant, sorted (recovery clocks start here)."""
        times: set[float] = set()
        times.update(w.starts_at for w in self.partitions)
        times.update(b.at for b in self.bursts)
        for flap in self.flaps:
            times.update(flap.down_times())
        times.update(r.starts_at for r in self.ramps)
        times.update(s.at for s in self.slow_bursts)
        times.update(g.starts_at for g in self.gray_windows)
        return sorted(times)

    def heal_times(self) -> list[float]:
        """Every instant a fault source switches off, sorted."""
        times: set[float] = set()
        times.update(w.heals_at for w in self.partitions)
        for flap in self.flaps:
            times.update(flap.up_times())
        times.update(r.ends_at for r in self.ramps)
        times.update(s.heals_at for s in self.slow_bursts)
        times.update(g.heals_at for g in self.gray_windows)
        return sorted(times)

    def horizon(self) -> float:
        """Earliest time by which every declared fault has struck and healed."""
        last = 0.0
        for t in self.fault_times() + self.heal_times():
            last = max(last, t)
        return last

    def install(
        self,
        sim: "Simulator",
        injector: "FaultInjector",
        service: Any,
    ) -> int:
        """Compile the timeline onto ``sim``; returns events scheduled.

        Partitions arm/disarm on the injector, sized to the service's
        overlay identifier space; bursts and flap-downs crash through
        ``service.churn_fail`` (so churn guards and seeded victim
        selection apply); flap-ups rejoin through ``service.churn_join``;
        ramps drive ``injector.set_loss_rate``.
        """
        overlay = getattr(service, "overlay", None) or service.ring
        space = id_space_of(overlay)
        scheduled = 0

        for window in self.partitions:
            arc = window.arc_for(space)
            sim.schedule_at(
                window.starts_at,
                (lambda a=arc: injector.arm_partition(a)),
                name=f"{self.name}:partition-arm",
            )
            sim.schedule_at(
                window.heals_at,
                (lambda a=arc: injector.disarm_partition(a)),
                name=f"{self.name}:partition-heal",
            )
            scheduled += 2

        for burst in self.bursts:
            for _ in range(burst.count):
                sim.schedule_at(burst.at, service.churn_fail, name=f"{self.name}:burst")
                scheduled += 1

        for flap in self.flaps:
            for t in flap.down_times():
                sim.schedule_at(t, service.churn_fail, name=f"{self.name}:flap-down")
                scheduled += 1
            for t in flap.up_times():
                sim.schedule_at(t, service.churn_join, name=f"{self.name}:flap-up")
                scheduled += 1

        for ramp in self.ramps:
            for t, rate in ramp.set_points():
                sim.schedule_at(
                    t,
                    (lambda r=rate: injector.set_loss_rate(r)),
                    name=f"{self.name}:loss-ramp",
                )
                scheduled += 1
            sim.schedule_at(
                ramp.ends_at, injector.reset_loss_rate, name=f"{self.name}:loss-reset"
            )
            scheduled += 1

        def mark(victims: list[int], multiplier: float, intermittency: float) -> None:
            for victim in victims:
                injector.mark_slow(victim, multiplier, intermittency)

        def heal(victims: list[int]) -> None:
            for victim in victims:
                injector.clear_slow(victim)

        # Victim sets are materialised at install time from the current
        # membership; overlapping windows heal only their own victims.
        for slow in self.slow_bursts:
            victims = slow_victims(overlay, slow.fraction)
            sim.schedule_at(
                slow.at,
                (lambda v=victims, s=slow: mark(v, s.multiplier, s.intermittency)),
                name=f"{self.name}:slow-burst",
            )
            sim.schedule_at(
                slow.heals_at,
                (lambda v=victims: heal(v)),
                name=f"{self.name}:slow-heal",
            )
            scheduled += 2

        for gray in self.gray_windows:
            victims = slow_victims(overlay, gray.fraction)
            sim.schedule_at(
                gray.starts_at,
                (lambda v=victims, g=gray: mark(v, g.multiplier, g.intermittency)),
                name=f"{self.name}:gray-onset",
            )
            sim.schedule_at(
                gray.heals_at,
                (lambda v=victims: heal(v)),
                name=f"{self.name}:gray-heal",
            )
            scheduled += 2

        return scheduled


#: The acceptance-criteria demo: a partition that heals, then a
#: correlated crash burst — availability dips during each fault and must
#: reconverge under budgeted maintenance (and must *not* under budget=0).
DEMO_SCENARIO = ChaosScenario(
    name="demo",
    partitions=(PartitionWindow(lo_frac=0.0, hi_frac=0.25, starts_at=2.0, heals_at=6.0),),
    bursts=(CrashBurst(at=8.0, count=10),),
    flaps=(NodeFlap(first_down=10.0, period=4.0, cycles=1),),
)

#: Pure correlated crash pressure, no partitions: two back-to-back bursts
#: with a flap between them.  The durability-policy sweep's second
#: scenario — where copies *live* (successor chain vs spread) and how many
#: holders a piece can lose decide whether anything is lost at all, with
#: no network faults to muddy the attribution.
CRASH_STORM_SCENARIO = ChaosScenario(
    name="crash-storm",
    bursts=(CrashBurst(at=2.0, count=12), CrashBurst(at=10.0, count=12)),
    flaps=(NodeFlap(first_down=16.0, period=4.0, cycles=1),),
)

#: Pure fail-slow pressure, nothing crashes and nothing drops: a sharp
#: straggler spike followed by a long intermittent gray-failure window.
#: Every query still succeeds — only the latency distribution moves, which
#: is what the tail experiment's requester policies defend against.
GRAY_FAILURE_SCENARIO = ChaosScenario(
    name="gray-failure",
    slow_bursts=(SlowBurst(at=2.0, duration=4.0, fraction=0.2, multiplier=20.0),),
    gray_windows=(
        GrayFailureWindow(
            starts_at=8.0, heals_at=20.0, fraction=0.1,
            multiplier=20.0, intermittency=0.6,
        ),
    ),
)
