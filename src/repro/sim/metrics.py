"""Metric collection and the percentile summaries used in Figure 3.

The paper reports, for directory sizes, the mean together with the 1st and
99th percentiles; for hop counts it reports means and totals.
:func:`summarize` computes exactly that summary from raw samples, and
:class:`MetricsRegistry` is the shared sink the services write their
per-operation accounting into.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["SummaryStats", "summarize", "MetricsRegistry"]


@dataclass(frozen=True)
class SummaryStats:
    """Mean / percentile summary of a sample, as plotted in Figure 3."""

    count: int
    mean: float
    std: float
    minimum: float
    p01: float
    median: float
    p99: float
    maximum: float
    total: float

    def as_dict(self) -> dict[str, float | None]:
        """Flat dict form for CSV/JSON emission.

        Non-finite values (the NaN statistics of an empty series) come
        out as ``None`` — ``csv`` renders that as an empty cell and
        ``json`` as ``null``, whereas a raw NaN would serialise as the
        ``NaN`` token, which is not valid JSON.
        """

        def emit(value: float) -> float | None:
            return value if np.isfinite(value) else None

        return {
            "count": self.count,
            "mean": emit(self.mean),
            "std": emit(self.std),
            "min": emit(self.minimum),
            "p01": emit(self.p01),
            "median": emit(self.median),
            "p99": emit(self.p99),
            "max": emit(self.maximum),
            "total": emit(self.total),
        }


def summarize(samples: Sequence[float]) -> SummaryStats:
    """Summary statistics of ``samples`` (1st/99th percentiles included).

    Percentiles use linear interpolation, matching ``numpy`` defaults.

    Examples
    --------
    >>> summarize([1, 2, 3]).mean
    2.0
    """
    if len(samples) == 0:
        return SummaryStats(0, float("nan"), float("nan"), float("nan"),
                            float("nan"), float("nan"), float("nan"),
                            float("nan"), 0.0)
    arr = np.asarray(samples, dtype=float)
    p01, median, p99 = np.percentile(arr, [1, 50, 99])
    return SummaryStats(
        count=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=0)),
        minimum=float(arr.min()),
        p01=float(p01),
        median=float(median),
        p99=float(p99),
        maximum=float(arr.max()),
        total=float(arr.sum()),
    )


class MetricsRegistry:
    """Named counters and sample accumulators.

    Services record one sample per operation (e.g. ``lookup.hops``) and
    monotone counters (e.g. ``messages.sent``); experiments read them back
    as :class:`SummaryStats`.
    """

    def __init__(self) -> None:
        self._counters: defaultdict[str, float] = defaultdict(float)
        self._samples: defaultdict[str, list[float]] = defaultdict(list)

    def incr(self, name: str, amount: float = 1.0) -> None:
        """Increase counter ``name`` by ``amount``."""
        self._counters[name] += amount

    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 if never incremented)."""
        return self._counters[name]

    def record(self, name: str, value: float) -> None:
        """Append one sample to series ``name``."""
        self._samples[name].append(float(value))

    def record_pair(
        self, name1: str, value1: float, name2: str, value2: float
    ) -> None:
        """Append one sample to each of two series in a single call.

        The per-query hot paths emit exactly two samples per operation
        (hops + visited nodes); taking them as four direct arguments
        halves the method-call overhead of two :meth:`record` calls
        without the per-call tuple packing a ``record_many(pairs)`` shape
        would impose on the caller.
        """
        samples = self._samples
        samples[name1].append(float(value1))
        samples[name2].append(float(value2))

    def samples(self, name: str) -> list[float]:
        """Raw samples recorded under ``name``."""
        return list(self._samples[name])

    def last(self, name: str) -> float | None:
        """The most recent sample of series ``name`` (None when empty).

        Used by the trace/metrics conservation checks: a traced query's
        span totals must equal the sample the service recorded for it.
        """
        series = self._samples.get(name)
        return series[-1] if series else None

    def summary(self, name: str) -> SummaryStats:
        """Summary of series ``name``."""
        return summarize(self._samples[name])

    def reset(self, name: str | None = None) -> None:
        """Clear one series/counter, or everything when ``name`` is None."""
        if name is None:
            self._counters.clear()
            self._samples.clear()
        else:
            self._counters.pop(name, None)
            self._samples.pop(name, None)

    @property
    def series_names(self) -> tuple[str, ...]:
        """Names of all recorded sample series."""
        return tuple(self._samples)

    @property
    def counter_names(self) -> tuple[str, ...]:
        """Names of all counters."""
        return tuple(self._counters)
