"""Fault injection: message loss, crash storms, ID-arc partitions.

The paper's churn study (Section V-C) models only *graceful* joins and
departures on a perfectly reliable network.  This module adds the missing
failure modes so the query path can be exercised under adversity:

* **per-message loss** — every overlay message consults the injector and is
  dropped with a seeded probability (the sender observes a timeout);
* **ID-arc partitions** — a contiguous arc of the identifier space is cut
  off from the rest; messages crossing the cut are dropped
  deterministically while the partition is armed;
* **crash storms** — batches of crash failures scheduled at simulated
  times, to be bound to an overlay's ``fail``/``churn_fail`` by the
  experiment harness.

:class:`FaultPlan` is the immutable, seedable description of a fault
scenario; :class:`FaultInjector` is its runtime form, consulted by
:class:`~repro.sim.network.SimulatedNetwork` on every message.  A ``None``
injector (the default everywhere) — or a null plan — is a *strict
identity*: no randomness is drawn and no behaviour changes, so every
existing figure reproduces unchanged.

:class:`LookupPolicy` describes how a requester copes with the injected
faults: how many retransmission rounds it attempts per hop, its timeout and
backoff accounting, and whether it fails over across successor-list entries
and alternate fingers.  The overlays thread it through ``lookup`` and the
range-walk primitives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, ClassVar, Sequence

import numpy as np

from repro.utils.validation import require

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (network imports us)
    from repro.sim.engine import Simulator

__all__ = [
    "ArcPartition",
    "CrashStorm",
    "SlowNode",
    "DegradedLink",
    "FaultPlan",
    "FaultInjector",
    "LookupPolicy",
    "DEFAULT_POLICY",
    "NO_RETRY_POLICY",
    "ADAPTIVE_POLICY",
    "HEDGED_POLICY",
    "deliver_first",
]


@dataclass(frozen=True)
class ArcPartition:
    """A contiguous identifier arc cut off from the rest of the overlay.

    Nodes whose (wrapped) integer ID lies on the clockwise arc
    ``[lo, hi]`` cannot exchange messages with nodes outside it.  ``space``
    is the identifier-space size used for wrapping; Cycloid overlays pass
    their linearized ``(k, a)`` IDs.
    """

    lo: int
    hi: int
    space: int

    def __post_init__(self) -> None:
        require(self.space >= 1, "partition space must be >= 1")

    def contains(self, node_id: int) -> bool:
        """Whether ``node_id`` falls inside the partitioned arc."""
        nid = node_id % self.space
        lo, hi = self.lo % self.space, self.hi % self.space
        if lo <= hi:
            return lo <= nid <= hi
        return nid >= lo or nid <= hi

    def severs(self, src: int | None, dst: int | None) -> bool:
        """Whether a ``src → dst`` message crosses the cut."""
        if src is None or dst is None:
            return False
        return self.contains(src) != self.contains(dst)


@dataclass(frozen=True)
class CrashStorm:
    """``count`` crash failures striking at simulated time ``at``."""

    at: float
    count: int

    def __post_init__(self) -> None:
        require(self.count >= 1, "a crash storm needs at least one crash")
        require(self.at >= 0, "storms cannot strike before t=0")


@dataclass(frozen=True)
class SlowNode:
    """A gray-failing node: alive, answering, but *slow*.

    Messages to or from ``node_id`` have their sampled latency multiplied
    by ``multiplier``.  ``intermittency`` is the probability any given
    message is degraded (1.0 = persistently slow; below 1.0 models the
    transient stalls — GC pauses, queue buildup — that make gray failures
    hard to detect and hedging effective).  IDs live in the network's
    linearized identifier space, like :class:`ArcPartition` bounds.
    """

    node_id: int
    multiplier: float
    intermittency: float = 1.0

    def __post_init__(self) -> None:
        require(self.multiplier >= 1.0, "slow-node multiplier must be >= 1")
        require(
            0.0 < self.intermittency <= 1.0,
            "intermittency must be in (0, 1]",
        )


@dataclass(frozen=True)
class DegradedLink:
    """A directed ``src → dst`` link whose latency is multiplied."""

    src: int
    dst: int
    multiplier: float

    def __post_init__(self) -> None:
        require(self.multiplier >= 1.0, "link multiplier must be >= 1")


@dataclass(frozen=True)
class FaultPlan:
    """Immutable, seedable description of a fault scenario.

    ``loss_rate`` is the per-message drop probability; ``partitions`` and
    ``crash_storms`` are the deterministic components.  ``seed`` pins the
    loss stream, so a plan + seed reproduces the exact same drop pattern.
    """

    loss_rate: float = 0.0
    partitions: tuple[ArcPartition, ...] = ()
    crash_storms: tuple[CrashStorm, ...] = ()
    slow_nodes: tuple[SlowNode, ...] = ()
    degraded_links: tuple[DegradedLink, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        require(0.0 <= self.loss_rate < 1.0, "loss_rate must be in [0, 1)")

    @property
    def is_null(self) -> bool:
        """True when the plan injects nothing (the identity plan)."""
        return not (
            self.loss_rate > 0.0
            or self.partitions
            or self.crash_storms
            or self.slow_nodes
            or self.degraded_links
        )


class FaultInjector:
    """Runtime form of a :class:`FaultPlan`.

    ``delivered(src, dst)`` is the single question the network asks; it is
    answered from the armed partitions first (deterministic) and the seeded
    loss stream second.  Partitions can be armed/disarmed mid-run to model
    transient splits; ``enabled`` gates the whole injector.
    """

    def __init__(self, plan: FaultPlan | None = None, *,
                 rng: np.random.Generator | None = None) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self._rng = rng if rng is not None else np.random.default_rng(self.plan.seed)
        self.enabled = True
        self._partitions: list[ArcPartition] = list(self.plan.partitions)
        self._loss_rate = self.plan.loss_rate
        self._slow: dict[int, tuple[float, float]] = {
            s.node_id: (s.multiplier, s.intermittency)
            for s in self.plan.slow_nodes
        }
        self._degraded: dict[tuple[int, int], float] = {
            (link.src, link.dst): link.multiplier
            for link in self.plan.degraded_links
        }

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether any fault source is currently live."""
        return self.enabled and (
            self._loss_rate > 0.0
            or bool(self._partitions)
            or bool(self.plan.crash_storms)
            or bool(self._slow)
            or bool(self._degraded)
        )

    @property
    def loss_rate(self) -> float:
        """Current per-message drop probability (plan default, or overridden)."""
        return self._loss_rate

    def set_loss_rate(self, rate: float) -> None:
        """Override the per-message drop probability mid-run.

        Loss-rate ramps in a chaos timeline use this; the seeded stream is
        untouched, so identical scenarios keep identical drop patterns.
        """
        require(0.0 <= rate < 1.0, "loss_rate must be in [0, 1)")
        self._loss_rate = float(rate)

    def reset_loss_rate(self) -> None:
        """Restore the plan's loss rate after a ramp."""
        self._loss_rate = self.plan.loss_rate

    @property
    def partitions(self) -> tuple[ArcPartition, ...]:
        """Currently armed partitions."""
        return tuple(self._partitions)

    def arm_partition(self, partition: ArcPartition) -> None:
        """Activate an additional ID-arc partition."""
        self._partitions.append(partition)

    def disarm_partition(self, partition: ArcPartition) -> bool:
        """Disarm one armed partition (that split heals); returns whether it
        was armed.  Scenario timelines heal partitions individually while
        others stay armed; :meth:`heal_partitions` stays the heal-everything
        case."""
        try:
            self._partitions.remove(partition)
        except ValueError:
            return False
        return True

    def heal_partitions(self) -> None:
        """Disarm every partition (the split heals)."""
        self._partitions.clear()

    # ------------------------------------------------------------------
    # Fail-slow state (gray failures)
    # ------------------------------------------------------------------
    @property
    def slow_nodes(self) -> dict[int, tuple[float, float]]:
        """Currently gray nodes: ``node_id → (multiplier, intermittency)``."""
        return dict(self._slow)

    def mark_slow(
        self, node_id: int, multiplier: float, intermittency: float = 1.0
    ) -> None:
        """Turn ``node_id`` gray: its messages slow down by ``multiplier``
        with probability ``intermittency`` each (chaos timelines flip this
        mid-run; the loss stream is untouched)."""
        require(multiplier >= 1.0, "slow-node multiplier must be >= 1")
        require(0.0 < intermittency <= 1.0, "intermittency must be in (0, 1]")
        self._slow[node_id] = (float(multiplier), float(intermittency))

    def clear_slow(self, node_id: int | None = None) -> None:
        """Heal one gray node — or all of them when ``node_id`` is None."""
        if node_id is None:
            self._slow.clear()
        else:
            self._slow.pop(node_id, None)

    def degrade_link(self, src: int, dst: int, multiplier: float) -> None:
        """Degrade the directed ``src → dst`` link by ``multiplier``."""
        require(multiplier >= 1.0, "link multiplier must be >= 1")
        self._degraded[(src, dst)] = float(multiplier)

    def restore_link(self, src: int, dst: int) -> None:
        """Restore one degraded link to full speed."""
        self._degraded.pop((src, dst), None)

    def latency_factor(
        self, src: int | None, dst: int | None, rng: np.random.Generator
    ) -> float:
        """Multiplier applied to one delivered message's sampled latency.

        The worst applicable degradation wins: a gray *destination*
        contributes its multiplier with its intermittency probability
        (a fail-slow node is slow to *serve* — messages sent to it come
        back late; its own outbound requests are answered by healthy
        peers at full speed, which is what makes requester-side defenses
        meaningful), a degraded ``src → dst`` link always contributes.
        ``rng`` is the *latency* stream (the model's own generator) —
        intermittency draws must never perturb the seeded loss stream,
        or requester policies would change which messages drop.
        """
        if not self.enabled or not (self._slow or self._degraded):
            return 1.0
        factor = 1.0
        if self._slow and dst is not None:
            spec = self._slow.get(dst)
            if spec is not None:
                multiplier, intermittency = spec
                if intermittency >= 1.0 or float(rng.random()) < intermittency:
                    factor = max(factor, multiplier)
        if self._degraded and src is not None and dst is not None:
            link = self._degraded.get((src, dst))
            if link is not None:
                factor = max(factor, link)
        return factor

    # ------------------------------------------------------------------
    # The per-message question
    # ------------------------------------------------------------------
    def delivered(self, src: int | None = None, dst: int | None = None) -> bool:
        """Whether one ``src → dst`` message survives the fault plan."""
        if not self.enabled:
            return True
        for partition in self._partitions:
            if partition.severs(src, dst):
                return False
        if self._loss_rate > 0.0:
            return float(self._rng.random()) >= self._loss_rate
        return True

    # ------------------------------------------------------------------
    # Crash storms
    # ------------------------------------------------------------------
    def install_storms(
        self, sim: "Simulator", crash_one: Callable[[], Any]
    ) -> int:
        """Schedule every planned crash storm on ``sim``.

        ``crash_one`` is invoked once per crash (typically bound to the
        service's ``churn_fail``).  Returns the number of crashes scheduled.
        """
        scheduled = 0
        for storm in self.plan.crash_storms:
            for _ in range(storm.count):
                sim.schedule_at(storm.at, crash_one, name="crash-storm")
                scheduled += 1
        return scheduled


@dataclass(frozen=True)
class LookupPolicy:
    """How a requester tolerates message loss and dead routing entries.

    Parameters
    ----------
    max_retries:
        Retransmission rounds per hop after the first attempt.  Within one
        round every failover candidate is tried once.
    timeout:
        Simulated seconds the sender waits before declaring one message
        lost (accounting only; accumulated in ``MessageStats``).
    backoff_base / backoff_factor:
        Exponential backoff accounting between retransmission rounds:
        round ``i`` waits ``backoff_base * backoff_factor**(i-1)`` seconds.
    successor_failover:
        Fail over across successor-list entries (Chord) when the preferred
        next hop is unreachable — with replication ``r >= 2`` the failover
        target holds the data, keeping queries complete.
    finger_fallback:
        Try alternate (lower) fingers / alternate routing-table entries
        when the best one is unreachable.
    hop_budget:
        Per-lookup hop ceiling before the attempt is declared timed out;
        ``None`` uses the overlay's structural bound.
    adaptive_timeout:
        Replace the fixed ``timeout`` with the requester's
        :class:`~repro.sim.latency.RttEstimator`-derived timeout (never
        above ``timeout``, so the fixed value stays the conservative cap).
        Only meaningful while a latency model is attached.
    hedge:
        After the observed ``hedge_quantile`` delay with no answer, fire
        one backup copy of the message and take whichever response lands
        first.  Hedging is *result-transparent*: the backup goes to the
        same destination, so only latency and hedge counters can change.
    hedge_quantile:
        Observed response-time quantile at which the hedge fires (the
        "tail at scale" p95 rule).
    """

    max_retries: int = 2
    timeout: float = 0.5
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    successor_failover: bool = True
    finger_fallback: bool = True
    hop_budget: int | None = None
    adaptive_timeout: bool = False
    hedge: bool = False
    hedge_quantile: float = 0.95

    #: Exponent ceiling for :meth:`backoff_for` — far beyond any plausible
    #: retry budget, small enough that ``factor ** cap`` stays finite.
    _BACKOFF_EXPONENT_CAP: ClassVar[int] = 32

    def __post_init__(self) -> None:
        require(self.max_retries >= 0, "max_retries must be >= 0")
        require(self.timeout > 0, "timeout must be positive")
        require(self.backoff_base >= 0, "backoff_base must be >= 0")
        require(self.backoff_factor >= 1.0, "backoff_factor must be >= 1")
        require(
            self.hop_budget is None or self.hop_budget >= 1,
            "hop_budget must be >= 1 when given",
        )
        require(
            0.0 < self.hedge_quantile < 1.0,
            "hedge_quantile must be in (0, 1)",
        )

    def backoff_for(self, round_index: int) -> float:
        """Backoff seconds before retransmission round ``round_index >= 1``.

        The exponent is capped: uncapped ``base * factor**(k-1)`` overflows
        to ``inf`` for large round indices (``2.0**1100`` already does),
        and one ``inf`` poisons every ``backoff_seconds`` total it touches.
        """
        exponent = min(round_index - 1, self._BACKOFF_EXPONENT_CAP)
        return self.backoff_base * self.backoff_factor**exponent

    def effective_timeout(self, estimator: Any | None = None) -> float:
        """The timeout charged for one unanswered message.

        The fixed ``timeout`` — unless ``adaptive_timeout`` is set and an
        estimator view is available, in which case the estimator's
        (tighter, floor-clamped) adaptive value applies.
        """
        if not self.adaptive_timeout or estimator is None:
            return self.timeout
        return estimator.timeout(self.timeout)

    def hedge_delay(self, estimator: Any | None) -> float | None:
        """Seconds after which a hedge fires, or ``None`` while the
        estimator is still too cold to know its ``hedge_quantile``."""
        if not self.hedge or estimator is None:
            return None
        return estimator.hedge_delay(self.hedge_quantile)


#: The default requester behaviour: 2 retransmission rounds, full failover.
DEFAULT_POLICY = LookupPolicy()

#: A brittle requester: one shot per hop, no failover — the ablation
#: baseline showing what retry + failover buy.
NO_RETRY_POLICY = LookupPolicy(
    max_retries=0, successor_failover=False, finger_fallback=False
)

#: Adaptive timeouts only: the estimator replaces the fixed timeout.
#: Adaptive rounds are cheap (the window is the observed RTT picture, not
#: the fixed worst case), so the defended policies afford a larger retry
#: budget before waiting a straggler out.  They also drop the exponential
#: backoff: retransmissions are paced by the adaptive deadline itself, and
#: a gray failure is not congestive — backoff would only stretch the very
#: tail the defense exists to cut.
ADAPTIVE_POLICY = LookupPolicy(
    adaptive_timeout=True, max_retries=4, backoff_base=0.0
)

#: The full tail-latency defense: adaptive timeouts + p95 hedging.
HEDGED_POLICY = LookupPolicy(
    adaptive_timeout=True, hedge=True, max_retries=4, backoff_base=0.0
)


def deliver_first(
    network: Any,
    src_id: int,
    candidates: Sequence[tuple[int, Any]],
    policy: LookupPolicy,
    on_drop: Callable[[int, int], None] | None = None,
    on_hedge: Callable[[int, bool], None] | None = None,
) -> tuple[Any, int, int]:
    """Deliver one message to the first reachable candidate.

    ``candidates`` is an ordered ``(dst_id, node)`` preference list.  The
    preferred candidate is retried up to ``max_retries`` times (with
    backoff accounting) before the requester fails over to the next one —
    transient loss is absorbed by retransmission, persistent
    unreachability by failover.  Dropped messages count as timeouts.

    ``on_drop(dst_id, attempt)`` — when given — observes every failed
    delivery attempt (the hop-level tracer sources its "drop" annotations
    from here, so annotations reflect the injector's actual decisions).
    ``on_hedge(dst_id, won)`` likewise observes every hedge fired on the
    latency-aware path.

    Returns ``(node, retries_used, skipped)`` where ``skipped`` is the
    number of candidates given up on before ``node`` answered, or
    ``(None, retries_used, len(candidates))`` when every candidate failed.

    With no injector active this is exact-identity: the first candidate
    wins, nothing is counted, no randomness is drawn.  With an injector
    but no latency model the seed's loss-only loop runs unchanged; a
    latency model routes through :func:`_deliver_first_timed`, which adds
    the requester clock, adaptive timeouts and hedging.
    """
    if not candidates:
        return None, 0, 0
    if not network.faults_active:
        return candidates[0][1], 0, 0
    if network.latency_model is not None:
        return _deliver_first_timed(
            network, src_id, candidates, policy, on_drop, on_hedge
        )
    retries_used = 0
    for position, (dst_id, node) in enumerate(candidates):
        for attempt in range(policy.max_retries + 1):
            if attempt:
                retries_used += 1
                network.count_retry(backoff=policy.backoff_for(attempt))
            if network.try_deliver(src_id, dst_id):
                return node, retries_used, position
            network.count_timeout(policy.timeout)
            if on_drop is not None:
                on_drop(dst_id, attempt)
    return None, retries_used, len(candidates)


def _fire_hedge(
    network: Any,
    src_id: int,
    dst_id: int,
    hedge_at: float,
    primary: float,
    on_hedge: Callable[[int, bool], None] | None,
) -> float:
    """Fire one backup request at ``hedge_at`` and race the primary.

    The backup is a fresh transmission to the *same* destination (an iid
    latency draw — the "tail at scale" defense against stragglers and
    intermittent gray failures), so results cannot change, only response
    time.  Returns ``(response, sample)``: the winning response time
    measured from the primary's send instant, and the winning
    transmission's *own* RTT (the backup's latency excludes the hedge
    delay) — the value safe to feed the estimator.  A dropped backup
    leaves the primary racing alone.
    """
    if not network.try_deliver(src_id, dst_id):
        network.count_hedge(won=False, delivered=False)
        if on_hedge is not None:
            on_hedge(dst_id, False)
        return primary, primary
    backup_rtt = network.last_latency
    backup = hedge_at + backup_rtt
    won = backup < primary
    network.count_hedge(won=won)
    if on_hedge is not None:
        on_hedge(dst_id, won)
    if won:
        return backup, backup_rtt
    return primary, primary


def _deliver_first_timed(
    network: Any,
    src_id: int,
    candidates: Sequence[tuple[int, Any]],
    policy: LookupPolicy,
    on_drop: Callable[[int, int], None] | None,
    on_hedge: Callable[[int, bool], None] | None,
) -> tuple[Any, int, int]:
    """The latency-aware delivery loop (a latency model is attached).

    Semantics on top of the loss-only loop:

    * every delivered message carries a sampled response time;
    * the timeout charged per unanswered window is the policy's
      *effective* timeout (adaptive when enabled);
    * a delivered-but-late response (slower than the timeout) is treated
      as lost — the requester retransmits to the *same* destination — but
      once retransmissions are exhausted the requester waits the slow
      reply out rather than failing over: the node is alive, and failing
      over would change query results under a pure fail-slow fault;
    * with hedging enabled, a response slower than the observed
      ``hedge_quantile`` races a backup copy; the first answer wins;
    * responses accepted within the timeout feed the requester's RTT
      estimator; forced (retries-exhausted) straggler accepts do not
      (Karn's rule), and the requester-observed elapsed time (responses
      + timeout windows + backoffs) accumulates on
      ``network.route_clock``.

    Only latencies, latency-side counters and the estimator differ from
    the loss-only loop: which node answers is decided by the same
    drop/failover logic, so owner sets stay policy-independent under
    pure fail-slow plans (the result-transparency property).
    """
    estimator = network.rtt_for(src_id)
    retries_used = 0
    elapsed = 0.0
    try:
        for position, (dst_id, node) in enumerate(candidates):
            for attempt in range(policy.max_retries + 1):
                if attempt:
                    retries_used += 1
                    backoff = policy.backoff_for(attempt)
                    network.count_retry(backoff=backoff)
                    elapsed += backoff
                timeout = policy.effective_timeout(estimator)
                if not network.try_deliver(src_id, dst_id):
                    # Dropped outright: the requester burns the full
                    # timeout window before acting.
                    network.count_timeout(timeout)
                    elapsed += timeout
                    if on_drop is not None:
                        on_drop(dst_id, attempt)
                    continue
                response = network.last_latency
                sample = response
                window = timeout
                hedge_at = policy.hedge_delay(estimator)
                if hedge_at is not None and response > hedge_at:
                    response, sample = _fire_hedge(
                        network, src_id, dst_id, hedge_at, response, on_hedge
                    )
                    # The backup got its own deadline, clocked from its
                    # own send instant: the round is given up only once
                    # both transmissions' windows expired.
                    window = hedge_at + timeout
                if response <= window:
                    if sample <= timeout:
                        # Only responses within their own transmission's
                        # deadline train the estimator — accepted
                        # stragglers would inflate it until stragglers
                        # pass unchallenged (Karn's rule).
                        estimator.observe(sample)
                    elapsed += response
                    return node, retries_used, position
                if attempt == policy.max_retries:
                    # Retries exhausted: the node is alive, so the
                    # requester waits the straggler out (failing over
                    # would change results under pure fail-slow).  The
                    # sample does NOT feed the estimator — Karn's rule:
                    # straggler accepts would inflate the adaptive
                    # timeout until stragglers pass unchallenged,
                    # defeating the defense they triggered.
                    elapsed += response
                    return node, retries_used, position
                # Delivered but slower than the deadline(s): declared
                # lost, retransmit to the same destination.
                network.count_timeout(window)
                elapsed += window
                if on_drop is not None:
                    on_drop(dst_id, attempt)
        return None, retries_used, len(candidates)
    finally:
        network.route_clock += elapsed
