"""Fault injection: message loss, crash storms, ID-arc partitions.

The paper's churn study (Section V-C) models only *graceful* joins and
departures on a perfectly reliable network.  This module adds the missing
failure modes so the query path can be exercised under adversity:

* **per-message loss** — every overlay message consults the injector and is
  dropped with a seeded probability (the sender observes a timeout);
* **ID-arc partitions** — a contiguous arc of the identifier space is cut
  off from the rest; messages crossing the cut are dropped
  deterministically while the partition is armed;
* **crash storms** — batches of crash failures scheduled at simulated
  times, to be bound to an overlay's ``fail``/``churn_fail`` by the
  experiment harness.

:class:`FaultPlan` is the immutable, seedable description of a fault
scenario; :class:`FaultInjector` is its runtime form, consulted by
:class:`~repro.sim.network.SimulatedNetwork` on every message.  A ``None``
injector (the default everywhere) — or a null plan — is a *strict
identity*: no randomness is drawn and no behaviour changes, so every
existing figure reproduces unchanged.

:class:`LookupPolicy` describes how a requester copes with the injected
faults: how many retransmission rounds it attempts per hop, its timeout and
backoff accounting, and whether it fails over across successor-list entries
and alternate fingers.  The overlays thread it through ``lookup`` and the
range-walk primitives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Sequence

import numpy as np

from repro.utils.validation import require

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (network imports us)
    from repro.sim.engine import Simulator

__all__ = [
    "ArcPartition",
    "CrashStorm",
    "FaultPlan",
    "FaultInjector",
    "LookupPolicy",
    "DEFAULT_POLICY",
    "NO_RETRY_POLICY",
    "deliver_first",
]


@dataclass(frozen=True)
class ArcPartition:
    """A contiguous identifier arc cut off from the rest of the overlay.

    Nodes whose (wrapped) integer ID lies on the clockwise arc
    ``[lo, hi]`` cannot exchange messages with nodes outside it.  ``space``
    is the identifier-space size used for wrapping; Cycloid overlays pass
    their linearized ``(k, a)`` IDs.
    """

    lo: int
    hi: int
    space: int

    def __post_init__(self) -> None:
        require(self.space >= 1, "partition space must be >= 1")

    def contains(self, node_id: int) -> bool:
        """Whether ``node_id`` falls inside the partitioned arc."""
        nid = node_id % self.space
        lo, hi = self.lo % self.space, self.hi % self.space
        if lo <= hi:
            return lo <= nid <= hi
        return nid >= lo or nid <= hi

    def severs(self, src: int | None, dst: int | None) -> bool:
        """Whether a ``src → dst`` message crosses the cut."""
        if src is None or dst is None:
            return False
        return self.contains(src) != self.contains(dst)


@dataclass(frozen=True)
class CrashStorm:
    """``count`` crash failures striking at simulated time ``at``."""

    at: float
    count: int

    def __post_init__(self) -> None:
        require(self.count >= 1, "a crash storm needs at least one crash")
        require(self.at >= 0, "storms cannot strike before t=0")


@dataclass(frozen=True)
class FaultPlan:
    """Immutable, seedable description of a fault scenario.

    ``loss_rate`` is the per-message drop probability; ``partitions`` and
    ``crash_storms`` are the deterministic components.  ``seed`` pins the
    loss stream, so a plan + seed reproduces the exact same drop pattern.
    """

    loss_rate: float = 0.0
    partitions: tuple[ArcPartition, ...] = ()
    crash_storms: tuple[CrashStorm, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        require(0.0 <= self.loss_rate < 1.0, "loss_rate must be in [0, 1)")

    @property
    def is_null(self) -> bool:
        """True when the plan injects nothing (the identity plan)."""
        return not (self.loss_rate > 0.0 or self.partitions or self.crash_storms)


class FaultInjector:
    """Runtime form of a :class:`FaultPlan`.

    ``delivered(src, dst)`` is the single question the network asks; it is
    answered from the armed partitions first (deterministic) and the seeded
    loss stream second.  Partitions can be armed/disarmed mid-run to model
    transient splits; ``enabled`` gates the whole injector.
    """

    def __init__(self, plan: FaultPlan | None = None, *,
                 rng: np.random.Generator | None = None) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self._rng = rng if rng is not None else np.random.default_rng(self.plan.seed)
        self.enabled = True
        self._partitions: list[ArcPartition] = list(self.plan.partitions)
        self._loss_rate = self.plan.loss_rate

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """Whether any fault source is currently live."""
        return self.enabled and (
            self._loss_rate > 0.0
            or bool(self._partitions)
            or bool(self.plan.crash_storms)
        )

    @property
    def loss_rate(self) -> float:
        """Current per-message drop probability (plan default, or overridden)."""
        return self._loss_rate

    def set_loss_rate(self, rate: float) -> None:
        """Override the per-message drop probability mid-run.

        Loss-rate ramps in a chaos timeline use this; the seeded stream is
        untouched, so identical scenarios keep identical drop patterns.
        """
        require(0.0 <= rate < 1.0, "loss_rate must be in [0, 1)")
        self._loss_rate = float(rate)

    def reset_loss_rate(self) -> None:
        """Restore the plan's loss rate after a ramp."""
        self._loss_rate = self.plan.loss_rate

    @property
    def partitions(self) -> tuple[ArcPartition, ...]:
        """Currently armed partitions."""
        return tuple(self._partitions)

    def arm_partition(self, partition: ArcPartition) -> None:
        """Activate an additional ID-arc partition."""
        self._partitions.append(partition)

    def disarm_partition(self, partition: ArcPartition) -> bool:
        """Disarm one armed partition (that split heals); returns whether it
        was armed.  Scenario timelines heal partitions individually while
        others stay armed; :meth:`heal_partitions` stays the heal-everything
        case."""
        try:
            self._partitions.remove(partition)
        except ValueError:
            return False
        return True

    def heal_partitions(self) -> None:
        """Disarm every partition (the split heals)."""
        self._partitions.clear()

    # ------------------------------------------------------------------
    # The per-message question
    # ------------------------------------------------------------------
    def delivered(self, src: int | None = None, dst: int | None = None) -> bool:
        """Whether one ``src → dst`` message survives the fault plan."""
        if not self.enabled:
            return True
        for partition in self._partitions:
            if partition.severs(src, dst):
                return False
        if self._loss_rate > 0.0:
            return float(self._rng.random()) >= self._loss_rate
        return True

    # ------------------------------------------------------------------
    # Crash storms
    # ------------------------------------------------------------------
    def install_storms(
        self, sim: "Simulator", crash_one: Callable[[], Any]
    ) -> int:
        """Schedule every planned crash storm on ``sim``.

        ``crash_one`` is invoked once per crash (typically bound to the
        service's ``churn_fail``).  Returns the number of crashes scheduled.
        """
        scheduled = 0
        for storm in self.plan.crash_storms:
            for _ in range(storm.count):
                sim.schedule_at(storm.at, crash_one, name="crash-storm")
                scheduled += 1
        return scheduled


@dataclass(frozen=True)
class LookupPolicy:
    """How a requester tolerates message loss and dead routing entries.

    Parameters
    ----------
    max_retries:
        Retransmission rounds per hop after the first attempt.  Within one
        round every failover candidate is tried once.
    timeout:
        Simulated seconds the sender waits before declaring one message
        lost (accounting only; accumulated in ``MessageStats``).
    backoff_base / backoff_factor:
        Exponential backoff accounting between retransmission rounds:
        round ``i`` waits ``backoff_base * backoff_factor**(i-1)`` seconds.
    successor_failover:
        Fail over across successor-list entries (Chord) when the preferred
        next hop is unreachable — with replication ``r >= 2`` the failover
        target holds the data, keeping queries complete.
    finger_fallback:
        Try alternate (lower) fingers / alternate routing-table entries
        when the best one is unreachable.
    hop_budget:
        Per-lookup hop ceiling before the attempt is declared timed out;
        ``None`` uses the overlay's structural bound.
    """

    max_retries: int = 2
    timeout: float = 0.5
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    successor_failover: bool = True
    finger_fallback: bool = True
    hop_budget: int | None = None

    def __post_init__(self) -> None:
        require(self.max_retries >= 0, "max_retries must be >= 0")
        require(self.timeout > 0, "timeout must be positive")
        require(self.backoff_base >= 0, "backoff_base must be >= 0")
        require(self.backoff_factor >= 1.0, "backoff_factor must be >= 1")
        require(
            self.hop_budget is None or self.hop_budget >= 1,
            "hop_budget must be >= 1 when given",
        )

    def backoff_for(self, round_index: int) -> float:
        """Backoff seconds before retransmission round ``round_index >= 1``."""
        return self.backoff_base * self.backoff_factor ** (round_index - 1)


#: The default requester behaviour: 2 retransmission rounds, full failover.
DEFAULT_POLICY = LookupPolicy()

#: A brittle requester: one shot per hop, no failover — the ablation
#: baseline showing what retry + failover buy.
NO_RETRY_POLICY = LookupPolicy(
    max_retries=0, successor_failover=False, finger_fallback=False
)


def deliver_first(
    network: Any,
    src_id: int,
    candidates: Sequence[tuple[int, Any]],
    policy: LookupPolicy,
    on_drop: Callable[[int, int], None] | None = None,
) -> tuple[Any, int, int]:
    """Deliver one message to the first reachable candidate.

    ``candidates`` is an ordered ``(dst_id, node)`` preference list.  The
    preferred candidate is retried up to ``max_retries`` times (with
    backoff accounting) before the requester fails over to the next one —
    transient loss is absorbed by retransmission, persistent
    unreachability by failover.  Dropped messages count as timeouts.

    ``on_drop(dst_id, attempt)`` — when given — observes every failed
    delivery attempt (the hop-level tracer sources its "drop" annotations
    from here, so annotations reflect the injector's actual decisions).

    Returns ``(node, retries_used, skipped)`` where ``skipped`` is the
    number of candidates given up on before ``node`` answered, or
    ``(None, retries_used, len(candidates))`` when every candidate failed.

    With no injector active this is exact-identity: the first candidate
    wins, nothing is counted, no randomness is drawn.
    """
    if not candidates:
        return None, 0, 0
    if not network.faults_active:
        return candidates[0][1], 0, 0
    retries_used = 0
    for position, (dst_id, node) in enumerate(candidates):
        for attempt in range(policy.max_retries + 1):
            if attempt:
                retries_used += 1
                network.count_retry(backoff=policy.backoff_for(attempt))
            if network.try_deliver(src_id, dst_id):
                return node, retries_used, position
            network.count_timeout(policy.timeout)
            if on_drop is not None:
                on_drop(dst_id, attempt)
    return None, retries_used, len(candidates)
