"""Message and hop accounting for the simulated overlay network.

The paper's efficiency metrics are *logical hops* (routing messages
traversed by a lookup) and *visited nodes* (nodes that receive a query and
check their directory).  :class:`SimulatedNetwork` is the single place
where every overlay message is counted, so the experiment harness can read
totals without each overlay keeping its own books.

A simple latency model (constant per-hop delay) is included for the
event-driven churn experiments; the static experiments only use the
counters.

Fault injection plugs in here: when a :class:`~repro.sim.faults.FaultInjector`
is attached, ``try_deliver`` consults it per message and the drop/timeout/
retry counters record what the requesters experienced.  With no injector
attached (the default) nothing changes — the network stays perfectly
reliable and the extra counters stay zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.faults import FaultInjector
from repro.sim.latency import LatencyModel, RttBook
from repro.utils.validation import require_positive

__all__ = ["MessageStats", "SimulatedNetwork", "publish_stats"]


def publish_stats(stats: "MessageStats", registry, prefix: str = "network") -> None:
    """Accumulate ``stats`` into a :class:`~repro.sim.metrics.MetricsRegistry`.

    Each :class:`MessageStats` field becomes the counter ``<prefix>.<field>``.
    The requester-side fault accounting (retries, timeouts, backoff waits)
    otherwise stays trapped in the network object; publishing it lets the
    experiment report tables show what the lookup policy actually paid.
    Pass a ``delta_since`` result to publish one measurement window.

    Every field is published, including zero values: a window with zero
    retries must yield a ``<prefix>.retries`` counter that *reads* 0, so
    report tables can distinguish "measured zero" from "never measured".
    """
    for field_name, value in stats.as_dict().items():
        registry.incr(f"{prefix}.{field_name}", value)


@dataclass
class MessageStats:
    """Running totals of overlay traffic."""

    messages: int = 0
    routing_hops: int = 0
    directory_checks: int = 0
    maintenance_messages: int = 0
    dropped: int = 0
    timeouts: int = 0
    retries: int = 0
    walk_truncations: int = 0
    timeout_seconds: float = 0.0
    backoff_seconds: float = 0.0
    #: Sum of sampled per-message latencies of delivered messages (only
    #: accumulated while a :class:`~repro.sim.latency.LatencyModel` is
    #: attached — zero otherwise).
    latency_seconds: float = 0.0
    #: Hedged (backup) requests fired / won by the backup / discarded
    #: because the primary answered first.
    hedges: int = 0
    hedges_won: int = 0
    hedges_cancelled: int = 0

    def as_dict(self) -> dict[str, float]:
        """Flat field → value mapping (counter publication and CSV rows)."""
        return {
            "messages": self.messages,
            "routing_hops": self.routing_hops,
            "directory_checks": self.directory_checks,
            "maintenance_messages": self.maintenance_messages,
            "dropped": self.dropped,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "walk_truncations": self.walk_truncations,
            "timeout_seconds": self.timeout_seconds,
            "backoff_seconds": self.backoff_seconds,
            "latency_seconds": self.latency_seconds,
            "hedges": self.hedges,
            "hedges_won": self.hedges_won,
            "hedges_cancelled": self.hedges_cancelled,
        }

    def snapshot(self) -> "MessageStats":
        """An independent copy of the current totals."""
        return MessageStats(
            messages=self.messages,
            routing_hops=self.routing_hops,
            directory_checks=self.directory_checks,
            maintenance_messages=self.maintenance_messages,
            dropped=self.dropped,
            timeouts=self.timeouts,
            retries=self.retries,
            walk_truncations=self.walk_truncations,
            timeout_seconds=self.timeout_seconds,
            backoff_seconds=self.backoff_seconds,
            latency_seconds=self.latency_seconds,
            hedges=self.hedges,
            hedges_won=self.hedges_won,
            hedges_cancelled=self.hedges_cancelled,
        )

    def delta_since(self, earlier: "MessageStats") -> "MessageStats":
        """Totals accumulated since ``earlier`` was snapshotted."""
        return MessageStats(
            messages=self.messages - earlier.messages,
            routing_hops=self.routing_hops - earlier.routing_hops,
            directory_checks=self.directory_checks - earlier.directory_checks,
            maintenance_messages=self.maintenance_messages - earlier.maintenance_messages,
            dropped=self.dropped - earlier.dropped,
            timeouts=self.timeouts - earlier.timeouts,
            retries=self.retries - earlier.retries,
            walk_truncations=self.walk_truncations - earlier.walk_truncations,
            timeout_seconds=self.timeout_seconds - earlier.timeout_seconds,
            backoff_seconds=self.backoff_seconds - earlier.backoff_seconds,
            latency_seconds=self.latency_seconds - earlier.latency_seconds,
            hedges=self.hedges - earlier.hedges,
            hedges_won=self.hedges_won - earlier.hedges_won,
            hedges_cancelled=self.hedges_cancelled - earlier.hedges_cancelled,
        )


@dataclass
class SimulatedNetwork:
    """Hop/message accounting plus a constant-latency model.

    Parameters
    ----------
    hop_latency:
        Simulated one-way latency of a single overlay hop, in seconds.
        Only consumed by the event-driven churn harness.
    faults:
        Optional :class:`~repro.sim.faults.FaultInjector` consulted per
        message by ``try_deliver``.  ``None`` (the default) keeps the
        network perfectly reliable.
    latency_model:
        Optional :class:`~repro.sim.latency.LatencyModel` sampled once per
        delivered message on the fault path.  ``None`` (the default) keeps
        the constant-``hop_latency`` world: no randomness is drawn, the
        latency counters stay zero and every fast path is byte-identical.
    """

    hop_latency: float = 0.05
    stats: MessageStats = field(default_factory=MessageStats)
    faults: FaultInjector | None = None
    latency_model: LatencyModel | None = None
    #: Latency of the most recent delivered message (fault path only,
    #: meaningful only while a latency model is attached).
    last_latency: float = 0.0
    #: Requester-observed elapsed seconds accumulated by
    #: :func:`~repro.sim.faults.deliver_first` — response waits, timeout
    #: windows and backoffs.  Services snapshot/delta it per query.
    route_clock: float = 0.0

    def __post_init__(self) -> None:
        require_positive(self.hop_latency, "hop_latency")
        self._rtt = RttBook()

    @property
    def faults_active(self) -> bool:
        """Whether an attached injector is currently injecting anything."""
        return self.faults is not None and self.faults.active

    @property
    def rtt(self) -> RttBook:
        """The per-requester RTT estimators (adaptive timeouts, hedging)."""
        return self._rtt

    def rtt_for(self, src_id):
        """The :class:`~repro.sim.latency.RttBook` view of requester
        ``src_id`` (created on first use)."""
        return self._rtt.for_requester(src_id)

    def reset_rtt(self) -> None:
        """Drop all RTT estimator state (fresh measurement window)."""
        self._rtt.reset()

    def sample_latency(self, src: int | None, dst: int | None) -> float:
        """One message's latency under the attached model and fail-slow
        faults: a model draw scaled by the injector's ``latency_factor``
        (slow nodes, degraded links).  Accumulates ``latency_seconds``."""
        latency = self.latency_model.sample()
        if self.faults is not None:
            latency *= self.faults.latency_factor(src, dst, self.latency_model.rng)
        self.last_latency = latency
        self.stats.latency_seconds += latency
        return latency

    def try_deliver(self, src: int | None = None, dst: int | None = None) -> bool:
        """Attempt one ``src → dst`` message against the fault injector.

        Returns ``True`` when the message gets through (always, with no
        injector attached).  A dropped message counts toward ``messages``
        (it was sent and cost bandwidth) and toward ``dropped``, but not
        toward ``routing_hops`` — hop accounting stays with the actual
        routing movement so successful paths cost exactly what they did
        before faults existed.

        With a latency model attached, every *delivered* message gets a
        per-message latency sample (readable as :attr:`last_latency`);
        without one, nothing latency-related happens.
        """
        if not self.faults_active:
            return True
        if self.faults.delivered(src, dst):
            if self.latency_model is not None:
                self.sample_latency(src, dst)
            return True
        self.stats.messages += 1
        self.stats.dropped += 1
        return False

    def count_timeout(self, seconds: float = 0.0) -> None:
        """Record one requester-observed timeout (a message never answered)."""
        self.stats.timeouts += 1
        self.stats.timeout_seconds += seconds

    def count_retry(self, backoff: float = 0.0) -> None:
        """Record one retransmission round and its backoff wait."""
        self.stats.retries += 1
        self.stats.backoff_seconds += backoff

    def count_walk_truncation(self, n: int = 1) -> None:
        """Record ``n`` range walks cut short (dead chain / safety valve)."""
        self.stats.walk_truncations += n

    def count_hedge(self, won: bool, delivered: bool = True) -> None:
        """Record one hedged (backup) request.

        ``won`` — the backup answered before the primary.  ``delivered``
        — the backup survived the fault plan; a dropped backup was
        already counted by ``try_deliver``, so only delivered backups add
        to ``messages`` here (hedge bandwidth overhead = ``hedges``).
        """
        self.stats.hedges += 1
        if delivered:
            self.stats.messages += 1
        if won:
            self.stats.hedges_won += 1
        else:
            self.stats.hedges_cancelled += 1

    def count_hop(self, n: int = 1) -> None:
        """Record ``n`` routing hops (each hop is one message)."""
        self.stats.routing_hops += n
        self.stats.messages += n

    def count_directory_check(self, n: int = 1) -> None:
        """Record ``n`` visited nodes (query received, directory checked)."""
        self.stats.directory_checks += n

    def count_maintenance(self, n: int = 1) -> None:
        """Record ``n`` maintenance messages (stabilize, leaf-set repair…)."""
        self.stats.maintenance_messages += n
        self.stats.messages += n

    def publish_stats(self, registry, prefix: str = "network") -> None:
        """Publish the running totals into a metrics registry (see
        :func:`publish_stats`)."""
        publish_stats(self.stats, registry, prefix)

    def latency_of(self, hops: int) -> float:
        """Simulated completion latency of a ``hops``-hop route."""
        return hops * self.hop_latency

    def reset(self) -> None:
        """Zero all counters (RTT estimators are kept; see
        :meth:`reset_rtt`)."""
        self.stats = MessageStats()
        self.route_clock = 0.0
        self.last_latency = 0.0
