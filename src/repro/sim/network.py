"""Message and hop accounting for the simulated overlay network.

The paper's efficiency metrics are *logical hops* (routing messages
traversed by a lookup) and *visited nodes* (nodes that receive a query and
check their directory).  :class:`SimulatedNetwork` is the single place
where every overlay message is counted, so the experiment harness can read
totals without each overlay keeping its own books.

A simple latency model (constant per-hop delay) is included for the
event-driven churn experiments; the static experiments only use the
counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import require_positive

__all__ = ["MessageStats", "SimulatedNetwork"]


@dataclass
class MessageStats:
    """Running totals of overlay traffic."""

    messages: int = 0
    routing_hops: int = 0
    directory_checks: int = 0
    maintenance_messages: int = 0

    def snapshot(self) -> "MessageStats":
        """An independent copy of the current totals."""
        return MessageStats(
            messages=self.messages,
            routing_hops=self.routing_hops,
            directory_checks=self.directory_checks,
            maintenance_messages=self.maintenance_messages,
        )

    def delta_since(self, earlier: "MessageStats") -> "MessageStats":
        """Totals accumulated since ``earlier`` was snapshotted."""
        return MessageStats(
            messages=self.messages - earlier.messages,
            routing_hops=self.routing_hops - earlier.routing_hops,
            directory_checks=self.directory_checks - earlier.directory_checks,
            maintenance_messages=self.maintenance_messages - earlier.maintenance_messages,
        )


@dataclass
class SimulatedNetwork:
    """Hop/message accounting plus a constant-latency model.

    Parameters
    ----------
    hop_latency:
        Simulated one-way latency of a single overlay hop, in seconds.
        Only consumed by the event-driven churn harness.
    """

    hop_latency: float = 0.05
    stats: MessageStats = field(default_factory=MessageStats)

    def __post_init__(self) -> None:
        require_positive(self.hop_latency, "hop_latency")

    def count_hop(self, n: int = 1) -> None:
        """Record ``n`` routing hops (each hop is one message)."""
        self.stats.routing_hops += n
        self.stats.messages += n

    def count_directory_check(self, n: int = 1) -> None:
        """Record ``n`` visited nodes (query received, directory checked)."""
        self.stats.directory_checks += n

    def count_maintenance(self, n: int = 1) -> None:
        """Record ``n`` maintenance messages (stabilize, leaf-set repair…)."""
        self.stats.maintenance_messages += n
        self.stats.messages += n

    def latency_of(self, hops: int) -> float:
        """Simulated completion latency of a ``hops``-hop route."""
        return hops * self.hop_latency

    def reset(self) -> None:
        """Zero all counters."""
        self.stats = MessageStats()
