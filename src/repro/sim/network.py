"""Message and hop accounting for the simulated overlay network.

The paper's efficiency metrics are *logical hops* (routing messages
traversed by a lookup) and *visited nodes* (nodes that receive a query and
check their directory).  :class:`SimulatedNetwork` is the single place
where every overlay message is counted, so the experiment harness can read
totals without each overlay keeping its own books.

A simple latency model (constant per-hop delay) is included for the
event-driven churn experiments; the static experiments only use the
counters.

Fault injection plugs in here: when a :class:`~repro.sim.faults.FaultInjector`
is attached, ``try_deliver`` consults it per message and the drop/timeout/
retry counters record what the requesters experienced.  With no injector
attached (the default) nothing changes — the network stays perfectly
reliable and the extra counters stay zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.faults import FaultInjector
from repro.utils.validation import require_positive

__all__ = ["MessageStats", "SimulatedNetwork", "publish_stats"]


def publish_stats(stats: "MessageStats", registry, prefix: str = "network") -> None:
    """Accumulate ``stats`` into a :class:`~repro.sim.metrics.MetricsRegistry`.

    Each :class:`MessageStats` field becomes the counter ``<prefix>.<field>``.
    The requester-side fault accounting (retries, timeouts, backoff waits)
    otherwise stays trapped in the network object; publishing it lets the
    experiment report tables show what the lookup policy actually paid.
    Pass a ``delta_since`` result to publish one measurement window.

    Every field is published, including zero values: a window with zero
    retries must yield a ``<prefix>.retries`` counter that *reads* 0, so
    report tables can distinguish "measured zero" from "never measured".
    """
    for field_name, value in stats.as_dict().items():
        registry.incr(f"{prefix}.{field_name}", value)


@dataclass
class MessageStats:
    """Running totals of overlay traffic."""

    messages: int = 0
    routing_hops: int = 0
    directory_checks: int = 0
    maintenance_messages: int = 0
    dropped: int = 0
    timeouts: int = 0
    retries: int = 0
    walk_truncations: int = 0
    timeout_seconds: float = 0.0
    backoff_seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        """Flat field → value mapping (counter publication and CSV rows)."""
        return {
            "messages": self.messages,
            "routing_hops": self.routing_hops,
            "directory_checks": self.directory_checks,
            "maintenance_messages": self.maintenance_messages,
            "dropped": self.dropped,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "walk_truncations": self.walk_truncations,
            "timeout_seconds": self.timeout_seconds,
            "backoff_seconds": self.backoff_seconds,
        }

    def snapshot(self) -> "MessageStats":
        """An independent copy of the current totals."""
        return MessageStats(
            messages=self.messages,
            routing_hops=self.routing_hops,
            directory_checks=self.directory_checks,
            maintenance_messages=self.maintenance_messages,
            dropped=self.dropped,
            timeouts=self.timeouts,
            retries=self.retries,
            walk_truncations=self.walk_truncations,
            timeout_seconds=self.timeout_seconds,
            backoff_seconds=self.backoff_seconds,
        )

    def delta_since(self, earlier: "MessageStats") -> "MessageStats":
        """Totals accumulated since ``earlier`` was snapshotted."""
        return MessageStats(
            messages=self.messages - earlier.messages,
            routing_hops=self.routing_hops - earlier.routing_hops,
            directory_checks=self.directory_checks - earlier.directory_checks,
            maintenance_messages=self.maintenance_messages - earlier.maintenance_messages,
            dropped=self.dropped - earlier.dropped,
            timeouts=self.timeouts - earlier.timeouts,
            retries=self.retries - earlier.retries,
            walk_truncations=self.walk_truncations - earlier.walk_truncations,
            timeout_seconds=self.timeout_seconds - earlier.timeout_seconds,
            backoff_seconds=self.backoff_seconds - earlier.backoff_seconds,
        )


@dataclass
class SimulatedNetwork:
    """Hop/message accounting plus a constant-latency model.

    Parameters
    ----------
    hop_latency:
        Simulated one-way latency of a single overlay hop, in seconds.
        Only consumed by the event-driven churn harness.
    faults:
        Optional :class:`~repro.sim.faults.FaultInjector` consulted per
        message by ``try_deliver``.  ``None`` (the default) keeps the
        network perfectly reliable.
    """

    hop_latency: float = 0.05
    stats: MessageStats = field(default_factory=MessageStats)
    faults: FaultInjector | None = None

    def __post_init__(self) -> None:
        require_positive(self.hop_latency, "hop_latency")

    @property
    def faults_active(self) -> bool:
        """Whether an attached injector is currently injecting anything."""
        return self.faults is not None and self.faults.active

    def try_deliver(self, src: int | None = None, dst: int | None = None) -> bool:
        """Attempt one ``src → dst`` message against the fault injector.

        Returns ``True`` when the message gets through (always, with no
        injector attached).  A dropped message counts toward ``messages``
        (it was sent and cost bandwidth) and toward ``dropped``, but not
        toward ``routing_hops`` — hop accounting stays with the actual
        routing movement so successful paths cost exactly what they did
        before faults existed.
        """
        if not self.faults_active:
            return True
        if self.faults.delivered(src, dst):
            return True
        self.stats.messages += 1
        self.stats.dropped += 1
        return False

    def count_timeout(self, seconds: float = 0.0) -> None:
        """Record one requester-observed timeout (a message never answered)."""
        self.stats.timeouts += 1
        self.stats.timeout_seconds += seconds

    def count_retry(self, backoff: float = 0.0) -> None:
        """Record one retransmission round and its backoff wait."""
        self.stats.retries += 1
        self.stats.backoff_seconds += backoff

    def count_walk_truncation(self, n: int = 1) -> None:
        """Record ``n`` range walks cut short (dead chain / safety valve)."""
        self.stats.walk_truncations += n

    def count_hop(self, n: int = 1) -> None:
        """Record ``n`` routing hops (each hop is one message)."""
        self.stats.routing_hops += n
        self.stats.messages += n

    def count_directory_check(self, n: int = 1) -> None:
        """Record ``n`` visited nodes (query received, directory checked)."""
        self.stats.directory_checks += n

    def count_maintenance(self, n: int = 1) -> None:
        """Record ``n`` maintenance messages (stabilize, leaf-set repair…)."""
        self.stats.maintenance_messages += n
        self.stats.messages += n

    def publish_stats(self, registry, prefix: str = "network") -> None:
        """Publish the running totals into a metrics registry (see
        :func:`publish_stats`)."""
        publish_stats(self.stats, registry, prefix)

    def latency_of(self, hops: int) -> float:
        """Simulated completion latency of a ``hops``-hop route."""
        return hops * self.hop_latency

    def reset(self) -> None:
        """Zero all counters."""
        self.stats = MessageStats()
