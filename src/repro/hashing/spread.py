"""Collision-free attribute placement.

The paper's model assigns each attribute its *own* location: LORM "lets
each cluster be responsible for the information of a attribute", and
Section V observes that with SWORD/MAAN "the information is accumulated in
200 nodes among 2048 nodes" — one distinct root per attribute.  Plain
consistent hashing of 200 attribute names into 256 Cycloid clusters would
instead collide ~38% of clusters, fattening the directory tail well beyond
the paper's "slightly higher than the analysis".

:func:`spread_attribute_ids` reproduces the paper's model deterministically:
attributes get their consistent-hash ID, and collisions are resolved by
linear probing upward (mod the space).  The globally-known attribute list
makes this implementable in a real deployment (every node derives the same
assignment from the schema).  The plain-hash behaviour remains available
via ``attr_placement="hash"`` on every service (exercised by tests).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.hashing.consistent import ConsistentHash
from repro.utils.validation import require

__all__ = ["spread_attribute_ids"]


def spread_attribute_ids(
    names: Iterable[str], hash_fn: ConsistentHash
) -> dict[str, int]:
    """Assign each attribute a distinct ID in ``hash_fn``'s space.

    Deterministic: names are processed in sorted order; each gets
    ``H(name)``, probing linearly upward past already-taken IDs.  Requires
    the space to be at least as large as the attribute count.

    Examples
    --------
    >>> ids = spread_attribute_ids(["cpu", "mem", "disk"], ConsistentHash(4))
    >>> len(set(ids.values())) == 3
    True
    """
    ordered = sorted(set(names))
    size = hash_fn.space.size
    require(
        len(ordered) <= size,
        f"cannot spread {len(ordered)} attributes over {size} IDs",
    )
    taken: set[int] = set()
    assignment: dict[str, int] = {}
    for name in ordered:
        candidate = hash_fn(name)
        while candidate in taken:
            candidate = (candidate + 1) % size
        taken.add(candidate)
        assignment[name] = candidate
    return assignment
