"""Locality-preserving hashing ``ℋ`` for attribute values.

A locality-preserving hash (LPH) maps an attribute's value domain
``[lo, hi]`` onto an integer ID space ``[0, size)`` such that order is
preserved: ``v1 <= v2  ⇒  ℋ(v1) <= ℋ(v2)``.  This is the construction from
MAAN (Cai et al., 2004) that the paper adopts for all value dimensions; it
makes "walk the successors from ℋ(π1) to ℋ(π2)" a correct range query
(Proposition 3.1).

The target space is parameterised by *size*, not bits, because LORM hashes
values onto Cycloid's cyclic-index space ``[0, d)`` — and ``d`` need not be
a power of two — while Mercury/MAAN hash onto a ``2**bits`` Chord ring.

Two flavours are provided:

:class:`LinearLocalityHash`
    The textbook affine map.  Perfectly order-preserving but inherits any
    skew in the value distribution: Bounded-Pareto values pile up at the low
    end of the ID space.

:class:`CdfLocalityHash`
    Calibrated against the value distribution's CDF (given either
    analytically or as an empirical sample), so hashed values are
    near-uniform on the ID space while order is still preserved.  This is
    MAAN's "uniform locality preserving hashing" refinement and is the
    default in the paper-scale experiments; the linear/CDF choice is one of
    the ablation benches (see DESIGN.md §4).
"""

from __future__ import annotations

import bisect
from abc import ABC, abstractmethod
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.utils.validation import require

__all__ = ["LocalityPreservingHash", "LinearLocalityHash", "CdfLocalityHash"]


class LocalityPreservingHash(ABC):
    """Order-preserving map from a numeric value domain to ``[0, size)``."""

    #: Number of identifiers in the target space.
    size: int
    #: Inclusive value domain handled by this hash.
    lo: float
    hi: float

    @abstractmethod
    def __call__(self, value: float) -> int:
        """Hash ``value`` (clamped to ``[lo, hi]``) into ``[0, size)``."""

    def _clamp(self, value: float) -> float:
        if value < self.lo:
            return self.lo
        if value > self.hi:
            return self.hi
        return value

    def _bucket(self, fraction: float) -> int:
        fraction = min(max(fraction, 0.0), 1.0)
        return min(int(fraction * self.size), self.size - 1)

    def hash_range(self, v1: float, v2: float) -> tuple[int, int]:
        """Hash an inclusive value range, normalising endpoint order."""
        if v1 > v2:
            v1, v2 = v2, v1
        return self(v1), self(v2)


@dataclass(frozen=True)
class LinearLocalityHash(LocalityPreservingHash):
    """Affine order-preserving map of ``[lo, hi]`` onto ``[0, size)``.

    Examples
    --------
    >>> h = LinearLocalityHash(size=8, lo=0.0, hi=100.0)
    >>> h(0.0), h(50.0), h(100.0)
    (0, 4, 7)
    """

    size: int
    lo: float
    hi: float

    def __post_init__(self) -> None:
        require(self.size >= 1, f"size must be >= 1, got {self.size}")
        require(self.hi > self.lo, f"need hi > lo, got [{self.lo}, {self.hi}]")

    def __call__(self, value: float) -> int:
        value = self._clamp(value)
        return self._bucket((value - self.lo) / (self.hi - self.lo))


@dataclass(frozen=True)
class CdfLocalityHash(LocalityPreservingHash):
    """CDF-calibrated order-preserving map (MAAN's *uniform* LPH).

    ``ℋ(v) = floor(F(v) * size)`` where ``F`` is the value distribution's
    CDF.  Because any CDF is non-decreasing, order is preserved; because
    ``F(V)`` is uniform for ``V ~ F``, hashed values are uniform on the ID
    space, which balances directory load under skewed (e.g. Bounded-Pareto)
    value distributions.

    Construct either from an analytic CDF (``cdf=``) or from an empirical
    value sample (:meth:`from_samples`), in which case the empirical CDF
    with linear interpolation between order statistics is used.
    """

    size: int
    lo: float
    hi: float
    cdf: Callable[[float], float]
    _knots: tuple[float, ...] | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        require(self.size >= 1, f"size must be >= 1, got {self.size}")
        require(self.hi > self.lo, f"need hi > lo, got [{self.lo}, {self.hi}]")

    @classmethod
    def from_samples(
        cls,
        size: int,
        samples: Sequence[float],
        lo: float | None = None,
        hi: float | None = None,
    ) -> "CdfLocalityHash":
        """Build from an empirical value sample.

        The sample's order statistics become interpolation knots of the
        empirical CDF; ``lo``/``hi`` default to the sample extremes.
        """
        require(len(samples) >= 2, "need at least two samples to calibrate a CDF")
        knots = tuple(sorted(float(s) for s in samples))
        lo = knots[0] if lo is None else lo
        hi = knots[-1] if hi is None else hi

        def empirical_cdf(value: float, _knots: tuple[float, ...] = knots) -> float:
            n = len(_knots)
            if value <= _knots[0]:
                return 0.0
            if value >= _knots[-1]:
                return 1.0
            j = bisect.bisect_right(_knots, value)
            left, right = _knots[j - 1], _knots[j]
            frac = 0.0 if right == left else (value - left) / (right - left)
            return (j - 1 + frac) / (n - 1)

        return cls(size=size, lo=lo, hi=hi, cdf=empirical_cdf, _knots=knots)

    def __call__(self, value: float) -> int:
        value = self._clamp(value)
        return self._bucket(self.cdf(value))
