"""Hash functions used by every discovery approach.

``H`` — :class:`~repro.hashing.consistent.ConsistentHash` — maps attribute
names (and, in SWORD/MAAN, attribute strings) uniformly onto a DHT ID space
per Karger et al.'s consistent hashing.

``ℋ`` — the locality-preserving hashes in :mod:`repro.hashing.locality` —
map attribute *values* onto an ID space while preserving order, which is
what makes successor-walk range queries correct (MAAN's construction, also
used by Mercury hubs and by LORM's cyclic-index dimension).
"""

from repro.hashing.consistent import ConsistentHash
from repro.hashing.locality import (
    CdfLocalityHash,
    LinearLocalityHash,
    LocalityPreservingHash,
)

__all__ = [
    "CdfLocalityHash",
    "ConsistentHash",
    "LinearLocalityHash",
    "LocalityPreservingHash",
]
