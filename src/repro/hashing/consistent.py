"""Consistent hashing ``H`` (Karger et al., STOC 1997).

Maps arbitrary string/bytes keys uniformly onto an ``m``-bit circular ID
space via SHA-1, exactly as Chord assigns keys and node identifiers.  The
paper uses ``H`` to hash *attribute names* (LORM's cubical index, SWORD's
and MAAN's attribute root, Mercury's hub selection).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.overlay.idspace import IdSpace

__all__ = ["ConsistentHash"]


@dataclass(frozen=True)
class ConsistentHash:
    """SHA-1 based uniform hash into an ``bits``-wide ID space.

    Deterministic across processes and platforms (unlike built-in ``hash``).
    An optional ``salt`` derives independent hash functions from the same
    family, used when one experiment needs several uncorrelated mappings
    (e.g. MAAN's attribute map vs. SWORD's).

    Examples
    --------
    >>> h = ConsistentHash(8)
    >>> 0 <= h("cpu-speed") < 256
    True
    >>> h("cpu-speed") == ConsistentHash(8)("cpu-speed")
    True
    """

    bits: int
    salt: str = ""
    _space: IdSpace = field(init=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_space", IdSpace(self.bits))

    @property
    def space(self) -> IdSpace:
        """The target :class:`IdSpace`."""
        return self._space

    def __call__(self, key: str | bytes) -> int:
        """Hash ``key`` to an integer in ``[0, 2**bits)``."""
        if isinstance(key, str):
            key = key.encode("utf-8")
        digest = hashlib.sha1(self.salt.encode("utf-8") + key).digest()
        # SHA-1 gives 160 bits; take the top `bits` of them.
        value = int.from_bytes(digest, "big")
        return value >> (160 - self.bits)

    def digest_full(self, key: str | bytes) -> int:
        """Full 160-bit SHA-1 value (used by tests for uniformity checks)."""
        if isinstance(key, str):
            key = key.encode("utf-8")
        return int.from_bytes(hashlib.sha1(self.salt.encode("utf-8") + key).digest(), "big")
