"""repro — reproduction of Shen & Xu (ICPP 2009).

"Performance Analysis of DHT Algorithms for Range-Query and Multi-Attribute
Resource Discovery in Grids".

The package provides:

* :mod:`repro.overlay` — Chord and Cycloid DHT overlay substrates with hop
  accounting, churn handling and self-organization.
* :mod:`repro.core` — the LORM resource-discovery approach (the paper's
  primary contribution) built on Cycloid.
* :mod:`repro.baselines` — Mercury (multi-DHT), SWORD (single-DHT
  centralized) and MAAN (single-DHT decentralized) comparators on Chord.
* :mod:`repro.hashing` — consistent hashing ``H`` and locality-preserving
  hashing (LPH) ``ℋ``.
* :mod:`repro.sim` — discrete-event engine, Poisson churn, metrics.
* :mod:`repro.workloads` — Bounded-Pareto grid resource/query generators.
* :mod:`repro.analysis` — closed forms of Theorems 4.1–4.10.
* :mod:`repro.experiments` — regenerates every figure of the paper
  (Figures 3a–d, 4a–b, 5a–b, 6a–b).

Quickstart::

    from repro import LormService, GridWorkload, ExperimentConfig

    cfg = ExperimentConfig(dimension=8, num_attributes=20, infos_per_attribute=50)
    service = LormService.build(cfg.dimension, seed=1)
    workload = GridWorkload.from_config(cfg, seed=2)
    for info in workload.resource_infos():
        service.register(info)
    result = service.multi_query(workload.sample_multi_query(num_attributes=3))
    print(result.matches, result.visited_nodes)
"""

from repro.baselines.base import DiscoveryService
from repro.baselines.maan import MaanService
from repro.baselines.mercury import MercuryService
from repro.baselines.sword import SwordService
from repro.core.lorm import LormService
from repro.core.resource import (
    AttributeConstraint,
    MultiAttributeQuery,
    Query,
    ResourceInfo,
)
from repro.experiments.config import ExperimentConfig
from repro.hashing.consistent import ConsistentHash
from repro.hashing.locality import CdfLocalityHash, LinearLocalityHash
from repro.overlay.chord import ChordRing
from repro.overlay.cycloid import CycloidOverlay
from repro.workloads.generator import GridWorkload

__version__ = "1.0.0"

__all__ = [
    "AttributeConstraint",
    "CdfLocalityHash",
    "ChordRing",
    "ConsistentHash",
    "CycloidOverlay",
    "DiscoveryService",
    "ExperimentConfig",
    "GridWorkload",
    "LinearLocalityHash",
    "LormService",
    "MaanService",
    "MercuryService",
    "MultiAttributeQuery",
    "Query",
    "ResourceInfo",
    "SwordService",
    "__version__",
]
