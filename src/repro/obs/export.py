"""Deterministic exporters for query span trees.

Three renderings of a :class:`~repro.obs.spans.QueryTrace`:

* :func:`traces_to_jsonl` — one JSON object per span, depth-first, keys
  sorted and compactly separated.  The golden-trace regression format.
* :func:`traces_to_chrome` — Chrome ``trace_event`` JSON (open the output
  in ``chrome://tracing`` or Perfetto): spans become complete ("X")
  events, fault annotations become instant ("i") events.
* :func:`render_tree` — indented ASCII tree for terminals.

All three are pure functions of the trace: no wall-clock reads, no
environment lookups, stable key ordering — running the same seeded replay
twice yields byte-identical output (asserted in CI).
"""

from __future__ import annotations

import json
from enum import Enum
from typing import Any

from repro.obs.spans import QueryTrace, Span

__all__ = [
    "span_records",
    "trace_to_jsonl",
    "traces_to_jsonl",
    "traces_to_chrome",
    "render_tree",
]


def _jsonable(value: Any) -> Any:
    """A JSON-safe copy: enums by value, tuples as lists, other objects by str."""
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, bool) or value is None or isinstance(value, (int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    return str(value)


def _dumps(obj: Any) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def span_records(trace: QueryTrace) -> list[dict[str, Any]]:
    """Flat per-span dicts of ``trace``, depth-first, with parent links."""
    records: list[dict[str, Any]] = []

    def visit(span: Span, parent_id: int | None) -> None:
        records.append(
            {
                "trace": trace.trace_id,
                "span": span.span_id,
                "parent": parent_id,
                "kind": span.kind.value,
                "name": span.name,
                "start": span.start,
                "end": span.end,
                "attrs": _jsonable(span.attrs),
                "events": [
                    {"time": ev.time, "kind": ev.kind, "detail": _jsonable(ev.detail)}
                    for ev in span.events
                ],
            }
        )
        for child in span.children:
            visit(child, span.span_id)

    visit(trace.root, None)
    return records


def trace_to_jsonl(trace: QueryTrace) -> str:
    """One trace as JSONL (no trailing newline)."""
    return "\n".join(_dumps(record) for record in span_records(trace))


def traces_to_jsonl(traces: list[QueryTrace]) -> str:
    """Many traces as JSONL, trailing newline included when non-empty."""
    if not traces:
        return ""
    return "\n".join(trace_to_jsonl(trace) for trace in traces) + "\n"


def traces_to_chrome(traces: list[QueryTrace]) -> str:
    """Chrome ``trace_event`` JSON: spans as "X" events (one ``tid`` per
    trace), fault annotations as instant "i" events."""
    events: list[dict[str, Any]] = []
    for trace in traces:
        for span in trace.root.walk():
            events.append(
                {
                    "ph": "X",
                    "pid": 0,
                    "tid": trace.trace_id,
                    "name": span.name,
                    "cat": span.kind.value,
                    "ts": span.start,
                    "dur": max(span.end - span.start, 0),
                    "args": _jsonable({"span": span.span_id, **span.attrs}),
                }
            )
            for ev in span.events:
                events.append(
                    {
                        "ph": "i",
                        "pid": 0,
                        "tid": trace.trace_id,
                        "name": ev.kind,
                        "cat": "fault",
                        "ts": ev.time,
                        "s": "t",
                        "args": _jsonable(ev.detail),
                    }
                )
    return _dumps({"displayTimeUnit": "ms", "traceEvents": events})


def _fmt(value: Any) -> str:
    return _dumps(_jsonable(value))


def render_tree(trace: QueryTrace) -> str:
    """Indented human-readable rendering of one trace."""
    lines: list[str] = []

    def visit(span: Span, depth: int) -> None:
        pad = "  " * depth
        attrs = " ".join(f"{k}={_fmt(v)}" for k, v in sorted(span.attrs.items()))
        header = f"{pad}{span.kind.value} {span.name} [{span.start}..{span.end}]"
        lines.append(f"{header} {attrs}".rstrip())
        for ev in span.events:
            detail = " ".join(f"{k}={_fmt(v)}" for k, v in sorted(ev.detail.items()))
            lines.append(f"{pad}  ! {ev.kind} @{ev.time} {detail}".rstrip())
        for child in span.children:
            visit(child, depth + 1)

    visit(trace.root, 0)
    return "\n".join(lines)
