"""Seeded query replay with tracing on — the engine behind ``repro trace``.

Builds *one* discovery system at a small deterministic scale
(:data:`TRACE_CONFIG`, the same shape the differential harness uses),
loads the seeded workload with direct (unrouted) placement, attaches a
:class:`~repro.obs.spans.QueryTracer`, and replays a deterministic
multi-attribute query stream.  Everything downstream of the seed is pure,
so two replays produce identical span trees — the property the golden
traces and the CI byte-identity check rely on.
"""

from __future__ import annotations

from repro.baselines.maan import MaanService
from repro.baselines.mercury import MercuryService
from repro.baselines.sword import SwordService
from repro.core.lorm import LormService
from repro.experiments.common import build_workload
from repro.experiments.config import SMOKE_CONFIG, ExperimentConfig
from repro.obs.spans import QueryTracer
from repro.utils.validation import require
from repro.workloads.generator import GridWorkload, QueryKind

__all__ = ["TRACE_CONFIG", "SYSTEMS", "build_traced_service", "replay_queries"]

#: Replay scale: small enough for sub-second builds, big enough that
#: lookups take several hops and range walks visit several nodes.
TRACE_CONFIG = SMOKE_CONFIG.scaled(
    dimension=4,
    chord_bits=7,
    num_attributes=8,
    infos_per_attribute=25,
    max_query_attributes=3,
    trace=True,
)

#: CLI system slug -> service class.
SYSTEMS = {
    "lorm": LormService,
    "mercury": MercuryService,
    "sword": SwordService,
    "maan": MaanService,
}


def build_traced_service(
    system: str,
    config: ExperimentConfig | None = None,
    *,
    tracer: QueryTracer | None = None,
    replication: int = 1,
    overlay: str | None = None,
    fanout: int = 2,
) -> tuple:
    """Build one system, load the workload (unrouted), attach a tracer.

    Registration happens *before* the tracer attaches, so the returned
    tracer holds query spans only.  ``overlay``/``fanout`` select the
    routing substrate exactly as in
    :func:`repro.experiments.common.build_service` — ``None`` keeps the
    system's native substrate, byte-identical to earlier releases.
    Returns ``(service, workload, tracer)``.
    """
    slug = system.lower()
    require(slug in SYSTEMS, f"unknown system {system!r}; pick one of {sorted(SYSTEMS)}")
    config = config if config is not None else TRACE_CONFIG
    cls = SYSTEMS[slug]
    workload: GridWorkload = build_workload(config)
    schema = workload.schema
    if overlay is not None:
        from repro.experiments.common import build_service

        require(
            replication == 1,
            "overlay-substrate replay supports replication=1 only",
        )
        service = build_service(
            config, cls.name, workload=workload, register=False,
            overlay=overlay, fanout=fanout,
        )
    elif cls is LormService:
        service = cls.build_full(
            config.dimension, schema, seed=config.seed,
            lph_kind=config.lph_kind, replication=replication,
        )
    elif config.population == (1 << config.chord_bits):
        service = cls.build_full(
            config.chord_bits, schema, seed=config.seed,
            lph_kind=config.lph_kind, replication=replication,
        )
    else:
        service = cls.build(
            config.chord_bits, config.population, schema, seed=config.seed,
            lph_kind=config.lph_kind, replication=replication,
        )
    for info in workload.resource_infos():
        service.register(info, routed=False)
    if tracer is None:
        tracer = QueryTracer()
    service.attach_tracer(tracer)
    return service, workload, tracer


def replay_queries(
    system: str,
    *,
    seed: int = 0,
    num_queries: int = 1,
    num_attributes: int = 2,
    kind: QueryKind = QueryKind.RANGE,
    config: ExperimentConfig | None = None,
    loss: float = 0.0,
    replication: int = 1,
    overlay: str | None = None,
    fanout: int = 2,
) -> tuple:
    """Replay a seeded multi-attribute query stream with tracing on.

    ``loss > 0`` arms a seeded :class:`~repro.sim.faults.FaultInjector`
    first, so the resulting spans carry drop/retry/timeout/failover
    annotations.  ``overlay``/``fanout`` pick the routing substrate
    (``None`` = native).  Returns ``(service, traces)`` — one
    :class:`~repro.obs.spans.QueryTrace` per query, in stream order.
    """
    config = (config if config is not None else TRACE_CONFIG).scaled(seed=seed)
    service, workload, tracer = build_traced_service(
        system, config, replication=replication, overlay=overlay, fanout=fanout
    )
    if loss:
        from repro.sim.faults import FaultInjector, FaultPlan

        service.configure_faults(FaultInjector(FaultPlan(loss_rate=loss, seed=config.seed)))
    for mq in workload.query_stream(num_queries, num_attributes, kind, label="trace"):
        service.multi_query(mq)
    return service, list(tracer.traces)
