"""Structured span trees for routed queries.

A :class:`QueryTrace` is a tree of :class:`Span` objects mirroring how a
multi-attribute query decomposes on the wire::

    query                    one multi_query() call
    └── subquery             one per-attribute sub-query
        ├── lookup           one routed overlay lookup
        │   └── hop ...      one overlay message (src, dst, table choice)
        └── walk             one successor/cluster range walk
            └── hop ...

Each hop records the source and target node identifiers and which routing-
table entry carried the message (finger vs successor list on Chord;
cubical vs cyclic vs leaf-set edge on Cycloid).  Fault outcomes from the
:mod:`repro.sim.faults` path — drops, retransmission rounds, failover and
timeouts — attach to spans as point :class:`SpanEvent` annotations.

Timestamps come from the tracer's clock: the simulation clock when one is
supplied, otherwise a deterministic logical tick counter (one tick per
span boundary / hop / event), so replays of a seeded workload produce
byte-identical exports.

The flat :class:`~repro.sim.trace.TraceRecorder` acts as the event *sink*
underneath: when one is attached, every completed span is forwarded as a
flat :class:`~repro.sim.trace.TraceEvent`, so existing recorder-based
tooling keeps working unchanged.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Iterator

from repro.sim.trace import TraceEventKind, TraceRecorder
from repro.utils.validation import require

__all__ = ["SpanKind", "SpanEvent", "Span", "QueryTrace", "QueryTracer"]


class SpanKind(str, Enum):
    """Levels of the query span tree."""

    QUERY = "query"
    SUBQUERY = "subquery"
    REGISTER = "register"
    LOOKUP = "lookup"
    WALK = "walk"
    HOP = "hop"


#: Span level -> flat event kind used when forwarding to the recorder sink.
_SINK_KIND: dict[SpanKind, TraceEventKind] = {
    SpanKind.QUERY: TraceEventKind.QUERY,
    SpanKind.SUBQUERY: TraceEventKind.QUERY,
    SpanKind.REGISTER: TraceEventKind.STORE,
    SpanKind.LOOKUP: TraceEventKind.LOOKUP,
    SpanKind.WALK: TraceEventKind.RANGE_WALK,
    SpanKind.HOP: TraceEventKind.HOP,
}

#: Fault annotation kinds emitted by the overlays' fault paths.
FAULT_EVENT_KINDS = ("drop", "retry", "timeout", "failover", "truncated", "hedge")


@dataclass(frozen=True)
class SpanEvent:
    """A point annotation on a span (fault markers, mostly)."""

    time: float
    kind: str
    detail: dict[str, Any] = field(default_factory=dict)


@dataclass
class Span:
    """One timed operation in a query trace."""

    span_id: int
    kind: SpanKind
    name: str
    start: float
    end: float = -1.0
    attrs: dict[str, Any] = field(default_factory=dict)
    events: list[SpanEvent] = field(default_factory=list)
    children: list["Span"] = field(default_factory=list)

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first (self first)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, kind: SpanKind) -> list["Span"]:
        """All descendant spans (self included) of ``kind``."""
        return [span for span in self.walk() if span.kind is kind]

    def hop_spans(self) -> list["Span"]:
        """Direct hop children, in wire order."""
        return [child for child in self.children if child.kind is SpanKind.HOP]


@dataclass
class QueryTrace:
    """One complete span tree, rooted at the outermost traced operation."""

    trace_id: int
    root: Span

    def spans(self) -> list[Span]:
        """Every span of the tree, depth-first."""
        return list(self.root.walk())

    def spans_of(self, kind: SpanKind) -> list[Span]:
        """All spans of ``kind``, depth-first order."""
        return self.root.find(kind)

    def hop_count(self) -> int:
        """Total overlay messages captured by this trace."""
        return len(self.root.find(SpanKind.HOP))

    def events_of(self, kind: str) -> list[SpanEvent]:
        """All point annotations of ``kind`` across the whole tree."""
        return [
            event
            for span in self.root.walk()
            for event in span.events
            if event.kind == kind
        ]

    @property
    def faulted(self) -> bool:
        """True when any span carries a fault annotation."""
        return any(
            event.kind in FAULT_EVENT_KINDS
            for span in self.root.walk()
            for event in span.events
        )


class QueryTracer:
    """Builds span trees from begin/end calls on a stack.

    Parameters
    ----------
    clock:
        Callable returning the current simulation time.  When omitted, a
        deterministic logical tick counter advances by one on every span
        boundary, hop and event — replayable and machine-independent.
    recorder:
        Optional flat :class:`TraceRecorder` sink; every completed span is
        forwarded to it as one :class:`~repro.sim.trace.TraceEvent`.
    max_traces:
        Retained completed+active trace cap; the oldest trace is dropped
        (and counted in :attr:`dropped`) when exceeded.
    """

    def __init__(
        self,
        *,
        clock: Callable[[], float] | None = None,
        recorder: TraceRecorder | None = None,
        max_traces: int = 256,
    ) -> None:
        require(max_traces >= 1, "max_traces must be >= 1")
        self._clock = clock
        self._ticks = 0
        self.recorder = recorder
        self.max_traces = max_traces
        self.traces: list[QueryTrace] = []
        #: Traces evicted because :attr:`max_traces` was exceeded.
        self.dropped = 0
        self._stack: list[Span] = []
        self._next_span_id = 0
        self._next_trace_id = 0

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        self._ticks += 1
        return self._ticks

    @property
    def current(self) -> Span | None:
        """The innermost open span, or None outside any traced operation."""
        return self._stack[-1] if self._stack else None

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def begin(self, kind: SpanKind | str, name: str, **attrs: Any) -> Span:
        """Open a span; it becomes a child of the innermost open span, or
        the root of a new :class:`QueryTrace` when none is open."""
        span = Span(
            span_id=self._next_span_id,
            kind=SpanKind(kind),
            name=name,
            start=self._now(),
            attrs=attrs,
        )
        self._next_span_id += 1
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.traces.append(QueryTrace(trace_id=self._next_trace_id, root=span))
            self._next_trace_id += 1
            if len(self.traces) > self.max_traces:
                del self.traces[0]
                self.dropped += 1
        self._stack.append(span)
        return span

    def end(self) -> Span:
        """Close the innermost open span (stamping its end time) and
        forward it to the recorder sink when one is attached."""
        require(bool(self._stack), "end() without a matching begin()")
        span = self._stack.pop()
        span.end = self._now()
        if self.recorder is not None:
            self.recorder.record(
                _SINK_KIND[span.kind], span.name, span=span.span_id, **span.attrs
            )
        return span

    @contextmanager
    def span(self, kind: SpanKind | str, name: str, **attrs: Any) -> Iterator[Span]:
        """``with tracer.span(...) as s`` — begin/end bracket; an escaping
        exception is noted in ``s.attrs["error"]`` before re-raising."""
        span = self.begin(kind, name, **attrs)
        try:
            yield span
        except BaseException as exc:
            span.attrs["error"] = type(exc).__name__
            raise
        finally:
            self.end()

    # ------------------------------------------------------------------
    # Annotations
    # ------------------------------------------------------------------
    def annotate(self, **attrs: Any) -> None:
        """Merge attributes into the innermost open span."""
        require(bool(self._stack), "annotate() outside any span")
        self._stack[-1].attrs.update(attrs)

    def event(self, kind: str, span: Span | None = None, **detail: Any) -> SpanEvent:
        """Attach a point annotation to ``span`` (default: the innermost
        open span) — fault markers: drop / retry / timeout / failover."""
        target = span if span is not None else self.current
        require(target is not None, "event() outside any span")
        assert target is not None
        ev = SpanEvent(time=self._now(), kind=kind, detail=detail)
        target.events.append(ev)
        return ev

    def hop(self, src: Any, dst: Any, choice: str, **attrs: Any) -> Span:
        """Record one overlay message as an instantaneous hop span under
        the innermost open span.

        ``choice`` names the routing-table entry that carried the message
        ("finger", "successor-list", "cubical", "inside-leaf", ...).
        """
        require(bool(self._stack), "hop() outside any span")
        now = self._now()
        span = Span(
            span_id=self._next_span_id,
            kind=SpanKind.HOP,
            name="hop",
            start=now,
            end=now,
            attrs={"src": src, "dst": dst, "choice": choice, **attrs},
        )
        self._next_span_id += 1
        self._stack[-1].children.append(span)
        if self.recorder is not None:
            self.recorder.record(
                TraceEventKind.HOP, "hop", span=span.span_id, **span.attrs
            )
        return span
