"""Observability: hop-level span tracing of routed queries.

:mod:`repro.obs.spans` defines the span tree (`QueryTrace`) and the
`QueryTracer` the services and overlays emit into;
:mod:`repro.obs.export` renders traces as deterministic JSONL, Chrome
``trace_event`` JSON, or an ASCII tree; :mod:`repro.obs.replay` replays a
seeded query through one system with tracing on (the ``repro trace`` CLI).

Tracing is strictly opt-in: no tracer attached (the default everywhere)
means no spans, no clock ticks and no extra work on the routing hot paths
beyond a single ``is None`` check per lookup/walk dispatch.
"""

from repro.obs.export import (
    render_tree,
    span_records,
    trace_to_jsonl,
    traces_to_chrome,
    traces_to_jsonl,
)
from repro.obs.spans import QueryTrace, QueryTracer, Span, SpanEvent, SpanKind

__all__ = [
    "QueryTrace",
    "QueryTracer",
    "Span",
    "SpanEvent",
    "SpanKind",
    "render_tree",
    "span_records",
    "trace_to_jsonl",
    "traces_to_chrome",
    "traces_to_jsonl",
]
