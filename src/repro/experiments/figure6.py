"""Figure 6 — efficiency under churn (Section V-C).

Node joins and departures arrive as two independent Poisson processes of
rate R (the paper's example: one join and one departure every 2.5 s at
R = 0.4); R is swept over 0.1 … 0.5.  Resource requests are issued
throughout at a fixed rate until ``num_churn_requests`` have been resolved,
alternating non-range and range queries.  The paper reports:

* 6(a) — average logical hops per non-range query vs R, against the flat
  analysis lines of Theorems 4.7/4.8 (d for LORM, log2(n)/2 for
  Mercury/SWORD, log2(n) for MAAN);
* 6(b) — average visited nodes per range query vs R, against the Theorem
  4.9 lines (Mercury/MAAN overlap and are plotted once, as in the paper).

"Experiment results show that there were no failures in all test cases" —
the harness asserts the same: every query resolves.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import theorems
from repro.analysis.models import AnalysisCurve
from repro.experiments.common import build_services
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import FigureResult
from repro.sim.churn import ChurnProcess
from repro.sim.engine import Simulator
from repro.sim.trace import TraceEventKind, TraceRecorder
from repro.utils.seeding import SeedFactory
from repro.workloads.generator import QueryKind

__all__ = ["ChurnTrialResult", "run_churn_trial", "run_fig6", "run_fig6a", "run_fig6b"]

_APPROACHES = ("LORM", "Mercury", "SWORD", "MAAN")
#: Simulated seconds between periodic stabilization rounds.
_STABILIZE_PERIOD = 30.0


class ChurnTrialResult(dict):
    """Per-approach outcome of one churn rate:
    ``{approach: (mean point-query hops, mean range-query visited)}``."""

    failures: int = 0
    churn_events: int = 0


def run_churn_trial(
    config: ExperimentConfig,
    rate: float,
    *,
    attributes_per_query: int = 1,
    tracer: "TraceRecorder | None" = None,
) -> ChurnTrialResult:
    """Simulate one churn rate across all four approaches.

    Each approach runs its own event-driven simulation with an identically
    seeded churn stream: joins/leaves fire as Poisson events, a
    stabilization round runs every 30 simulated seconds, and queries are
    issued at ``config.churn_query_rate``/s, alternating non-range (hops
    metric) and range (visited-nodes metric).
    """
    bundle = build_services(config, seed_offset=int(rate * 1000))
    bundle.set_collect_matches(False)
    seeds = SeedFactory(config.seed).fork(f"fig6:{rate}")
    result = ChurnTrialResult()
    total_failures = 0
    total_churn_events = 0

    num_queries = config.num_churn_requests
    horizon = num_queries / config.churn_query_rate
    point_queries = list(
        bundle.workload.query_stream(
            (num_queries + 1) // 2, attributes_per_query, QueryKind.POINT,
            label=f"fig6-point:{rate}",
        )
    )
    range_queries = list(
        bundle.workload.query_stream(
            num_queries // 2, attributes_per_query, QueryKind.RANGE,
            label=f"fig6-range:{rate}",
        )
    )

    for service in bundle.all():
        sim = Simulator()

        def traced(action, kind, service=service):
            if tracer is None:
                return action
            def wrapped(_action=action, _kind=kind, _svc=service):
                tracer.record(_kind, _svc.name, population=_svc.num_nodes())
                return _action()
            return wrapped

        churn = ChurnProcess(rate=rate, rng=seeds.numpy(f"churn:{service.name}"))
        total_churn_events += churn.install(
            sim,
            horizon,
            on_join=traced(service.churn_join, TraceEventKind.JOIN),
            on_leave=traced(service.churn_leave, TraceEventKind.LEAVE),
        )

        stabilize_t = _STABILIZE_PERIOD
        while stabilize_t < horizon:
            sim.schedule_at(stabilize_t, service.stabilize, name="stabilize")
            stabilize_t += _STABILIZE_PERIOD

        point_hops: list[int] = []
        range_visits: list[int] = []
        failures = 0

        def make_query_action(query, sink, metric):
            def action() -> None:
                nonlocal failures
                try:
                    outcome = service.multi_query(query)
                except RuntimeError:
                    failures += 1
                    return
                sink.append(getattr(outcome, metric))
            return action

        interval = 1.0 / config.churn_query_rate
        t = interval
        point_iter = iter(point_queries)
        range_iter = iter(range_queries)
        for i in range(num_queries):
            if i % 2 == 0:
                query = next(point_iter)
                sim.schedule_at(t, make_query_action(query, point_hops, "total_hops"))
            else:
                query = next(range_iter)
                sim.schedule_at(t, make_query_action(query, range_visits, "total_visited"))
            t += interval

        sim.run()
        total_failures += failures
        result[service.name] = (
            float(np.mean(point_hops)) if point_hops else float("nan"),
            float(np.mean(range_visits)) if range_visits else float("nan"),
        )

    bundle.set_collect_matches(True)
    result.failures = total_failures
    result.churn_events = total_churn_events
    return result


def run_fig6(
    config: ExperimentConfig, *, attributes_per_query: int = 1
) -> tuple[FigureResult, FigureResult]:
    """Both panels of Figure 6 across ``config.churn_rates``."""
    rates = tuple(float(r) for r in config.churn_rates)
    trials = {
        rate: run_churn_trial(config, rate, attributes_per_query=attributes_per_query)
        for rate in rates
    }
    total_failures = sum(t.failures for t in trials.values())

    n, d, mq = config.population, config.dimension, attributes_per_query

    panel_a = FigureResult(
        figure_id="fig6a",
        title="Average hops per non-range query under churn",
        x_label="churn rate R (events/s)",
        y_label="average hops",
    )
    for name in ("MAAN", "LORM", "Mercury", "SWORD"):
        panel_a.add(
            AnalysisCurve(name, rates, tuple(trials[r][name][0] for r in rates))
        )
    for name, approach in (
        ("Analysis-MAAN", "MAAN"),
        ("Analysis-LORM", "LORM"),
        ("Analysis-SWORD/Mercury", "Mercury"),
    ):
        level = theorems.nonrange_query_hops_avg(approach, n, d, mq)
        panel_a.add(
            AnalysisCurve(name, rates, tuple(level for _ in rates),
                          derived_from="Theorems 4.7/4.8")
        )
    if total_failures == 0:
        panel_a.notes.append(
            "no failures in any test case (matches the paper's observation)"
        )
    else:
        panel_a.notes.append(
            f"WARNING: {total_failures} queries failed to resolve "
            f"(paper reports zero failures)"
        )

    panel_b = FigureResult(
        figure_id="fig6b",
        title="Average visited nodes per range query under churn",
        x_label="churn rate R (events/s)",
        y_label="average visited nodes",
        log_y=True,
    )
    for name in ("MAAN", "Mercury", "LORM", "SWORD"):
        panel_b.add(
            AnalysisCurve(name, rates, tuple(trials[r][name][1] for r in rates))
        )
    for name, approach in (
        ("Analysis-Mercury/MAAN", "Mercury"),
        ("Analysis-LORM", "LORM"),
        ("Analysis-SWORD", "SWORD"),
    ):
        level = theorems.thm49_visited_nodes_avg(approach, n, d, mq)
        panel_b.add(
            AnalysisCurve(name, rates, tuple(level for _ in rates),
                          derived_from="Theorem 4.9")
        )
    panel_b.notes.append(
        "Mercury and MAAN (and their analyses) overlap, as in the paper"
    )
    return panel_a, panel_b


def run_fig6a(config: ExperimentConfig) -> FigureResult:
    """Figure 6(a): hops under churn."""
    return run_fig6(config)[0]


def run_fig6b(config: ExperimentConfig) -> FigureResult:
    """Figure 6(b): visited nodes under churn."""
    return run_fig6(config)[1]
