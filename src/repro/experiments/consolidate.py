"""Consolidated report: every artifact in ``results/`` stitched into one
Markdown document.

``repro report --out results/`` (or :func:`write_report`) collects the
text renderings the figure runs and benches left behind and assembles
``REPORT.md``: the paper panels in order, the theorem table, the extension
figures and the ablations — a single reviewable artifact for the whole
evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

__all__ = ["ReportSection", "build_report", "write_report"]

#: Presentation order and headers; anything else found in the results
#: directory is appended under "Other artifacts".
_SECTIONS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("Figure 3 — maintenance overhead", ("fig3a", "fig3b", "fig3c", "fig3d")),
    ("Figure 4 — non-range lookup hops", ("fig4a", "fig4b")),
    ("Figure 5 — range-query visited nodes", ("fig5a", "fig5b")),
    ("Figure 6 — efficiency under churn", ("fig6a", "fig6b")),
    ("Theorem constants", ("theorems",)),
    ("Extension figures", ("latency", "staleness", "maintenance")),
    (
        "Ablations and robustness",
        (
            "ablation_lph",
            "ablation_dimension",
            "ablation_span",
            "ablation_pointers",
            "ablation_attr_placement",
            "ablation_routing",
            "failure_injection",
            "registration_cost",
        ),
    ),
)


@dataclass(frozen=True)
class ReportSection:
    """One assembled section: header plus the found artifact bodies."""

    header: str
    artifacts: tuple[tuple[str, str], ...]  # (artifact id, text body)


def _load(results_dir: Path, artifact_id: str) -> str | None:
    path = results_dir / f"{artifact_id}.txt"
    if not path.exists():
        return None
    return path.read_text().rstrip()


def build_report(results_dir: str | Path) -> list[ReportSection]:
    """Collect the available artifacts in presentation order."""
    results_dir = Path(results_dir)
    sections: list[ReportSection] = []
    claimed: set[str] = set()
    for header, artifact_ids in _SECTIONS:
        found = []
        for artifact_id in artifact_ids:
            body = _load(results_dir, artifact_id)
            claimed.add(artifact_id)
            if body is not None:
                found.append((artifact_id, body))
        if found:
            sections.append(ReportSection(header, tuple(found)))

    leftovers = sorted(
        p.stem
        for p in results_dir.glob("*.txt")
        if p.stem not in claimed and p.stem != "REPORT"
    )
    if leftovers:
        found = tuple(
            (artifact_id, _load(results_dir, artifact_id) or "")
            for artifact_id in leftovers
        )
        sections.append(ReportSection("Other artifacts", found))
    return sections


def write_report(results_dir: str | Path) -> Path:
    """Assemble ``REPORT.md`` inside ``results_dir``; returns its path."""
    results_dir = Path(results_dir)
    sections = build_report(results_dir)
    lines: list[str] = [
        "# Evaluation report",
        "",
        "Auto-assembled from the artifacts in this directory "
        "(`repro report`).  See EXPERIMENTS.md for paper-vs-measured "
        "commentary and DESIGN.md for the experiment index.",
        "",
    ]
    for section in sections:
        lines.append(f"## {section.header}")
        lines.append("")
        for artifact_id, body in section.artifacts:
            lines.append(f"### `{artifact_id}`")
            lines.append("")
            lines.append("```")
            lines.append(body)
            lines.append("```")
            lines.append("")
    path = results_dir / "REPORT.md"
    path.write_text("\n".join(lines))
    return path
