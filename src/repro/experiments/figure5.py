"""Figure 5 — visited nodes of multi-attribute *range* queries.

1000 range queries per point, attributes per query swept 1..10.  The paper
plots the total visited nodes over the 1000 queries, against the analysis
values of Theorem 4.9's proof: per query ``m(1 + n/4)`` for Mercury,
``m(2 + n/4)`` for MAAN, ``m(1 + d/4)`` for LORM, and ``m`` for SWORD —
513m / 514m / 3m / m at paper scale.  Panel (a) shows the system-wide
approaches (log-scale y; MAAN, Mercury and both analysis curves overlap),
panel (b) SWORD and LORM.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import theorems
from repro.analysis.models import AnalysisCurve
from repro.experiments.common import ServiceBundle, build_services
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import FigureResult
from repro.workloads.generator import QueryKind

__all__ = ["run_fig5", "run_fig5a", "run_fig5b", "sweep_range_visits"]

_APPROACHES = ("LORM", "Mercury", "SWORD", "MAAN")


def sweep_range_visits(
    config: ExperimentConfig, bundle: ServiceBundle | None = None
) -> dict[str, dict[int, list[int]]]:
    """Per-approach, per-attribute-count samples of visited nodes per query."""
    bundle = bundle if bundle is not None else build_services(config)
    bundle.set_collect_matches(False)  # accounting-only: the metric is visits
    try:
        samples: dict[str, dict[int, list[int]]] = {
            name: {} for name in _APPROACHES
        }
        for m_query in range(1, config.max_query_attributes + 1):
            queries = list(
                bundle.workload.query_stream(
                    config.num_range_queries, m_query, QueryKind.RANGE, label="fig5"
                )
            )
            for service in bundle.all():
                samples[service.name][m_query] = [
                    service.multi_query(q).total_visited for q in queries
                ]
        return samples
    finally:
        bundle.set_collect_matches(True)


def _measured_curves(
    samples: dict[str, dict[int, list[int]]]
) -> tuple[tuple[float, ...], dict[str, AnalysisCurve]]:
    xs = tuple(float(m) for m in sorted(next(iter(samples.values())).keys()))
    curves = {
        name: AnalysisCurve(
            name, xs, tuple(float(np.sum(samples[name][int(m)])) for m in xs)
        )
        for name in _APPROACHES
    }
    return xs, curves


def _analysis_curve(
    name: str,
    approach: str,
    xs: tuple[float, ...],
    config: ExperimentConfig,
    num_queries: int,
) -> AnalysisCurve:
    n, d = config.population, config.dimension
    ys = tuple(
        num_queries * theorems.thm49_visited_nodes_avg(approach, n, d, int(m))
        for m in xs
    )
    return AnalysisCurve(name, xs, ys, derived_from="Theorem 4.9")


def run_fig5(
    config: ExperimentConfig, bundle: ServiceBundle | None = None
) -> tuple[FigureResult, FigureResult]:
    """Both panels of Figure 5 from one range-query sweep."""
    samples = sweep_range_visits(config, bundle)
    xs, curves = _measured_curves(samples)
    nq = config.num_range_queries

    panel_a = FigureResult(
        figure_id="fig5a",
        title=f"Visited nodes, system-wide approaches ({nq} range queries)",
        x_label="attributes per query",
        y_label="visited nodes",
        log_y=True,
    )
    panel_a.add(curves["MAAN"])
    panel_a.add(curves["Mercury"])
    panel_a.add(_analysis_curve("Analysis-MAAN", "MAAN", xs, config, nq))
    panel_a.add(_analysis_curve("Analysis-Mercury", "Mercury", xs, config, nq))
    panel_a.notes.append(
        "MAAN/Mercury and both analysis curves overlap at paper scale "
        "(values differ by < 0.2%), as in the paper"
    )

    panel_b = FigureResult(
        figure_id="fig5b",
        title=f"Visited nodes, SWORD and LORM ({nq} range queries)",
        x_label="attributes per query",
        y_label="visited nodes",
    )
    panel_b.add(curves["LORM"])
    panel_b.add(curves["SWORD"])
    panel_b.add(_analysis_curve("Analysis-LORM", "LORM", xs, config, nq))
    panel_b.add(_analysis_curve("Analysis-SWORD", "SWORD", xs, config, nq))
    panel_b.notes.append(
        f"Theorem 4.9 average case: LORM m(1+d/4) = {1 + config.dimension / 4:.1f}m, "
        f"SWORD m; LORM's measurement sits slightly below its analysis, as in the paper"
    )
    return panel_a, panel_b


def run_fig5a(config: ExperimentConfig, bundle: ServiceBundle | None = None) -> FigureResult:
    """Figure 5(a): system-wide range discovery (MAAN / Mercury)."""
    return run_fig5(config, bundle)[0]


def run_fig5b(config: ExperimentConfig, bundle: ServiceBundle | None = None) -> FigureResult:
    """Figure 5(b): SWORD and LORM."""
    return run_fig5(config, bundle)[1]
