"""n-scaling figure on the compact array core (extension figure).

The paper stops every figure at n = 2048; the single-hop literature
(Monnerat & Amorim) and ReCord argue their tradeoffs at 10^5–10^6 peers.
This experiment sweeps :class:`~repro.overlay.arraystore.CompactChordRing`
populations up to that regime and reports, per point:

* mean / p99 routed lookup hops (the stabilized-Chord ``(1/2) log2 n``
  regime Figure 4's curves are built on),
* maintenance messages per churn event (the object ring's cost model),
* construction + query wall-clock and peak memory (tracemalloc across
  build + directory placement + the query batch, plus process peak RSS),

so the first 100k–1M-node figure of the repo is directly comparable with
the n=2048 object-overlay results and carries its own resource budget for
the CI smoke gate (``repro scale --budget-seconds/--budget-mb``).
"""

from __future__ import annotations

import json
import math
import time
import tracemalloc
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.analysis.models import AnalysisCurve
from repro.bench.harness import max_rss_kb
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import FigureResult
from repro.overlay.arraystore import CompactChordRing
from repro.utils.seeding import SeedFactory

__all__ = ["ScalePoint", "ScaleResult", "run_scale", "scale_point"]


@dataclass(frozen=True)
class ScalePoint:
    """Measured scaling numbers for one population ``n``."""

    num_nodes: int
    bits: int
    mean_hops: float
    p99_hops: float
    half_log2_n: float
    maintenance_per_event: float
    build_seconds: float
    query_seconds: float
    state_mb: float
    peak_tracemalloc_mb: float
    rss_max_mb: float | None


def scale_point(config: ExperimentConfig, num_nodes: int) -> ScalePoint:
    """Build + measure one population point (module-level, so it pickles).

    All randomness derives from ``config.seed`` and ``num_nodes``, so a
    point's result is identical whether it runs serially or in a sharded
    worker process.
    """
    seeds = SeedFactory(config.seed).fork(f"scale:{num_nodes}")
    tracemalloc.start()
    try:
        started = time.perf_counter()
        ring = CompactChordRing.sampled(
            num_nodes, seed=seeds.child_seed("construct")
        )
        ring.build_fingers()
        # Directory load at the paper's density: one piece per node on
        # average, placed with one vectorised searchsorted + bincount.
        keys = seeds.numpy("directory").integers(
            ring.size, size=num_nodes, dtype=np.int64
        )
        ring.directory.place("resource", keys)
        build_seconds = time.perf_counter() - started

        started = time.perf_counter()
        hops = ring.measure_lookups(config.scale_queries, seeds.numpy("queries"))
        query_seconds = time.perf_counter() - started

        # Churn: join/leave/fail round-robin, counting the object ring's
        # maintenance-message formulas per event.
        churn_rng = seeds.numpy("churn")
        before = ring.maintenance_messages
        events = config.scale_churn_events
        for i in range(events):
            if i % 3 == 0:
                node_id = int(churn_rng.integers(ring.size))
                while node_id in ring.ids:
                    node_id = int(churn_rng.integers(ring.size))
                ring.join(node_id)
            else:
                victim = int(ring.ids[churn_rng.integers(ring.num_nodes)])
                (ring.leave if i % 3 == 1 else ring.fail)(victim)
        maintenance_per_event = (
            (ring.maintenance_messages - before) / events if events else 0.0
        )
        state_mb = ring.state_bytes() / 1e6
    finally:
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
    rss = max_rss_kb()
    return ScalePoint(
        num_nodes=num_nodes,
        bits=ring.bits,
        mean_hops=float(np.mean(hops)),
        p99_hops=float(np.percentile(hops, 99)),
        half_log2_n=0.5 * math.log2(num_nodes),
        maintenance_per_event=maintenance_per_event,
        build_seconds=build_seconds,
        query_seconds=query_seconds,
        state_mb=state_mb,
        peak_tracemalloc_mb=peak / 1e6,
        rss_max_mb=None if rss is None else rss / 1024,
    )


class ScaleResult(FigureResult):
    """A :class:`FigureResult` that also persists the raw scaling table.

    :meth:`save` writes the usual ``scale.csv`` / ``scale.txt`` plus
    ``scale_table.json`` — the machine-readable artifact the CI smoke
    step uploads (strict JSON: ``allow_nan=False``).
    """

    def __init__(self, points: list[ScalePoint], **kwargs) -> None:
        super().__init__(**kwargs)
        self.points = points

    def table_json(self) -> str:
        """The per-point table as strict JSON (no NaN/Infinity tokens)."""
        rows = [asdict(p) for p in self.points]
        for row in rows:
            for key, value in row.items():
                if isinstance(value, float) and not math.isfinite(value):
                    row[key] = None
        return json.dumps({"points": rows}, indent=2, allow_nan=False) + "\n"

    def save(self, directory: str | Path) -> Path:
        csv_path = super().save(directory)
        (Path(directory) / f"{self.figure_id}_table.json").write_text(
            self.table_json()
        )
        return csv_path


def run_scale(
    config: ExperimentConfig,
    *,
    parallel: bool = False,
    max_workers: int | None = None,
) -> ScaleResult:
    """Hops and maintenance cost vs population n on the compact core."""
    sizes = [int(n) for n in config.scale_sizes]
    if parallel:
        from repro.experiments.runner import run_points_parallel

        points = run_points_parallel(
            scale_point, sizes, config, max_workers=max_workers
        )
    else:
        points = [scale_point(config, n) for n in sizes]

    xs = tuple(float(p.num_nodes) for p in points)
    result = ScaleResult(
        points,
        figure_id="scale",
        title="Chord routing and maintenance cost vs population n",
        x_label="nodes n",
        y_label="hops / messages",
    )
    result.add(AnalysisCurve("Chord hops", xs, tuple(p.mean_hops for p in points)))
    result.add(
        AnalysisCurve("Chord hops p99", xs, tuple(p.p99_hops for p in points))
    )
    result.add(
        AnalysisCurve(
            "Analysis 0.5*log2(n)", xs, tuple(p.half_log2_n for p in points)
        )
    )
    result.add(
        AnalysisCurve(
            "maintenance msgs/event",
            xs,
            tuple(p.maintenance_per_event for p in points),
        )
    )
    for p in points:
        rss = "n/a" if p.rss_max_mb is None else f"{p.rss_max_mb:.0f} MB RSS"
        result.notes.append(
            f"n={p.num_nodes}: built in {p.build_seconds:.2f}s, "
            f"{config.scale_queries} lookups in {p.query_seconds:.2f}s, "
            f"ring state {p.state_mb:.1f} MB, peak "
            f"{p.peak_tracemalloc_mb:.1f} MB traced, {rss}"
        )
    result.notes.append(
        "compact array core (CompactChordRing); routing is hop-for-hop "
        "identical to ChordRing's fault-free lookup on the same membership"
    )
    return result
