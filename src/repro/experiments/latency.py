"""Response latency (extension figure).

The paper's Section III stresses that multi-attribute queries are resolved
as *parallel* sub-queries, so a requester's response time is bounded by the
slowest sub-query, not the sum.  This extension figure makes that visible:
simulated response latency (hop latency × critical-path hops) versus
attributes per query, for range queries.

Expected shape: SWORD flattest (one lookup per attribute, no walk), LORM
close behind (short cluster walks), Mercury/MAAN dominated by their long
sequential range walks — the latency view of Theorem 4.9.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.models import AnalysisCurve
from repro.experiments.common import ServiceBundle, build_services
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import FigureResult
from repro.sim.latency import ConstantLatency, LatencyModel, critical_path_latency
from repro.workloads.generator import QueryKind

__all__ = ["run_latency"]

_APPROACHES = ("LORM", "Mercury", "SWORD", "MAAN")


def run_latency(
    config: ExperimentConfig,
    bundle: ServiceBundle | None = None,
    model: LatencyModel | None = None,
) -> FigureResult:
    """Mean simulated response latency of range queries vs attribute count."""
    bundle = bundle if bundle is not None else build_services(config)
    bundle.set_collect_matches(False)
    hop_latency = bundle.lorm.overlay.network.hop_latency
    if model is None:
        # The seed's model — under it critical_path_latency reproduces
        # ``latency_hops × hop_latency`` byte-for-byte.
        model = ConstantLatency(hop_latency)

    xs = tuple(float(m) for m in range(1, config.max_query_attributes + 1))
    mean_latency: dict[str, list[float]] = {name: [] for name in _APPROACHES}
    for m_query in range(1, config.max_query_attributes + 1):
        queries = list(
            bundle.workload.query_stream(
                max(50, config.num_range_queries // 4),
                m_query,
                QueryKind.RANGE,
                label="latency",
            )
        )
        for service in bundle.all():
            # Sub-queries run in parallel; a sub-query's own hops (routing
            # plus any sequential range-walk forwarding) are serial.
            samples = [
                critical_path_latency(service.multi_query(q), model)
                for q in queries
            ]
            mean_latency[service.name].append(float(np.mean(samples)))
    bundle.set_collect_matches(True)

    result = FigureResult(
        figure_id="latency",
        title="Simulated response latency of range queries (parallel sub-queries)",
        x_label="attributes per query",
        y_label=f"mean latency (s, {model.mean() * 1000:.0f} ms/hop)",
        log_y=True,
    )
    for name in ("MAAN", "Mercury", "LORM", "SWORD"):
        result.add(AnalysisCurve(name, xs, tuple(mean_latency[name])))
    result.notes.append(
        "latency = slowest sub-query's serial hops x hop latency; "
        "range walks are sequential, lookups of different attributes parallel"
    )
    return result
