"""Programmatic entry point: run any figure by ID.

``run_figure("fig4a", config)`` returns the figure's result object
(:class:`~repro.experiments.report.FigureResult` or
:class:`~repro.experiments.report.DistributionResult`); the CLI and the
benchmark suite both go through this registry, so the figure inventory
lives in exactly one place.
"""

from __future__ import annotations

from collections.abc import Callable
from pathlib import Path

from repro.experiments import figure3, figure4, figure5, figure6
from repro.experiments.availability import run_availability
from repro.experiments.common import build_services
from repro.experiments.config import ExperimentConfig
from repro.experiments.latency import run_latency
from repro.experiments.maintenance import run_maintenance
from repro.experiments.recovery import run_recovery
from repro.experiments.staleness import run_staleness
from repro.experiments.theorem_table import run_theorem_table

__all__ = ["FIGURES", "run_figure", "run_all_figures"]

#: Figure ID → runner.  Each runner takes a config and returns a result
#: object with ``render()`` and ``save(directory)``.
FIGURES: dict[str, Callable] = {
    "fig3a": figure3.run_fig3a,
    "fig3b": figure3.run_fig3b,
    "fig3c": figure3.run_fig3c,
    "fig3d": figure3.run_fig3d,
    "fig4a": figure4.run_fig4a,
    "fig4b": figure4.run_fig4b,
    "fig5a": figure5.run_fig5a,
    "fig5b": figure5.run_fig5b,
    "fig6a": figure6.run_fig6a,
    "fig6b": figure6.run_fig6b,
    "theorems": run_theorem_table,
    "latency": run_latency,  # extension figure, see module docstring
    "staleness": run_staleness,  # extension figure: provider churn x leases
    "maintenance": run_maintenance,  # extension figure: repair traffic vs R
    "availability": run_availability,  # extension: completeness vs loss x r
    "recovery": run_recovery,  # extension: time-to-reconverge vs interval
}


def run_figure(
    figure_id: str,
    config: ExperimentConfig,
    *,
    save_dir: str | Path | None = None,
    invariants: bool = False,
):
    """Run one figure; optionally persist CSV/text under ``save_dir``.

    ``invariants=True`` (the CLI's ``--invariants`` flag) sets
    ``config.validate_invariants``, so every churn event in the figure's
    simulation is validated by a
    :class:`~repro.sim.invariants.ChurnGuard` — a violation aborts the
    run at the offending event instead of skewing the figure.
    """
    try:
        runner = FIGURES[figure_id]
    except KeyError:
        raise KeyError(
            f"unknown figure {figure_id!r}; available: {sorted(FIGURES)}"
        ) from None
    if invariants and not config.validate_invariants:
        config = config.scaled(validate_invariants=True)
    result = runner(config)
    if save_dir is not None:
        result.save(save_dir)
    return result


def run_all_figures(
    config: ExperimentConfig,
    *,
    save_dir: str | Path | None = None,
    invariants: bool = False,
) -> dict[str, object]:
    """Run every figure, sharing expensive state where possible.

    The directory-size panels (3b/3c/3d) share one loaded service bundle;
    figures 4 and 5 each produce both panels from a single sweep; figure 6
    produces both panels from one churn sweep.
    """
    if invariants and not config.validate_invariants:
        config = config.scaled(validate_invariants=True)
    results: dict[str, object] = {}
    results["fig3a"] = figure3.run_fig3a(config)

    bundle = build_services(config)
    results["fig3b"] = figure3.run_fig3b(config, bundle)
    results["fig3c"] = figure3.run_fig3c(config, bundle)
    results["fig3d"] = figure3.run_fig3d(config, bundle)

    results["fig4a"], results["fig4b"] = figure4.run_fig4(config, bundle)
    results["fig5a"], results["fig5b"] = figure5.run_fig5(config, bundle)
    results["theorems"] = run_theorem_table(config, bundle)
    results["latency"] = run_latency(config, bundle)
    results["staleness"] = run_staleness(config)
    results["maintenance"] = run_maintenance(config)
    results["availability"] = run_availability(config)
    results["recovery"] = run_recovery(config)
    results["fig6a"], results["fig6b"] = figure6.run_fig6(config)

    if save_dir is not None:
        for result in results.values():
            result.save(save_dir)  # type: ignore[attr-defined]
    return results
