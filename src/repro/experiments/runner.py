"""Programmatic entry point: run any figure by ID.

``run_figure("fig4a", config)`` returns the figure's result object
(:class:`~repro.experiments.report.FigureResult` or
:class:`~repro.experiments.report.DistributionResult`); the CLI and the
benchmark suite both go through this registry, so the figure inventory
lives in exactly one place.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path

from repro.experiments import figure3, figure4, figure5, figure6
from repro.experiments.availability import run_availability
from repro.experiments.common import build_services
from repro.experiments.config import ExperimentConfig
from repro.experiments.latency import run_latency
from repro.experiments.maintenance import run_maintenance
from repro.experiments.recovery import run_recovery
from repro.experiments.scale import run_scale
from repro.experiments.staleness import run_staleness
from repro.experiments.theorem_table import run_theorem_table

__all__ = [
    "FIGURES",
    "run_figure",
    "run_all_figures",
    "run_figures_parallel",
    "run_points_parallel",
]

#: Figure ID → runner.  Each runner takes a config and returns a result
#: object with ``render()`` and ``save(directory)``.
FIGURES: dict[str, Callable] = {
    "fig3a": figure3.run_fig3a,
    "fig3b": figure3.run_fig3b,
    "fig3c": figure3.run_fig3c,
    "fig3d": figure3.run_fig3d,
    "fig4a": figure4.run_fig4a,
    "fig4b": figure4.run_fig4b,
    "fig5a": figure5.run_fig5a,
    "fig5b": figure5.run_fig5b,
    "fig6a": figure6.run_fig6a,
    "fig6b": figure6.run_fig6b,
    "theorems": run_theorem_table,
    "latency": run_latency,  # extension figure, see module docstring
    "staleness": run_staleness,  # extension figure: provider churn x leases
    "maintenance": run_maintenance,  # extension figure: repair traffic vs R
    "availability": run_availability,  # extension: completeness vs loss x r
    "recovery": run_recovery,  # extension: time-to-reconverge vs interval
    "scale": run_scale,  # extension: 100k-1M-node hops/maintenance sweep
}


def run_figure(
    figure_id: str,
    config: ExperimentConfig,
    *,
    save_dir: str | Path | None = None,
    invariants: bool = False,
):
    """Run one figure; optionally persist CSV/text under ``save_dir``.

    ``invariants=True`` (the CLI's ``--invariants`` flag) sets
    ``config.validate_invariants``, so every churn event in the figure's
    simulation is validated by a
    :class:`~repro.sim.invariants.ChurnGuard` — a violation aborts the
    run at the offending event instead of skewing the figure.
    """
    try:
        runner = FIGURES[figure_id]
    except KeyError:
        raise KeyError(
            f"unknown figure {figure_id!r}; available: {sorted(FIGURES)}"
        ) from None
    if invariants and not config.validate_invariants:
        config = config.scaled(validate_invariants=True)
    result = runner(config)
    if save_dir is not None:
        result.save(save_dir)
    return result


def run_all_figures(
    config: ExperimentConfig,
    *,
    save_dir: str | Path | None = None,
    invariants: bool = False,
) -> dict[str, object]:
    """Run every figure, sharing expensive state where possible.

    The directory-size panels (3b/3c/3d) share one loaded service bundle;
    figures 4 and 5 each produce both panels from a single sweep; figure 6
    produces both panels from one churn sweep.  Each result is persisted
    the moment it is computed, so an interrupted multi-hour paper-scale
    run keeps every finished figure on disk.
    """
    if invariants and not config.validate_invariants:
        config = config.scaled(validate_invariants=True)
    results: dict[str, object] = {}

    def emit(figure_id: str, result: object) -> None:
        results[figure_id] = result
        if save_dir is not None:
            result.save(save_dir)  # type: ignore[attr-defined]

    emit("fig3a", figure3.run_fig3a(config))

    bundle = build_services(config)
    emit("fig3b", figure3.run_fig3b(config, bundle))
    emit("fig3c", figure3.run_fig3c(config, bundle))
    emit("fig3d", figure3.run_fig3d(config, bundle))

    fig4a, fig4b = figure4.run_fig4(config, bundle)
    emit("fig4a", fig4a)
    emit("fig4b", fig4b)
    fig5a, fig5b = figure5.run_fig5(config, bundle)
    emit("fig5a", fig5a)
    emit("fig5b", fig5b)
    emit("theorems", run_theorem_table(config, bundle))
    emit("latency", run_latency(config, bundle))
    emit("staleness", run_staleness(config))
    emit("maintenance", run_maintenance(config))
    emit("availability", run_availability(config))
    emit("recovery", run_recovery(config))
    fig6a, fig6b = figure6.run_fig6(config)
    emit("fig6a", fig6a)
    emit("fig6b", fig6b)
    emit("scale", run_scale(config))
    return results


def _parallel_job(
    figure_id: str,
    config: ExperimentConfig,
    save_dir: str | None,
    invariants: bool,
) -> tuple[str, object]:
    """Worker entry point (module-level so it pickles)."""
    return figure_id, run_figure(
        figure_id, config, save_dir=save_dir, invariants=invariants
    )


def run_figures_parallel(
    figure_ids: Sequence[str],
    config: ExperimentConfig,
    *,
    save_dir: str | Path | None = None,
    invariants: bool = False,
    max_workers: int | None = None,
) -> dict[str, object]:
    """Fan independent figure runs out over worker processes.

    Opt-in (the CLI's ``--parallel``): each figure rebuilds its own
    service bundle instead of sharing one, trading total CPU for
    wall-clock.  Workers save their own results as they finish, so an
    interrupted run keeps every completed figure.  Results are identical
    to serial ``run_figure`` calls — each worker derives all randomness
    from ``config.seed``.
    """
    unknown = sorted(set(figure_ids) - set(FIGURES))
    if unknown:
        raise KeyError(f"unknown figures {unknown}; available: {sorted(FIGURES)}")
    save_arg = None if save_dir is None else str(save_dir)
    results: dict[str, object] = {}
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = [
            pool.submit(_parallel_job, figure_id, config, save_arg, invariants)
            for figure_id in figure_ids
        ]
        for future in as_completed(futures):
            figure_id, result = future.result()
            results[figure_id] = result
    return results


def run_points_parallel(
    job: Callable,
    points: Sequence,
    config: ExperimentConfig,
    *,
    max_workers: int | None = None,
) -> list:
    """Shard independent sweep *points* of one experiment across processes.

    ``run_figures_parallel`` parallelises whole figures; this fans out the
    points *inside* one sweep — ``job(config, point)`` per point, where
    ``job`` is a module-level callable (it must pickle) that derives all
    randomness from ``(config.seed, point)``.  Results come back in
    ``points`` order, identical to a serial ``[job(config, p) for p in
    points]`` loop.
    """
    results: list = [None] * len(points)
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = {
            pool.submit(job, config, point): index
            for index, point in enumerate(points)
        }
        for future in as_completed(futures):
            results[futures[future]] = future.result()
    return results
