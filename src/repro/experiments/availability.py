"""Availability experiment: query completeness under loss × replication.

An experiment axis the paper never explores: its churn study (Section V-C)
keeps the network perfectly reliable and notes "there were no failures in
all test cases".  Here every overlay first suffers a crash storm (a
fraction of nodes fail without handing off their keys, with periodic
replica repair), then answers the same multi-attribute workload while the
fault injector drops a configured fraction of messages.

A query is counted *complete* when its provider set equals the brute-force
ground truth over the full pre-crash workload — so both failure modes
register honestly: keys lost to crashes (the replication axis) and lookups
or walks that die under message loss (the retry/failover axis).  The
resulting curves show completeness vs. loss rate, one curve per approach ×
replication factor.
"""

from __future__ import annotations

from repro.analysis.models import AnalysisCurve
from repro.experiments.common import ServiceBundle, build_services
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import FigureResult
from repro.sim.faults import FaultInjector, FaultPlan, LookupPolicy
from repro.sim.network import publish_stats
from repro.utils.seeding import SeedFactory
from repro.workloads.generator import QueryKind

__all__ = ["run_availability", "measure_completeness"]


def measure_completeness(
    service,
    cases: list[tuple],
    injector: FaultInjector | None,
    policy: LookupPolicy | None = None,
) -> float:
    """Fraction of ``(query, truth)`` cases answered exactly right.

    Attaches ``injector`` (and optional ``policy``) to the service for the
    duration of the measurement and always detaches it afterwards, so the
    service comes back fault-free.  The requester-side fault accounting
    the measurement produced — retries, timeouts, dropped messages,
    backoff waits — is published into ``service.metrics`` as ``faults.*``
    counters (one measurement window per call), so the report tables can
    show what the lookup policy paid instead of leaving it trapped in the
    network's :class:`~repro.sim.network.MessageStats`.
    """
    if not cases:
        return 1.0
    overlay = service.overlay if hasattr(service, "overlay") else service.ring
    before = overlay.network.stats.snapshot()
    service.configure_faults(injector, policy)
    try:
        exact = sum(
            1 for query, truth in cases
            if service.multi_query(query).providers == truth
        )
    finally:
        service.configure_faults(None)
        publish_stats(
            overlay.network.stats.delta_since(before), service.metrics,
            prefix="faults",
        )
    return exact / len(cases)


def _crash_storm(bundle: ServiceBundle, config: ExperimentConfig) -> int:
    """Crash a fraction of every overlay's nodes, with periodic repair.

    Repair interleaves with the failures (every quarter of the storm) the
    way periodic replica maintenance would in a live system, then a final
    stabilize + repair pass restores routing state and replica counts.
    """
    crashes = max(1, round(config.availability_crash_fraction * config.population))
    repair_every = max(1, crashes // 4)
    for service in bundle.all():
        overlay = service.overlay if hasattr(service, "overlay") else service.ring
        for i in range(crashes):
            if not service.churn_fail():
                break
            if (i + 1) % repair_every == 0:
                service.stabilize()
                overlay.repair_replication()
        service.stabilize()
        overlay.repair_replication()
    return crashes


def _query_cases(bundle: ServiceBundle, config: ExperimentConfig) -> list[tuple]:
    """The shared workload: half point, half range 2-attribute queries,
    paired with their full-workload ground truth."""
    count = config.num_availability_queries
    attrs = min(2, config.num_attributes)
    n_range = count // 2
    queries = list(
        bundle.workload.query_stream(
            count - n_range, attrs, QueryKind.POINT, label="availability-point"
        )
    ) + list(
        bundle.workload.query_stream(
            n_range, attrs, QueryKind.RANGE, label="availability-range"
        )
    )
    return [
        (query, bundle.workload.matching_providers_bruteforce(query))
        for query in queries
    ]


def run_availability(config: ExperimentConfig) -> FigureResult:
    """Query completeness vs. message-loss rate, per approach × replication."""
    seeds = SeedFactory(config.seed).fork("availability")
    result = FigureResult(
        figure_id="availability",
        title="Query completeness under message loss and crash failures",
        x_label="Message loss rate",
        y_label="Fraction of exactly-answered queries",
    )
    crashes = None
    bundle = None
    for replication in config.availability_replications:
        bundle = build_services(
            config, register=True, replication=replication, seed_offset=replication
        )
        crashes = _crash_storm(bundle, config)
        cases = _query_cases(bundle, config)
        for service in bundle.all():
            completeness = []
            for loss in config.loss_rates:
                plan = FaultPlan(
                    loss_rate=loss,
                    seed=seeds.child_seed(
                        f"{service.name}:r{replication}:loss{loss}"
                    ),
                )
                completeness.append(
                    measure_completeness(service, cases, FaultInjector(plan))
                )
            result.add(
                AnalysisCurve(
                    name=f"{service.name} r={replication}",
                    x=tuple(config.loss_rates),
                    y=tuple(completeness),
                )
            )
    result.notes.append(
        f"{crashes} crash failures per overlay before querying "
        f"({config.availability_crash_fraction:.0%} of n={config.population}); "
        "periodic + final replica repair and stabilization."
    )
    result.notes.append(
        "Completeness = exact match against full-workload brute force, so it "
        "reflects both crash-lost keys (replication axis) and lookups/walks "
        "killed by message loss (retry/failover axis).  Loss 0 runs the "
        "fault-free code path."
    )
    if bundle is not None:
        spend = "; ".join(
            f"{service.name}: {service.metrics.counter('faults.retries'):.0f} "
            f"retries, {service.metrics.counter('faults.timeouts'):.0f} timeouts, "
            f"{service.metrics.counter('faults.dropped'):.0f} drops"
            for service in bundle.all()
        )
        result.notes.append(
            f"requester fault spend across the r={replication} sweep "
            f"(faults.* counters): {spend}."
        )
    return result
