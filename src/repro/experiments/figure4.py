"""Figure 4 — logical hops of non-range multi-attribute queries.

The paper varies the number of attributes per query from 1 to 10, lets 100
random requesters send 10 queries each, and plots (a) the average and (b)
the total number of logical hops per approach, together with two derived
analysis curves: "Analysis-LORM" = MAAN's measured curve divided by
``log2(n)/d`` (Theorem 4.7) and "Analysis-SWORD/Mercury" = MAAN's measured
curve divided by 2 (Theorem 4.8).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import theorems
from repro.analysis.models import AnalysisCurve, derive_curve
from repro.experiments.common import ServiceBundle, build_services
from repro.experiments.config import ExperimentConfig
from repro.experiments.report import FigureResult
from repro.workloads.generator import QueryKind

__all__ = ["run_fig4", "run_fig4a", "run_fig4b", "sweep_nonrange_hops"]

_APPROACHES = ("LORM", "Mercury", "SWORD", "MAAN")


def sweep_nonrange_hops(
    config: ExperimentConfig, bundle: ServiceBundle | None = None
) -> dict[str, dict[int, list[int]]]:
    """Per-approach, per-attribute-count samples of total query hops.

    Returns ``{approach: {m_query: [total hops of each query]}}`` for
    ``m_query`` in ``1..max_query_attributes``.
    """
    bundle = bundle if bundle is not None else build_services(config)
    num_queries = config.num_requesters * config.queries_per_requester
    samples: dict[str, dict[int, list[int]]] = {
        name: {} for name in _APPROACHES
    }
    for m_query in range(1, config.max_query_attributes + 1):
        queries = list(
            bundle.workload.query_stream(
                num_queries, m_query, QueryKind.POINT, label="fig4"
            )
        )
        for service in bundle.all():
            per_query = [service.multi_query(q).total_hops for q in queries]
            samples[service.name][m_query] = per_query
    return samples


def _build_results(
    config: ExperimentConfig,
    samples: dict[str, dict[int, list[int]]],
    *,
    total: bool,
) -> FigureResult:
    xs = tuple(float(m) for m in sorted(next(iter(samples.values())).keys()))
    reduce_fn = (lambda v: float(np.sum(v))) if total else (lambda v: float(np.mean(v)))
    result = FigureResult(
        figure_id="fig4b" if total else "fig4a",
        title=(
            "Total logical hops of non-range queries"
            if total
            else "Average logical hops per non-range query"
        ),
        x_label="attributes per query",
        y_label="total hops" if total else "average hops",
    )
    curves: dict[str, AnalysisCurve] = {}
    for name in _APPROACHES:
        ys = tuple(reduce_fn(samples[name][int(m)]) for m in xs)
        curves[name] = AnalysisCurve(name, xs, ys)
    # Plot order mirrors the paper: MAAN worst, then LORM, then
    # Mercury/SWORD (whose curves overlap).
    for name in ("MAAN", "LORM", "Mercury", "SWORD"):
        result.add(curves[name])
    n, d = config.population, config.dimension
    result.add(
        derive_curve(
            "Analysis-LORM",
            curves["MAAN"],
            divide_by=theorems.thm47_contacted_reduction_vs_maan(n, d),
        )
    )
    result.add(
        derive_curve(
            "Analysis-SWORD/Mercury",
            curves["MAAN"],
            divide_by=theorems.thm48_contacted_reduction_mercury_sword_vs_maan(),
        )
    )
    result.notes.append(
        f"analysis: MAAN / (log2(n)/d) = MAAN / {theorems.thm47_contacted_reduction_vs_maan(n, d):.3f} "
        f"(Thm 4.7); MAAN / 2 (Thm 4.8)"
    )
    return result


def run_fig4(
    config: ExperimentConfig, bundle: ServiceBundle | None = None
) -> tuple[FigureResult, FigureResult]:
    """Both panels of Figure 4 from one query sweep."""
    samples = sweep_nonrange_hops(config, bundle)
    return (
        _build_results(config, samples, total=False),
        _build_results(config, samples, total=True),
    )


def run_fig4a(config: ExperimentConfig, bundle: ServiceBundle | None = None) -> FigureResult:
    """Figure 4(a): average hops per query vs attributes per query."""
    return run_fig4(config, bundle)[0]


def run_fig4b(config: ExperimentConfig, bundle: ServiceBundle | None = None) -> FigureResult:
    """Figure 4(b): total hops vs attributes per query."""
    return run_fig4(config, bundle)[1]
