"""Lookup-vs-maintenance tradeoff across routing tiers (``repro tradeoff``).

The source paper fixes every system at O(log n) routing; the single-hop
(D1HT) and randomized-Chord (ReCord) literature shows the real design
space is a *curve*: more routing state bought with more maintenance
traffic buys fewer lookup hops.  This experiment draws that curve — the
figure the paper never drew — by sweeping

* **overlay tier**: plain Chord, ReCord at each configured fan-out, and
  the single-hop full-membership ring;
* **maintenance budget**: zero, the default bounded budget, unlimited;

under common random numbers (same membership stream, same workload, same
query stream per cell), for all four discovery systems.  Each cell churns
the network (leave/join alternating, one budgeted maintenance round per
event), measures maintenance messages per event, then runs traced point
queries and reads mean lookup hops straight off the LOOKUP spans.  At
unlimited budget every trace is additionally pushed through the
:func:`~repro.testing.traces.assert_trace_bounds` oracle, so the headline
single-hop claim ("1 hop") is verified hop by hop, not just as a metric.

The verdict (:attr:`TradeoffResult.ok`, the CI gate):

* at unlimited budget, single-hop mean lookup hops ≤ 1.05 for **every**
  system, with every trace oracle-verified;
* at unlimited budget, ReCord mean hops are monotonically non-increasing
  in the fan-out (nested finger sampling makes the tables supersets);
* every overlay × budget cell reports maintenance msgs/event.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from pathlib import Path

from repro.experiments.common import build_services, resolve_systems
from repro.experiments.config import ExperimentConfig
from repro.obs.spans import QueryTracer, SpanKind
from repro.sim.invariants import overlay_of
from repro.sim.maintenance import (
    DEFAULT_BUDGET,
    UNLIMITED_BUDGET,
    ZERO_BUDGET,
    MaintenanceBudget,
)
from repro.testing.traces import assert_trace_bounds
from repro.utils.formatting import render_table
from repro.workloads.generator import QueryKind

__all__ = ["TradeoffCell", "TradeoffResult", "run_tradeoff", "SINGLEHOP_MEAN_HOPS_GATE"]

#: The CI gate on single-hop mean lookup hops at unlimited budget.
SINGLEHOP_MEAN_HOPS_GATE = 1.05

#: Budget registry names → the budgets they denote.
BUDGETS: dict[str, MaintenanceBudget] = {
    "zero": ZERO_BUDGET,
    "default": DEFAULT_BUDGET,
    "unlimited": UNLIMITED_BUDGET,
}


def overlay_points(config: ExperimentConfig) -> tuple[tuple[str, str, int], ...]:
    """The swept (label, overlay-name, fanout) points, cheap to costly."""
    points = [("chord", "chord", 2)]
    for fanout in config.tradeoff_fanouts:
        points.append((f"record:f{fanout}", "record", int(fanout)))
    points.append(("singlehop", "singlehop", 2))
    return tuple(points)


@dataclass
class TradeoffCell:
    """One overlay × budget × system measurement."""

    overlay: str
    budget: str
    system: str
    #: Mean / max hops over every routed LOOKUP span of the query phase.
    mean_hops: float
    max_hops: int
    #: Mean per-lookup latency implied by the hop count (hops × hop RTT).
    mean_latency: float
    #: Maintenance messages per churn event (dissemination + repair +
    #: the joiner's table download — the cost axis of the curve).
    maintenance_per_event: float
    #: Lookup retries observed during the query phase (stale-view probes).
    retries: int
    queries: int
    lookups: int
    #: Every trace passed :func:`assert_trace_bounds` (unlimited-budget
    #: cells only; bounded budgets legitimately exceed the fault-free
    #: ceilings while routing state is stale).
    verified: bool


@dataclass
class TradeoffResult:
    """The full sweep plus the gate verdict."""

    config: ExperimentConfig
    systems: tuple[str, ...]
    cells: list[TradeoffCell] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def cell(self, overlay: str, budget: str, system: str) -> TradeoffCell:
        for c in self.cells:
            if c.overlay == overlay and c.budget == budget and c.system == system:
                return c
        raise KeyError(f"no cell ({overlay}, {budget}, {system})")

    def mean_hops_over_systems(self, overlay: str, budget: str) -> float:
        hops = [c.mean_hops for c in self.cells
                if c.overlay == overlay and c.budget == budget]
        if not hops:
            raise KeyError(f"no cells ({overlay}, {budget})")
        return sum(hops) / len(hops)

    @property
    def record_labels(self) -> tuple[str, ...]:
        """ReCord point labels in increasing fan-out order."""
        return tuple(
            f"record:f{f}" for f in sorted(self.config.tradeoff_fanouts)
        )

    @property
    def ok(self) -> bool:
        if not self.cells:
            return False
        try:
            for system in self.systems:
                cell = self.cell("singlehop", "unlimited", system)
                if cell.mean_hops > SINGLEHOP_MEAN_HOPS_GATE or not cell.verified:
                    return False
            means = [
                self.mean_hops_over_systems(label, "unlimited")
                for label in self.record_labels
            ]
        except KeyError:
            return False
        if any(b > a + 1e-9 for a, b in zip(means, means[1:])):
            return False
        return all(
            c.maintenance_per_event >= 0.0 for c in self.cells
        )

    def table(self) -> str:
        rows = []
        for c in self.cells:
            rows.append(
                [
                    c.overlay,
                    c.budget,
                    c.system,
                    f"{c.mean_hops:.2f}",
                    str(c.max_hops),
                    f"{c.mean_latency * 1000:.0f}ms",
                    f"{c.maintenance_per_event:.1f}",
                    str(c.retries),
                    "yes" if c.verified else "-",
                ]
            )
        headers = [
            "overlay",
            "budget",
            "system",
            "mean hops",
            "max",
            "latency",
            "maint/event",
            "retries",
            "verified",
        ]
        return render_table(
            headers,
            rows,
            title="tradeoff: lookup hops/latency vs maintenance bandwidth "
            "(common random numbers)",
        )

    def render(self) -> str:
        out = self.table()
        out += "\n"
        try:
            worst = max(
                self.cell("singlehop", "unlimited", s).mean_hops
                for s in self.systems
            )
            out += (
                f"\nsingle-hop @ unlimited budget: worst mean hops "
                f"{worst:.3f} (gate <= {SINGLEHOP_MEAN_HOPS_GATE:g}: "
                f"{'ok' if worst <= SINGLEHOP_MEAN_HOPS_GATE else 'MISS'})"
            )
            means = [
                self.mean_hops_over_systems(label, "unlimited")
                for label in self.record_labels
            ]
            arrow = " -> ".join(f"{m:.2f}" for m in means)
            mono = all(b <= a + 1e-9 for a, b in zip(means, means[1:]))
            out += (
                f"\nReCord mean hops vs fan-out @ unlimited: {arrow} "
                f"(monotone: {'ok' if mono else 'MISS'})"
            )
        except KeyError:
            out += "\n(sweep incomplete: verdict cells missing)"
        out += f"\nverdict: {'ok' if self.ok else 'GATE MISS'}"
        if self.notes:
            out += "\n\n" + "\n".join(f"note: {n}" for n in self.notes)
        return out

    def save(self, directory) -> Path:
        """Write ``tradeoff.csv`` + ``tradeoff.txt`` under ``directory``."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        csv_path = directory / "tradeoff.csv"
        fields = [
            "overlay",
            "budget",
            "system",
            "mean_hops",
            "max_hops",
            "mean_latency",
            "maintenance_per_event",
            "retries",
            "queries",
            "lookups",
            "verified",
        ]
        with csv_path.open("w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(fields)
            for c in self.cells:
                writer.writerow([getattr(c, f) for f in fields])
        (directory / "tradeoff.txt").write_text(self.render() + "\n")
        return csv_path


def _measure_cell(
    config: ExperimentConfig,
    label: str,
    overlay: str,
    fanout: int,
    budget_name: str,
    systems: tuple[str, ...],
) -> list[TradeoffCell]:
    """All systems' cells for one overlay × budget point."""
    budget = BUDGETS[budget_name]
    bundle = build_services(config, overlay=overlay, fanout=fanout)
    services = [bundle.by_name(name) for name in systems]
    queries = list(
        bundle.workload.query_stream(
            config.tradeoff_queries, 1, QueryKind.POINT, label="tradeoff"
        )
    )
    cells = []
    for service in services:
        network = overlay_of(service).network
        # Churn phase: alternating leave/join, one budgeted maintenance
        # round per event; everything the overlay sends to stay routable
        # (dissemination, finger refresh, the joiner's table download)
        # lands in the maintenance counter.
        before = network.stats.snapshot()
        events = 0
        for i in range(config.tradeoff_churn_events):
            if (i % 2 == 0 and service.churn_leave()) or (
                i % 2 == 1 and service.churn_join()
            ):
                events += 1
            service.stabilize(budget)
        maintenance = network.stats.delta_since(before).maintenance_messages
        per_event = maintenance / events if events else float(maintenance)

        # Query phase: traced point lookups; hops come off the spans.
        tracer = QueryTracer(max_traces=len(queries) + 8)
        service.attach_tracer(tracer)
        before = network.stats.snapshot()
        for mq in queries:
            service.multi_query(mq)
        retries = network.stats.delta_since(before).retries
        service.attach_tracer(None)

        hop_counts = []
        verified = budget_name == "unlimited"
        for trace in tracer.traces:
            for span in trace.spans_of(SpanKind.LOOKUP):
                hop_counts.append(len(span.hop_spans()))
            if budget_name == "unlimited":
                assert_trace_bounds(trace, service)
        mean_hops = sum(hop_counts) / len(hop_counts) if hop_counts else 0.0
        cells.append(
            TradeoffCell(
                overlay=label,
                budget=budget_name,
                system=service.name,
                mean_hops=mean_hops,
                max_hops=max(hop_counts) if hop_counts else 0,
                mean_latency=mean_hops * network.hop_latency,
                maintenance_per_event=per_event,
                retries=retries,
                queries=len(queries),
                lookups=len(hop_counts),
                verified=verified,
            )
        )
    return cells


def run_tradeoff(
    config: ExperimentConfig,
    *,
    systems: tuple[str, ...] | None = None,
    overlays: tuple[str, ...] | None = None,
) -> TradeoffResult:
    """The overlay × maintenance-budget sweep under common random numbers.

    ``overlays`` restricts the swept points by label (``chord``,
    ``record:f<N>``, ``singlehop``); the verdict needs the single-hop and
    every ReCord point at unlimited budget, so restricted sweeps report
    ``ok=False`` unless those survive.
    """
    systems = resolve_systems(systems) if systems else ("LORM", "Mercury", "SWORD", "MAAN")
    points = overlay_points(config)
    if overlays is not None:
        wanted = {o.lower() for o in overlays}
        points = tuple(p for p in points if p[0].lower() in wanted)
        unknown = wanted - {p[0].lower() for p in overlay_points(config)}
        if unknown:
            raise ValueError(
                f"unknown tradeoff overlay point(s) {sorted(unknown)}; valid: "
                f"{', '.join(p[0] for p in overlay_points(config))}"
            )
    result = TradeoffResult(config=config, systems=systems)
    for label, overlay, fanout in points:
        for budget_name in config.tradeoff_budgets:
            result.cells.extend(
                _measure_cell(config, label, overlay, fanout, budget_name, systems)
            )
    result.notes.append(
        f"{config.tradeoff_queries} point queries and "
        f"{config.tradeoff_churn_events} churn events per cell; "
        f"latency = mean hops x {0.05:.2f}s hop RTT"
    )
    return result
