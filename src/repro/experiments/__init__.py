"""Experiment harness — regenerates every figure of the paper.

One module per figure family:

* :mod:`~repro.experiments.figure3` — maintenance overhead: outlinks vs
  network size (3a) and directory-size distributions (3b/3c/3d);
* :mod:`~repro.experiments.figure4` — non-range multi-attribute lookup
  hops, average (4a) and total (4b);
* :mod:`~repro.experiments.figure5` — range-query visited nodes,
  system-wide approaches (5a) and SWORD/LORM (5b);
* :mod:`~repro.experiments.figure6` — churn: hops (6a) and visited nodes
  (6b) vs the Poisson rate R.

:mod:`~repro.experiments.config` holds the paper's parameters;
:mod:`~repro.experiments.report` renders each figure as CSV + text table +
ASCII chart; :mod:`~repro.experiments.runner` is the programmatic entry
point used by the CLI and the benchmarks.
"""

from repro.experiments.config import ExperimentConfig, PAPER_CONFIG, SMOKE_CONFIG
from repro.experiments.report import FigureResult
from repro.experiments.runner import FIGURES, run_figure

__all__ = [
    "ExperimentConfig",
    "FIGURES",
    "FigureResult",
    "PAPER_CONFIG",
    "SMOKE_CONFIG",
    "run_figure",
]
