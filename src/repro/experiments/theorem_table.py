"""Theorem table — every closed-form constant vs its measurement.

Section IV states ten theorems; Section V validates them through figures.
This experiment condenses the validation into one table: for each theorem,
the predicted constant at the configured scale and the directly measured
counterpart, with the relative error.  ``repro run theorems`` regenerates
it; the benchmark suite asserts every row at paper scale.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.analysis import theorems
from repro.experiments.common import ServiceBundle, build_services
from repro.experiments.config import ExperimentConfig
from repro.utils.formatting import render_table
from repro.workloads.generator import QueryKind

__all__ = ["TheoremRow", "TheoremTable", "run_theorem_table"]


@dataclass(frozen=True)
class TheoremRow:
    """One validated claim: predicted constant vs measured value."""

    theorem: str
    quantity: str
    predicted: float
    measured: float

    @property
    def relative_error(self) -> float:
        """|measured - predicted| / predicted."""
        if self.predicted == 0:
            return float("inf") if self.measured else 0.0
        return abs(self.measured - self.predicted) / abs(self.predicted)


@dataclass
class TheoremTable:
    """The collected rows plus rendering (mirrors FigureResult's API)."""

    figure_id: str
    title: str
    rows: list[TheoremRow] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def row(self, theorem: str) -> TheoremRow:
        """The row for ``theorem`` (e.g. ``"4.3"``)."""
        for r in self.rows:
            if r.theorem == theorem:
                return r
        raise KeyError(f"no row for theorem {theorem!r}")

    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(["theorem", "quantity", "predicted", "measured", "rel_error"])
        for r in self.rows:
            writer.writerow([r.theorem, r.quantity, r.predicted, r.measured, r.relative_error])
        return buffer.getvalue()

    def to_table(self) -> str:
        return render_table(
            ["thm", "quantity", "predicted", "measured", "rel err"],
            [[r.theorem, r.quantity, r.predicted, r.measured, r.relative_error]
             for r in self.rows],
            title=f"{self.figure_id}: {self.title}",
        )

    def render(self) -> str:
        parts = [self.to_table()]
        if self.notes:
            parts.append("")
            parts.extend(f"note: {n}" for n in self.notes)
        return "\n".join(parts)

    def save(self, directory: str | Path) -> Path:
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        csv_path = directory / f"{self.figure_id}.csv"
        csv_path.write_text(self.to_csv())
        (directory / f"{self.figure_id}.txt").write_text(self.render() + "\n")
        return csv_path


def run_theorem_table(
    config: ExperimentConfig, bundle: ServiceBundle | None = None
) -> TheoremTable:
    """Measure every theorem's constant on one loaded bundle."""
    bundle = bundle if bundle is not None else build_services(config)
    wl = bundle.workload
    n, m, d = config.population, config.num_attributes, config.dimension
    table = TheoremTable(
        figure_id="theorems",
        title=f"Theorems 4.1-4.10 at n={n}, m={m}, k={config.infos_per_attribute}, d={d}",
    )

    # ---- Theorem 4.1: structure overhead ratio Mercury / LORM ----------
    mercury_links = float(np.mean(bundle.mercury.outlink_counts()))
    lorm_links = float(np.mean(bundle.lorm.outlink_counts()))
    table.rows.append(TheoremRow(
        "4.1", "Mercury/LORM outlinks (>= m)",
        predicted=theorems.thm41_structure_overhead_ratio(n, m, d),
        measured=mercury_links / lorm_links,
    ))

    # ---- Theorem 4.2: MAAN total info = 2x ------------------------------
    table.rows.append(TheoremRow(
        "4.2", "MAAN/LORM total stored pieces",
        predicted=theorems.thm42_total_info_ratio_maan(),
        measured=bundle.maan.total_info_pieces() / bundle.lorm.total_info_pieces(),
    ))

    # ---- Theorems 4.3/4.4: loaded-directory reduction --------------------
    def loaded_mean(service) -> float:
        sizes = [s for s in service.directory_sizes() if s > 0]
        return float(np.mean(sizes)) if sizes else 0.0

    maan_root_mean = float(np.mean(sorted(bundle.maan.directory_sizes())[-m:]))
    lorm_loaded = loaded_mean(bundle.lorm)
    table.rows.append(TheoremRow(
        "4.3", "MAAN root / LORM directory size",
        predicted=theorems.thm43_directory_reduction_vs_maan(n, m, d),
        measured=maan_root_mean / lorm_loaded,
    ))
    sword_root_mean = float(np.mean(sorted(bundle.sword.directory_sizes())[-m:]))
    table.rows.append(TheoremRow(
        "4.4", "SWORD root / LORM directory size",
        predicted=theorems.thm44_directory_reduction_vs_sword(d),
        measured=sword_root_mean / lorm_loaded,
    ))

    # ---- Theorem 4.5: balance ratio ---------------------------------------
    # The proof compares per-responsible-node loads: k/d in LORM versus
    # mk/n in Mercury, so the measured counterpart is the ratio of loaded
    # directory means.
    mercury_loaded = loaded_mean(bundle.mercury)
    table.rows.append(TheoremRow(
        "4.5", "LORM/Mercury loaded directory size (n/dm)",
        predicted=theorems.thm45_balance_ratio_mercury_vs_lorm(n, m, d),
        measured=lorm_loaded / mercury_loaded,
    ))

    # ---- Theorems 4.7/4.8: non-range hop ratios --------------------------
    point_queries = list(wl.query_stream(400, 1, QueryKind.POINT, label="thm-table-p"))
    hop_means = {
        s.name: float(np.mean([s.multi_query(q).total_hops for q in point_queries]))
        for s in bundle.all()
    }
    table.rows.append(TheoremRow(
        "4.7", "MAAN/LORM hops (log n / d)",
        predicted=theorems.thm47_contacted_reduction_vs_maan(n, d),
        measured=hop_means["MAAN"] / hop_means["LORM"],
    ))
    table.rows.append(TheoremRow(
        "4.8", "MAAN/Mercury hops (= 2)",
        predicted=theorems.thm48_contacted_reduction_mercury_sword_vs_maan(),
        measured=hop_means["MAAN"] / hop_means["Mercury"],
    ))

    # ---- Theorem 4.9: average-case visited nodes -------------------------
    bundle.set_collect_matches(False)
    range_queries = list(wl.query_stream(300, 1, QueryKind.RANGE, label="thm-table-r"))
    visit_means = {
        s.name: float(np.mean([s.multi_query(q).total_visited for q in range_queries]))
        for s in bundle.all()
    }
    bundle.set_collect_matches(True)
    for approach in ("Mercury", "MAAN", "LORM", "SWORD"):
        table.rows.append(TheoremRow(
            "4.9", f"{approach} visited/range query",
            predicted=theorems.thm49_visited_nodes_avg(approach, n, d, 1),
            measured=visit_means[approach],
        ))

    # ---- Theorem 4.10: worst case (full-domain range query) --------------
    from repro.core.resource import AttributeConstraint, Query

    spec = wl.schema.specs[0]
    full_q = Query(AttributeConstraint.between(spec.name, spec.lo, spec.hi))
    bundle.set_collect_matches(False)
    worst = {s.name: s.query(full_q).visited_nodes for s in bundle.all()}
    bundle.set_collect_matches(True)
    table.rows.append(TheoremRow(
        "4.10", "Mercury worst-case visited (~n)",
        predicted=float(n), measured=float(worst["Mercury"]),
    ))
    table.rows.append(TheoremRow(
        "4.10", "LORM worst-case visited (<= d)",
        predicted=float(d), measured=float(worst["LORM"]),
    ))

    table.notes.append(
        "4.1 is a lower bound (LORM's table is < d entries, so the measured "
        "saving exceeds m*log(n)/d); 4.3/4.4/4.5 compare loaded directories, "
        "matching the proofs' per-responsible-node loads"
    )
    return table
